//! The 3D engine thread-scaling benchmark behind the perf-tracking file
//! `BENCH_scaling3d.json`: smart (quality-guarded) 3D Gauss–Seidel
//! smoothing on a ~48³ perturbed tet grid for 5 sweeps, swept over
//! threads {1, 2, 4, 8} on
//!
//! * the **serial** reference engine (the 1-thread baseline),
//! * the **colored parallel** engine (deterministic in-place GS),
//! * the **resident** engine (blocks resident for the whole run,
//!   halo-delta exchange only, one final disjoint scatter),
//!
//! all of which are the dimension-generic `lms-smooth` sweep bodies
//! instantiated for `TetMesh` — this bench is the 3D twin of
//! `bench_scaling`. The resident engine is gated before any timing
//! against serial part-major 3D Gauss–Seidel (coordinates must match bit
//! for bit, with exactly one full gather and one full scatter).
//!
//! Run with `cargo bench -p lms-bench --bench bench_scaling3d`. Set
//! `LMS_BENCH_GRID3` to override the grid side (default 48) and
//! `LMS_BENCH_THREADS` for the thread list (default `1,2,4,8`). The
//! summary — median/min ms per (engine, threads), the resident self- and
//! vs-colored speedups, exchange-volume accounting, and the host core
//! count — is written to `BENCH_scaling3d.json` at the workspace root.

use criterion::{BenchmarkId, Criterion};
use lms_mesh3d::{ResidentEngine3, SmoothEngine3, SmoothParams3};
use lms_part::PartitionMethod;
use std::fmt::Write as _;

fn grid_side() -> usize {
    std::env::var("LMS_BENCH_GRID3").ok().and_then(|s| s.parse().ok()).unwrap_or(48)
}

fn thread_list() -> Vec<usize> {
    std::env::var("LMS_BENCH_THREADS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

const PARTS: usize = 8;
const SWEEPS: usize = 5;

fn bench_scaling3d(c: &mut Criterion) -> lms_smooth::ExchangeVolume {
    let side = grid_side();
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(side, side, side, 0.35, 42);
    // fixed sweeps: tol disabled so all engines do identical work
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(SWEEPS).with_tol(-1.0);
    let serial = SmoothEngine3::new(&mesh, params.clone());
    let colored = SmoothEngine3::new(&mesh, params.clone());
    let resident = ResidentEngine3::by_method(&mesh, params.clone(), PARTS, PartitionMethod::Rcb);

    // correctness gate before timing: the resident sweep must be exactly
    // serial 3D Gauss-Seidel under the part-major visit order
    let mut a = mesh.clone();
    let gate_report = resident.smooth(&mut a, 2);
    let oracle =
        SmoothEngine3::new(&mesh, params).with_visit_order(resident.part_major_visit_order());
    let mut b = mesh.clone();
    oracle.smooth(&mut b);
    assert_eq!(a.coords(), b.coords(), "3D resident engine diverged from serial part-major GS");
    let volume = gate_report.exchange.expect("resident runs report exchange accounting");
    assert_eq!(volume.full_gathers, 1, "resident engine must gather exactly once");
    assert_eq!(volume.full_scatters, 1, "resident engine must scatter exactly once");

    let mut group = c.benchmark_group("scaling3d");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("serial_1t", side), &mesh, |bch, m| {
        bch.iter(|| serial.smooth(&mut m.clone()))
    });
    for threads in thread_list() {
        group.bench_with_input(
            BenchmarkId::new(format!("colored_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    colored.smooth_parallel_colored(&mut work, threads)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("resident_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    resident.smooth(&mut work, threads)
                })
            },
        );
    }
    group.finish();
    volume
}

fn export_json(c: &Criterion, side: usize, volume: &lms_smooth::ExchangeVolume) {
    let find = |needle: &str, min: bool| {
        c.summaries()
            .iter()
            .find(|s| s.id.contains(needle))
            .map(|s| if min { s.min_ns / 1e6 } else { s.median_ns / 1e6 })
            .unwrap_or(f64::NAN)
    };
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = thread_list();

    let mut median = String::new();
    let mut min = String::new();
    let cell = |median: &mut String, min: &mut String, label: &str, needle: &str| {
        let sep = if median.is_empty() { "" } else { ",\n" };
        let _ = write!(median, "{sep}    \"{label}\": {:.2}", find(needle, false));
        let sep = if min.is_empty() { "" } else { ",\n" };
        let _ = write!(min, "{sep}    \"{label}\": {:.2}", find(needle, true));
    };
    cell(&mut median, &mut min, "serial_1_threads", "serial_1t");
    for engine in ["colored", "resident"] {
        for &t in &threads {
            cell(
                &mut median,
                &mut min,
                &format!("{engine}_{t}_threads"),
                &format!("{engine}_{t}t"),
            );
        }
    }
    // deterministic workloads: background load only ever adds time, so
    // the fastest-sample ratio is the noise-robust speedup estimate
    // (same reasoning as BENCH_scaling.json); "null" keeps the JSON
    // valid when a thread count is absent from the list
    let ratio = |a: f64, b: f64| {
        let r = a / b;
        if r.is_finite() {
            format!("{r:.3}")
        } else {
            "null".to_string()
        }
    };
    let res_self_speedup_4t = ratio(find("resident_1t", true), find("resident_4t", true));
    let res_vs_colored_1t = ratio(find("colored_1t", true), find("resident_1t", true));
    let res_vs_serial = ratio(find("serial_1t", true), find("resident_1t", true));
    let json = format!(
        "{{\n  \"benchmark\": \"scaling3d\",\n  \"workload\": \"smart 3D Gauss-Seidel, {side}x{side}x{side} perturbed tet grid (jitter 0.35, seed 42), {SWEEPS} sweeps, {PARTS}-way rcb\",\n  \"host_cores\": {host_cores},\n  \"threads\": {threads:?},\n  \"median_ms\": {{\n{median}\n  }},\n  \"min_ms\": {{\n{min}\n  }},\n  \"resident_speedup_4t_vs_1t\": {res_self_speedup_4t},\n  \"resident_speedup_vs_colored_1t\": {res_vs_colored_1t},\n  \"resident_speedup_vs_serial\": {res_vs_serial},\n  \"speedup_estimator\": \"min-vs-min (deterministic workload)\",\n  \"note\": \"thread speedups are bounded by host_cores; on a 1-core host every multi-thread time degenerates to the 1-thread time plus dispatch overhead\",\n  \"exchange_volume_per_{SWEEPS}_sweeps\": {{\n    \"full_gathers\": {},\n    \"full_scatters\": {},\n    \"exchange_rounds\": {},\n    \"halo_entries_sent\": {}\n  }},\n  \"coords_bit_identical_to_serial_part_major\": true\n}}\n",
        volume.full_gathers, volume.full_scatters, volume.exchange_rounds, volume.halo_entries_sent,
    );
    // workspace root (this bench runs with the crate as manifest dir)
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_scaling3d.json");
    std::fs::write(&path, &json).expect("write BENCH_scaling3d.json");
    println!("\nwrote {} :\n{json}", path.display());
}

fn main() {
    let mut criterion = Criterion::new();
    let volume = bench_scaling3d(&mut criterion);
    export_json(&criterion, grid_side(), &volume);
}
