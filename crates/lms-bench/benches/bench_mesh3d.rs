//! The §6 tetrahedral extension as a Criterion bench: 3D smoothing time
//! under ORI / BFS / RDR (Figure 8's shape in 3D), parallel RDR
//! construction cost, and the 3D reordering cost against one ORI sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lms_mesh3d::generators::{generate3, SUITE3};
use lms_mesh3d::order::{apply_permutation3, compute_ordering3, OrderingKind3};
use lms_mesh3d::SmoothParams3;
use lms_order::{par_rdr_ordering, ParRdrOptions};

fn bench_scale() -> f64 {
    // 3D base meshes are laptop-sized at scale 1.0 (the 2D default of 0.02
    // maps to 1.0 here)
    std::env::var("LMS_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|s| s * 50.0)
        .unwrap_or(1.0)
}

fn smoothing_by_ordering_3d(c: &mut Criterion) {
    let base = generate3(&SUITE3[0], bench_scale());
    let mut group = c.benchmark_group("tet_smoothing");
    group.sample_size(10);
    for kind in OrderingKind3::PAPER_TRIO {
        let perm = compute_ordering3(&base, kind);
        let mesh = apply_permutation3(&perm, &base);
        let params = SmoothParams3::paper().with_max_iters(8);
        group.bench_with_input(BenchmarkId::new("ordering", kind.name()), &mesh, |b, m| {
            b.iter(|| params.smooth(&mut m.clone()))
        });
    }
    group.finish();
}

fn reorder_cost_3d(c: &mut Criterion) {
    let base = generate3(&SUITE3[0], bench_scale());
    let mut group = c.benchmark_group("tet_reorder_cost");
    group.sample_size(10);
    for kind in [OrderingKind3::Rdr, OrderingKind3::Bfs, OrderingKind3::Rcm] {
        group.bench_with_input(BenchmarkId::new("ordering", kind.name()), &base, |b, m| {
            b.iter(|| compute_ordering3(m, kind))
        });
    }
    let one_iter = SmoothParams3::paper().with_max_iters(1);
    group.bench_with_input(BenchmarkId::new("ordering", "one_ori_sweep"), &base, |b, m| {
        b.iter(|| one_iter.smooth(&mut m.clone()))
    });
    group.finish();
}

fn parallel_rdr_construction(c: &mut Criterion) {
    // 2D mesh: the chunked construction is dimension-independent; bench it
    // on the suite's carabiner at the configured scale
    let base = lms_mesh::suite::generate(&lms_mesh::suite::SUITE[0], bench_scale() / 50.0);
    let mut group = c.benchmark_group("par_rdr_construction");
    group.sample_size(10);
    for chunks in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("chunks", chunks), &base, |b, m| {
            b.iter(|| par_rdr_ordering(m, &ParRdrOptions::default(), chunks))
        });
    }
    group.finish();
}

criterion_group!(benches, smoothing_by_ordering_3d, reorder_cost_3d, parallel_rdr_construction);
criterion_main!(benches);
