//! The partitioned-smoothing benchmark behind the perf-tracking file
//! `BENCH_partition.json`: smart (quality-guarded) smoothing on a 512×512
//! perturbed grid for 10 sweeps, measured on
//!
//! * the **colored parallel** engine at 1 and 2 threads (the PR-1
//!   deterministic baseline that parallelises across the whole mesh),
//! * the **partitioned** engine (`PartitionedEngine`, 8-way RCB) at 1 and
//!   2 threads — per-part cache-resident interior blocks plus a colored
//!   interface sweep.
//!
//! Both engines are bitwise-deterministic for any thread count; the
//! partitioned one is additionally gated here against serial Gauss–Seidel
//! under its part-major visit order (coordinates must match bit for bit).
//!
//! Run with `cargo bench -p lms-bench --bench bench_partition`. Set
//! `LMS_BENCH_GRID` to override the grid side (default 512). The summary
//! — median ms per run, decomposition metrics, and the partitioned-vs-
//! colored speedup — is written to `BENCH_partition.json` at the
//! workspace root.

use criterion::{BenchmarkId, Criterion};
use lms_bench::experiments::partition::{graded_mesh, profiled_sweep_ns};
use lms_mesh::Adjacency;
use lms_part::{partition_mesh, repartition_measured, PartitionMethod};
use lms_smooth::{PartitionedEngine, ResidentEngine, SmoothEngine, SmoothParams};

fn grid_side() -> usize {
    std::env::var("LMS_BENCH_GRID").ok().and_then(|s| s.parse().ok()).unwrap_or(512)
}

const PARTS: usize = 8;

fn bench_partition(c: &mut Criterion) -> lms_part::PartitionStats {
    let side = grid_side();
    let mesh = lms_mesh::generators::perturbed_grid(side, side, 0.35, 42);
    // fixed 10 sweeps: tol disabled so all engines do identical work
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let colored = SmoothEngine::new(&mesh, params.clone());
    let partitioned =
        PartitionedEngine::by_method(&mesh, params.clone(), PARTS, PartitionMethod::Rcb);
    let stats = partitioned.partition().stats();

    // correctness gate before timing: the partitioned sweep must be
    // exactly serial Gauss-Seidel under the part-major visit order
    let mut a = mesh.clone();
    partitioned.smooth(&mut a, 2);
    let serial =
        SmoothEngine::new(&mesh, params).with_visit_order(partitioned.part_major_visit_order());
    let mut b = mesh.clone();
    serial.smooth(&mut b);
    assert_eq!(a.coords(), b.coords(), "partitioned engine diverged from serial part-major GS");

    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for threads in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new(format!("colored_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    colored.smooth_parallel_colored(&mut work, threads)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("partitioned_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    partitioned.smooth(&mut work, threads)
                })
            },
        );
    }
    group.finish();
    stats
}

/// The measured-repartition loop on a time-skewed decomposition: profile
/// per-part sweep times on an area-balanced split of an x³-graded grid
/// (structurally count- and hence time-imbalanced), feed them back as
/// weights via `repartition_measured`, profile again.
struct Rebalance {
    side: usize,
    before_ns: Vec<u64>,
    after_ns: Vec<u64>,
}

fn measure_rebalance() -> Rebalance {
    let side = (grid_side() / 2).clamp(24, 256);
    let mesh = graded_mesh(side);
    let adj = Adjacency::build(&mesh);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let before_parts = partition_mesh(&mesh, &adj, PARTS, PartitionMethod::RcbWeighted);
    let before_engine = ResidentEngine::new(&mesh, params.clone(), before_parts);
    let before_ns = profiled_sweep_ns(&before_engine, &mesh, 3);
    let after_parts = repartition_measured(&mesh, &adj, before_engine.partition(), &before_ns);
    let after_engine = ResidentEngine::new(&mesh, params, after_parts);
    let after_ns = profiled_sweep_ns(&after_engine, &mesh, 3);
    Rebalance { side, before_ns, after_ns }
}

fn export_json(
    c: &Criterion,
    side: usize,
    stats: &lms_part::PartitionStats,
    rebalance: &Rebalance,
) {
    let find = |needle: &str, min: bool| {
        c.summaries()
            .iter()
            .find(|s| s.id.contains(needle))
            .map(|s| if min { s.min_ns / 1e6 } else { s.median_ns / 1e6 })
            .unwrap_or(f64::NAN)
    };
    // deterministic workloads: background load only ever adds time, so
    // the fastest-sample ratio is the noise-robust speedup estimate
    // (same reasoning as BENCH_smooth.json)
    let speedup = find("colored_2t", true) / find("partitioned_2t", true);
    let ms_list = |ns: &[u64]| {
        ns.iter().map(|&n| format!("{:.3}", n as f64 / 1e6)).collect::<Vec<_>>().join(", ")
    };
    let spread = |ns: &[u64]| {
        (ns.iter().max().copied().unwrap_or(0) - ns.iter().min().copied().unwrap_or(0)) as f64 / 1e6
    };
    let (spread_before, spread_after) = (spread(&rebalance.before_ns), spread(&rebalance.after_ns));
    let rebalance_json = format!(
        "  \"measured_rebalance\": {{\n    \"workload\": \"x3-graded {0}x{0} grid, {PARTS} parts, area-balanced rcbw baseline (time-skewed by construction)\",\n    \"per_part_sweep_ms_before\": [{1}],\n    \"per_part_sweep_ms_after\": [{2}],\n    \"spread_ms_before\": {spread_before:.3},\n    \"spread_ms_after\": {spread_after:.3},\n    \"spread_narrowed\": {3},\n    \"note\": \"profiled warm-up sweep times (min of 3 runs) fed back as per-vertex weights into rcb_parts_weighted — the observability loop closed: measured cost drives the repartition\"\n  }},\n",
        rebalance.side,
        ms_list(&rebalance.before_ns),
        ms_list(&rebalance.after_ns),
        spread_after < spread_before,
    );
    let json = format!(
        "{{\n  \"benchmark\": \"partition\",\n  \"workload\": \"smart Gauss-Seidel, {side}x{side} perturbed grid (jitter 0.35, seed 42), 10 sweeps, {PARTS}-way rcb\",\n  \"median_ms\": {{\n    \"colored_1_thread\": {:.2},\n    \"colored_2_threads\": {:.2},\n    \"partitioned_1_thread\": {:.2},\n    \"partitioned_2_threads\": {:.2}\n  }},\n  \"min_ms\": {{\n    \"colored_2_threads\": {:.2},\n    \"partitioned_2_threads\": {:.2}\n  }},\n  \"partition\": {{\n    \"parts\": {PARTS},\n    \"method\": \"rcb\",\n    \"edge_cut\": {},\n    \"interface_vertices\": {},\n    \"interior_vertices\": {},\n    \"interior_interface_ratio\": {:.2},\n    \"halo_ratio\": {:.4},\n    \"imbalance\": {:.4}\n  }},\n  \"partitioned_speedup_vs_colored_2t\": {speedup:.3},\n  \"speedup_estimator\": \"min-vs-min (deterministic workload)\",\n{rebalance_json}  \"coords_bit_identical_to_serial_part_major\": true\n}}\n",
        find("colored_1t", false),
        find("colored_2t", false),
        find("partitioned_1t", false),
        find("partitioned_2t", false),
        find("colored_2t", true),
        find("partitioned_2t", true),
        stats.edge_cut,
        stats.interface_vertices,
        stats.interior_vertices,
        // keep the JSON valid even for a cut-free decomposition (ratio = inf)
        if stats.interface_vertices == 0 {
            stats.interior_vertices as f64
        } else {
            stats.interior_interface_ratio()
        },
        stats.halo_ratio,
        stats.imbalance,
    );
    // workspace root (this bench runs with the crate as manifest dir)
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_partition.json");
    std::fs::write(&path, &json).expect("write BENCH_partition.json");
    println!("\nwrote {} :\n{json}", path.display());
}

fn main() {
    let mut criterion = Criterion::new();
    let stats = bench_partition(&mut criterion);
    let rebalance = measure_rebalance();
    export_json(&criterion, grid_side(), &stats, &rebalance);
}
