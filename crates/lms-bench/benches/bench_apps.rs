//! Criterion benches for the §6-conjecture applications: untangling, edge
//! swapping, optimization smoothing and the weighted-Laplacian extension,
//! each under the paper's three orderings (ORI / BFS / RDR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lms_apps::{
    opt_smooth, swap_until_stable, tangle_vertices, untangle, OptSmoothOptions, SwapOptions,
    UntangleOptions,
};
use lms_mesh::suite;
use lms_mesh::TriMesh;
use lms_order::{compute_ordering, OrderingKind};
use lms_smooth::{SmoothParams, Weighting};

/// The dialog mesh at bench scale, reordered by `kind`.
fn prepared(kind: OrderingKind) -> TriMesh {
    let base = suite::generate(&suite::SUITE[2], 0.01);
    let perm = compute_ordering(&base, kind);
    perm.apply_to_mesh(&base)
}

fn untangle_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps_untangle");
    group.sample_size(10);
    for kind in OrderingKind::PAPER_TRIO {
        let mut tangled = prepared(kind);
        tangled.orient_ccw();
        tangle_vertices(&mut tangled, 40);
        group.bench_with_input(BenchmarkId::new("ordering", kind.name()), &tangled, |b, m| {
            b.iter(|| untangle(&mut m.clone(), None, UntangleOptions::default()))
        });
    }
    group.finish();
}

fn swap_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps_swap");
    group.sample_size(10);
    for kind in OrderingKind::PAPER_TRIO {
        let m = prepared(kind);
        group.bench_with_input(BenchmarkId::new("ordering", kind.name()), &m, |b, m| {
            b.iter(|| swap_until_stable(&mut m.clone(), SwapOptions::default(), None))
        });
    }
    group.finish();
}

fn optsmooth_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps_optsmooth");
    group.sample_size(10);
    let opts = OptSmoothOptions { max_sweeps: 2, ..OptSmoothOptions::default() };
    for kind in OrderingKind::PAPER_TRIO {
        let m = prepared(kind);
        group.bench_with_input(BenchmarkId::new("ordering", kind.name()), &m, |b, m| {
            b.iter(|| opt_smooth(&mut m.clone(), &opts))
        });
    }
    group.finish();
}

fn weighted_laplacian(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps_weighted_laplacian");
    group.sample_size(10);
    let m = prepared(OrderingKind::Rdr);
    for weighting in [Weighting::Uniform, Weighting::InverseEdgeLength, Weighting::EdgeLength] {
        let params = SmoothParams::paper().with_weighting(weighting).with_max_iters(6);
        group.bench_with_input(BenchmarkId::new("weighting", weighting.name()), &m, |b, m| {
            b.iter(|| params.smooth(&mut m.clone()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    untangle_orderings,
    swap_orderings,
    optsmooth_orderings,
    weighted_laplacian
);
criterion_main!(benches);
