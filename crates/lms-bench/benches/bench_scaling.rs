//! The engine thread-scaling benchmark behind the perf-tracking file
//! `BENCH_scaling.json`: smart (quality-guarded) smoothing on a 512×512
//! perturbed grid for 10 sweeps, swept over threads {1, 2, 4, 8} on
//!
//! * the **colored parallel** engine (PR-1 deterministic baseline),
//! * the **partitioned** engine (PR-2: per-sweep gather/refresh +
//!   serial write-back + global interface pass),
//! * the **resident** engine (PR-3: blocks resident for the whole run,
//!   halo-delta exchange only, one final disjoint scatter).
//!
//! All three are bitwise-deterministic for any thread count; the resident
//! engine is additionally gated here against serial Gauss–Seidel under
//! its part-major visit order (coordinates must match bit for bit).
//!
//! Run with `cargo bench -p lms-bench --bench bench_scaling`. Set
//! `LMS_BENCH_GRID` to override the grid side (default 512) and
//! `LMS_BENCH_THREADS` for the thread list (default `1,2,4,8`). The
//! summary — median/min ms per (engine, threads), the resident 4t-vs-1t
//! self-speedup, exchange-volume accounting, and the host core count
//! (speedups are meaningless beyond it) — is written to
//! `BENCH_scaling.json` at the workspace root.

use criterion::{BenchmarkId, Criterion};
use lms_part::PartitionMethod;
use lms_smooth::{PartitionedEngine, ResidentEngine, SmoothEngine, SmoothParams};
use std::fmt::Write as _;

fn grid_side() -> usize {
    std::env::var("LMS_BENCH_GRID").ok().and_then(|s| s.parse().ok()).unwrap_or(512)
}

fn thread_list() -> Vec<usize> {
    std::env::var("LMS_BENCH_THREADS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

const PARTS: usize = 8;

fn bench_scaling(c: &mut Criterion) -> lms_smooth::ExchangeVolume {
    let side = grid_side();
    let mesh = lms_mesh::generators::perturbed_grid(side, side, 0.35, 42);
    // fixed 10 sweeps: tol disabled so all engines do identical work
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let colored = SmoothEngine::new(&mesh, params.clone());
    let partitioned =
        PartitionedEngine::by_method(&mesh, params.clone(), PARTS, PartitionMethod::Rcb);
    let resident = ResidentEngine::by_method(&mesh, params.clone(), PARTS, PartitionMethod::Rcb);

    // correctness gate before timing: the resident sweep must be exactly
    // serial Gauss-Seidel under the part-major visit order
    let mut a = mesh.clone();
    let gate_report = resident.smooth(&mut a, 2);
    let serial =
        SmoothEngine::new(&mesh, params).with_visit_order(resident.part_major_visit_order());
    let mut b = mesh.clone();
    serial.smooth(&mut b);
    assert_eq!(a.coords(), b.coords(), "resident engine diverged from serial part-major GS");
    let volume = gate_report.exchange.expect("resident runs report exchange accounting");
    assert_eq!(volume.full_gathers, 1, "resident engine must gather exactly once");
    assert_eq!(volume.full_scatters, 1, "resident engine must scatter exactly once");

    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for threads in thread_list() {
        group.bench_with_input(
            BenchmarkId::new(format!("colored_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    colored.smooth_parallel_colored(&mut work, threads)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("partitioned_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    partitioned.smooth(&mut work, threads)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("resident_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    resident.smooth(&mut work, threads)
                })
            },
        );
    }
    group.finish();
    volume
}

/// Per-part accumulated sweep nanoseconds (PhaseBreakdown evidence) of
/// the resident engine with batched vs forced-scalar scoring: the
/// minimum-total rep of each, as JSON arrays indexed by part id.
fn per_part_sweep_evidence(side: usize) -> (Vec<u64>, Vec<u64>) {
    let mesh = lms_mesh::generators::perturbed_grid(side, side, 0.35, 42);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let batched = ResidentEngine::by_method(&mesh, params.clone(), PARTS, PartitionMethod::Rcb);
    let scalar = ResidentEngine::by_method(
        &mesh,
        params.with_scalar_scoring(true),
        PARTS,
        PartitionMethod::Rcb,
    );
    let one = |engine: &ResidentEngine| -> Vec<u64> {
        let (report, _) = engine.smooth_profiled(&mut mesh.clone(), 1);
        report.phase_breakdown.expect("profiled run attaches a breakdown").per_part_sweep_ns()
    };
    // interleave the reps (batched, scalar, batched, scalar, ...) so a
    // host-speed drift hits both engines about equally instead of
    // biasing whichever was measured entirely later
    let mut best_b: Vec<u64> = Vec::new();
    let mut best_s: Vec<u64> = Vec::new();
    for _ in 0..3 {
        let b = one(&batched);
        if best_b.is_empty() || b.iter().sum::<u64>() < best_b.iter().sum::<u64>() {
            best_b = b;
        }
        let s = one(&scalar);
        if best_s.is_empty() || s.iter().sum::<u64>() < best_s.iter().sum::<u64>() {
            best_s = s;
        }
    }
    (best_b, best_s)
}

fn export_json(c: &Criterion, side: usize, volume: &lms_smooth::ExchangeVolume) {
    let find = |needle: &str, min: bool| {
        c.summaries()
            .iter()
            .find(|s| s.id.contains(needle))
            .map(|s| if min { s.min_ns / 1e6 } else { s.median_ns / 1e6 })
            .unwrap_or(f64::NAN)
    };
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = thread_list();

    let mut median = String::new();
    let mut min = String::new();
    for engine in ["colored", "partitioned", "resident"] {
        for &t in &threads {
            let sep = if median.is_empty() { "" } else { ",\n" };
            let _ = write!(
                median,
                "{sep}    \"{engine}_{t}_threads\": {:.2}",
                find(&format!("{engine}_{t}t"), false)
            );
            let sep = if min.is_empty() { "" } else { ",\n" };
            let _ = write!(
                min,
                "{sep}    \"{engine}_{t}_threads\": {:.2}",
                find(&format!("{engine}_{t}t"), true)
            );
        }
    }
    // deterministic workloads: background load only ever adds time, so
    // the fastest-sample ratio is the noise-robust speedup estimate
    // (same reasoning as BENCH_smooth.json / BENCH_partition.json)
    // keep the JSON valid when the thread list omits 1 or 4 (a bare NaN
    // token would break every downstream parser)
    let ratio = |a: f64, b: f64| {
        let r = a / b;
        if r.is_finite() {
            format!("{r:.3}")
        } else {
            "null".to_string()
        }
    };
    let res_self_speedup_4t = ratio(find("resident_1t", true), find("resident_4t", true));
    let res_vs_pr2_1t = ratio(find("partitioned_1t", true), find("resident_1t", true));
    let (batched_parts, scalar_parts) = per_part_sweep_evidence(side);
    let sweep_speedup =
        ratio(scalar_parts.iter().sum::<u64>() as f64, batched_parts.iter().sum::<u64>() as f64);
    let json = format!(
        "{{\n  \"benchmark\": \"scaling\",\n  \"workload\": \"smart Gauss-Seidel, {side}x{side} perturbed grid (jitter 0.35, seed 42), 10 sweeps, {PARTS}-way rcb\",\n  \"host_cores\": {host_cores},\n  \"threads\": {threads:?},\n  \"median_ms\": {{\n{median}\n  }},\n  \"min_ms\": {{\n{min}\n  }},\n  \"resident_speedup_4t_vs_1t\": {res_self_speedup_4t},\n  \"resident_speedup_vs_partitioned_1t\": {res_vs_pr2_1t},\n  \"speedup_estimator\": \"min-vs-min (deterministic workload)\",\n  \"note\": \"thread speedups are bounded by host_cores; on a 1-core host every multi-thread time degenerates to the 1-thread time plus dispatch overhead\",\n  \"exchange_volume_per_10_sweeps\": {{\n    \"full_gathers\": {},\n    \"full_scatters\": {},\n    \"exchange_rounds\": {},\n    \"halo_entries_sent\": {}\n  }},\n  \"per_part_sweep_ns\": {{\n    \"soa_batched\": {batched_parts:?},\n    \"scalar\": {scalar_parts:?},\n    \"batched_speedup_vs_scalar\": {sweep_speedup}\n  }},\n  \"coords_bit_identical_to_serial_part_major\": true\n}}\n",
        volume.full_gathers, volume.full_scatters, volume.exchange_rounds, volume.halo_entries_sent,
    );
    // workspace root (this bench runs with the crate as manifest dir)
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_scaling.json");
    std::fs::write(&path, &json).expect("write BENCH_scaling.json");
    println!("\nwrote {} :\n{json}", path.display());
}

fn main() {
    let mut criterion = Criterion::new();
    let volume = bench_scaling(&mut criterion);
    export_json(&criterion, grid_side(), &volume);
}
