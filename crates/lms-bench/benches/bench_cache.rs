//! Throughput of the Westmere-EX cache simulator (Figure 9 machinery) and
//! of the multicore simulation (Figure 10–13 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_bench::common::{first_sweep_trace, ordered_mesh, parallel_sweep_traces, scaled_westmere};
use lms_cache::{multicore, MachineConfig, NodeLayout};
use lms_mesh::suite;
use lms_order::OrderingKind;

fn cache_sim(c: &mut Criterion) {
    let base = suite::generate(&suite::SUITE[0], 0.01);
    let m = ordered_mesh(&base, OrderingKind::Original);
    let trace = first_sweep_trace(&m);

    let mut group = c.benchmark_group("cache_simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_with_input(BenchmarkId::new("hierarchy", "ori"), &trace, |b, t| {
        b.iter(|| {
            let mut h = scaled_westmere(0.01, NodeLayout::paper_66());
            h.run_trace(t);
            h.total_cycles()
        })
    });

    for p in [4usize, 16] {
        let traces = parallel_sweep_traces(&m, p);
        group.bench_with_input(BenchmarkId::new("multicore", p), &traces, |b, ts| {
            b.iter(|| {
                let machine = MachineConfig::westmere_scaled(NodeLayout::paper_66(), 100);
                multicore::simulate(&machine, ts).wall_cycles()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cache_sim);
criterion_main!(benches);
