//! The smoothing hot-path benchmark behind this repo's perf-tracking file
//! `BENCH_smooth.json`: smart (quality-guarded) smoothing on a 512×512
//! perturbed grid for 10 sweeps, measured on
//!
//! * the **incremental-quality** path (`SmoothEngine::smooth` — quality
//!   cache, fused candidate scoring, O(moved·deg) stats),
//! * the **full-recompute** reference (`SmoothEngine::smooth_full_recompute`
//!   — the pre-incremental engine: double star evaluation per commit test
//!   plus a whole-mesh quality recompute per sweep),
//! * the **colored parallel** engine at 1 and 2 threads (deterministic
//!   in-place Gauss–Seidel).
//!
//! Run with `cargo bench -p lms-bench --bench bench_smooth_hot`. Set
//! `LMS_BENCH_GRID` to override the grid side (default 512). The summary
//! — median ms per run and the incremental-vs-full speedup — is written to
//! `BENCH_smooth.json` at the workspace root.

use criterion::{BenchmarkId, Criterion};
use lms_part::PartitionMethod;
use lms_smooth::{ResidentEngine, SmoothEngine, SmoothParams};

fn grid_side() -> usize {
    std::env::var("LMS_BENCH_GRID").ok().and_then(|s| s.parse().ok()).unwrap_or(512)
}

/// One profiled resident run: accumulated rank sweep nanoseconds plus the
/// (deterministic) moved-vertex count — the numerator and denominator of
/// ns-per-moved-vertex.
fn resident_sweep_ns(engine: &ResidentEngine, mesh: &lms_mesh::TriMesh) -> (u64, u64) {
    let mut work = mesh.clone();
    let (report, _) = engine.smooth_profiled(&mut work, 1);
    let b = report.phase_breakdown.expect("profiled run attaches a breakdown");
    let ns = b.per_part_sweep_ns().iter().sum();
    let moved = b.transport.rank_phases.iter().map(|r| r.moved).sum::<u64>().max(1);
    (ns, moved)
}

fn bench_smooth_hot(c: &mut Criterion) {
    let side = grid_side();
    let mesh = lms_mesh::generators::perturbed_grid(side, side, 0.35, 42);
    // fixed 10 sweeps: tol disabled so both paths do identical work
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let engine = SmoothEngine::new(&mesh, params);

    // correctness gate before timing: the two paths must agree bitwise
    let mut a = mesh.clone();
    engine.smooth(&mut a);
    let mut b = mesh.clone();
    engine.smooth_full_recompute(&mut b);
    assert_eq!(a.coords(), b.coords(), "incremental path diverged from reference");

    // SoA gate: the lane-batched scoring path (the default since the SoA
    // refactor — "incremental" above measures it) must agree bitwise with
    // the forced pre-SoA scalar path too
    let params_scalar = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let scalar_engine = SmoothEngine::new(&mesh, params_scalar.with_scalar_scoring(true));
    let mut s = mesh.clone();
    scalar_engine.smooth(&mut s);
    assert_eq!(a.coords(), s.coords(), "batched scoring diverged from the scalar path");

    let mut group = c.benchmark_group("smooth_hot");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("scalar_kernel", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            scalar_engine.smooth(&mut work)
        })
    });
    group.bench_with_input(BenchmarkId::new("incremental", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            engine.smooth(&mut work)
        })
    });
    group.bench_with_input(BenchmarkId::new("full_recompute", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            engine.smooth_full_recompute(&mut work)
        })
    });
    for threads in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new(format!("colored_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    engine.smooth_parallel_colored(&mut work, threads)
                })
            },
        );
    }
    group.finish();
}

struct SoaEvidence {
    batched_ns_per_moved: f64,
    scalar_ns_per_moved: f64,
    speedup: f64,
    scored_elements_per_sec: f64,
    bulk_batched_ns_per_elem: f64,
    bulk_scalar_ns_per_elem: f64,
    bulk_speedup: f64,
}

/// The scoring kernel in isolation: every element of the mesh scored in
/// one lane-batched call vs one `score_soa` per element, interleaved
/// min-of-50 on identical SoA inputs. No sweep logic, no gathers beyond
/// the kernel's own — the compute-bound layout + SIMD win.
fn measure_bulk(mesh: &lms_mesh::TriMesh) -> (f64, f64, f64) {
    use lms_mesh::quality::QualityMetric;
    use lms_smooth::domain::{SmoothDomain, TriDomain};
    use lms_smooth::{SoaCoords, SoaLike};
    let adj = lms_mesh::Adjacency::build(mesh);
    let boundary = lms_mesh::Boundary::detect(mesh);
    let dom = TriDomain::new(&adj, &boundary, mesh.triangles(), QualityMetric::EdgeLengthRatio);
    let mut soa = SoaCoords::<2>::with_len(mesh.num_vertices());
    soa.gather_from(mesh.coords());
    let rows: Vec<[u32; 3]> = dom.elements().to_vec();
    let mut out = vec![(0.0, false); rows.len()];
    let mut best_b = u64::MAX;
    let mut best_s = u64::MAX;
    for _ in 0..50 {
        let t = std::time::Instant::now();
        dom.score_batch(&soa, &rows, &mut out);
        best_b = best_b.min(t.elapsed().as_nanos() as u64);
        std::hint::black_box(&out);
        let t = std::time::Instant::now();
        for (slot, &row) in out.iter_mut().zip(&rows) {
            *slot = dom.score_soa(&soa, row);
        }
        best_s = best_s.min(t.elapsed().as_nanos() as u64);
        std::hint::black_box(&out);
    }
    let n = rows.len() as f64;
    (best_b as f64 / n, best_s as f64 / n, best_s as f64 / best_b as f64)
}

/// Measure the resident sweep kernel's ns-per-moved-vertex with batched
/// and (forced) scalar scoring — same mesh, same 8-way decomposition,
/// coordinates gated bit-identical between the two.
fn measure_soa(side: usize) -> SoaEvidence {
    let mesh = lms_mesh::generators::perturbed_grid(side, side, 0.35, 42);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let batched = ResidentEngine::by_method(&mesh, params.clone(), 8, PartitionMethod::Rcb);
    let scalar =
        ResidentEngine::by_method(&mesh, params.with_scalar_scoring(true), 8, PartitionMethod::Rcb);
    let mut a = mesh.clone();
    let (report, _) = batched.smooth_profiled(&mut a, 1);
    let mut b = mesh.clone();
    scalar.smooth(&mut b, 1);
    assert_eq!(a.coords(), b.coords(), "batched resident diverged from the scalar path");
    // interleaved rep pairs + max(min-ratio, pair-median): the same
    // host-noise-robust estimator as `lms-tool bench-smoke` — drift
    // skews independent minima, additive spikes compress pair ratios,
    // and each estimator is downward-biased only under its own mode
    let mut batched_ns = u64::MAX;
    let mut scalar_ns = u64::MAX;
    let mut moved = 1;
    let mut ratios = Vec::new();
    for _ in 0..4 {
        let (b_ns, m) = resident_sweep_ns(&batched, &mesh);
        batched_ns = batched_ns.min(b_ns);
        moved = m;
        let (s_ns, _) = resident_sweep_ns(&scalar, &mesh);
        scalar_ns = scalar_ns.min(s_ns);
        ratios.push(s_ns as f64 / b_ns as f64);
    }
    ratios.sort_by(|x, y| x.total_cmp(y));
    let median = (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0;
    let (bulk_batched_ns_per_elem, bulk_scalar_ns_per_elem, bulk_speedup) = measure_bulk(&mesh);
    SoaEvidence {
        batched_ns_per_moved: batched_ns as f64 / moved as f64,
        scalar_ns_per_moved: scalar_ns as f64 / moved as f64,
        speedup: (scalar_ns as f64 / batched_ns as f64).max(median),
        scored_elements_per_sec: report.scored_elements_per_sec().unwrap_or(f64::NAN),
        bulk_batched_ns_per_elem,
        bulk_scalar_ns_per_elem,
        bulk_speedup,
    }
}

fn export_json(c: &Criterion, side: usize, soa: &SoaEvidence) {
    let find = |needle: &str, min: bool| {
        c.summaries()
            .iter()
            .find(|s| s.id.contains(needle))
            .map(|s| if min { s.min_ns / 1e6 } else { s.median_ns / 1e6 })
            .unwrap_or(f64::NAN)
    };
    let incremental_ms = find("incremental", false);
    let full_ms = find("full_recompute", false);
    let scalar_ms = find("scalar_kernel", false);
    let colored1_ms = find("colored_1t", false);
    let colored2_ms = find("colored_2t", false);
    // both runs are deterministic, so background load only ever adds
    // time: the fastest-sample ratio is the noise-robust speedup
    // estimate (same reasoning as hyperfine's min / Python timeit docs)
    let speedup = find("full_recompute", true) / find("incremental", true);
    // the incremental path IS the SoA lane-batched kernel since the SoA
    // refactor; the scalar_kernel group forces the pre-SoA per-element
    // scoring path on the same engine, so min-vs-min is the layout win
    let soa_speedup = find("scalar_kernel", true) / find("incremental", true);
    let soa_ns_speedup = soa.speedup;
    let json = format!(
        "{{\n  \"benchmark\": \"smooth_hot\",\n  \"workload\": \"smart Gauss-Seidel, {side}x{side} perturbed grid (jitter 0.35, seed 42), 10 sweeps\",\n  \"median_ms\": {{\n    \"incremental\": {incremental_ms:.2},\n    \"full_recompute\": {full_ms:.2},\n    \"scalar_kernel\": {scalar_ms:.2},\n    \"colored_1_thread\": {colored1_ms:.2},\n    \"colored_2_threads\": {colored2_ms:.2}\n  }},\n  \"min_ms\": {{\n    \"incremental\": {:.2},\n    \"full_recompute\": {:.2},\n    \"scalar_kernel\": {:.2}\n  }},\n  \"incremental_speedup_vs_full\": {speedup:.3},\n  \"soa_kernel\": {{\n    \"bulk_scoring\": {{\n      \"batched_ns_per_elem\": {:.2},\n      \"scalar_ns_per_elem\": {:.2},\n      \"speedup\": {:.3}\n    }},\n    \"batched_speedup_vs_scalar\": {soa_speedup:.3},\n    \"resident_sweep_ns_per_moved_vertex\": {{\n      \"batched\": {:.0},\n      \"scalar\": {:.0},\n      \"speedup\": {soa_ns_speedup:.3}\n    }},\n    \"scored_elements_per_sec_batched\": {:.0},\n    \"baseline_note\": \"the scalar toggle shares the SoA coordinate layout (per-element scoring, no lane batching), so sweep-level ratios understate the win over the pre-SoA AoS kernel; the cross-binary comparison against the pre-SoA commit is recorded in the README\"\n  }},\n  \"speedup_estimator\": \"min-vs-min for criterion groups; max(min-ratio, interleaved pair-median) for the resident sweep; interleaved min-of-50 for bulk scoring\",\n  \"coords_bit_identical_to_reference\": true\n}}\n",
        find("incremental", true),
        find("full_recompute", true),
        find("scalar_kernel", true),
        soa.bulk_batched_ns_per_elem,
        soa.bulk_scalar_ns_per_elem,
        soa.bulk_speedup,
        soa.batched_ns_per_moved,
        soa.scalar_ns_per_moved,
        soa.scored_elements_per_sec,
    );
    // workspace root (this bench runs with the crate as manifest dir)
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_smooth.json");
    std::fs::write(&path, &json).expect("write BENCH_smooth.json");
    println!("\nwrote {} :\n{json}", path.display());
}

fn main() {
    let mut criterion = Criterion::new();
    bench_smooth_hot(&mut criterion);
    let soa = measure_soa(grid_side());
    export_json(&criterion, grid_side(), &soa);
}
