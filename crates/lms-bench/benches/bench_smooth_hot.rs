//! The smoothing hot-path benchmark behind this repo's perf-tracking file
//! `BENCH_smooth.json`: smart (quality-guarded) smoothing on a 512×512
//! perturbed grid for 10 sweeps, measured on
//!
//! * the **incremental-quality** path (`SmoothEngine::smooth` — quality
//!   cache, fused candidate scoring, O(moved·deg) stats),
//! * the **full-recompute** reference (`SmoothEngine::smooth_full_recompute`
//!   — the pre-incremental engine: double star evaluation per commit test
//!   plus a whole-mesh quality recompute per sweep),
//! * the **colored parallel** engine at 1 and 2 threads (deterministic
//!   in-place Gauss–Seidel).
//!
//! Run with `cargo bench -p lms-bench --bench bench_smooth_hot`. Set
//! `LMS_BENCH_GRID` to override the grid side (default 512). The summary
//! — median ms per run and the incremental-vs-full speedup — is written to
//! `BENCH_smooth.json` at the workspace root.

use criterion::{BenchmarkId, Criterion};
use lms_smooth::{SmoothEngine, SmoothParams};

fn grid_side() -> usize {
    std::env::var("LMS_BENCH_GRID").ok().and_then(|s| s.parse().ok()).unwrap_or(512)
}

fn bench_smooth_hot(c: &mut Criterion) {
    let side = grid_side();
    let mesh = lms_mesh::generators::perturbed_grid(side, side, 0.35, 42);
    // fixed 10 sweeps: tol disabled so both paths do identical work
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let engine = SmoothEngine::new(&mesh, params);

    // correctness gate before timing: the two paths must agree bitwise
    let mut a = mesh.clone();
    engine.smooth(&mut a);
    let mut b = mesh.clone();
    engine.smooth_full_recompute(&mut b);
    assert_eq!(a.coords(), b.coords(), "incremental path diverged from reference");

    let mut group = c.benchmark_group("smooth_hot");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("incremental", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            engine.smooth(&mut work)
        })
    });
    group.bench_with_input(BenchmarkId::new("full_recompute", side), &mesh, |bch, m| {
        bch.iter(|| {
            let mut work = m.clone();
            engine.smooth_full_recompute(&mut work)
        })
    });
    for threads in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new(format!("colored_{threads}t"), side),
            &mesh,
            |bch, m| {
                bch.iter(|| {
                    let mut work = m.clone();
                    engine.smooth_parallel_colored(&mut work, threads)
                })
            },
        );
    }
    group.finish();
}

fn export_json(c: &Criterion, side: usize) {
    let find = |needle: &str, min: bool| {
        c.summaries()
            .iter()
            .find(|s| s.id.contains(needle))
            .map(|s| if min { s.min_ns / 1e6 } else { s.median_ns / 1e6 })
            .unwrap_or(f64::NAN)
    };
    let incremental_ms = find("incremental", false);
    let full_ms = find("full_recompute", false);
    let colored1_ms = find("colored_1t", false);
    let colored2_ms = find("colored_2t", false);
    // both runs are deterministic, so background load only ever adds
    // time: the fastest-sample ratio is the noise-robust speedup
    // estimate (same reasoning as hyperfine's min / Python timeit docs)
    let speedup = find("full_recompute", true) / find("incremental", true);
    let json = format!(
        "{{\n  \"benchmark\": \"smooth_hot\",\n  \"workload\": \"smart Gauss-Seidel, {side}x{side} perturbed grid (jitter 0.35, seed 42), 10 sweeps\",\n  \"median_ms\": {{\n    \"incremental\": {incremental_ms:.2},\n    \"full_recompute\": {full_ms:.2},\n    \"colored_1_thread\": {colored1_ms:.2},\n    \"colored_2_threads\": {colored2_ms:.2}\n  }},\n  \"min_ms\": {{\n    \"incremental\": {:.2},\n    \"full_recompute\": {:.2}\n  }},\n  \"incremental_speedup_vs_full\": {speedup:.3},\n  \"speedup_estimator\": \"min-vs-min (deterministic workload)\",\n  \"coords_bit_identical_to_reference\": true\n}}\n",
        find("incremental", true),
        find("full_recompute", true),
    );
    // workspace root (this bench runs with the crate as manifest dir)
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_smooth.json");
    std::fs::write(&path, &json).expect("write BENCH_smooth.json");
    println!("\nwrote {} :\n{json}", path.display());
}

fn main() {
    let mut criterion = Criterion::new();
    bench_smooth_hot(&mut criterion);
    export_json(&criterion, grid_side());
}
