//! Throughput of the exact reuse-distance analyser (the Figure 1 / Table 2
//! measurement machinery itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lms_bench::common::{first_sweep_trace, ordered_mesh};
use lms_cache::ReuseDistanceAnalyzer;
use lms_mesh::suite;
use lms_order::OrderingKind;

fn reuse_analysis(c: &mut Criterion) {
    let base = suite::generate(&suite::SUITE[5], 0.01); // ocean
    let mut group = c.benchmark_group("reuse_distance_analysis");
    group.sample_size(10);
    for kind in [OrderingKind::Original, OrderingKind::Rdr] {
        let m = ordered_mesh(&base, kind);
        let trace = first_sweep_trace(&m);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::new("analyze", kind.name()), &trace, |b, t| {
            b.iter(|| ReuseDistanceAnalyzer::analyze(t, base.num_vertices()))
        });
    }
    group.finish();
}

criterion_group!(benches, reuse_analysis);
criterion_main!(benches);
