//! Figure 8 as a Criterion bench: serial smoothing time per ordering.
//!
//! Run with `cargo bench -p lms-bench --bench bench_smoothing`. The
//! environment variable `LMS_BENCH_SCALE` (default 0.02) picks the suite
//! scale; 1.0 is the paper's size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lms_bench::common::ordered_mesh;
use lms_mesh::suite;
use lms_order::OrderingKind;
use lms_smooth::SmoothParams;

fn bench_scale() -> f64 {
    std::env::var("LMS_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.02)
}

fn smoothing_by_ordering(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig8_serial_smoothing");
    group.sample_size(10);
    for spec in suite::SUITE.iter().take(3) {
        let base = suite::generate(spec, scale);
        for kind in OrderingKind::PAPER_TRIO {
            let m = ordered_mesh(&base, kind);
            let params = SmoothParams::paper().with_max_iters(8);
            group.bench_with_input(BenchmarkId::new(spec.name, kind.name()), &m, |b, mesh| {
                b.iter(|| {
                    let mut work = mesh.clone();
                    params.smooth(&mut work)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, smoothing_by_ordering);
criterion_main!(benches);
