//! §5.4 as a Criterion bench: the cost of computing each reordering,
//! against the cost of one ORI smoothing sweep (the paper's yardstick).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lms_mesh::suite;
use lms_order::{compute_ordering, OrderingKind};
use lms_smooth::SmoothParams;

fn bench_scale() -> f64 {
    std::env::var("LMS_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.02)
}

fn reorder_cost(c: &mut Criterion) {
    let base = suite::generate(&suite::SUITE[0], bench_scale());
    let mut group = c.benchmark_group("cost_reordering");
    group.sample_size(10);
    for kind in [
        OrderingKind::Rdr,
        OrderingKind::Bfs,
        OrderingKind::Dfs,
        OrderingKind::Rcm,
        OrderingKind::Hilbert,
        OrderingKind::Random { seed: 0 },
    ] {
        group.bench_with_input(BenchmarkId::new("ordering", kind.name()), &base, |b, m| {
            b.iter(|| compute_ordering(m, kind))
        });
    }
    // the yardstick: one ORI smoothing sweep
    let one_iter = SmoothParams::paper().with_max_iters(1);
    group.bench_with_input(BenchmarkId::new("ordering", "one_ori_sweep"), &base, |b, m| {
        b.iter(|| one_iter.smooth(&mut m.clone()))
    });
    group.finish();
}

criterion_group!(benches, reorder_cost);
criterion_main!(benches);
