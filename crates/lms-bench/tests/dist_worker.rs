//! End-to-end multi-node shape: real `lms-tool dist-worker` processes —
//! separate executables, no fork-inherited state whatsoever — dial a
//! coordinator over a stream socket, rebuild the engine from the shared
//! workload parameters, and serve a fault-tolerant smoothing run that
//! must land bit-identical to the in-process engine.

use lms_dist::{DistResidentEngine, FtOptions, Listener, SocketSpec};
use lms_mesh::TriMesh;
use lms_part::PartitionMethod;
use lms_smooth::SmoothParams;
use std::process::{Child, Command};

const NX: usize = 14;
const NY: usize = 12;
const JITTER: f64 = 0.3;
const SEED: u64 = 7;
const PARTS: usize = 3;
const ITERS: usize = 3;

/// The shared workload both sides derive everything from — the "input
/// deck". The worker side is `lms-tool dist-worker` with the same
/// numbers on its command line.
fn coordinator_engine() -> (TriMesh, DistResidentEngine) {
    let mesh = lms_mesh::generators::perturbed_grid(NX, NY, JITTER, SEED);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(ITERS).with_tol(-1.0);
    let engine = DistResidentEngine::by_method(&mesh, params, PARTS, PartitionMethod::Rcb);
    (mesh, engine)
}

fn spawn_worker(addr: &str, rank: usize) -> Child {
    Command::new(env!("CARGO_BIN_EXE_lms-tool"))
        .args([
            "dist-worker",
            "--connect",
            addr,
            "--rank",
            &rank.to_string(),
            "--nx",
            &NX.to_string(),
            "--ny",
            &NY.to_string(),
            "--jitter",
            &JITTER.to_string(),
            "--seed",
            &SEED.to_string(),
            "--parts",
            &PARTS.to_string(),
            "--method",
            "rcb",
            "--iters",
            &ITERS.to_string(),
        ])
        .spawn()
        .expect("spawn lms-tool dist-worker")
}

fn run_external(spec: &SocketSpec) {
    let (mesh, engine) = coordinator_engine();
    let listener = Listener::bind(spec).expect("bind coordinator listener");
    let addr = listener.target().to_string();
    let children: Vec<Child> = (0..PARTS).map(|r| spawn_worker(&addr, r)).collect();

    let mut work = mesh.clone();
    let (report, stats) = engine
        .smooth_ft_external(&mut work, listener, &FtOptions::default())
        .unwrap_or_else(|e| panic!("external run over {addr}: {e}"));
    assert!(stats.recoveries.is_empty(), "clean external run: {:?}", stats.recoveries);

    let mut local = mesh.clone();
    let local_report = engine.inner().smooth(&mut local, 2);
    assert_eq!(work.coords(), local.coords(), "external workers diverged over {addr}");
    assert_eq!(report, local_report, "external report diverged over {addr}");

    for mut child in children {
        let status = child.wait().expect("wait worker");
        assert!(status.success(), "worker must exit cleanly after Shutdown: {status:?}");
    }
}

#[test]
fn external_workers_over_tcp_loopback_are_bit_identical() {
    run_external(&SocketSpec::tcp_loopback());
}

#[test]
fn external_workers_over_unix_socket_are_bit_identical() {
    run_external(&SocketSpec::temp_unix());
}
