//! Property-based tests for the mesh substrate: geometric predicate
//! identities, generator invariants, and the Delaunay empty-circle
//! property on arbitrary inputs.

use lms_mesh::generators::domains::{carved_grid, Domain, Shape};
use lms_mesh::generators::{delaunay_triangulation, perturbed_grid, random_delaunay};
use lms_mesh::geometry::{angles, area, in_circle, orient2d, Point2};
use lms_mesh::quality::QualityMetric;
use lms_mesh::{Adjacency, Boundary};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point2> {
    (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// orient2d is antisymmetric under swapping any two arguments.
    #[test]
    fn orient2d_antisymmetry(a in arb_point(), b in arb_point(), c in arb_point()) {
        let o = orient2d(a, b, c);
        prop_assert!((orient2d(b, a, c) + o).abs() <= 1e-9 * o.abs().max(1.0));
        prop_assert!((orient2d(a, c, b) + o).abs() <= 1e-9 * o.abs().max(1.0));
        // cyclic rotation preserves it
        prop_assert!((orient2d(b, c, a) - o).abs() <= 1e-9 * o.abs().max(1.0));
    }

    /// Triangle area is invariant under translation and scales
    /// quadratically.
    #[test]
    fn area_translation_and_scaling(
        a in arb_point(), b in arb_point(), c in arb_point(),
        t in arb_point(), s in 0.1..4.0f64,
    ) {
        let ar = area(a, b, c);
        let translated = area(a + t, b + t, c + t);
        prop_assert!((translated - ar).abs() <= 1e-6 * ar.max(1.0));
        let scaled = area(a * s, b * s, c * s);
        prop_assert!((scaled - ar * s * s).abs() <= 1e-6 * (ar * s * s).max(1.0));
    }

    /// Angles of a non-degenerate triangle sum to π.
    #[test]
    fn angle_sum(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assume!(area(a, b, c) > 1e-6);
        let s: f64 = angles(a, b, c).iter().sum();
        prop_assert!((s - std::f64::consts::PI).abs() < 1e-9);
    }

    /// in_circle is invariant under cyclic rotation of the triangle.
    #[test]
    fn in_circle_cyclic(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        let x = in_circle(a, b, c, d);
        let y = in_circle(b, c, a, d);
        prop_assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0));
    }

    /// Quality metrics are bounded and zero only for degenerate input.
    #[test]
    fn quality_bounds(a in arb_point(), b in arb_point(), c in arb_point()) {
        for m in [QualityMetric::EdgeLengthRatio, QualityMetric::MinAngle, QualityMetric::RadiusRatio] {
            let q = m.triangle_quality(a, b, c);
            prop_assert!((0.0..=1.0).contains(&q));
        }
    }

    /// Perturbed grids are valid, untangled, and structurally consistent
    /// for any parameters.
    #[test]
    fn perturbed_grid_invariants(
        nx in 2usize..14, ny in 2usize..14, jit in 0u32..45, seed in 0u64..500,
    ) {
        let m = perturbed_grid(nx, ny, jit as f64 / 100.0, seed);
        prop_assert_eq!(m.num_vertices(), nx * ny);
        prop_assert_eq!(m.num_triangles(), 2 * (nx - 1) * (ny - 1));
        prop_assert!(m.is_ccw());
        prop_assert_eq!(m.euler_characteristic(), 1);
        // adjacency is symmetric and self-loop-free
        let adj = Adjacency::build(&m);
        for v in 0..m.num_vertices() as u32 {
            for &w in adj.neighbors(v) {
                prop_assert!(w != v);
                prop_assert!(adj.are_adjacent(w, v));
            }
        }
    }

    /// Delaunay triangulations of random point sets satisfy the
    /// empty-circumcircle property and triangulate the convex hull.
    #[test]
    fn delaunay_empty_circle(n in 4usize..40, seed in 0u64..200) {
        let m = random_delaunay(n, seed);
        prop_assert!(m.is_ccw());
        for t in 0..m.num_triangles() {
            let [a, b, c] = m.tri_coords(t);
            for (v, &q) in m.coords().iter().enumerate() {
                if m.triangles()[t].contains(&(v as u32)) {
                    continue;
                }
                prop_assert!(
                    in_circle(a, b, c, q) <= 1e-9,
                    "vertex {} inside circumcircle of triangle {}",
                    v, t
                );
            }
        }
        // The four unit-square corners are always included → area ≈ 1.
        // Non-exact predicates may drop a near-degenerate sliver when a
        // point falls within ~1e-4 of an edge (documented limitation), so
        // allow a small absolute deficit.
        prop_assert!((m.total_area() - 1.0).abs() < 1e-3, "area {}", m.total_area());
    }

    /// Delaunay is insensitive to duplicated input points.
    #[test]
    fn delaunay_dedups(seed in 0u64..100) {
        let base = random_delaunay(20, seed);
        let mut pts = base.coords().to_vec();
        let dup = pts[5];
        pts.push(dup);
        let again = delaunay_triangulation(&pts);
        prop_assert_eq!(again.num_vertices(), base.num_vertices());
    }

    /// Carved grids keep every vertex inside the domain and produce
    /// boundaries consistent with the carving.
    #[test]
    fn carved_grid_stays_inside(target in 200usize..1500, seed in 0u64..100, jit in 0u32..40) {
        let d = Domain::new(Shape::Ellipse { center: Point2::ZERO, rx: 2.0, ry: 1.2 })
            .with_hole(Shape::Ellipse { center: Point2::new(0.4, 0.1), rx: 0.3, ry: 0.25 });
        let m = carved_grid(&d, target, jit as f64 / 100.0, seed);
        prop_assert!(m.num_triangles() > 0);
        for &p in m.coords() {
            prop_assert!(d.contains(p));
        }
        let b = Boundary::detect(&m);
        prop_assert_eq!(b.num_boundary() + b.num_interior(), m.num_vertices());
    }
}
