//! Mesh quality metrics.
//!
//! The paper (§3.2) uses the **edge-length ratio** — the ratio of the
//! shortest to the longest edge of a triangle, in `(0, 1]` with 1 meaning
//! equilateral. Per-vertex quality is the average over incident triangles,
//! and global quality is the average over all vertices. Two additional
//! standard metrics are provided for the ablation benches.

use crate::adjacency::Adjacency;
use crate::geometry::{angles, area, edge_lengths, Point2};
use crate::mesh::TriMesh;

/// Which triangle-shape measure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QualityMetric {
    /// min-edge / max-edge (the paper's metric, Knupp \[7\]).
    #[default]
    EdgeLengthRatio,
    /// Smallest interior angle normalised by 60° (equilateral → 1).
    MinAngle,
    /// Twice the inradius over the circumradius (equilateral → 1).
    RadiusRatio,
}

impl QualityMetric {
    /// Quality of the triangle `abc` under this metric, in `[0, 1]`.
    ///
    /// Degenerate triangles score 0.
    pub fn triangle_quality(self, a: Point2, b: Point2, c: Point2) -> f64 {
        match self {
            QualityMetric::EdgeLengthRatio => {
                // Select min/max on *squared* lengths (sqrt is strictly
                // monotone, so the same edges win) and take two square
                // roots instead of three — bit-identical to computing all
                // three lengths first, measurably cheaper in the smoothing
                // hot loop.
                let d0 = a.dist_sq(b);
                let d1 = b.dist_sq(c);
                let d2 = c.dist_sq(a);
                edge_length_ratio_from_sq(d0, d1, d2)
            }
            QualityMetric::MinAngle => {
                let [a0, a1, a2] = angles(a, b, c);
                let min = a0.min(a1).min(a2);
                (min / std::f64::consts::FRAC_PI_3).clamp(0.0, 1.0)
            }
            QualityMetric::RadiusRatio => {
                let [e0, e1, e2] = edge_lengths(a, b, c);
                let ar = area(a, b, c);
                if ar <= 0.0 {
                    return 0.0;
                }
                let s = 0.5 * (e0 + e1 + e2);
                let r_in = ar / s;
                let r_circ = e0 * e1 * e2 / (4.0 * ar);
                if r_circ <= 0.0 {
                    return 0.0;
                }
                (2.0 * r_in / r_circ).clamp(0.0, 1.0)
            }
        }
    }

    /// Short lowercase name (`elr`, `minangle`, `radius`), for CLIs/reports.
    pub fn name(self) -> &'static str {
        match self {
            QualityMetric::EdgeLengthRatio => "elr",
            QualityMetric::MinAngle => "minangle",
            QualityMetric::RadiusRatio => "radius",
        }
    }
}

/// The edge-length-ratio core on precomputed **squared** edge lengths —
/// the one expression both the scalar metric and `lms-smooth`'s
/// lane-batched SoA scoring run, so the two stay bit-identical by
/// construction. The degenerate case is a select (not an early return):
/// for `max_sq > 0` the ratio is the value either form computes, and for
/// `max_sq <= 0` (or NaN inputs) both yield the same result, while the
/// branch-free shape lets the batched caller vectorize lane-wise.
#[inline(always)]
pub fn edge_length_ratio_from_sq(d0: f64, d1: f64, d2: f64) -> f64 {
    let max_sq = d0.max(d1).max(d2);
    let min_sq = d0.min(d1).min(d2);
    let ratio = min_sq.sqrt() / max_sq.sqrt();
    if max_sq <= 0.0 {
        0.0
    } else {
        ratio
    }
}

/// Quality of every triangle of `mesh` under `metric`.
pub fn triangle_qualities(mesh: &TriMesh, metric: QualityMetric) -> Vec<f64> {
    (0..mesh.num_triangles())
        .map(|t| {
            let [a, b, c] = mesh.tri_coords(t);
            metric.triangle_quality(a, b, c)
        })
        .collect()
}

/// Per-vertex quality: mean quality of the triangles incident to each vertex.
///
/// Vertices with no incident triangle score 0.
pub fn vertex_qualities(mesh: &TriMesh, adj: &Adjacency, metric: QualityMetric) -> Vec<f64> {
    let tri_q = triangle_qualities(mesh, metric);
    vertex_qualities_from_triangle(adj, &tri_q, mesh.num_vertices())
}

/// Per-vertex quality given precomputed triangle qualities.
pub fn vertex_qualities_from_triangle(
    adj: &Adjacency,
    tri_q: &[f64],
    num_vertices: usize,
) -> Vec<f64> {
    (0..num_vertices as u32)
        .map(|v| {
            let ts = adj.triangles_of(v);
            if ts.is_empty() {
                0.0
            } else {
                ts.iter().map(|&t| tri_q[t as usize]).sum::<f64>() / ts.len() as f64
            }
        })
        .collect()
}

/// Quality of a single vertex (mean of incident triangle qualities).
pub fn vertex_quality(mesh: &TriMesh, adj: &Adjacency, v: u32, metric: QualityMetric) -> f64 {
    let ts = adj.triangles_of(v);
    if ts.is_empty() {
        return 0.0;
    }
    ts.iter()
        .map(|&t| {
            let [a, b, c] = mesh.tri_coords(t as usize);
            metric.triangle_quality(a, b, c)
        })
        .sum::<f64>()
        / ts.len() as f64
}

/// Global mesh quality: the mean of the per-vertex qualities
/// (Algorithm 1, line 9).
pub fn global_quality(vertex_q: &[f64]) -> f64 {
    if vertex_q.is_empty() {
        return 0.0;
    }
    vertex_q.iter().sum::<f64>() / vertex_q.len() as f64
}

/// Convenience: global quality of `mesh` computed from scratch.
pub fn mesh_quality(mesh: &TriMesh, adj: &Adjacency, metric: QualityMetric) -> f64 {
    global_quality(&vertex_qualities(mesh, adj, metric))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::figure5_mesh;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn equilateral() -> (Point2, Point2, Point2) {
        (p(0.0, 0.0), p(1.0, 0.0), p(0.5, 3f64.sqrt() / 2.0))
    }

    #[test]
    fn equilateral_scores_one_under_all_metrics() {
        let (a, b, c) = equilateral();
        for m in
            [QualityMetric::EdgeLengthRatio, QualityMetric::MinAngle, QualityMetric::RadiusRatio]
        {
            let q = m.triangle_quality(a, b, c);
            assert!((q - 1.0).abs() < 1e-12, "{m:?} gave {q}");
        }
    }

    #[test]
    fn degenerate_scores_zero() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 0.0);
        let c = p(2.0, 0.0); // collinear
        assert_eq!(QualityMetric::MinAngle.triangle_quality(a, b, c), 0.0);
        assert_eq!(QualityMetric::RadiusRatio.triangle_quality(a, b, c), 0.0);
        // edge-length ratio of a collinear triangle is still defined (1:2 here)
        assert!((QualityMetric::EdgeLengthRatio.triangle_quality(a, b, c) - 0.5).abs() < 1e-12);
        let z = p(0.0, 0.0);
        assert_eq!(QualityMetric::EdgeLengthRatio.triangle_quality(z, z, z), 0.0);
    }

    #[test]
    fn edge_length_ratio_of_right_triangle() {
        // 3-4-5 right triangle → ratio 3/5.
        let q =
            QualityMetric::EdgeLengthRatio.triangle_quality(p(0.0, 0.0), p(3.0, 0.0), p(0.0, 4.0));
        assert!((q - 0.6).abs() < 1e-12);
    }

    #[test]
    fn qualities_invariant_under_rigid_motion_and_scale() {
        let (a, b, c) = equilateral();
        let rot = |pt: Point2| {
            let th = 0.7f64;
            Point2::new(pt.x * th.cos() - pt.y * th.sin(), pt.x * th.sin() + pt.y * th.cos())
        };
        for m in
            [QualityMetric::EdgeLengthRatio, QualityMetric::MinAngle, QualityMetric::RadiusRatio]
        {
            let q0 = m.triangle_quality(a, b, c);
            let q1 = m.triangle_quality(rot(a) * 3.0, rot(b) * 3.0, rot(c) * 3.0);
            assert!((q0 - q1).abs() < 1e-12, "{m:?}: {q0} vs {q1}");
        }
    }

    #[test]
    fn skinny_triangles_score_low() {
        let q = QualityMetric::EdgeLengthRatio.triangle_quality(
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(9.9, 0.05),
        );
        assert!(q < 0.05, "needle triangle scored {q}");
        // Cap triangles are penalised by the angle metric even though their
        // edge-length ratio is moderate.
        let cap = QualityMetric::MinAngle.triangle_quality(p(0.0, 0.0), p(10.0, 0.0), p(5.0, 0.1));
        assert!(cap < 0.05, "cap triangle scored {cap}");
    }

    #[test]
    fn vertex_quality_is_mean_of_incident_triangles() {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        let tri_q = triangle_qualities(&m, QualityMetric::EdgeLengthRatio);
        let vq = vertex_qualities(&m, &adj, QualityMetric::EdgeLengthRatio);
        for v in 0..m.num_vertices() as u32 {
            let ts = adj.triangles_of(v);
            let expect = ts.iter().map(|&t| tri_q[t as usize]).sum::<f64>() / ts.len() as f64;
            assert!((vq[v as usize] - expect).abs() < 1e-15);
            assert!(
                (vertex_quality(&m, &adj, v, QualityMetric::EdgeLengthRatio) - expect).abs()
                    < 1e-15
            );
        }
    }

    #[test]
    fn global_quality_bounds() {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        let g = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        assert!(g > 0.0 && g <= 1.0);
        assert_eq!(global_quality(&[]), 0.0);
        assert!((global_quality(&[0.25, 0.75]) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn metric_names() {
        assert_eq!(QualityMetric::EdgeLengthRatio.name(), "elr");
        assert_eq!(QualityMetric::MinAngle.name(), "minangle");
        assert_eq!(QualityMetric::RadiusRatio.name(), "radius");
    }
}
