//! Compressed sparse row (CSR) adjacency built from a [`TriMesh`].
//!
//! Both the smoothing sweep (gather neighbour coordinates) and the RDR
//! reordering (walk worst-quality neighbours) are driven by vertex→vertex
//! adjacency; quality evaluation additionally needs vertex→triangle
//! incidence. Both are stored CSR so that a vertex's neighbour list is a
//! contiguous slice — the same layout the paper's implementation streams
//! through.

use crate::mesh::TriMesh;

/// CSR vertex→vertex and vertex→triangle adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    vv_offsets: Vec<u32>,
    vv_neighbors: Vec<u32>,
    vt_offsets: Vec<u32>,
    vt_triangles: Vec<u32>,
}

impl Adjacency {
    /// Build the adjacency of `mesh`.
    ///
    /// Neighbour lists are sorted ascending and deduplicated; triangle lists
    /// are sorted ascending.
    pub fn build(mesh: &TriMesh) -> Self {
        let n = mesh.num_vertices();
        let nt = mesh.num_triangles();

        // vertex -> triangles (counting sort into CSR).
        let mut vt_offsets = vec![0u32; n + 1];
        for tri in mesh.triangles() {
            for &v in tri {
                vt_offsets[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            vt_offsets[i + 1] += vt_offsets[i];
        }
        let mut vt_triangles = vec![0u32; 3 * nt];
        let mut cursor = vt_offsets.clone();
        for (t, tri) in mesh.triangles().iter().enumerate() {
            for &v in tri {
                let c = &mut cursor[v as usize];
                vt_triangles[*c as usize] = t as u32;
                *c += 1;
            }
        }

        // vertex -> vertices: counting-sort the directed edges into
        // per-vertex CSR rows, then sort/dedup each short row. Replaces
        // the old global `sort_unstable` + `dedup` over all 6T directed
        // pairs — O(E log E) on the whole edge array — with O(E) bucketing
        // plus O(Σ deg·log deg) row sorts over ~6-entry rows.
        let mut raw_offsets = vec![0u32; n + 1];
        for tri in mesh.triangles() {
            for &v in tri {
                raw_offsets[v as usize + 1] += 2;
            }
        }
        for i in 0..n {
            raw_offsets[i + 1] += raw_offsets[i];
        }
        let mut buf = vec![0u32; raw_offsets[n] as usize];
        let mut cursor: Vec<u32> = raw_offsets[..n].to_vec();
        let push = |cursor: &mut [u32], buf: &mut [u32], v: u32, w: u32| {
            let c = &mut cursor[v as usize];
            buf[*c as usize] = w;
            *c += 1;
        };
        for tri in mesh.triangles() {
            let [a, b, c] = *tri;
            push(&mut cursor, &mut buf, a, b);
            push(&mut cursor, &mut buf, a, c);
            push(&mut cursor, &mut buf, b, a);
            push(&mut cursor, &mut buf, b, c);
            push(&mut cursor, &mut buf, c, a);
            push(&mut cursor, &mut buf, c, b);
        }
        // per-row sort + dedup, compacting in place (write cursor never
        // overtakes the read cursor)
        let mut vv_offsets = vec![0u32; n + 1];
        let mut write = 0usize;
        for v in 0..n {
            let (lo, hi) = (raw_offsets[v] as usize, raw_offsets[v + 1] as usize);
            buf[lo..hi].sort_unstable();
            let mut prev = u32::MAX;
            for read in lo..hi {
                let x = buf[read];
                if x != prev {
                    buf[write] = x;
                    write += 1;
                    prev = x;
                }
            }
            vv_offsets[v + 1] = write as u32;
        }
        buf.truncate(write);

        Adjacency { vv_offsets, vv_neighbors: buf, vt_offsets, vt_triangles }
    }

    /// Number of vertices the adjacency was built for.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vv_offsets.len() - 1
    }

    /// Sorted neighbour vertices of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.vv_offsets[v as usize] as usize;
        let hi = self.vv_offsets[v as usize + 1] as usize;
        &self.vv_neighbors[lo..hi]
    }

    /// Sorted incident triangles of `v`.
    #[inline]
    pub fn triangles_of(&self, v: u32) -> &[u32] {
        let lo = self.vt_offsets[v as usize] as usize;
        let hi = self.vt_offsets[v as usize + 1] as usize;
        &self.vt_triangles[lo..hi]
    }

    /// Degree (number of neighbour vertices) of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Start position of `v`'s incident-triangle slice within the flat
    /// vertex→triangle CSR array — lets callers maintain side tables
    /// aligned with the concatenation of all [`triangles_of`] slices.
    ///
    /// [`triangles_of`]: Self::triangles_of
    #[inline]
    pub fn triangles_offset(&self, v: u32) -> usize {
        self.vt_offsets[v as usize] as usize
    }

    /// Total number of stored directed neighbour entries (2 × #edges).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.vv_neighbors.len()
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Mean vertex degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_directed_edges() as f64 / self.num_vertices() as f64
    }

    /// Histogram of vertex degrees: `hist[d]` = number of vertices of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in 0..self.num_vertices() as u32 {
            hist[self.degree(v)] += 1;
        }
        hist
    }

    /// True when `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::figure5_mesh;
    use crate::Point2;

    fn square() -> TriMesh {
        TriMesh::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(1.0, 1.0),
                Point2::new(0.0, 1.0),
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        )
        .unwrap()
    }

    #[test]
    fn square_adjacency() {
        let adj = Adjacency::build(&square());
        assert_eq!(adj.neighbors(0), &[1, 2, 3]);
        assert_eq!(adj.neighbors(1), &[0, 2]);
        assert_eq!(adj.neighbors(2), &[0, 1, 3]);
        assert_eq!(adj.neighbors(3), &[0, 2]);
    }

    #[test]
    fn square_triangle_incidence() {
        let adj = Adjacency::build(&square());
        assert_eq!(adj.triangles_of(0), &[0, 1]);
        assert_eq!(adj.triangles_of(1), &[0]);
        assert_eq!(adj.triangles_of(2), &[0, 1]);
        assert_eq!(adj.triangles_of(3), &[1]);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        for v in 0..m.num_vertices() as u32 {
            for &w in adj.neighbors(v) {
                assert!(adj.are_adjacent(w, v), "asymmetric pair ({v},{w})");
            }
        }
    }

    #[test]
    fn neighbor_lists_sorted_unique() {
        let adj = Adjacency::build(&figure5_mesh());
        for v in 0..adj.num_vertices() as u32 {
            let ns = adj.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "vertex {v} list not sorted-unique");
            assert!(!ns.contains(&v), "vertex {v} is its own neighbour");
        }
    }

    #[test]
    fn directed_edges_match_edge_count() {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        assert_eq!(adj.num_directed_edges(), 2 * m.edges().len());
    }

    #[test]
    fn degree_statistics() {
        let adj = Adjacency::build(&square());
        assert_eq!(adj.max_degree(), 3);
        assert!((adj.mean_degree() - 2.5).abs() < 1e-15);
        let hist = adj.degree_histogram();
        assert_eq!(hist[2], 2);
        assert_eq!(hist[3], 2);
    }

    #[test]
    fn triangle_incidence_covers_all_corners() {
        let m = figure5_mesh();
        let adj = Adjacency::build(&m);
        let mut total = 0;
        for v in 0..m.num_vertices() as u32 {
            total += adj.triangles_of(v).len();
            for &t in adj.triangles_of(v) {
                assert!(m.triangles()[t as usize].contains(&v));
            }
        }
        assert_eq!(total, 3 * m.num_triangles());
    }
}
