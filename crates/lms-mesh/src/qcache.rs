//! Incremental per-triangle quality cache — the smoothing hot path's
//! answer to "what did this move do to the mesh quality?".
//!
//! [`quality::mesh_quality`] walks every triangle and every vertex; calling
//! it once per sweep (as a naive Algorithm 1 does for its convergence test)
//! makes the *bookkeeping* cost O(T) per iteration even when only a handful
//! of vertices moved. But a vertex move can only change the quality of its
//! ≤ deg(v) incident triangles, and the global quality is a fixed linear
//! functional of the per-triangle qualities:
//!
//! ```text
//! mesh_quality = (1/V) · Σ_v (Σ_{t ∋ v} q_t) / deg_t(v)
//!              = (1/V) · Σ_t q_t · w_t      with w_t = Σ_{v ∈ t} 1/deg_t(v)
//! ```
//!
//! [`QualityCache`] stores each triangle's current quality twice — the
//! raw value `q` (what the global statistic sums) and the
//! orientation-guarded value `g` (`0` when the triangle is inverted; what
//! the smart-smoothing commit test averages) — plus the constant weights
//! `w_t` and the running weighted sum with Neumaier compensation.
//!
//! Engines update it three ways:
//!
//! * **immediately** ([`set_tri`](QualityCache::set_tri)) when the new
//!   triangle values are already in hand — the smart Gauss–Seidel sweep
//!   computes them for its commit test anyway;
//! * **by moved-vertex list** ([`apply_moves`](QualityCache::apply_moves))
//!   when moves commit without evaluation (plain sweeps, Jacobi sweeps
//!   where a triangle can have several moved corners): a sparse move set
//!   re-scores the incident triangles once each, a dense one falls back to
//!   a sequential full re-score ([`rescore_all`](QualityCache::rescore_all))
//!   with no per-triangle bookkeeping at all;
//! * **lazily** ([`mark_dirty`](QualityCache::mark_dirty) +
//!   [`flush_dirty`](QualityCache::flush_dirty)) for callers that know
//!   exactly which triangles changed.
//!
//! Two quality read-outs with different contracts:
//! [`quality_running`](QualityCache::quality_running) is O(1) and within a
//! few ulps of the truth (compensated summation) — right for per-iteration
//! convergence tests; [`quality_exact`](QualityCache::quality_exact)
//! re-reduces the cached per-triangle values in the canonical order of
//! [`quality::mesh_quality`] and is **bit-identical** to a from-scratch
//! recompute — right for reported final qualities and for tests.

use crate::adjacency::Adjacency;
use crate::geometry::{signed_area, Point2};
use crate::mesh::TriMesh;
use crate::quality::{self, QualityMetric};

/// Cached per-triangle qualities with an incrementally-maintained global
/// quality. See the module docs for the update protocol.
///
/// Invariant (holds for all three [`QualityMetric`]s): a triangle with
/// strictly positive signed area has strictly positive quality, so the
/// guarded value `g` is zero **iff** the triangle is degenerate or
/// inverted — orientation never needs separate storage.
#[derive(Debug, Clone)]
pub struct QualityCache {
    metric: QualityMetric,
    /// Current quality of each triangle (exactly the value
    /// [`quality::triangle_qualities`] would produce).
    tri_q: Vec<f64>,
    /// Orientation-guarded quality: `tri_q[t]` when positively oriented,
    /// `0.0` otherwise.
    tri_g: Vec<f64>,
    /// Constant weight `w_t = Σ_{v ∈ t} 1/deg_t(v)` of each triangle in
    /// the global quality.
    tri_w: Vec<f64>,
    num_vertices: usize,
    /// Neumaier-compensated running `Σ_t tri_q[t] · tri_w[t]`.
    sum: f64,
    comp: f64,
    /// Epoch-stamped dirty set (no clearing between flushes).
    dirty_stamp: Vec<u32>,
    dirty: Vec<u32>,
    epoch: u32,
}

impl QualityCache {
    /// Score one triangle on `coords`: `(quality, positively_oriented)`.
    #[inline]
    pub fn score(metric: QualityMetric, coords: &[Point2], tri: [u32; 3]) -> (f64, bool) {
        let [a, b, c] = tri;
        let (pa, pb, pc) = (coords[a as usize], coords[b as usize], coords[c as usize]);
        (metric.triangle_quality(pa, pb, pc), signed_area(pa, pb, pc) > 0.0)
    }

    /// [`score`](Self::score) with vertex `v`'s position overridden by
    /// `pos_v` — the flattened form of the old closure-based
    /// `local_quality_with`, used for candidate evaluation.
    #[inline]
    pub fn score_with(
        metric: QualityMetric,
        coords: &[Point2],
        tri: [u32; 3],
        v: u32,
        pos_v: Point2,
    ) -> (f64, bool) {
        let [a, b, c] = tri;
        let pa = if a == v { pos_v } else { coords[a as usize] };
        let pb = if b == v { pos_v } else { coords[b as usize] };
        let pc = if c == v { pos_v } else { coords[c as usize] };
        (metric.triangle_quality(pa, pb, pc), signed_area(pa, pb, pc) > 0.0)
    }

    /// Build the cache for `mesh` (scores every triangle once).
    pub fn build(mesh: &TriMesh, adj: &Adjacency, metric: QualityMetric) -> Self {
        let nt = mesh.num_triangles();
        let n = mesh.num_vertices();
        assert_eq!(n, adj.num_vertices(), "adjacency was built for a different mesh");

        let mut tri_w = Vec::with_capacity(nt);
        for tri in mesh.triangles() {
            let w: f64 = tri.iter().map(|&v| 1.0 / adj.triangles_of(v).len() as f64).sum();
            tri_w.push(w);
        }

        let mut cache = QualityCache {
            metric,
            tri_q: vec![0.0; nt],
            tri_g: vec![0.0; nt],
            tri_w,
            num_vertices: n,
            sum: 0.0,
            comp: 0.0,
            dirty_stamp: vec![0; nt],
            dirty: Vec::new(),
            epoch: 1,
        };
        cache.rescore_all(mesh.coords(), mesh.triangles());
        cache
    }

    /// Neumaier-compensated accumulate.
    #[inline]
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The metric the cache scores with.
    #[inline]
    pub fn metric(&self) -> QualityMetric {
        self.metric
    }

    /// Number of cached triangles.
    #[inline]
    pub fn num_triangles(&self) -> usize {
        self.tri_q.len()
    }

    /// Current cached quality of triangle `t`.
    #[inline]
    pub fn tri_quality(&self, t: u32) -> f64 {
        self.tri_q[t as usize]
    }

    /// Whether triangle `t` is currently positively oriented (via the
    /// guarded-value invariant — see the type docs).
    #[inline]
    pub fn tri_is_positive(&self, t: u32) -> bool {
        self.tri_g[t as usize] > 0.0
    }

    /// Orientation-guarded quality of triangle `t`: 0 when inverted —
    /// the value the smart-smoothing guard averages over a vertex star.
    #[inline]
    pub fn guarded_quality(&self, t: u32) -> f64 {
        self.tri_g[t as usize]
    }

    /// The cached per-triangle qualities (index = triangle id).
    #[inline]
    pub fn tri_qualities(&self) -> &[f64] {
        &self.tri_q
    }

    /// Overwrite triangle `t`'s cached state with freshly-scored values,
    /// updating the running sum by the delta.
    #[inline]
    pub fn set_tri(&mut self, t: u32, q: f64, pos: bool) {
        debug_assert!(
            q > 0.0 || !pos,
            "metric invariant violated: positive orientation with zero quality"
        );
        let i = t as usize;
        let w = self.tri_w[i];
        let delta = q * w - self.tri_q[i] * w;
        if delta != 0.0 {
            self.add(delta);
        }
        self.tri_q[i] = q;
        self.tri_g[i] = if pos { q } else { 0.0 };
    }

    /// Batch form of [`set_tri`](Self::set_tri) for one vertex star:
    /// `scores[k]` is the fresh `(quality, positively_oriented)` of
    /// triangle `ts[k]`. The per-triangle deltas are tiny and few (≤ the
    /// vertex degree), so they are accumulated plainly and folded into the
    /// running sum with a single compensated add.
    #[inline]
    pub fn set_star(&mut self, ts: &[u32], scores: &[(f64, bool)]) {
        debug_assert_eq!(ts.len(), scores.len());
        let mut delta = 0.0;
        for (&t, &(q, pos)) in ts.iter().zip(scores) {
            debug_assert!(
                q > 0.0 || !pos,
                "metric invariant violated: positive orientation with zero quality"
            );
            let i = t as usize;
            let w = self.tri_w[i];
            delta += q * w - self.tri_q[i] * w;
            self.tri_q[i] = q;
            self.tri_g[i] = if pos { q } else { 0.0 };
        }
        if delta != 0.0 {
            self.add(delta);
        }
    }

    /// Re-score **every** triangle sequentially and rebuild the running
    /// sum from scratch (same accumulation order as [`build`](Self::build)).
    /// The dense-update path: no per-triangle bookkeeping, pure streaming.
    pub fn rescore_all(&mut self, coords: &[Point2], triangles: &[[u32; 3]]) {
        assert_eq!(triangles.len(), self.tri_q.len(), "triangle count changed");
        self.sum = 0.0;
        self.comp = 0.0;
        for (i, tri) in triangles.iter().enumerate() {
            let (q, pos) = Self::score(self.metric, coords, *tri);
            self.tri_q[i] = q;
            self.tri_g[i] = if pos { q } else { 0.0 };
            self.add(q * self.tri_w[i]);
        }
    }

    /// Fold a sweep's committed moves into the cache: sparse move sets
    /// re-score each incident triangle once, dense ones (≥ ~¼ of the
    /// vertices) fall back to the cheaper streaming
    /// [`rescore_all`](Self::rescore_all).
    pub fn apply_moves(
        &mut self,
        moved: &[u32],
        adj: &Adjacency,
        coords: &[Point2],
        triangles: &[[u32; 3]],
    ) {
        if moved.len() * 4 >= self.num_vertices {
            self.rescore_all(coords, triangles);
            return;
        }
        for &v in moved {
            self.mark_incident_dirty(v, adj);
        }
        self.flush_dirty(coords, triangles);
    }

    /// Queue triangle `t` for the next [`flush_dirty`](Self::flush_dirty)
    /// (deduplicated; O(1)).
    #[inline]
    pub fn mark_dirty(&mut self, t: u32) {
        if self.dirty_stamp[t as usize] != self.epoch {
            self.dirty_stamp[t as usize] = self.epoch;
            self.dirty.push(t);
        }
    }

    /// Queue every triangle incident to `v`.
    #[inline]
    pub fn mark_incident_dirty(&mut self, v: u32, adj: &Adjacency) {
        for &t in adj.triangles_of(v) {
            self.mark_dirty(t);
        }
    }

    /// Whether any triangle awaits re-scoring.
    #[inline]
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Re-score every queued triangle once, in ascending triangle order
    /// (deterministic whatever order the marks arrived in), and fold the
    /// deltas into the running sum.
    pub fn flush_dirty(&mut self, coords: &[Point2], triangles: &[[u32; 3]]) {
        self.dirty.sort_unstable();
        let mut dirty = std::mem::take(&mut self.dirty);
        for &t in &dirty {
            let (q, pos) = Self::score(self.metric, coords, triangles[t as usize]);
            self.set_tri(t, q, pos);
        }
        dirty.clear();
        self.dirty = dirty;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wrapped: stamps from 2^32 flushes ago could collide — reset
            self.dirty_stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// O(1) global quality from the compensated running sum. Within a few
    /// ulps of [`quality_exact`](Self::quality_exact); use for convergence
    /// tests, not for reported results.
    #[inline]
    pub fn quality_running(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        (self.sum + self.comp) / self.num_vertices as f64
    }

    /// Global quality re-reduced from the cached per-triangle values in
    /// the canonical order of [`quality::mesh_quality`] — bit-identical to
    /// a from-scratch recompute on the current coordinates (provided the
    /// cache has been kept coherent and has no pending dirty triangles).
    pub fn quality_exact(&self, adj: &Adjacency) -> f64 {
        debug_assert!(!self.has_dirty(), "flush_dirty before reading exact quality");
        quality::global_quality(&quality::vertex_qualities_from_triangle(
            adj,
            &self.tri_q,
            self.num_vertices,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::quality::mesh_quality;

    fn setup(seed: u64) -> (TriMesh, Adjacency, QualityCache) {
        let m = generators::perturbed_grid(14, 14, 0.35, seed);
        let adj = Adjacency::build(&m);
        let cache = QualityCache::build(&m, &adj, QualityMetric::EdgeLengthRatio);
        (m, adj, cache)
    }

    #[test]
    fn fresh_cache_matches_mesh_quality_bitwise() {
        for seed in [1u64, 5, 9] {
            let (m, adj, cache) = setup(seed);
            let fresh = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
            assert_eq!(cache.quality_exact(&adj).to_bits(), fresh.to_bits());
            assert!((cache.quality_running() - fresh).abs() < 1e-12);
        }
    }

    #[test]
    fn set_tri_tracks_moves() {
        let (mut m, adj, mut cache) = setup(3);
        // move an interior vertex and update its incident triangles
        let v = {
            let b = crate::Boundary::detect(&m);
            (0..m.num_vertices() as u32).find(|&v| b.is_interior(v)).unwrap()
        };
        let p = m.coords()[v as usize];
        m.coords_mut()[v as usize] = Point2::new(p.x + 0.07, p.y - 0.05);
        let tris: Vec<[u32; 3]> = m.triangles().to_vec();
        for &t in adj.triangles_of(v) {
            let (q, pos) =
                QualityCache::score(QualityMetric::EdgeLengthRatio, m.coords(), tris[t as usize]);
            cache.set_tri(t, q, pos);
        }
        let fresh = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        assert_eq!(cache.quality_exact(&adj).to_bits(), fresh.to_bits());
        assert!((cache.quality_running() - fresh).abs() < 1e-12);
    }

    #[test]
    fn dirty_flush_equals_immediate_updates() {
        let (mut m, adj, mut cache) = setup(7);
        let b = crate::Boundary::detect(&m);
        let movers: Vec<u32> =
            (0..m.num_vertices() as u32).filter(|&v| b.is_interior(v)).take(20).collect();
        for (k, &v) in movers.iter().enumerate() {
            let p = m.coords()[v as usize];
            let s = if k % 2 == 0 { 0.03 } else { -0.04 };
            m.coords_mut()[v as usize] = Point2::new(p.x + s, p.y + s * 0.5);
            cache.mark_incident_dirty(v, &adj);
        }
        assert!(cache.has_dirty());
        let tris: Vec<[u32; 3]> = m.triangles().to_vec();
        cache.flush_dirty(m.coords(), &tris);
        assert!(!cache.has_dirty());
        let fresh = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        assert_eq!(cache.quality_exact(&adj).to_bits(), fresh.to_bits());
    }

    #[test]
    fn apply_moves_sparse_and_dense_agree_with_scratch() {
        for (take, label) in [(5usize, "sparse"), (1000, "dense")] {
            let (mut m, adj, mut cache) = setup(9);
            let b = crate::Boundary::detect(&m);
            let movers: Vec<u32> =
                (0..m.num_vertices() as u32).filter(|&v| b.is_interior(v)).take(take).collect();
            for &v in &movers {
                let p = m.coords()[v as usize];
                m.coords_mut()[v as usize] = Point2::new(p.x + 0.021, p.y - 0.013);
            }
            let tris: Vec<[u32; 3]> = m.triangles().to_vec();
            cache.apply_moves(&movers, &adj, m.coords(), &tris);
            let fresh = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
            assert_eq!(
                cache.quality_exact(&adj).to_bits(),
                fresh.to_bits(),
                "{label} path diverged"
            );
            assert!((cache.quality_running() - fresh).abs() < 1e-12, "{label}");
        }
    }

    #[test]
    fn score_with_overrides_one_vertex() {
        let (m, adj, _) = setup(11);
        let v = adj.triangles_of(0)[0]; // any triangle id
        let tri = m.triangles()[v as usize];
        let moved = Point2::new(9.0, 9.0);
        let (q0, _) = QualityCache::score(QualityMetric::EdgeLengthRatio, m.coords(), tri);
        let (q1, _) = QualityCache::score_with(
            QualityMetric::EdgeLengthRatio,
            m.coords(),
            tri,
            tri[0],
            moved,
        );
        assert_ne!(q0.to_bits(), q1.to_bits());
        // override with the unmoved position is a no-op
        let (q2, _) = QualityCache::score_with(
            QualityMetric::EdgeLengthRatio,
            m.coords(),
            tri,
            tri[0],
            m.coords()[tri[0] as usize],
        );
        assert_eq!(q0.to_bits(), q2.to_bits());
    }

    #[test]
    fn guard_invariant_holds_on_inverted_triangles() {
        // a deliberately inverted triangle scores g = 0 but keeps its raw q
        let m = TriMesh::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.5, 1.0),
                Point2::new(0.5, -1.0),
            ],
            vec![[0, 1, 2], [1, 0, 3]],
        )
        .unwrap();
        let adj = Adjacency::build(&m);
        let cache = QualityCache::build(&m, &adj, QualityMetric::EdgeLengthRatio);
        assert!(cache.tri_is_positive(0));
        assert!(cache.tri_is_positive(1));
        let mut flipped = m.clone();
        let (coords, mut tris) = flipped.clone().into_parts();
        tris[1].swap(0, 1); // invert the second triangle
        flipped = TriMesh::new(coords, tris).unwrap();
        let adj2 = Adjacency::build(&flipped);
        let c2 = QualityCache::build(&flipped, &adj2, QualityMetric::EdgeLengthRatio);
        assert!(!c2.tri_is_positive(1));
        assert_eq!(c2.guarded_quality(1), 0.0);
        assert!(c2.tri_quality(1) > 0.0, "raw quality is orientation-blind");
    }

    #[test]
    fn weights_sum_to_vertex_count_with_triangles() {
        // Σ_t w_t = Σ_v 1 over vertices with ≥1 incident triangle.
        let (m, adj, cache) = setup(4);
        let covered =
            (0..m.num_vertices() as u32).filter(|&v| !adj.triangles_of(v).is_empty()).count();
        let total_w: f64 = (0..cache.num_triangles() as u32).map(|t| cache.tri_w[t as usize]).sum();
        assert!((total_w - covered as f64).abs() < 1e-9);
    }
}
