//! # lms-mesh — the triangle-mesh substrate
//!
//! Everything the Laplacian-Mesh-Smoothing reproduction needs from a mesh
//! library:
//!
//! * [`Point2`] and planar [`geometry`] predicates;
//! * the [`TriMesh`] container and its CSR [`Adjacency`];
//! * [`Boundary`] detection (smoothing moves interior vertices only);
//! * [`quality`] metrics — the paper's edge-length ratio plus two others;
//! * [`generators`] — carved perturbed grids and a Bowyer–Watson Delaunay
//!   triangulator, replacing the non-redistributable *Triangle* meshes;
//! * the nine-mesh evaluation [`suite`] (Table 1);
//! * [`io`] for Triangle `.node`/`.ele` and OFF files.
//!
//! ```
//! use lms_mesh::{generators, Adjacency, Boundary, quality, quality::QualityMetric};
//!
//! let mesh = generators::perturbed_grid(16, 16, 0.3, 42);
//! let adj = Adjacency::build(&mesh);
//! let boundary = Boundary::detect(&mesh);
//! let q = quality::mesh_quality(&mesh, &adj, QualityMetric::EdgeLengthRatio);
//! assert!(q > 0.0 && q <= 1.0);
//! assert!(boundary.num_interior() == 14 * 14);
//! ```

pub mod adjacency;
pub mod boundary;
pub mod generators;
pub mod geometry;
pub mod io;
pub mod mesh;
pub mod qcache;
pub mod quality;
pub mod refine;
pub mod suite;

pub use adjacency::Adjacency;
pub use boundary::Boundary;
pub use geometry::Point2;
pub use mesh::{figure5_mesh, MeshError, TriMesh};
pub use qcache::QualityCache;
pub use refine::{refine_levels, refine_midpoint};
