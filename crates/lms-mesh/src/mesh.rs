//! The triangle-mesh container.

use crate::geometry::{bounding_box, orient2d, Point2};
use std::fmt;

/// Errors raised when constructing or validating a [`TriMesh`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A triangle references a vertex index `idx >= num_vertices`.
    IndexOutOfRange { triangle: usize, index: u32 },
    /// A triangle lists the same vertex twice.
    DegenerateTriangle { triangle: usize },
    /// The mesh has more vertices than `u32` can index.
    TooManyVertices { vertices: usize },
    /// An I/O or parse failure (carries a human-readable message).
    Parse(String),
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::IndexOutOfRange { triangle, index } => {
                write!(f, "triangle {triangle} references out-of-range vertex {index}")
            }
            MeshError::DegenerateTriangle { triangle } => {
                write!(f, "triangle {triangle} repeats a vertex")
            }
            MeshError::TooManyVertices { vertices } => {
                write!(f, "{vertices} vertices exceed u32 indexing")
            }
            MeshError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for MeshError {}

/// An indexed 2D triangle mesh.
///
/// Vertices are stored in a flat coordinate array; connectivity is a list of
/// vertex-index triples. The *order* of the coordinate array is exactly what
/// the paper's reorderings permute: iterating vertices in storage order while
/// gathering neighbour coordinates is the memory-access pattern whose
/// locality RDR optimises.
#[derive(Debug, Clone, PartialEq)]
pub struct TriMesh {
    coords: Vec<Point2>,
    triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// Build a mesh, validating all triangle indices.
    pub fn new(coords: Vec<Point2>, triangles: Vec<[u32; 3]>) -> Result<Self, MeshError> {
        if coords.len() > u32::MAX as usize {
            return Err(MeshError::TooManyVertices { vertices: coords.len() });
        }
        let n = coords.len() as u32;
        for (t, tri) in triangles.iter().enumerate() {
            for &v in tri {
                if v >= n {
                    return Err(MeshError::IndexOutOfRange { triangle: t, index: v });
                }
            }
            if tri[0] == tri[1] || tri[1] == tri[2] || tri[0] == tri[2] {
                return Err(MeshError::DegenerateTriangle { triangle: t });
            }
        }
        Ok(TriMesh { coords, triangles })
    }

    /// Build a mesh without validation.
    ///
    /// Callers must guarantee every triangle index is `< coords.len()` and no
    /// triangle repeats a vertex; all other methods rely on it.
    pub fn new_unchecked(coords: Vec<Point2>, triangles: Vec<[u32; 3]>) -> Self {
        debug_assert!(TriMesh::new(coords.clone(), triangles.clone()).is_ok());
        TriMesh { coords, triangles }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of triangles.
    #[inline]
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Vertex coordinate array.
    #[inline]
    pub fn coords(&self) -> &[Point2] {
        &self.coords
    }

    /// Mutable vertex coordinate array (used by the smoothing engines).
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [Point2] {
        &mut self.coords
    }

    /// Triangle connectivity array.
    #[inline]
    pub fn triangles(&self) -> &[[u32; 3]] {
        &self.triangles
    }

    /// Coordinates of triangle `t`'s three corners.
    #[inline]
    pub fn tri_coords(&self, t: usize) -> [Point2; 3] {
        let [a, b, c] = self.triangles[t];
        [self.coords[a as usize], self.coords[b as usize], self.coords[c as usize]]
    }

    /// Deduplicated undirected edge list, each edge as `(lo, hi)` with
    /// `lo < hi`, sorted lexicographically.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::with_capacity(self.triangles.len() * 3);
        for tri in &self.triangles {
            for k in 0..3 {
                let a = tri[k];
                let b = tri[(k + 1) % 3];
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Euler characteristic `V - E + T` (1 for a disk, 0 for an annulus, …).
    pub fn euler_characteristic(&self) -> i64 {
        self.num_vertices() as i64 - self.edges().len() as i64 + self.num_triangles() as i64
    }

    /// Re-orient every triangle counter-clockwise in place.
    ///
    /// Exactly degenerate (zero-area) triangles are left untouched.
    pub fn orient_ccw(&mut self) {
        for t in 0..self.triangles.len() {
            let [a, b, c] = self.tri_coords(t);
            if orient2d(a, b, c) < 0.0 {
                self.triangles[t].swap(1, 2);
            }
        }
    }

    /// True when every triangle is counter-clockwise (strictly positive area).
    pub fn is_ccw(&self) -> bool {
        (0..self.num_triangles()).all(|t| {
            let [a, b, c] = self.tri_coords(t);
            orient2d(a, b, c) > 0.0
        })
    }

    /// Axis-aligned bounding box of the vertex set.
    pub fn bbox(&self) -> (Point2, Point2) {
        bounding_box(&self.coords)
    }

    /// Total unsigned area of all triangles.
    pub fn total_area(&self) -> f64 {
        (0..self.num_triangles())
            .map(|t| {
                let [a, b, c] = self.tri_coords(t);
                crate::geometry::area(a, b, c)
            })
            .sum()
    }

    /// Consume the mesh, returning its raw parts `(coords, triangles)`.
    pub fn into_parts(self) -> (Vec<Point2>, Vec<[u32; 3]>) {
        (self.coords, self.triangles)
    }
}

/// Build the small 13-vertex mesh of the paper's Figure 5, used by tests,
/// docs, and the `ordering_anatomy` example.
///
/// The mesh is a 13-vertex triangulated hexagon-ish patch: a centre ring of
/// interior vertices surrounded by boundary vertices, small enough to follow
/// orderings by hand.
pub fn figure5_mesh() -> TriMesh {
    // Two rows of a triangulated strip plus a fan — 13 vertices, irregular
    // degrees, a mix of interior and boundary vertices.
    let coords = vec![
        Point2::new(0.0, 0.0), // 0
        Point2::new(1.0, 0.0), // 1
        Point2::new(2.0, 0.0), // 2
        Point2::new(3.0, 0.0), // 3
        Point2::new(0.5, 1.0), // 4
        Point2::new(1.5, 1.0), // 5
        Point2::new(2.5, 1.0), // 6
        Point2::new(0.0, 2.0), // 7
        Point2::new(1.0, 2.0), // 8
        Point2::new(2.0, 2.0), // 9
        Point2::new(3.0, 2.0), // 10
        Point2::new(1.0, 3.0), // 11
        Point2::new(2.0, 3.0), // 12
    ];
    let triangles = vec![
        [0, 1, 4],
        [1, 5, 4],
        [1, 2, 5],
        [2, 6, 5],
        [2, 3, 6],
        [3, 10, 6],
        [0, 4, 7],
        [4, 8, 7],
        [4, 5, 8],
        [5, 9, 8],
        [5, 6, 9],
        [6, 10, 9],
        [7, 8, 11],
        [8, 9, 12],
        [8, 12, 11],
        [9, 10, 12],
    ];
    let mut m = TriMesh::new(coords, triangles).expect("figure5 mesh is valid");
    m.orient_ccw();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> TriMesh {
        TriMesh::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(1.0, 1.0),
                Point2::new(0.0, 1.0),
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_indices() {
        let err = TriMesh::new(vec![Point2::ZERO; 3], vec![[0, 1, 3]]).unwrap_err();
        assert_eq!(err, MeshError::IndexOutOfRange { triangle: 0, index: 3 });
    }

    #[test]
    fn construction_rejects_degenerate_triangles() {
        let err = TriMesh::new(vec![Point2::ZERO; 3], vec![[0, 1, 1]]).unwrap_err();
        assert_eq!(err, MeshError::DegenerateTriangle { triangle: 0 });
    }

    #[test]
    fn square_has_five_edges_and_euler_one() {
        let m = unit_square();
        let edges = m.edges();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(0, 2))); // the shared diagonal
        assert_eq!(m.euler_characteristic(), 1); // a disk
    }

    #[test]
    fn edges_are_deduplicated_and_sorted() {
        let m = unit_square();
        let edges = m.edges();
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(edges, sorted);
        assert!(edges.iter().all(|&(a, b)| a < b));
    }

    #[test]
    fn orient_ccw_flips_clockwise_triangles() {
        let mut m = TriMesh::new(
            vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(0.0, 1.0)],
            vec![[0, 2, 1]], // clockwise
        )
        .unwrap();
        assert!(!m.is_ccw());
        m.orient_ccw();
        assert!(m.is_ccw());
        assert_eq!(m.triangles()[0], [0, 1, 2]);
    }

    #[test]
    fn total_area_of_unit_square() {
        assert!((unit_square().total_area() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn bbox_spans_vertices() {
        let (lo, hi) = unit_square().bbox();
        assert_eq!(lo, Point2::new(0.0, 0.0));
        assert_eq!(hi, Point2::new(1.0, 1.0));
    }

    #[test]
    fn figure5_mesh_is_valid_disk() {
        let m = figure5_mesh();
        assert_eq!(m.num_vertices(), 13);
        assert_eq!(m.num_triangles(), 16);
        assert!(m.is_ccw());
        assert_eq!(m.euler_characteristic(), 1);
    }

    #[test]
    fn into_parts_roundtrips() {
        let m = unit_square();
        let (coords, tris) = m.clone().into_parts();
        let m2 = TriMesh::new(coords, tris).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn tri_coords_indexes_correctly() {
        let m = unit_square();
        let [a, b, c] = m.tri_coords(1);
        assert_eq!(a, Point2::new(0.0, 0.0));
        assert_eq!(b, Point2::new(1.0, 1.0));
        assert_eq!(c, Point2::new(0.0, 1.0));
    }
}
