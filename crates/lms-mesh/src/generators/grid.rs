//! Structured and perturbed grid triangulations.

use crate::geometry::Point2;
use crate::mesh::TriMesh;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Regular right-triangle grid over the unit square.
///
/// `nx × ny` vertices (`nx, ny ≥ 2`), each cell split along the same
/// diagonal. Vertex numbering is row-major, which has good locality — this
/// mimics the locality of a mesh generator's "original" ordering.
pub fn structured_grid(nx: usize, ny: usize) -> TriMesh {
    assert!(nx >= 2 && ny >= 2, "grid needs at least 2x2 vertices");
    let mut coords = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            coords.push(Point2::new(i as f64 / (nx - 1) as f64, j as f64 / (ny - 1) as f64));
        }
    }
    let mut tris = Vec::with_capacity(2 * (nx - 1) * (ny - 1));
    for j in 0..ny - 1 {
        for i in 0..nx - 1 {
            let v00 = (j * nx + i) as u32;
            let v10 = v00 + 1;
            let v01 = v00 + nx as u32;
            let v11 = v01 + 1;
            tris.push([v00, v10, v11]);
            tris.push([v00, v11, v01]);
        }
    }
    TriMesh::new_unchecked(coords, tris)
}

/// Perturbed grid: jittered interior vertices and randomised cell diagonals.
///
/// `jitter` is the maximal displacement as a fraction of the cell spacing
/// (values in `[0, 0.49]` keep the mesh untangled). The jitter gives the
/// triangles a *spread of qualities* — the raw material both for smoothing
/// and for the quality-driven RDR ordering. Deterministic in `seed`.
pub fn perturbed_grid(nx: usize, ny: usize, jitter: f64, seed: u64) -> TriMesh {
    perturbed_grid_over(nx, ny, (Point2::ZERO, Point2::new(1.0, 1.0)), jitter, seed)
}

/// Smooth low-frequency field in `[0, 1]` used to *grade* the jitter
/// amplitude across the domain. Mesh generators like Triangle produce
/// graded meshes whose element quality varies smoothly in space; spatially
/// correlated quality is what keeps the paper's quality-greedy RDR chains
/// coherent. Normalised coordinates `u, v ∈ [0, 1]`.
fn grading_field(u: f64, v: f64) -> f64 {
    // A handful of localised "bad regions" (Gaussian bumps) on an otherwise
    // mildly distorted background. Quality-guaranteeing generators like
    // Triangle produce exactly this structure: most of the mesh is close to
    // the target quality, with concentrated low-quality areas near domain
    // features. The concentrated distribution is what makes quality-driven
    // traversals (RDR, greedy smoothing) spatially coherent.
    const CENTERS: [(f64, f64, f64); 4] =
        [(0.22, 0.31, 0.11), (0.71, 0.18, 0.09), (0.45, 0.74, 0.13), (0.86, 0.62, 0.08)];
    let mut bump: f64 = 0.0;
    for (cu, cv, w) in CENTERS {
        let r2 = ((u - cu) / w).powi(2) + ((v - cv) / w).powi(2);
        bump = bump.max((-r2).exp());
    }
    bump
}

/// [`perturbed_grid`] laid over an arbitrary bounding box `(lo, hi)`, with
/// the jitter amplitude *graded* by a smooth spatial field: some regions
/// stay nearly regular (high quality), others are strongly distorted (low
/// quality). `jitter` is the maximum amplitude.
pub fn graded_grid_over(
    nx: usize,
    ny: usize,
    (lo, hi): (Point2, Point2),
    jitter: f64,
    seed: u64,
) -> TriMesh {
    grid_over_impl(nx, ny, (lo, hi), jitter, seed, true)
}

/// [`perturbed_grid`] laid over an arbitrary bounding box `(lo, hi)`.
pub fn perturbed_grid_over(
    nx: usize,
    ny: usize,
    (lo, hi): (Point2, Point2),
    jitter: f64,
    seed: u64,
) -> TriMesh {
    grid_over_impl(nx, ny, (lo, hi), jitter, seed, false)
}

fn grid_over_impl(
    nx: usize,
    ny: usize,
    (lo, hi): (Point2, Point2),
    jitter: f64,
    seed: u64,
    graded: bool,
) -> TriMesh {
    assert!(nx >= 2 && ny >= 2, "grid needs at least 2x2 vertices");
    assert!((0.0..0.5).contains(&jitter), "jitter must be in [0, 0.5)");
    assert!(hi.x > lo.x && hi.y > lo.y, "bounding box must be non-degenerate");
    let mut rng = SmallRng::seed_from_u64(seed);
    let hx = (hi.x - lo.x) / (nx - 1) as f64;
    let hy = (hi.y - lo.y) / (ny - 1) as f64;

    let mut coords = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let mut p = Point2::new(
                lo.x + (hi.x - lo.x) * (i as f64 / (nx - 1) as f64),
                lo.y + (hi.y - lo.y) * (j as f64 / (ny - 1) as f64),
            );
            // Keep the outer boundary straight: only interior nodes jitter.
            if i > 0 && i < nx - 1 && j > 0 && j < ny - 1 && jitter > 0.0 {
                let amp = if graded {
                    let u = i as f64 / (nx - 1) as f64;
                    let v = j as f64 / (ny - 1) as f64;
                    // good plateau (~0.18·jitter) + concentrated bad bumps
                    jitter * (0.18 + 0.82 * grading_field(u, v))
                } else {
                    jitter
                };
                p.x += rng.gen_range(-1.0..1.0) * amp * hx;
                p.y += rng.gen_range(-1.0..1.0) * amp * hy;
            }
            coords.push(p);
        }
    }
    let mut tris = Vec::with_capacity(2 * (nx - 1) * (ny - 1));
    for j in 0..ny - 1 {
        for i in 0..nx - 1 {
            let v00 = (j * nx + i) as u32;
            let v10 = v00 + 1;
            let v01 = v00 + nx as u32;
            let v11 = v01 + 1;
            if rng.gen_bool(0.5) {
                tris.push([v00, v10, v11]);
                tris.push([v00, v11, v01]);
            } else {
                tris.push([v00, v10, v01]);
                tris.push([v10, v11, v01]);
            }
        }
    }
    let mut m = TriMesh::new_unchecked(coords, tris);
    m.orient_ccw();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacency;
    use crate::boundary::Boundary;
    use crate::quality::{mesh_quality, QualityMetric};

    #[test]
    fn structured_grid_counts() {
        let m = structured_grid(5, 4);
        assert_eq!(m.num_vertices(), 20);
        assert_eq!(m.num_triangles(), 2 * 4 * 3);
        assert_eq!(m.euler_characteristic(), 1);
    }

    #[test]
    fn structured_grid_is_unit_square() {
        let m = structured_grid(4, 4);
        let (lo, hi) = m.bbox();
        assert_eq!((lo.x, lo.y, hi.x, hi.y), (0.0, 0.0, 1.0, 1.0));
        assert!((m.total_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perturbed_grid_is_deterministic_in_seed() {
        let a = perturbed_grid(12, 12, 0.3, 42);
        let b = perturbed_grid(12, 12, 0.3, 42);
        let c = perturbed_grid(12, 12, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn perturbed_grid_keeps_boundary_straight() {
        let m = perturbed_grid(10, 10, 0.4, 1);
        let b = Boundary::detect(&m);
        for v in b.boundary_vertices() {
            let p = m.coords()[v as usize];
            let on_edge = p.x.abs() < 1e-12
                || (p.x - 1.0).abs() < 1e-12
                || p.y.abs() < 1e-12
                || (p.y - 1.0).abs() < 1e-12;
            assert!(on_edge, "boundary vertex {v} at {p:?} not on unit-square edge");
        }
    }

    #[test]
    fn perturbed_grid_stays_untangled_and_imperfect() {
        let m = perturbed_grid(20, 20, 0.35, 7);
        assert!(m.is_ccw(), "jittered mesh must stay untangled (all CCW)");
        let adj = Adjacency::build(&m);
        let q = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        assert!(q > 0.2 && q < 0.95, "quality {q} should be mediocre before smoothing");
    }

    #[test]
    fn zero_jitter_matches_structured_geometry() {
        let m = perturbed_grid(6, 6, 0.0, 9);
        let s = structured_grid(6, 6);
        assert_eq!(m.coords(), s.coords());
        // diagonals may differ; counts must not
        assert_eq!(m.num_triangles(), s.num_triangles());
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_grid() {
        structured_grid(1, 5);
    }

    #[test]
    #[should_panic]
    fn rejects_excessive_jitter() {
        perturbed_grid(4, 4, 0.5, 0);
    }
}
