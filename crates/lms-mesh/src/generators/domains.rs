//! Domain shapes and the carved-grid generator.
//!
//! A [`Domain`] is a base [`Shape`] minus a set of hole shapes. The
//! [`carved_grid`] generator triangulates the domain by laying a perturbed
//! grid over its bounding box and keeping the triangles that fall inside —
//! producing irregular boundaries, holes and islands like the paper's
//! carabiner/lake/ocean meshes.

use super::grid::graded_grid_over;
use crate::geometry::Point2;
use crate::mesh::TriMesh;

/// A primitive planar region.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// Axis-aligned rectangle.
    Rect { lo: Point2, hi: Point2 },
    /// Axis-aligned ellipse.
    Ellipse { center: Point2, rx: f64, ry: f64 },
    /// Ring between two radii.
    Annulus { center: Point2, r_inner: f64, r_outer: f64 },
    /// Annulus with an angular gap (an open "C" — the carabiner shape).
    /// `gap_center`/`gap_half_width` are angles in radians.
    CShape { center: Point2, r_inner: f64, r_outer: f64, gap_center: f64, gap_half_width: f64 },
    /// Sinusoidal band: points with `|y - a·sin(2πx/λ)| ≤ half_width`,
    /// `x ∈ [x0, x1]` (the riverflow shape).
    WavyStrip { x0: f64, x1: f64, amplitude: f64, wavelength: f64, half_width: f64 },
    /// Stadium / capsule around the segment `a`–`b` with radius `r`
    /// (the wrench handle).
    Capsule { a: Point2, b: Point2, r: f64 },
}

impl Shape {
    /// Point-membership test.
    pub fn contains(&self, p: Point2) -> bool {
        match *self {
            Shape::Rect { lo, hi } => p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y,
            Shape::Ellipse { center, rx, ry } => {
                let d = p - center;
                (d.x / rx).powi(2) + (d.y / ry).powi(2) <= 1.0
            }
            Shape::Annulus { center, r_inner, r_outer } => {
                let r = p.dist(center);
                r >= r_inner && r <= r_outer
            }
            Shape::CShape { center, r_inner, r_outer, gap_center, gap_half_width } => {
                let d = p - center;
                let r = d.norm();
                if r < r_inner || r > r_outer {
                    return false;
                }
                let theta = d.y.atan2(d.x);
                let mut delta = (theta - gap_center).rem_euclid(2.0 * std::f64::consts::PI);
                if delta > std::f64::consts::PI {
                    delta = 2.0 * std::f64::consts::PI - delta;
                }
                delta > gap_half_width
            }
            Shape::WavyStrip { x0, x1, amplitude, wavelength, half_width } => {
                if p.x < x0 || p.x > x1 {
                    return false;
                }
                let mid = amplitude * (2.0 * std::f64::consts::PI * p.x / wavelength).sin();
                (p.y - mid).abs() <= half_width
            }
            Shape::Capsule { a, b, r } => {
                let ab = b - a;
                let len_sq = ab.norm_sq();
                let t =
                    if len_sq == 0.0 { 0.0 } else { ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0) };
                p.dist(a.lerp(b, t)) <= r
            }
        }
    }

    /// Axis-aligned bounding box of the shape.
    pub fn bbox(&self) -> (Point2, Point2) {
        match *self {
            Shape::Rect { lo, hi } => (lo, hi),
            Shape::Ellipse { center, rx, ry } => {
                (center - Point2::new(rx, ry), center + Point2::new(rx, ry))
            }
            Shape::Annulus { center, r_outer, .. } | Shape::CShape { center, r_outer, .. } => {
                (center - Point2::new(r_outer, r_outer), center + Point2::new(r_outer, r_outer))
            }
            Shape::WavyStrip { x0, x1, amplitude, half_width, .. } => {
                (Point2::new(x0, -amplitude - half_width), Point2::new(x1, amplitude + half_width))
            }
            Shape::Capsule { a, b, r } => {
                (a.min(b) - Point2::new(r, r), a.max(b) + Point2::new(r, r))
            }
        }
    }

    /// Approximate fraction of the bounding box covered by the shape,
    /// used to size carved grids for a target vertex count.
    pub fn fill_fraction(&self) -> f64 {
        match *self {
            Shape::Rect { .. } => 1.0,
            Shape::Ellipse { .. } => std::f64::consts::FRAC_PI_4,
            Shape::Annulus { r_inner, r_outer, .. } => {
                std::f64::consts::FRAC_PI_4 * (1.0 - (r_inner / r_outer).powi(2))
            }
            Shape::CShape { r_inner, r_outer, gap_half_width, .. } => {
                let ring = std::f64::consts::FRAC_PI_4 * (1.0 - (r_inner / r_outer).powi(2));
                ring * (1.0 - gap_half_width / std::f64::consts::PI)
            }
            Shape::WavyStrip { x0, x1, amplitude, half_width, .. } => {
                let h = 2.0 * (amplitude + half_width);
                if h == 0.0 || x1 <= x0 {
                    0.0
                } else {
                    (2.0 * half_width / h).min(1.0)
                }
            }
            Shape::Capsule { a, b, r } => {
                let (lo, hi) = self.bbox();
                let box_area = (hi.x - lo.x) * (hi.y - lo.y);
                if box_area == 0.0 {
                    return 0.0;
                }
                let area = 2.0 * r * a.dist(b) + std::f64::consts::PI * r * r;
                (area / box_area).min(1.0)
            }
        }
    }
}

/// A union of shapes minus a set of holes.
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    parts: Vec<Shape>,
    holes: Vec<Shape>,
}

impl Domain {
    /// Domain that is exactly `base`.
    pub fn new(base: Shape) -> Self {
        Domain { parts: vec![base], holes: Vec::new() }
    }

    /// Add `part` to the domain (set union). Parts may overlap.
    pub fn with_part(mut self, part: Shape) -> Self {
        self.parts.push(part);
        self
    }

    /// Remove `hole` from the domain. Holes win over parts and may overlap.
    pub fn with_hole(mut self, hole: Shape) -> Self {
        self.holes.push(hole);
        self
    }

    /// Point-membership test: inside some part and outside every hole.
    pub fn contains(&self, p: Point2) -> bool {
        self.parts.iter().any(|s| s.contains(p)) && !self.holes.iter().any(|h| h.contains(p))
    }

    /// Bounding box of the union of parts.
    pub fn bbox(&self) -> (Point2, Point2) {
        let mut lo = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for part in &self.parts {
            let (plo, phi) = part.bbox();
            lo = lo.min(plo);
            hi = hi.max(phi);
        }
        (lo, hi)
    }

    /// Estimated bbox fill fraction (part areas minus hole areas; overlaps
    /// are not corrected for, so this is an estimate).
    pub fn fill_fraction(&self) -> f64 {
        let (lo, hi) = self.bbox();
        let box_area = ((hi.x - lo.x) * (hi.y - lo.y)).max(f64::MIN_POSITIVE);
        let frac_of = |s: &Shape| {
            let (slo, shi) = s.bbox();
            s.fill_fraction() * ((shi.x - slo.x) * (shi.y - slo.y)) / box_area
        };
        let part_frac: f64 = self.parts.iter().map(frac_of).sum();
        let hole_frac: f64 = self.holes.iter().map(frac_of).sum();
        (part_frac - hole_frac).clamp(0.01, 1.0)
    }
}

/// Triangulate `domain` by carving a perturbed grid laid over its bbox.
///
/// `target_vertices` controls resolution: the generated mesh has
/// approximately that many vertices (the fill-fraction estimate makes this
/// approximate; counts are typically within ~15 %). `jitter` and `seed` are
/// forwarded to the underlying [`perturbed grid`](super::grid::perturbed_grid).
pub fn carved_grid(domain: &Domain, target_vertices: usize, jitter: f64, seed: u64) -> TriMesh {
    assert!(target_vertices >= 4, "need at least 4 target vertices");
    let (lo, hi) = domain.bbox();
    let w = (hi.x - lo.x).max(f64::MIN_POSITIVE);
    let h = (hi.y - lo.y).max(f64::MIN_POSITIVE);
    let fill = domain.fill_fraction();
    // nx * ny * fill ≈ target and nx/ny ≈ w/h.
    let total = (target_vertices as f64 / fill).max(4.0);
    let nx = ((total * w / h).sqrt().round() as usize).max(2);
    let ny = ((total / (total * w / h).sqrt()).round() as usize).max(2);

    // Graded jitter: quality varies smoothly in space, as in Triangle's
    // graded meshes (this keeps quality-driven traversals coherent).
    let grid = graded_grid_over(nx, ny, (lo, hi), jitter, seed);

    // Keep triangles fully inside the domain.
    let mut keep_vertex = vec![false; grid.num_vertices()];
    let mut tris = Vec::new();
    for (t, tri) in grid.triangles().iter().enumerate() {
        let [a, b, c] = grid.tri_coords(t);
        let centroid = (a + b + c) / 3.0;
        if domain.contains(a)
            && domain.contains(b)
            && domain.contains(c)
            && domain.contains(centroid)
        {
            tris.push(*tri);
            for &v in tri {
                keep_vertex[v as usize] = true;
            }
        }
    }

    // Compact vertex indices, preserving row-major relative order (this
    // compacted numbering is the mesh's "original" ORI ordering).
    let mut remap = vec![u32::MAX; grid.num_vertices()];
    let mut coords = Vec::new();
    for (v, &keep) in keep_vertex.iter().enumerate() {
        if keep {
            remap[v] = coords.len() as u32;
            coords.push(grid.coords()[v]);
        }
    }
    for tri in &mut tris {
        for v in tri.iter_mut() {
            *v = remap[*v as usize];
        }
    }
    let mut m = TriMesh::new_unchecked(coords, tris);
    m.orient_ccw();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::Boundary;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn shape_membership() {
        let rect = Shape::Rect { lo: p(0.0, 0.0), hi: p(2.0, 1.0) };
        assert!(rect.contains(p(1.0, 0.5)));
        assert!(!rect.contains(p(3.0, 0.5)));

        let ell = Shape::Ellipse { center: p(0.0, 0.0), rx: 2.0, ry: 1.0 };
        assert!(ell.contains(p(1.9, 0.0)));
        assert!(!ell.contains(p(0.0, 1.1)));

        let ann = Shape::Annulus { center: p(0.0, 0.0), r_inner: 1.0, r_outer: 2.0 };
        assert!(ann.contains(p(1.5, 0.0)));
        assert!(!ann.contains(p(0.5, 0.0)));
        assert!(!ann.contains(p(2.5, 0.0)));
    }

    #[test]
    fn cshape_gap_is_excluded() {
        let c = Shape::CShape {
            center: p(0.0, 0.0),
            r_inner: 1.0,
            r_outer: 2.0,
            gap_center: 0.0,
            gap_half_width: 0.3,
        };
        assert!(!c.contains(p(1.5, 0.0)), "gap direction must be open");
        assert!(c.contains(p(-1.5, 0.0)), "opposite side must be solid");
        assert!(c.contains(p(0.0, 1.5)));
    }

    #[test]
    fn wavy_strip_follows_sine() {
        let s = Shape::WavyStrip {
            x0: 0.0,
            x1: 10.0,
            amplitude: 1.0,
            wavelength: 5.0,
            half_width: 0.2,
        };
        let mid = (2.0 * std::f64::consts::PI * 1.25 / 5.0).sin();
        assert!(s.contains(p(1.25, mid)));
        assert!(!s.contains(p(1.25, mid + 0.5)));
        assert!(!s.contains(p(-0.1, 0.0)));
    }

    #[test]
    fn capsule_contains_segment_and_caps() {
        let c = Shape::Capsule { a: p(0.0, 0.0), b: p(4.0, 0.0), r: 1.0 };
        assert!(c.contains(p(2.0, 0.9)));
        assert!(c.contains(p(-0.9, 0.0))); // left cap
        assert!(!c.contains(p(2.0, 1.1)));
    }

    #[test]
    fn domain_holes_subtract() {
        let d = Domain::new(Shape::Rect { lo: p(0.0, 0.0), hi: p(4.0, 4.0) })
            .with_hole(Shape::Ellipse { center: p(2.0, 2.0), rx: 0.5, ry: 0.5 });
        assert!(d.contains(p(0.5, 0.5)));
        assert!(!d.contains(p(2.0, 2.0)));
    }

    #[test]
    fn fill_fractions_are_sane() {
        assert!(
            (Shape::Rect { lo: p(0.0, 0.0), hi: p(1.0, 1.0) }.fill_fraction() - 1.0).abs() < 1e-12
        );
        let ell = Shape::Ellipse { center: p(0.0, 0.0), rx: 1.0, ry: 1.0 };
        assert!((ell.fill_fraction() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        let ann = Shape::Annulus { center: p(0.0, 0.0), r_inner: 1.0, r_outer: 2.0 };
        assert!(ann.fill_fraction() > 0.0 && ann.fill_fraction() < 1.0);
    }

    #[test]
    fn carved_grid_hits_target_size_roughly() {
        let d = Domain::new(Shape::Ellipse { center: p(0.0, 0.0), rx: 2.0, ry: 1.0 });
        let m = carved_grid(&d, 3000, 0.3, 5);
        let n = m.num_vertices();
        assert!((1800..=4500).contains(&n), "expected roughly 3000 vertices, got {n}");
        assert!(m.is_ccw());
    }

    #[test]
    fn carved_grid_vertices_lie_inside_domain() {
        let d = Domain::new(Shape::Annulus { center: p(0.0, 0.0), r_inner: 1.0, r_outer: 2.0 });
        let m = carved_grid(&d, 2000, 0.2, 11);
        for &c in m.coords() {
            assert!(d.contains(c), "vertex {c:?} escaped the domain");
        }
    }

    #[test]
    fn carved_grid_with_hole_changes_topology() {
        let solid = Domain::new(Shape::Rect { lo: p(0.0, 0.0), hi: p(1.0, 1.0) });
        let holed =
            solid.clone().with_hole(Shape::Ellipse { center: p(0.5, 0.5), rx: 0.2, ry: 0.2 });
        let ms = carved_grid(&solid, 2500, 0.25, 3);
        let mh = carved_grid(&holed, 2500, 0.25, 3);
        assert_eq!(ms.euler_characteristic(), 1, "solid square is a disk");
        assert_eq!(mh.euler_characteristic(), 0, "holed square is an annulus");
        // The hole adds boundary vertices.
        assert!(Boundary::detect(&mh).num_boundary() > Boundary::detect(&ms).num_boundary());
    }

    #[test]
    fn carved_grid_has_no_unreferenced_vertices() {
        let d = Domain::new(Shape::Ellipse { center: p(0.0, 0.0), rx: 1.0, ry: 1.0 });
        let m = carved_grid(&d, 1000, 0.3, 2);
        let mut seen = vec![false; m.num_vertices()];
        for tri in m.triangles() {
            for &v in tri {
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "compaction must drop unreferenced vertices");
    }
}
