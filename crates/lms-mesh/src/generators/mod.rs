//! Mesh generators.
//!
//! The paper's nine input meshes were produced by Shewchuk's *Triangle* and
//! are not redistributable; these generators synthesise equivalents (see
//! DESIGN.md §3). Two families are provided:
//!
//! * **Carved perturbed grids** ([`grid`], [`domains`]) — structured
//!   triangulations with jittered vertices, randomised diagonals and
//!   arbitrary domain masks (holes, islands, strips). Fast enough for the
//!   paper-scale 300–400k-vertex meshes; the row-major compacted numbering
//!   plays the role of Triangle's "original" (ORI) ordering.
//! * **Bowyer–Watson Delaunay** ([`delaunay`]) — genuine unstructured
//!   triangulations of random point sets, used where insertion-order
//!   numbering (poor locality) is wanted.

pub mod delaunay;
pub mod domains;
pub mod grid;

pub use delaunay::{delaunay_triangulation, random_delaunay};
pub use domains::{carved_grid, Domain};
pub use grid::{graded_grid_over, perturbed_grid, perturbed_grid_over, structured_grid};
