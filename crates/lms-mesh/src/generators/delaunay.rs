//! Incremental Bowyer–Watson Delaunay triangulation.
//!
//! This is a genuine unstructured-mesh generator: it triangulates an
//! arbitrary point set, and when the points are in random order the
//! resulting insertion-order vertex numbering has *poor* locality — exactly
//! the kind of numbering the paper's RANDOM baseline exercises.
//!
//! The implementation is the standard cavity algorithm with triangle
//! neighbour pointers and walk-based point location, O(n log n) expected on
//! jittered random input. Predicates are plain `f64` determinants (see
//! [`crate::geometry`]); points closer than a relative epsilon to an
//! existing vertex are skipped rather than inserted.
//!
//! **Robustness limitation.** Without exact arithmetic, a point that lands
//! within ~1e-4 of an existing edge can make the cavity predicates
//! disagree, in which case a near-degenerate sliver triangle may be dropped
//! from the output (the mesh stays valid and CCW; total area can fall short
//! by the sliver's area). Uses that need guarantees should pre-jitter their
//! input points, as [`random_delaunay`] effectively does.

use crate::geometry::{bounding_box, in_circle, orient2d, Point2};
use crate::mesh::TriMesh;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NONE: u32 = u32::MAX;

/// Working triangulation state.
struct Triangulation {
    /// Point array; indices 0..3 are the super-triangle corners.
    points: Vec<Point2>,
    /// Triangle vertex triples (CCW).
    tris: Vec<[u32; 3]>,
    /// `nbrs[t][k]` = triangle across the edge opposite vertex `k`.
    nbrs: Vec<[u32; 3]>,
    alive: Vec<bool>,
    free: Vec<u32>,
    last: u32,
}

impl Triangulation {
    fn new(super_tri: [Point2; 3]) -> Self {
        Triangulation {
            points: super_tri.to_vec(),
            tris: vec![[0, 1, 2]],
            nbrs: vec![[NONE; 3]],
            alive: vec![true],
            free: Vec::new(),
            last: 0,
        }
    }

    fn alloc(&mut self, tri: [u32; 3]) -> u32 {
        if let Some(t) = self.free.pop() {
            self.tris[t as usize] = tri;
            self.nbrs[t as usize] = [NONE; 3];
            self.alive[t as usize] = true;
            t
        } else {
            self.tris.push(tri);
            self.nbrs.push([NONE; 3]);
            self.alive.push(true);
            (self.tris.len() - 1) as u32
        }
    }

    fn kill(&mut self, t: u32) {
        self.alive[t as usize] = false;
        self.free.push(t);
    }

    #[inline]
    fn coords(&self, t: u32) -> [Point2; 3] {
        let [a, b, c] = self.tris[t as usize];
        [self.points[a as usize], self.points[b as usize], self.points[c as usize]]
    }

    /// Walk from `self.last` towards the triangle containing `p`.
    fn locate(&self, p: Point2) -> Option<u32> {
        let mut t = if self.alive[self.last as usize] {
            self.last
        } else {
            (0..self.tris.len() as u32).find(|&t| self.alive[t as usize])?
        };
        let max_steps = 4 * self.tris.len() + 16;
        'walk: for _ in 0..max_steps {
            let [a, b, c] = self.coords(t);
            let verts = [(a, b), (b, c), (c, a)];
            for (k, &(u, v)) in verts.iter().enumerate() {
                if orient2d(u, v, p) < 0.0 {
                    // `p` is outside directed edge k; edge (v[k], v[k+1]) is
                    // opposite vertex (k+2).
                    let n = self.nbrs[t as usize][(k + 2) % 3];
                    if n == NONE {
                        break; // outside the hull: fall through to scan
                    }
                    t = n;
                    continue 'walk;
                }
            }
            return Some(t);
        }
        // Degenerate walk (numerical cycling): linear scan fallback.
        (0..self.tris.len() as u32).find(|&t| {
            if !self.alive[t as usize] {
                return false;
            }
            let [a, b, c] = self.coords(t);
            orient2d(a, b, p) >= 0.0 && orient2d(b, c, p) >= 0.0 && orient2d(c, a, p) >= 0.0
        })
    }

    /// Insert point `p`; returns false when skipped as a near-duplicate.
    fn insert(&mut self, p: Point2, eps_sq: f64) -> bool {
        let t0 = match self.locate(p) {
            Some(t) => t,
            None => return false,
        };
        for &v in &self.tris[t0 as usize] {
            if self.points[v as usize].dist_sq(p) <= eps_sq {
                return false;
            }
        }

        // Grow the cavity: all connected triangles whose circumcircle holds p.
        let mut bad = vec![t0];
        let mut in_cavity = std::collections::HashSet::new();
        in_cavity.insert(t0);
        let mut stack = vec![t0];
        while let Some(t) = stack.pop() {
            for k in 0..3 {
                let n = self.nbrs[t as usize][k];
                if n == NONE || in_cavity.contains(&n) {
                    continue;
                }
                let [a, b, c] = self.coords(n);
                if in_circle(a, b, c, p) > 0.0 {
                    in_cavity.insert(n);
                    bad.push(n);
                    stack.push(n);
                }
            }
        }

        // Boundary edges of the cavity, walked so that each directed edge
        // (u, v) keeps the cavity on its left; `outer` is the surviving
        // neighbour across it.
        struct BEdge {
            u: u32,
            v: u32,
            outer: u32,
        }
        let mut boundary = Vec::with_capacity(bad.len() + 2);
        for &t in &bad {
            let [a, b, c] = self.tris[t as usize];
            let edges = [(b, c, 0), (c, a, 1), (a, b, 2)];
            for (u, v, k) in edges {
                let n = self.nbrs[t as usize][k];
                if n == NONE || !in_cavity.contains(&n) {
                    boundary.push(BEdge { u, v, outer: n });
                }
            }
        }

        let pid = self.points.len() as u32;
        self.points.push(p);
        for &t in &bad {
            self.kill(t);
        }

        // One new triangle (u, v, p) per boundary edge; they form a fan
        // around p. Link fan neighbours via the shared boundary vertices.
        let mut start_of: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::with_capacity(boundary.len());
        let mut new_tris = Vec::with_capacity(boundary.len());
        for e in &boundary {
            let t = self.alloc([e.u, e.v, pid]);
            new_tris.push(t);
            start_of.insert(e.u, t);
        }
        for (i, e) in boundary.iter().enumerate() {
            let t = new_tris[i];
            // nbr[0]: across edge (v, p) — the fan triangle starting at v.
            self.nbrs[t as usize][0] = start_of.get(&e.v).copied().unwrap_or(NONE);
            // nbr[2]: across edge (u, v) — the surviving outer triangle.
            self.nbrs[t as usize][2] = e.outer;
            if e.outer != NONE {
                // Re-point the outer triangle's slot whose opposite edge is
                // (v, u) (the same undirected edge seen from outside).
                let overts = self.tris[e.outer as usize];
                for k in 0..3 {
                    let (u2, v2) = (overts[(k + 1) % 3], overts[(k + 2) % 3]);
                    if u2 == e.v && v2 == e.u {
                        self.nbrs[e.outer as usize][k] = t;
                    }
                }
            }
        }
        // nbr[1]: across edge (p, u) — the fan triangle *ending* at u.
        let mut end_of: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::with_capacity(boundary.len());
        for (i, e) in boundary.iter().enumerate() {
            end_of.insert(e.v, new_tris[i]);
        }
        for (i, e) in boundary.iter().enumerate() {
            let t = new_tris[i];
            self.nbrs[t as usize][1] = end_of.get(&e.u).copied().unwrap_or(NONE);
        }

        self.last = *new_tris.last().expect("cavity produced no triangles");
        true
    }

    /// Strip super-triangle vertices and compact into a [`TriMesh`].
    fn finish(self) -> TriMesh {
        let mut coords = Vec::with_capacity(self.points.len().saturating_sub(3));
        coords.extend_from_slice(&self.points[3..]);
        let mut tris = Vec::new();
        for (t, tri) in self.tris.iter().enumerate() {
            if !self.alive[t] {
                continue;
            }
            if tri.iter().any(|&v| v < 3) {
                continue; // touches the super-triangle
            }
            tris.push([tri[0] - 3, tri[1] - 3, tri[2] - 3]);
        }
        let mut m = TriMesh::new_unchecked(coords, tris);
        m.orient_ccw();
        m
    }
}

/// Delaunay-triangulate `points` (in the given insertion order).
///
/// Near-duplicate points (within `1e-9` of the bounding-box diagonal) are
/// skipped; the returned mesh's vertex `i` corresponds to the `i`-th *kept*
/// point. Needs at least 3 non-collinear points to produce triangles.
pub fn delaunay_triangulation(points: &[Point2]) -> TriMesh {
    if points.len() < 3 {
        return TriMesh::new_unchecked(points.to_vec(), Vec::new());
    }
    let (lo, hi) = bounding_box(points);
    let span = (hi - lo).norm().max(1e-12);
    let center = (lo + hi) * 0.5;
    let r = 64.0 * span + 1.0;
    let super_tri = [
        center + Point2::new(0.0, 2.0 * r),
        center + Point2::new(-1.8 * r, -r),
        center + Point2::new(1.8 * r, -r),
    ];
    let mut t = Triangulation::new(super_tri);
    let eps_sq = (1e-9 * span).powi(2);
    for &p in points {
        t.insert(p, eps_sq);
    }
    t.finish()
}

/// Delaunay triangulation of `n` uniform random points in the unit square,
/// deterministic in `seed`. The four square corners are always included so
/// the hull is the full square.
pub fn random_delaunay(n: usize, seed: u64) -> TriMesh {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut points = vec![
        Point2::new(0.0, 0.0),
        Point2::new(1.0, 0.0),
        Point2::new(1.0, 1.0),
        Point2::new(0.0, 1.0),
    ];
    for _ in 0..n.saturating_sub(4) {
        points.push(Point2::new(rng.gen::<f64>(), rng.gen::<f64>()));
    }
    delaunay_triangulation(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacency;
    use crate::boundary::Boundary;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    /// Every triangle's circumcircle must be empty of other vertices
    /// (the Delaunay property), up to predicate tolerance.
    fn assert_delaunay(m: &TriMesh) {
        for t in 0..m.num_triangles() {
            let [a, b, c] = m.tri_coords(t);
            for (v, &q) in m.coords().iter().enumerate() {
                if m.triangles()[t].contains(&(v as u32)) {
                    continue;
                }
                assert!(
                    in_circle(a, b, c, q) <= 1e-9,
                    "vertex {v} violates empty-circle of triangle {t}"
                );
            }
        }
    }

    #[test]
    fn triangulates_a_square() {
        let m = delaunay_triangulation(&[p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]);
        assert_eq!(m.num_vertices(), 4);
        assert_eq!(m.num_triangles(), 2);
        assert!((m.total_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_triangle() {
        let m = delaunay_triangulation(&[p(0.0, 0.0), p(2.0, 0.0), p(1.0, 1.5)]);
        assert_eq!(m.num_triangles(), 1);
        assert!(m.is_ccw());
    }

    #[test]
    fn too_few_points_yield_empty_mesh() {
        let m = delaunay_triangulation(&[p(0.0, 0.0), p(1.0, 1.0)]);
        assert_eq!(m.num_triangles(), 0);
        assert_eq!(m.num_vertices(), 2);
    }

    #[test]
    fn duplicates_are_skipped() {
        let m = delaunay_triangulation(&[
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(0.5, 1.0),
            p(0.5, 1.0), // exact duplicate
        ]);
        assert_eq!(m.num_vertices(), 3);
        assert_eq!(m.num_triangles(), 1);
    }

    #[test]
    fn delaunay_property_small_random() {
        let m = random_delaunay(60, 12345);
        assert!(m.num_triangles() > 0);
        assert!(m.is_ccw());
        assert_delaunay(&m);
    }

    #[test]
    fn random_delaunay_covers_square() {
        let m = random_delaunay(300, 7);
        // non-exact predicates may drop a near-degenerate sliver (documented
        // limitation, same allowance as the property suite)
        assert!((m.total_area() - 1.0).abs() < 1e-3, "area {}", m.total_area());
        assert_eq!(m.euler_characteristic(), 1);
    }

    #[test]
    fn random_delaunay_is_deterministic() {
        assert_eq!(random_delaunay(100, 3), random_delaunay(100, 3));
        assert_ne!(random_delaunay(100, 3), random_delaunay(100, 4));
    }

    #[test]
    fn grid_points_triangulate_consistently() {
        // Regular grid exercises many cocircular quadruples.
        let mut pts = Vec::new();
        for j in 0..6 {
            for i in 0..6 {
                // tiny jitter to dodge exact cocircularity
                let d = ((i * 7 + j * 13) % 11) as f64 * 1e-7;
                pts.push(p(i as f64 + d, j as f64 - d));
            }
        }
        let m = delaunay_triangulation(&pts);
        assert_eq!(m.num_vertices(), 36);
        assert_eq!(m.euler_characteristic(), 1);
        assert!((m.total_area() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn interior_vertices_exist_at_moderate_size() {
        let m = random_delaunay(500, 99);
        let b = Boundary::detect(&m);
        assert!(b.num_interior() > 350, "interior count {}", b.num_interior());
        let adj = Adjacency::build(&m);
        assert!(adj.mean_degree() > 4.0 && adj.mean_degree() < 8.0);
    }
}
