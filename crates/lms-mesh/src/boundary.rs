//! Boundary detection.
//!
//! Laplacian smoothing moves **interior** vertices only (Algorithm 1,
//! line 11); boundary vertices pin the domain shape. A boundary edge is an
//! edge incident to exactly one triangle; a boundary vertex touches at least
//! one boundary edge.

use crate::mesh::TriMesh;

/// Classification of every vertex as boundary or interior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Boundary {
    is_boundary: Vec<bool>,
    num_boundary: usize,
}

impl Boundary {
    /// Detect the boundary of `mesh`.
    pub fn detect(mesh: &TriMesh) -> Self {
        // Count incidence of every undirected edge; count==1 → boundary edge.
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(3 * mesh.num_triangles());
        for tri in mesh.triangles() {
            for k in 0..3 {
                let a = tri[k];
                let b = tri[(k + 1) % 3];
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();

        let mut is_boundary = vec![false; mesh.num_vertices()];
        let mut i = 0;
        while i < edges.len() {
            let mut j = i + 1;
            while j < edges.len() && edges[j] == edges[i] {
                j += 1;
            }
            if j - i == 1 {
                let (a, b) = edges[i];
                is_boundary[a as usize] = true;
                is_boundary[b as usize] = true;
            }
            i = j;
        }
        // Vertices in no triangle at all are treated as boundary (pinned).
        let mut referenced = vec![false; mesh.num_vertices()];
        for tri in mesh.triangles() {
            for &v in tri {
                referenced[v as usize] = true;
            }
        }
        for (v, r) in referenced.iter().enumerate() {
            if !r {
                is_boundary[v] = true;
            }
        }
        let num_boundary = is_boundary.iter().filter(|&&b| b).count();
        Boundary { is_boundary, num_boundary }
    }

    /// True when `v` lies on the boundary (or is unreferenced).
    #[inline]
    pub fn is_boundary(&self, v: u32) -> bool {
        self.is_boundary[v as usize]
    }

    /// True when `v` is interior (free to move during smoothing).
    #[inline]
    pub fn is_interior(&self, v: u32) -> bool {
        !self.is_boundary[v as usize]
    }

    /// Number of boundary vertices.
    #[inline]
    pub fn num_boundary(&self) -> usize {
        self.num_boundary
    }

    /// Number of interior vertices.
    #[inline]
    pub fn num_interior(&self) -> usize {
        self.is_boundary.len() - self.num_boundary
    }

    /// Indices of all interior vertices, ascending.
    pub fn interior_vertices(&self) -> Vec<u32> {
        (0..self.is_boundary.len() as u32).filter(|&v| self.is_interior(v)).collect()
    }

    /// Indices of all boundary vertices, ascending.
    pub fn boundary_vertices(&self) -> Vec<u32> {
        (0..self.is_boundary.len() as u32).filter(|&v| self.is_boundary(v)).collect()
    }

    /// The raw flag array (`true` = boundary), indexed by vertex.
    #[inline]
    pub fn flags(&self) -> &[bool] {
        &self.is_boundary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::figure5_mesh;
    use crate::Point2;

    /// A fan around a single interior vertex 0.
    fn wheel(n: usize) -> TriMesh {
        let mut coords = vec![Point2::ZERO];
        for k in 0..n {
            let th = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            coords.push(Point2::new(th.cos(), th.sin()));
        }
        let tris = (0..n).map(|k| [0u32, 1 + k as u32, 1 + ((k + 1) % n) as u32]).collect();
        TriMesh::new(coords, tris).unwrap()
    }

    #[test]
    fn wheel_center_is_interior() {
        let b = Boundary::detect(&wheel(6));
        assert!(b.is_interior(0));
        for v in 1..7 {
            assert!(b.is_boundary(v));
        }
        assert_eq!(b.num_interior(), 1);
        assert_eq!(b.num_boundary(), 6);
        assert_eq!(b.interior_vertices(), vec![0]);
    }

    #[test]
    fn single_triangle_is_all_boundary() {
        let m = TriMesh::new(
            vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(0.0, 1.0)],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let b = Boundary::detect(&m);
        assert_eq!(b.num_boundary(), 3);
        assert_eq!(b.num_interior(), 0);
    }

    #[test]
    fn unreferenced_vertex_is_pinned() {
        let m = TriMesh::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.0, 1.0),
                Point2::new(9.0, 9.0), // not in any triangle
            ],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let b = Boundary::detect(&m);
        assert!(b.is_boundary(3));
    }

    #[test]
    fn figure5_interior_set() {
        let m = figure5_mesh();
        let b = Boundary::detect(&m);
        // Interior vertices of the Figure-5 patch: 4, 5, 6, 8, 9.
        assert_eq!(b.interior_vertices(), vec![4, 5, 6, 8, 9]);
        assert_eq!(b.num_interior() + b.num_boundary(), m.num_vertices());
    }

    #[test]
    fn boundary_plus_interior_partition() {
        let m = figure5_mesh();
        let b = Boundary::detect(&m);
        let mut all = b.interior_vertices();
        all.extend(b.boundary_vertices());
        all.sort_unstable();
        let expect: Vec<u32> = (0..m.num_vertices() as u32).collect();
        assert_eq!(all, expect);
    }
}
