//! Mesh I/O: Shewchuk *Triangle* `.node`/`.ele` files and OFF.
//!
//! The paper's meshes came from Triangle \[15\], so the library reads and
//! writes Triangle's plain-text formats (1-based indices, optional
//! attributes and boundary markers are skipped on read, omitted on write).
//! OFF is provided for interoperability with MeshLab-style viewers.

use crate::geometry::Point2;
use crate::mesh::{MeshError, TriMesh};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

fn parse_err(msg: impl Into<String>) -> MeshError {
    MeshError::Parse(msg.into())
}

fn io_err(e: std::io::Error) -> MeshError {
    MeshError::Parse(format!("io: {e}"))
}

/// Iterate non-comment, non-empty lines of a Triangle-format file.
fn significant_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines().map(|l| l.split('#').next().unwrap_or("").trim()).filter(|l| !l.is_empty())
}

/// Serialise vertex coordinates in Triangle `.node` format.
pub fn write_node(mesh: &TriMesh, mut w: impl Write) -> Result<(), MeshError> {
    writeln!(w, "{} 2 0 0", mesh.num_vertices()).map_err(io_err)?;
    for (i, p) in mesh.coords().iter().enumerate() {
        writeln!(w, "{} {:?} {:?}", i + 1, p.x, p.y).map_err(io_err)?;
    }
    Ok(())
}

/// Serialise connectivity in Triangle `.ele` format.
pub fn write_ele(mesh: &TriMesh, mut w: impl Write) -> Result<(), MeshError> {
    writeln!(w, "{} 3 0", mesh.num_triangles()).map_err(io_err)?;
    for (t, tri) in mesh.triangles().iter().enumerate() {
        writeln!(w, "{} {} {} {}", t + 1, tri[0] + 1, tri[1] + 1, tri[2] + 1).map_err(io_err)?;
    }
    Ok(())
}

/// Parse a Triangle `.node` file into a coordinate array.
pub fn read_node(mut r: impl Read) -> Result<Vec<Point2>, MeshError> {
    let mut text = String::new();
    r.read_to_string(&mut text).map_err(io_err)?;
    let mut lines = significant_lines(&text);
    let header = lines.next().ok_or_else(|| parse_err("empty .node file"))?;
    let mut h = header.split_whitespace();
    let n: usize =
        h.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad .node header"))?;
    let dim: usize = h.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    if dim != 2 {
        return Err(parse_err(format!("expected 2D .node file, got dim {dim}")));
    }
    let mut coords = Vec::with_capacity(n);
    let mut base_one = true;
    for (k, line) in lines.enumerate() {
        if k >= n {
            break;
        }
        let mut f = line.split_whitespace();
        let idx: i64 = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad vertex line {k}")))?;
        if k == 0 {
            base_one = idx != 0;
        }
        let x: f64 = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad x on vertex line {k}")))?;
        let y: f64 = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad y on vertex line {k}")))?;
        coords.push(Point2::new(x, y));
    }
    let _ = base_one;
    if coords.len() != n {
        return Err(parse_err(format!("expected {n} vertices, found {}", coords.len())));
    }
    Ok(coords)
}

/// Parse a Triangle `.ele` file into triangle index triples.
///
/// Detects 0- vs 1-based numbering from the first element line.
pub fn read_ele(mut r: impl Read) -> Result<Vec<[u32; 3]>, MeshError> {
    let mut text = String::new();
    r.read_to_string(&mut text).map_err(io_err)?;
    let mut lines = significant_lines(&text);
    let header = lines.next().ok_or_else(|| parse_err("empty .ele file"))?;
    let mut h = header.split_whitespace();
    let n: usize =
        h.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad .ele header"))?;
    let per: usize = h.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    if per != 3 {
        return Err(parse_err(format!("expected 3 nodes per element, got {per}")));
    }
    let mut raw = Vec::with_capacity(n);
    for (k, line) in lines.enumerate() {
        if k >= n {
            break;
        }
        let mut f = line.split_whitespace();
        let _idx = f.next().ok_or_else(|| parse_err(format!("bad element line {k}")))?;
        let mut tri = [0u64; 3];
        for slot in &mut tri {
            *slot = f
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(format!("bad vertex index on element line {k}")))?;
        }
        raw.push(tri);
    }
    if raw.len() != n {
        return Err(parse_err(format!("expected {n} elements, found {}", raw.len())));
    }
    let base = if raw.iter().any(|t| t.contains(&0)) { 0 } else { 1 };
    Ok(raw
        .into_iter()
        .map(|t| [(t[0] - base) as u32, (t[1] - base) as u32, (t[2] - base) as u32])
        .collect())
}

/// Write `mesh` to `<prefix>.node` and `<prefix>.ele`.
pub fn save_triangle(mesh: &TriMesh, prefix: impl AsRef<Path>) -> Result<(), MeshError> {
    let prefix = prefix.as_ref();
    let node = File::create(prefix.with_extension("node")).map_err(io_err)?;
    write_node(mesh, BufWriter::new(node))?;
    let ele = File::create(prefix.with_extension("ele")).map_err(io_err)?;
    write_ele(mesh, BufWriter::new(ele))
}

/// Read a mesh from `<prefix>.node` + `<prefix>.ele`.
pub fn load_triangle(prefix: impl AsRef<Path>) -> Result<TriMesh, MeshError> {
    let prefix = prefix.as_ref();
    let coords =
        read_node(BufReader::new(File::open(prefix.with_extension("node")).map_err(io_err)?))?;
    let tris = read_ele(BufReader::new(File::open(prefix.with_extension("ele")).map_err(io_err)?))?;
    TriMesh::new(coords, tris)
}

/// Serialise in OFF format (z = 0).
pub fn write_off(mesh: &TriMesh, mut w: impl Write) -> Result<(), MeshError> {
    writeln!(w, "OFF").map_err(io_err)?;
    writeln!(w, "{} {} 0", mesh.num_vertices(), mesh.num_triangles()).map_err(io_err)?;
    for p in mesh.coords() {
        writeln!(w, "{:?} {:?} 0", p.x, p.y).map_err(io_err)?;
    }
    for tri in mesh.triangles() {
        writeln!(w, "3 {} {} {}", tri[0], tri[1], tri[2]).map_err(io_err)?;
    }
    Ok(())
}

/// Parse an OFF file (z coordinates are dropped).
pub fn read_off(r: impl Read) -> Result<TriMesh, MeshError> {
    let mut reader = BufReader::new(r);
    let mut text = String::new();
    reader.read_to_string(&mut text).map_err(io_err)?;
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
    let magic = lines.next().ok_or_else(|| parse_err("empty OFF file"))?;
    if magic != "OFF" {
        return Err(parse_err(format!("bad OFF magic {magic:?}")));
    }
    let counts = lines.next().ok_or_else(|| parse_err("missing OFF counts"))?;
    let mut c = counts.split_whitespace();
    let nv: usize =
        c.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad OFF vertex count"))?;
    let nf: usize =
        c.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad OFF face count"))?;
    let mut coords = Vec::with_capacity(nv);
    for k in 0..nv {
        let line = lines.next().ok_or_else(|| parse_err(format!("missing vertex {k}")))?;
        let mut f = line.split_whitespace();
        let x: f64 = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad vertex {k}")))?;
        let y: f64 = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad vertex {k}")))?;
        coords.push(Point2::new(x, y));
    }
    let mut tris = Vec::with_capacity(nf);
    for k in 0..nf {
        let line = lines.next().ok_or_else(|| parse_err(format!("missing face {k}")))?;
        let mut f = line.split_whitespace();
        let arity: usize = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad face {k}")))?;
        if arity != 3 {
            return Err(parse_err(format!("face {k} has arity {arity}, only triangles supported")));
        }
        let mut tri = [0u32; 3];
        for slot in &mut tri {
            *slot = f
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(format!("bad index on face {k}")))?;
        }
        tris.push(tri);
    }
    TriMesh::new(coords, tris)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::figure5_mesh;

    #[test]
    fn node_ele_roundtrip_in_memory() {
        let m = figure5_mesh();
        let mut node = Vec::new();
        let mut ele = Vec::new();
        write_node(&m, &mut node).unwrap();
        write_ele(&m, &mut ele).unwrap();
        let coords = read_node(&node[..]).unwrap();
        let tris = read_ele(&ele[..]).unwrap();
        let back = TriMesh::new(coords, tris).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn off_roundtrip_in_memory() {
        let m = figure5_mesh();
        let mut buf = Vec::new();
        write_off(&m, &mut buf).unwrap();
        let back = read_off(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn node_reader_skips_comments() {
        let text = "# header comment\n3 2 0 0\n1 0.0 0.0 # origin\n2 1.0 0.0\n3 0.0 1.0\n";
        let coords = read_node(text.as_bytes()).unwrap();
        assert_eq!(coords.len(), 3);
        assert_eq!(coords[2], Point2::new(0.0, 1.0));
    }

    #[test]
    fn ele_reader_handles_zero_based_indices() {
        let text = "1 3 0\n0 0 1 2\n";
        let tris = read_ele(text.as_bytes()).unwrap();
        assert_eq!(tris, vec![[0, 1, 2]]);
    }

    #[test]
    fn ele_reader_handles_one_based_indices() {
        let text = "1 3 0\n1 1 2 3\n";
        let tris = read_ele(text.as_bytes()).unwrap();
        assert_eq!(tris, vec![[0, 1, 2]]);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(read_node("".as_bytes()).is_err());
        assert!(read_node("2 3 0 0\n".as_bytes()).is_err()); // 3D
        assert!(read_ele("1 4 0\n1 1 2 3 4\n".as_bytes()).is_err()); // quads
        assert!(read_off("NOFF\n0 0 0\n".as_bytes()).is_err());
        assert!(read_off("OFF\n1 1 0\n0 0 0\n4 0 0 0 0\n".as_bytes()).is_err());
    }

    #[test]
    fn truncated_files_error() {
        assert!(read_node("5 2 0 0\n1 0.0 0.0\n".as_bytes()).is_err());
        assert!(read_ele("5 3 0\n1 1 2 3\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lms_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("fig5");
        let m = figure5_mesh();
        save_triangle(&m, &prefix).unwrap();
        let back = load_triangle(&prefix).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
