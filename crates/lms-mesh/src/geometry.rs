//! Planar geometry primitives used by the mesh substrate.
//!
//! Everything here is `f64` and allocation-free. The predicates
//! ([`orient2d`], [`in_circle`]) are the standard determinant forms; they are
//! *not* exact-arithmetic predicates, but the generators only feed them
//! points that are jittered away from degeneracy, and the Delaunay generator
//! re-perturbs on near-zero determinants.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A point (or vector) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

impl Point2 {
    /// The origin.
    pub const ZERO: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Construct a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean dot product.
    #[inline]
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// z-component of the 3D cross product of the two vectors.
    #[inline]
    pub fn cross(self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared distance to `other`.
    #[inline]
    pub fn dist_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Distance to `other`.
    #[inline]
    pub fn dist(self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point2) -> Point2 {
        Point2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point2) -> Point2 {
        Point2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        self + (other - self) * t
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Point2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn div(self, rhs: f64) -> Point2 {
        Point2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

/// Orientation of the triple `(a, b, c)`.
///
/// Positive when the triple turns counter-clockwise, negative when
/// clockwise, near zero when (nearly) collinear. This is twice the signed
/// area of the triangle `abc`.
#[inline]
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> f64 {
    (b - a).cross(c - a)
}

/// Signed area of the triangle `abc` (positive for CCW).
#[inline]
pub fn signed_area(a: Point2, b: Point2, c: Point2) -> f64 {
    0.5 * orient2d(a, b, c)
}

/// Unsigned area of the triangle `abc`.
#[inline]
pub fn area(a: Point2, b: Point2, c: Point2) -> f64 {
    signed_area(a, b, c).abs()
}

/// In-circle predicate for Delaunay triangulation.
///
/// For a **counter-clockwise** triangle `abc`, returns a positive value when
/// `d` lies strictly inside its circumcircle, negative outside, near zero on
/// the circle.
pub fn in_circle(a: Point2, b: Point2, c: Point2, d: Point2) -> f64 {
    let ad = a - d;
    let bd = b - d;
    let cd = c - d;
    let ad2 = ad.norm_sq();
    let bd2 = bd.norm_sq();
    let cd2 = cd.norm_sq();
    ad.x * (bd.y * cd2 - cd.y * bd2) - ad.y * (bd.x * cd2 - cd.x * bd2)
        + ad2 * (bd.x * cd.y - cd.x * bd.y)
}

/// Circumcenter of the triangle `abc`.
///
/// Returns `None` when the points are (nearly) collinear.
pub fn circumcenter(a: Point2, b: Point2, c: Point2) -> Option<Point2> {
    let d = 2.0 * orient2d(a, b, c);
    if d.abs() < 1e-300 {
        return None;
    }
    let a2 = a.norm_sq();
    let b2 = b.norm_sq();
    let c2 = c.norm_sq();
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let p = Point2::new(ux, uy);
    p.is_finite().then_some(p)
}

/// Lengths of the three edges of triangle `abc`: `(|bc|, |ca|, |ab|)`.
#[inline]
pub fn edge_lengths(a: Point2, b: Point2, c: Point2) -> [f64; 3] {
    [b.dist(c), c.dist(a), a.dist(b)]
}

/// The three interior angles of the triangle `abc`, in radians,
/// in vertex order `(at a, at b, at c)`. Degenerate triangles yield zeros.
pub fn angles(a: Point2, b: Point2, c: Point2) -> [f64; 3] {
    fn angle_at(p: Point2, q: Point2, r: Point2) -> f64 {
        let u = q - p;
        let v = r - p;
        let nu = u.norm();
        let nv = v.norm();
        if nu == 0.0 || nv == 0.0 {
            return 0.0;
        }
        (u.dot(v) / (nu * nv)).clamp(-1.0, 1.0).acos()
    }
    [angle_at(a, b, c), angle_at(b, c, a), angle_at(c, a, b)]
}

/// Axis-aligned bounding box of a point set.
///
/// Returns `(min, max)`. Empty input yields a degenerate box at the origin.
pub fn bounding_box(points: &[Point2]) -> (Point2, Point2) {
    let mut lo = Point2::new(f64::INFINITY, f64::INFINITY);
    let mut hi = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &p in points {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    if points.is_empty() {
        (Point2::ZERO, Point2::ZERO)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn vector_arithmetic_roundtrips() {
        let a = p(1.0, 2.0);
        let b = p(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn dot_and_cross_identities() {
        let a = p(3.0, 4.0);
        let b = p(-4.0, 3.0);
        assert_eq!(a.dot(b), 0.0); // perpendicular
        assert_eq!(a.cross(a), 0.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
    }

    #[test]
    fn distances() {
        assert_eq!(p(0.0, 0.0).dist(p(3.0, 4.0)), 5.0);
        assert_eq!(p(1.0, 1.0).dist_sq(p(2.0, 2.0)), 2.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = p(0.0, 0.0);
        let b = p(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), p(1.0, 2.0));
    }

    #[test]
    fn orientation_signs() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 0.0);
        let c = p(0.0, 1.0);
        assert!(orient2d(a, b, c) > 0.0); // CCW
        assert!(orient2d(a, c, b) < 0.0); // CW
        assert_eq!(orient2d(a, b, p(2.0, 0.0)), 0.0); // collinear
    }

    #[test]
    fn area_of_unit_right_triangle() {
        let ar = area(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0));
        assert!((ar - 0.5).abs() < 1e-15);
        // signed area negative for CW order
        assert!(signed_area(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)) < 0.0);
    }

    #[test]
    fn in_circle_detects_interior_and_exterior() {
        // Unit circle through these three CCW points.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert!(in_circle(a, b, c, p(0.0, 0.0)) > 0.0);
        assert!(in_circle(a, b, c, p(2.0, 2.0)) < 0.0);
        assert!(in_circle(a, b, c, p(0.0, -1.0)).abs() < 1e-12); // on circle
    }

    #[test]
    fn circumcenter_of_right_triangle_is_hypotenuse_midpoint() {
        let cc = circumcenter(p(0.0, 0.0), p(2.0, 0.0), p(0.0, 2.0)).unwrap();
        assert!((cc.x - 1.0).abs() < 1e-12);
        assert!((cc.y - 1.0).abs() < 1e-12);
        // Collinear points have no circumcenter.
        assert!(circumcenter(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)).is_none());
    }

    #[test]
    fn edge_lengths_ordering_convention() {
        let a = p(0.0, 0.0);
        let b = p(3.0, 0.0);
        let c = p(0.0, 4.0);
        let [bc, ca, ab] = edge_lengths(a, b, c);
        assert_eq!(ab, 3.0);
        assert_eq!(ca, 4.0);
        assert_eq!(bc, 5.0);
    }

    #[test]
    fn angles_sum_to_pi() {
        let s: f64 = angles(p(0.0, 0.0), p(4.0, 1.0), p(1.0, 3.0)).iter().sum();
        assert!((s - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn equilateral_angles_are_sixty_degrees() {
        let h = 3f64.sqrt() / 2.0;
        let angs = angles(p(0.0, 0.0), p(1.0, 0.0), p(0.5, h));
        for ang in angs {
            assert!((ang - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
        }
    }

    #[test]
    fn bbox_of_points() {
        let (lo, hi) = bounding_box(&[p(1.0, 5.0), p(-2.0, 3.0), p(0.0, 7.0)]);
        assert_eq!(lo, p(-2.0, 3.0));
        assert_eq!(hi, p(1.0, 7.0));
        let (lo, hi) = bounding_box(&[]);
        assert_eq!(lo, Point2::ZERO);
        assert_eq!(hi, Point2::ZERO);
    }

    #[test]
    fn degenerate_angle_is_zero() {
        let angs = angles(p(0.0, 0.0), p(0.0, 0.0), p(1.0, 0.0));
        assert_eq!(angs[0], 0.0);
    }
}
