//! Uniform midpoint refinement: split every triangle into four at its
//! edge midpoints.
//!
//! Refinement gives the reproduction a *mesh-size axis*: starting from one
//! suite mesh, each level quadruples the triangle count with identical
//! geometry and quality structure, so experiments can measure how the
//! ordering gains grow as the working set falls out of successive cache
//! levels (the `growth` experiment; the paper's §5.4 cost analysis is
//! about exactly this trade-off).
//!
//! Vertex numbering of the refined mesh: the original vertices keep their
//! ids (0..V), followed by one midpoint vertex per original edge in
//! sorted-edge order — i.e. the refined ORI numbering inherits the coarse
//! mesh's locality structure, as a real generator's refinement would.

use crate::mesh::TriMesh;
use crate::Point2;
use std::collections::HashMap;

/// One level of uniform 1→4 midpoint refinement.
///
/// Counts transform as `V' = V + E`, `F' = 4F`; the boundary polygon and
/// total area are preserved exactly (up to FP rounding of midpoints).
pub fn refine_midpoint(mesh: &TriMesh) -> TriMesh {
    let mut coords: Vec<Point2> = mesh.coords().to_vec();
    // midpoint vertex of each undirected edge, created in sorted order for
    // deterministic numbering
    let mut edges: Vec<(u32, u32)> = mesh.edges();
    edges.sort_unstable();
    let mut midpoint: HashMap<(u32, u32), u32> = HashMap::with_capacity(edges.len());
    for (a, b) in edges {
        let id = coords.len() as u32;
        coords.push(mesh.coords()[a as usize].lerp(mesh.coords()[b as usize], 0.5));
        midpoint.insert((a, b), id);
    }
    let mid = |a: u32, b: u32| midpoint[&(a.min(b), a.max(b))];

    let mut tris = Vec::with_capacity(mesh.num_triangles() * 4);
    for &[a, b, c] in mesh.triangles() {
        let (mab, mbc, mca) = (mid(a, b), mid(b, c), mid(c, a));
        // three corner triangles + the inverted middle one, all inheriting
        // the parent's orientation
        tris.push([a, mab, mca]);
        tris.push([mab, b, mbc]);
        tris.push([mca, mbc, c]);
        tris.push([mab, mbc, mca]);
    }
    TriMesh::new_unchecked(coords, tris)
}

/// `levels` successive applications of [`refine_midpoint`].
pub fn refine_levels(mesh: &TriMesh, levels: usize) -> TriMesh {
    let mut out = mesh.clone();
    for _ in 0..levels {
        out = refine_midpoint(&out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{triangle_qualities, QualityMetric};
    use crate::{generators, Adjacency, Boundary};

    #[test]
    fn counts_transform_as_v_plus_e_and_4f() {
        let m = generators::perturbed_grid(9, 7, 0.3, 3);
        let e = m.edges().len();
        let r = refine_midpoint(&m);
        assert_eq!(r.num_vertices(), m.num_vertices() + e);
        assert_eq!(r.num_triangles(), 4 * m.num_triangles());
        // still a disc
        assert_eq!(r.euler_characteristic(), m.euler_characteristic());
    }

    #[test]
    fn geometry_is_preserved() {
        let m = generators::perturbed_grid(8, 8, 0.35, 5);
        let r = refine_midpoint(&m);
        assert!((r.total_area() - m.total_area()).abs() < 1e-12 * m.num_triangles() as f64);
        let (lo0, hi0) = m.bbox();
        let (lo1, hi1) = r.bbox();
        assert!(lo0.dist(lo1) < 1e-15 && hi0.dist(hi1) < 1e-15);
        // original vertices keep their ids and positions
        assert_eq!(&r.coords()[..m.num_vertices()], m.coords());
    }

    #[test]
    fn orientation_is_inherited() {
        let mut m = generators::perturbed_grid(8, 8, 0.2, 1);
        m.orient_ccw();
        let r = refine_midpoint(&m);
        assert!(r.is_ccw(), "children of CCW parents must be CCW");
    }

    #[test]
    fn midpoint_children_preserve_parent_quality() {
        // the three corner children and the middle child of a triangle are
        // all similar to the parent, so edge-length-ratio is unchanged
        let m = generators::perturbed_grid(7, 7, 0.4, 9);
        let parent_q = triangle_qualities(&m, QualityMetric::EdgeLengthRatio);
        let child_q = triangle_qualities(&refine_midpoint(&m), QualityMetric::EdgeLengthRatio);
        for (t, &pq) in parent_q.iter().enumerate() {
            for i in 0..4 {
                assert!(
                    (child_q[4 * t + i] - pq).abs() < 1e-9,
                    "triangle {t} child {i}: {} vs parent {}",
                    child_q[4 * t + i],
                    pq
                );
            }
        }
    }

    #[test]
    fn boundary_vertices_stay_on_the_boundary() {
        let m = generators::perturbed_grid(8, 8, 0.25, 2);
        let b0 = Boundary::detect(&m);
        let r = refine_midpoint(&m);
        let b1 = Boundary::detect(&r);
        for v in 0..m.num_vertices() as u32 {
            assert_eq!(
                b0.is_boundary(v),
                b1.is_boundary(v),
                "original vertex {v} changed boundary status"
            );
        }
        // boundary edge count doubles (each split once)
        assert_eq!(b1.num_boundary(), b0.num_boundary() * 2);
    }

    #[test]
    fn refinement_is_manifold() {
        let m = generators::perturbed_grid(6, 9, 0.3, 7);
        let r = refine_levels(&m, 2);
        assert_eq!(r.num_triangles(), 16 * m.num_triangles());
        // adjacency build asserts CSR consistency; degree of original
        // interior vertices is unchanged (each neighbour replaced by a
        // midpoint)
        let a0 = Adjacency::build(&m);
        let a1 = Adjacency::build(&refine_midpoint(&m));
        let b = Boundary::detect(&m);
        for v in 0..m.num_vertices() as u32 {
            if b.is_interior(v) {
                assert_eq!(a0.degree(v), a1.degree(v), "vertex {v}");
            }
        }
    }

    #[test]
    fn zero_levels_is_identity() {
        let m = generators::perturbed_grid(5, 5, 0.2, 1);
        let r = refine_levels(&m, 0);
        assert_eq!(r.coords(), m.coords());
        assert_eq!(r.triangles(), m.triangles());
    }
}
