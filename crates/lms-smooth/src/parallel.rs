//! Parallel smoothing engines (the paper's 32-core OpenMP loop, in rayon).
//!
//! The paper pins one thread per core with a *static* schedule "evenly
//! dividing the vertices" (§5.1). Two faithful variants are provided:
//!
//! * [`SmoothEngine::smooth_parallel`] — double-buffered **Jacobi** sweeps:
//!   each thread owns a contiguous chunk of the vertex array, reads the
//!   previous sweep's positions, writes its own chunk. Fully deterministic
//!   and race-free; identical results for any thread count.
//! * [`SmoothEngine::smooth_parallel_chaotic`] — in-place **chaotic
//!   Gauss–Seidel**: positions live in atomics ([`AtomicU64`] bit-cast
//!   `f64`s, `Relaxed` ordering) and threads update their chunks in place
//!   while racing reads observe a mix of old and new neighbour positions —
//!   the semantics of the paper's OpenMP loop. Still data-race-free in the
//!   Rust memory model, merely non-deterministic in its floating-point
//!   outcome.

use crate::config::SmoothParams;
use crate::engine::SmoothEngine;
use crate::stats::{IterationStats, SmoothReport};
use crate::weighting::weighted_candidate;
use lms_mesh::geometry::Point2;
use lms_mesh::quality::QualityMetric;
use lms_mesh::{Adjacency, TriMesh};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global mesh quality computed with rayon (triangle qualities in parallel,
/// then per-vertex means in parallel). Call inside a pool `install` to bound
/// the thread count.
pub fn parallel_mesh_quality(mesh: &TriMesh, adj: &Adjacency, metric: QualityMetric) -> f64 {
    let n = mesh.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let tri_q: Vec<f64> = (0..mesh.num_triangles())
        .into_par_iter()
        .map(|t| {
            let [a, b, c] = mesh.tri_coords(t);
            metric.triangle_quality(a, b, c)
        })
        .collect();
    let sum: f64 = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let ts = adj.triangles_of(v);
            if ts.is_empty() {
                0.0
            } else {
                ts.iter().map(|&t| tri_q[t as usize]).sum::<f64>() / ts.len() as f64
            }
        })
        .sum();
    sum / n as f64
}

/// An atomically updatable position (x and y as `f64` bit patterns).
struct AtomicPoint {
    x: AtomicU64,
    y: AtomicU64,
}

impl AtomicPoint {
    fn new(p: Point2) -> Self {
        AtomicPoint { x: AtomicU64::new(p.x.to_bits()), y: AtomicU64::new(p.y.to_bits()) }
    }

    #[inline]
    fn load(&self) -> Point2 {
        Point2::new(
            f64::from_bits(self.x.load(Ordering::Relaxed)),
            f64::from_bits(self.y.load(Ordering::Relaxed)),
        )
    }

    #[inline]
    fn store(&self, p: Point2) {
        self.x.store(p.x.to_bits(), Ordering::Relaxed);
        self.y.store(p.y.to_bits(), Ordering::Relaxed);
    }
}

impl SmoothEngine {
    /// Deterministic parallel smoothing: static contiguous vertex chunks,
    /// Jacobi (double-buffered) updates. Results are bit-identical for any
    /// `num_threads`.
    pub fn smooth_parallel(&self, mesh: &mut TriMesh, num_threads: usize) -> SmoothReport {
        let pool = self.pool.get(num_threads);
        let n = mesh.num_vertices();
        assert_eq!(n, self.adjacency().num_vertices(), "engine was built for a different mesh");

        let params = self.params().clone();
        let adj = self.adjacency();
        let boundary = self.boundary();

        let initial_quality = pool.install(|| parallel_mesh_quality(mesh, adj, params.metric));
        let mut report = SmoothReport::starting(initial_quality);
        let mut quality = initial_quality;

        let mut prev: Vec<Point2> = mesh.coords().to_vec();
        let mut next: Vec<Point2> = prev.clone();
        let chunk = n.div_ceil(num_threads).max(1);

        for iter in 1..=params.max_iters {
            pool.install(|| {
                let prev_ref: &[Point2] = &prev;
                next.par_chunks_mut(chunk).enumerate().for_each(|(ci, out)| {
                    let base = ci * chunk;
                    for (off, slot) in out.iter_mut().enumerate() {
                        let v = (base + off) as u32;
                        if !boundary.is_interior(v) {
                            continue; // keeps the copied boundary position
                        }
                        let ns = adj.neighbors(v);
                        if ns.is_empty() {
                            continue;
                        }
                        let pv = prev_ref[v as usize];
                        let gathered = ns.iter().map(|&w| prev_ref[w as usize]);
                        if let Some(c) = weighted_candidate(params.weighting, pv, gathered) {
                            *slot = c;
                        }
                    }
                });
            });
            std::mem::swap(&mut prev, &mut next);

            mesh.coords_mut().copy_from_slice(&prev);
            let new_quality = pool.install(|| parallel_mesh_quality(mesh, adj, params.metric));
            let improvement = new_quality - quality;
            report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
            quality = new_quality;
            if improvement < params.tol {
                report.converged = true;
                break;
            }
        }
        mesh.coords_mut().copy_from_slice(&prev);
        report.final_quality = quality;
        report
    }

    /// Chaotic (asynchronous) Gauss–Seidel parallel smoothing — the closest
    /// analogue of the paper's in-place OpenMP loop. Positions are stored in
    /// relaxed atomics; each thread updates its static chunk in place while
    /// neighbour reads may observe either old or new positions.
    ///
    /// Non-deterministic across runs/thread counts in the last bits, but
    /// race-free and convergent in practice (asynchronous relaxation).
    pub fn smooth_parallel_chaotic(&self, mesh: &mut TriMesh, num_threads: usize) -> SmoothReport {
        let pool = self.pool.get(num_threads);
        let n = mesh.num_vertices();
        assert_eq!(n, self.adjacency().num_vertices(), "engine was built for a different mesh");

        let params = self.params().clone();
        let adj = self.adjacency();
        let boundary = self.boundary();

        let initial_quality = pool.install(|| parallel_mesh_quality(mesh, adj, params.metric));
        let mut report = SmoothReport::starting(initial_quality);
        let mut quality = initial_quality;

        let atoms: Vec<AtomicPoint> = mesh.coords().iter().map(|&p| AtomicPoint::new(p)).collect();
        let chunk = n.div_ceil(num_threads).max(1);

        for iter in 1..=params.max_iters {
            pool.install(|| {
                atoms.par_chunks(chunk).enumerate().for_each(|(ci, my)| {
                    let base = ci * chunk;
                    for (off, slot) in my.iter().enumerate() {
                        let v = (base + off) as u32;
                        if !boundary.is_interior(v) {
                            continue;
                        }
                        let ns = adj.neighbors(v);
                        if ns.is_empty() {
                            continue;
                        }
                        let pv = slot.load();
                        let gathered = ns.iter().map(|&w| atoms[w as usize].load());
                        if let Some(c) = weighted_candidate(params.weighting, pv, gathered) {
                            slot.store(c);
                        }
                    }
                });
            });

            for (slot, atom) in mesh.coords_mut().iter_mut().zip(&atoms) {
                *slot = atom.load();
            }
            let new_quality = pool.install(|| parallel_mesh_quality(mesh, adj, params.metric));
            let improvement = new_quality - quality;
            report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
            quality = new_quality;
            if improvement < params.tol {
                report.converged = true;
                break;
            }
        }
        report.final_quality = quality;
        report
    }
}

/// Convenience: build an engine and smooth in parallel in one call.
pub fn smooth_parallel(
    mesh: &mut TriMesh,
    params: &SmoothParams,
    num_threads: usize,
) -> SmoothReport {
    SmoothEngine::new(mesh, params.clone()).smooth_parallel(mesh, num_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UpdateScheme;
    use lms_mesh::generators;

    #[test]
    fn parallel_jacobi_matches_serial_jacobi_exactly() {
        let m0 = generators::perturbed_grid(18, 18, 0.35, 11);
        let params = SmoothParams::paper().with_update(UpdateScheme::Jacobi).with_max_iters(6);

        let mut serial = m0.clone();
        let sr = SmoothEngine::new(&m0, params.clone()).smooth(&mut serial);

        let mut par = m0.clone();
        let pr = SmoothEngine::new(&m0, params).smooth_parallel(&mut par, 4);

        assert_eq!(serial.coords(), par.coords(), "Jacobi must be schedule-independent");
        assert_eq!(sr.num_iterations(), pr.num_iterations());
        assert!((sr.final_quality - pr.final_quality).abs() < 1e-12);
    }

    #[test]
    fn parallel_is_deterministic_across_thread_counts() {
        let m0 = generators::perturbed_grid(15, 15, 0.3, 2);
        let params = SmoothParams::paper().with_max_iters(4);
        let mut a = m0.clone();
        let mut b = m0.clone();
        SmoothEngine::new(&m0, params.clone()).smooth_parallel(&mut a, 1);
        SmoothEngine::new(&m0, params).smooth_parallel(&mut b, 3);
        assert_eq!(a.coords(), b.coords());
    }

    #[test]
    fn chaotic_improves_quality_and_pins_boundary() {
        let m0 = generators::perturbed_grid(16, 16, 0.35, 5);
        let mut m = m0.clone();
        let engine = SmoothEngine::new(&m0, SmoothParams::paper());
        let report = engine.smooth_parallel_chaotic(&mut m, 3);
        assert!(report.total_improvement() > 0.0);
        for v in engine.boundary().boundary_vertices() {
            assert_eq!(m.coords()[v as usize], m0.coords()[v as usize]);
        }
    }

    #[test]
    fn parallel_quality_matches_serial_quality() {
        let m = generators::perturbed_grid(12, 12, 0.3, 8);
        let adj = Adjacency::build(&m);
        let serial = lms_mesh::quality::mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        let par = parallel_mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        assert!((serial - par).abs() < 1e-12);
    }

    #[test]
    fn single_thread_parallel_equals_more_threads() {
        let m0 = generators::perturbed_grid(10, 10, 0.3, 3);
        let mut one = m0.clone();
        let r1 = smooth_parallel(&mut one, &SmoothParams::paper(), 1);
        assert!(r1.total_improvement() > 0.0);
    }
}
