//! Smoothing parameters (Algorithm 1 knobs).

use lms_mesh::quality::QualityMetric;

/// In which order the sweep visits the interior vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IterationPolicy {
    /// Iterate the vertex array in storage order — the literal reading of
    /// Algorithm 1 line 11 and what the paper's static OpenMP schedule does.
    /// Reorderings change iteration *and* layout together.
    #[default]
    StorageOrder,
    /// Mesquite-style greedy traversal (§4.2): start at the worst-quality
    /// vertex, then repeatedly visit the worst-quality unvisited neighbour.
    /// The visit order is fixed by the *initial* qualities, so it is
    /// identical whatever the storage order — reorderings then change only
    /// the memory layout, which is the paper's framing for RDR.
    GreedyQuality,
}

/// Neighbour weighting of the Laplacian update.
///
/// Equation (1) of the paper is the uniform average; weighted variants are
/// the standard extensions ("extensions of Laplacian mesh smoothing" the
/// paper's §6 expects RDR to carry over to) — they change the arithmetic
/// per gathered neighbour but not the *access pattern*, which is why the
/// ordering results transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// Plain average of the neighbour positions — Equation (1).
    #[default]
    Uniform,
    /// Weights `1/|p_i − p_v|`: nearby neighbours dominate, which damps
    /// the update and resists shrinking through tight clusters.
    InverseEdgeLength,
    /// Weights `|p_i − p_v|`: far neighbours dominate, which equalises
    /// edge lengths aggressively (length-weighted Laplacian).
    EdgeLength,
}

impl Weighting {
    /// Short lowercase name for reports and CLIs.
    pub fn name(self) -> &'static str {
        match self {
            Weighting::Uniform => "uniform",
            Weighting::InverseEdgeLength => "invlen",
            Weighting::EdgeLength => "len",
        }
    }
}

/// How a sweep commits its position updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateScheme {
    /// In-place updates: later vertices see earlier vertices' new positions
    /// within the same sweep (what Mesquite's serial smoother does).
    #[default]
    GaussSeidel,
    /// Double-buffered updates: every vertex reads only previous-sweep
    /// positions. Deterministic under any parallel schedule.
    Jacobi,
}

/// Full parameter set for a smoothing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothParams {
    /// Quality metric for convergence tracking (paper: edge-length ratio).
    pub metric: QualityMetric,
    /// Stop when the global quality improves by less than this between
    /// sweeps (paper: `5e-6`, §5.1).
    pub tol: f64,
    /// Hard iteration cap (Algorithm 1 notes a maximum is always set).
    pub max_iters: usize,
    /// Sweep visit order.
    pub policy: IterationPolicy,
    /// Update commit scheme.
    pub update: UpdateScheme,
    /// "Smart" Laplacian smoothing (Freitag): a vertex move is committed
    /// only if it does not decrease the mean quality of the vertex's
    /// incident triangles. Guards against the inversions plain Laplacian
    /// smoothing can produce; one of the extensions the paper's §6 expects
    /// RDR to combine with.
    pub smart: bool,
    /// Neighbour weighting of the position update (paper: uniform).
    pub weighting: Weighting,
    /// Force the pre-SoA per-element scalar scoring path in every engine.
    /// Bit-identical to the default lane-batched scoring — the toggle
    /// exists purely as the before/after baseline of the SoA benches and
    /// the equivalence property suites.
    pub scalar_scoring: bool,
}

impl SmoothParams {
    /// The exact configuration of the paper's evaluation (§5.1):
    /// edge-length ratio, tolerance `5e-6`, storage-order Gauss–Seidel.
    pub fn paper() -> Self {
        SmoothParams {
            metric: QualityMetric::EdgeLengthRatio,
            tol: 5e-6,
            max_iters: 200,
            policy: IterationPolicy::StorageOrder,
            update: UpdateScheme::GaussSeidel,
            smart: false,
            weighting: Weighting::Uniform,
            scalar_scoring: false,
        }
    }

    /// Builder-style metric override.
    pub fn with_metric(mut self, metric: QualityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Builder-style tolerance override.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Builder-style iteration-cap override.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Builder-style policy override.
    pub fn with_policy(mut self, policy: IterationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style update-scheme override.
    pub fn with_update(mut self, update: UpdateScheme) -> Self {
        self.update = update;
        self
    }

    /// Builder-style smart-smoothing override.
    pub fn with_smart(mut self, smart: bool) -> Self {
        self.smart = smart;
        self
    }

    /// Builder-style weighting override.
    pub fn with_weighting(mut self, weighting: Weighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// Builder-style scalar-scoring override (bench/oracle baseline).
    pub fn with_scalar_scoring(mut self, scalar_scoring: bool) -> Self {
        self.scalar_scoring = scalar_scoring;
        self
    }
}

impl Default for SmoothParams {
    fn default() -> Self {
        SmoothParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_section_5_1() {
        let p = SmoothParams::paper();
        assert_eq!(p.metric, QualityMetric::EdgeLengthRatio);
        assert_eq!(p.tol, 5e-6);
        assert_eq!(p.policy, IterationPolicy::StorageOrder);
        assert_eq!(p.update, UpdateScheme::GaussSeidel);
        assert_eq!(p, SmoothParams::default());
    }

    #[test]
    fn builders_override_fields() {
        let p = SmoothParams::paper()
            .with_tol(1e-3)
            .with_max_iters(5)
            .with_metric(QualityMetric::MinAngle)
            .with_policy(IterationPolicy::GreedyQuality)
            .with_update(UpdateScheme::Jacobi);
        assert_eq!(p.tol, 1e-3);
        assert_eq!(p.max_iters, 5);
        assert_eq!(p.metric, QualityMetric::MinAngle);
        assert_eq!(p.policy, IterationPolicy::GreedyQuality);
        assert_eq!(p.update, UpdateScheme::Jacobi);
    }
}
