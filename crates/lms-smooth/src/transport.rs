//! The transport abstraction of resident smoothing: one generic drive
//! loop, pluggable data movement.
//!
//! PR 3's resident engine fused its control flow (iterate, fold part
//! deltas, test convergence) with its data movement (gather blocks, route
//! halo deltas between color steps, scatter owned coordinates back). This
//! module splits them: [`drive_resident`] owns the control flow and the
//! quality statistic, and everything that moves bytes sits behind
//! [`ResidentTransport`] — five operations that are exactly the message
//! kinds of the `lms_part::wire` protocol (gather / interior / color-step
//! / finish / scatter).
//!
//! Three transport families exist:
//!
//! * [`InProcessTransport`] (here) — the shared-address-space engine the
//!   PR 1–4 property suites pin: every part is a [`ResidentRank`] in one
//!   process, phases run on the persistent worker pool, and "routing" is
//!   a pull over the senders' outboxes. Bit-identical to the PR-3 driver
//!   by construction.
//! * `lms_dist::ProcessTransport` — every rank is a forked OS process
//!   holding its block; the same operations become wire frames over Unix
//!   pipes, with the coordinator forwarding the coalesced per-pair delta
//!   batches between ranks.
//! * `lms_dist::SocketTransport` (PR 8) — the same frames over stream
//!   *sockets* (Unix-domain or TCP): ranks dial the coordinator under a
//!   supervised retry/backoff policy and may live outside the
//!   coordinator's process tree entirely (`lms-tool dist-worker`), which
//!   is the single-host stand-in for a true multi-node deployment.
//!
//! Both transports route moved deltas **coalesced per (source part →
//! destination part) pair** along the [`lms_part::MessagePlan`] — one
//! message per pair per color step instead of one per delivery slot —
//! and charge [`ExchangeVolume`]'s message/entry/byte counters with the
//! same `lms_part::wire::halo_frame_wire_len` formula, so the in-process
//! and multi-process backends report identical exchange accounting (the
//! cross-transport oracle in `lms-dist` asserts report equality).
//!
//! The in-process transport **double-buffers** its outboxes: each rank
//! publishes color step `k`'s deltas into one buffer set while the
//! receivers of step `k+1` still pull from the other, so the per-entry
//! routing copies run inside the parallel phase (receiver-side pulls)
//! and the serial seam between color steps shrinks to `O(parts)` buffer
//! swaps — PR 3 routed every entry serially between steps.

use crate::config::UpdateScheme;
use crate::domain::{
    domain_quality, domain_quality_scored, DomainConfig, DomainPoint, SmoothDomain,
};
use crate::resident::{Neumaier, PairBatch, ResidentBlock, ResidentRank};
use crate::stats::{ExchangeVolume, IterationStats, SmoothReport};
use lms_part::wire::halo_frame_wire_len;
use lms_part::{ExchangeSchedule, MessagePlan};
use lms_trace::{NullTrace, TraceSink, TransportProfile};
use rayon::prelude::*;

/// The data-movement backend of a resident smoothing run. Operations are
/// invoked by [`drive_resident`] in a fixed order: one [`gather`], then
/// per iteration one [`interior_phase`], `num_colors` [`color_step`]s and
/// one [`finish_iteration`], then one [`scatter`].
///
/// Contract for bit-identity across transports (property-tested by the
/// `lms-dist` cross-transport oracle): every operation must act exactly
/// like the corresponding [`ResidentRank`] calls on every part, deltas
/// must be delivered batched per (source, destination) pair in ascending
/// source-part order, and [`finish_iteration`] must report the per-part
/// stat deltas in part order.
///
/// [`gather`]: Self::gather
/// [`interior_phase`]: Self::interior_phase
/// [`color_step`]: Self::color_step
/// [`finish_iteration`]: Self::finish_iteration
/// [`scatter`]: Self::scatter
pub trait ResidentTransport<P: DomainPoint> {
    /// The one full gather: load every rank's owned+halo coordinates and
    /// local element scores from the global arrays.
    fn gather(&mut self, coords: &[P], scores: &[(f64, bool)]);

    /// Sweep every rank's part-interior vertices (nothing to exchange:
    /// interior vertices are in no other part's halo).
    fn interior_phase(&mut self);

    /// One interface color step on every rank: deliver the previous
    /// round's halo deltas, sweep color `color`, publish this round's
    /// moved deltas. Adds the round's message/entry/byte traffic to
    /// `volume`.
    fn color_step(&mut self, color: usize, volume: &mut ExchangeVolume);

    /// Iteration end: deliver the last round's deltas, run the plain
    /// re-score where needed, and push every rank's `Σ w_t·Δq_t` stat
    /// delta into `deltas` **in part order**. A transport that overlaps
    /// color steps may still be draining the last round's halo traffic
    /// here — `volume` lets it charge that traffic in the phase where it
    /// actually lands, so totals agree across transports at every
    /// iteration boundary.
    fn finish_iteration(&mut self, deltas: &mut Vec<f64>, volume: &mut ExchangeVolume);

    /// The one full scatter: write every rank's owned coordinates back
    /// into the global array (parts own disjoint vertex sets).
    fn scatter(&mut self, coords: &mut [P]);
}

/// The generic resident drive loop over any [`ResidentTransport`]: one
/// full gather, per iteration an interior phase plus one color step per
/// interface color with halo-delta exchange in between, the part-ordered
/// Neumaier fold of the quality statistic, one full scatter. The
/// transport moves the bytes; this function owns iteration control,
/// convergence and the [`ExchangeVolume`] phase counters — which is why
/// `full_gathers == 1 && full_scatters == 1` holds for every backend.
pub fn drive_resident<const C: usize, D: SmoothDomain<C>, T: ResidentTransport<D::Point>>(
    dom: &D,
    cfg: &DomainConfig,
    elem_w: &[f64],
    num_colors: usize,
    transport: &mut T,
    coords: &mut [D::Point],
) -> SmoothReport {
    drive_resident_with(dom, cfg, elem_w, num_colors, transport, coords, &mut NullTrace)
}

/// [`drive_resident`] with an explicit [`TraceSink`]. The sink is a
/// compile-time switch: with [`NullTrace`] every `if S::ENABLED` guard
/// is dead code and the monomorphisation is exactly the untraced driver
/// (zero clock reads — guarded by a `lms_trace::clock_reads` test).
/// Spans emitted: `gather`, then per iteration `interior`, one
/// `color_step` per color (args: iteration, color) and `finish`, then
/// `scatter`. Tracing is observation-only: the traced run's coords and
/// report are bit-identical to the untraced run's.
pub fn drive_resident_with<
    const C: usize,
    D: SmoothDomain<C>,
    T: ResidentTransport<D::Point>,
    S: TraceSink,
>(
    dom: &D,
    cfg: &DomainConfig,
    elem_w: &[f64],
    num_colors: usize,
    transport: &mut T,
    coords: &mut [D::Point],
    sink: &mut S,
) -> SmoothReport {
    assert_eq!(coords.len(), dom.num_vertices(), "engine was built for a different mesh");
    assert_eq!(
        cfg.update,
        UpdateScheme::GaussSeidel,
        "resident smoothing is an in-place (Gauss-Seidel) schedule"
    );

    // initial scoring pass + quality: the same values a fresh quality
    // cache would hold, folded in the same order — so the running sum
    // starts bit-equal to the other engines'; the canonical initial
    // quality is reduced from the same table (one scoring sweep, not two)
    let init_scores = initial_scores(dom, cfg, coords);
    let mut qsum = Neumaier::default();
    for (t, &(q, _)) in init_scores.iter().enumerate() {
        qsum.add(q * elem_w[t]);
    }
    let initial_quality = domain_quality_scored(dom, &init_scores);
    let mut report = SmoothReport::starting(initial_quality);
    let mut volume = ExchangeVolume::default();
    let mut quality = initial_quality;

    if cfg.max_iters == 0 {
        report.exchange = Some(volume);
        return report;
    }

    // the one full gather: blocks become resident now
    if S::ENABLED {
        sink.begin("gather", 0, 0);
    }
    transport.gather(coords, &init_scores);
    if S::ENABLED {
        sink.end("gather");
    }
    volume.full_gathers += 1;

    let mut deltas: Vec<f64> = Vec::new();
    for iter in 1..=cfg.max_iters {
        if S::ENABLED {
            sink.begin("interior", iter as u32, 0);
        }
        transport.interior_phase();
        if S::ENABLED {
            sink.end("interior");
        }
        for c in 0..num_colors {
            volume.exchange_rounds += 1;
            if S::ENABLED {
                sink.begin("color_step", iter as u32, c as u32);
            }
            transport.color_step(c, &mut volume);
            if S::ENABLED {
                sink.end("color_step");
            }
        }
        deltas.clear();
        if S::ENABLED {
            sink.begin("finish", iter as u32, 0);
        }
        transport.finish_iteration(&mut deltas, &mut volume);
        if S::ENABLED {
            sink.end("finish");
        }

        // fold part deltas in part order: deterministic for any thread
        // count (and any transport), same skip-zero rule as the cache's
        // set_star
        for &d in &deltas {
            if d != 0.0 {
                qsum.add(d);
            }
        }
        let new_quality = qsum.value() / dom.num_vertices() as f64;
        let improvement = new_quality - quality;
        report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
        quality = new_quality;
        if improvement < cfg.tol {
            report.converged = true;
            break;
        }
    }

    // the one full scatter
    if S::ENABLED {
        sink.begin("scatter", 0, 0);
    }
    transport.scatter(coords);
    if S::ENABLED {
        sink.end("scatter");
    }
    volume.full_scatters += 1;

    let exact = domain_quality(dom, coords);
    if let Some(last) = report.iterations.last_mut() {
        last.quality = exact;
    }
    report.final_quality = exact;
    report.exchange = Some(volume);
    report
}

/// Recovery policy of [`drive_resident_ft`]: how often the transport is
/// asked to checkpoint and how many recoveries a run may consume before
/// giving up with the underlying error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtPolicy {
    /// Checkpoint every `n` iteration boundaries (values below 1 are
    /// treated as 1). A checkpoint is always taken at the final boundary
    /// so a scatter failure never replays smoothing work.
    pub checkpoint_every: usize,
    /// Recovery budget: the run fails with the last transport error once
    /// more than this many recoveries would be needed.
    pub max_recoveries: usize,
}

impl Default for FtPolicy {
    fn default() -> Self {
        FtPolicy { checkpoint_every: 1, max_recoveries: 8 }
    }
}

/// What fault tolerance did during a [`drive_resident_ft`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FtStats {
    /// One human-readable entry per recovery, in order: which phase
    /// failed and the transport's diagnosis of the failure.
    pub recoveries: Vec<String>,
    /// Checkpoints taken (iteration boundaries, per
    /// [`FtPolicy::checkpoint_every`], plus the final boundary).
    pub checkpoints: usize,
}

/// A fallible, recoverable [`ResidentTransport`]: the same five data
/// movements, each allowed to fail with a typed error, plus the two
/// resilience operations [`drive_resident_ft`] needs — checkpoint and
/// recover.
///
/// Contract, on top of the [`ResidentTransport`] bit-identity contract:
///
/// * after a successful [`try_gather`](Self::try_gather) the transport
///   holds a checkpoint equivalent to the gathered state (so a failure
///   in iteration 1 is recoverable without a separate checkpoint call);
/// * [`take_checkpoint`](Self::take_checkpoint) is called only at
///   iteration boundaries and must be atomic — on failure the previous
///   checkpoint stays valid;
/// * after a successful [`recover`](Self::recover) every rank holds
///   exactly the state of the last checkpoint, bit for bit, and the
///   transport is ready to re-run the iteration sequence from that
///   boundary; recovery traffic must not be charged to any
///   [`ExchangeVolume`] (recovered runs report byte counts identical to
///   failure-free runs).
pub trait FtResidentTransport<P: DomainPoint> {
    /// The transport's failure diagnosis (dead rank, stalled rank,
    /// corrupt frame, …).
    type Error: std::fmt::Debug + std::fmt::Display;

    /// Fallible [`ResidentTransport::gather`]; primes the checkpoint.
    fn try_gather(&mut self, coords: &[P], scores: &[(f64, bool)]) -> Result<(), Self::Error>;

    /// Fallible [`ResidentTransport::interior_phase`].
    fn try_interior_phase(&mut self) -> Result<(), Self::Error>;

    /// Fallible [`ResidentTransport::color_step`].
    fn try_color_step(
        &mut self,
        color: usize,
        volume: &mut ExchangeVolume,
    ) -> Result<(), Self::Error>;

    /// Fallible [`ResidentTransport::finish_iteration`].
    fn try_finish_iteration(
        &mut self,
        deltas: &mut Vec<f64>,
        volume: &mut ExchangeVolume,
    ) -> Result<(), Self::Error>;

    /// Fallible [`ResidentTransport::scatter`].
    fn try_scatter(&mut self, coords: &mut [P]) -> Result<(), Self::Error>;

    /// Atomically capture every rank's iteration-boundary state as the
    /// new recovery checkpoint.
    fn take_checkpoint(&mut self) -> Result<(), Self::Error>;

    /// Whether [`take_checkpoint`](Self::take_checkpoint) defers its
    /// collection: an `Ok` return then means this boundary's round was
    /// *issued* and the **previous** boundary's round committed, so the
    /// recovery state the transport holds is one checkpoint behind the
    /// call just made. The driver mirrors the discipline with a
    /// one-slot pending snapshot queue, keeping its fold snapshot
    /// paired with whatever the transport would actually reload. A
    /// deferring transport trades up to one extra checkpoint interval
    /// of replay after a failure for hiding the collection wait behind
    /// the next iteration's compute.
    fn deferred_checkpoints(&self) -> bool {
        false
    }

    /// Put every rank back into the last checkpoint's state after
    /// `failure` — reap/replace dead ranks, resynchronise survivors,
    /// reload state. May itself fail (e.g. another rank died during
    /// recovery); the driver retries against its recovery budget.
    fn recover(&mut self, failure: &Self::Error) -> Result<(), Self::Error>;
}

/// The fault-tolerant twin of [`drive_resident`]: identical control flow
/// and arithmetic on the failure-free path (same transport-operation
/// sequence, same part-ordered Neumaier fold, same convergence rule — a
/// failure-free run returns a bit-identical [`SmoothReport`]), plus
/// checkpoint/replay recovery around it.
///
/// At every checkpoint boundary the driver snapshots its own fold state
/// (running quality sum, iteration list, exchange counters) next to the
/// transport's rank checkpoint; when a transport operation fails it runs
/// [`FtResidentTransport::recover`], rolls its fold state back to the
/// snapshot, and replays the lost iterations. Replayed work is
/// deterministic from the checkpoint state, so a recovered run's final
/// coords and report are bit-identical to a failure-free run's.
pub fn drive_resident_ft<const C: usize, D: SmoothDomain<C>, T: FtResidentTransport<D::Point>>(
    dom: &D,
    cfg: &DomainConfig,
    elem_w: &[f64],
    num_colors: usize,
    transport: &mut T,
    coords: &mut [D::Point],
    policy: &FtPolicy,
) -> Result<(SmoothReport, FtStats), T::Error> {
    drive_resident_ft_with(dom, cfg, elem_w, num_colors, transport, coords, policy, &mut NullTrace)
}

/// [`drive_resident_ft`] with an explicit [`TraceSink`] (see
/// [`drive_resident_with`] for the compile-time-switch contract). On top
/// of the failure-free span taxonomy this driver emits `checkpoint` and
/// `recover` spans. Spans stay balanced through failures: every fallible
/// operation's span is closed *after* capturing its `Result` and before
/// acting on it, so a kill/recovery cycle never leaves a dangling begin.
#[allow(clippy::too_many_arguments)]
pub fn drive_resident_ft_with<
    const C: usize,
    D: SmoothDomain<C>,
    T: FtResidentTransport<D::Point>,
    S: TraceSink,
>(
    dom: &D,
    cfg: &DomainConfig,
    elem_w: &[f64],
    num_colors: usize,
    transport: &mut T,
    coords: &mut [D::Point],
    policy: &FtPolicy,
    sink: &mut S,
) -> Result<(SmoothReport, FtStats), T::Error> {
    assert_eq!(coords.len(), dom.num_vertices(), "engine was built for a different mesh");
    assert_eq!(
        cfg.update,
        UpdateScheme::GaussSeidel,
        "resident smoothing is an in-place (Gauss-Seidel) schedule"
    );

    let init_scores = initial_scores(dom, cfg, coords);
    let mut qsum = Neumaier::default();
    for (t, &(q, _)) in init_scores.iter().enumerate() {
        qsum.add(q * elem_w[t]);
    }
    let initial_quality = domain_quality_scored(dom, &init_scores);
    let mut report = SmoothReport::starting(initial_quality);
    let mut volume = ExchangeVolume::default();
    let mut quality = initial_quality;
    let mut stats = FtStats::default();

    if cfg.max_iters == 0 {
        report.exchange = Some(volume);
        return Ok((report, stats));
    }

    let mut recoveries_left = policy.max_recoveries;
    // On failure: recover (retrying recovery itself against the budget),
    // recording one diagnosis line per attempt. Falls through once the
    // transport is back at the last checkpoint.
    macro_rules! recover_from {
        ($err:expr, $phase:expr) => {{
            let mut err = $err;
            loop {
                if recoveries_left == 0 {
                    return Err(err);
                }
                recoveries_left -= 1;
                stats.recoveries.push(format!("{}: {}", $phase, err));
                if S::ENABLED {
                    sink.begin("recover", 0, 0);
                }
                let recovered = transport.recover(&err);
                if S::ENABLED {
                    sink.end("recover");
                }
                match recovered {
                    Ok(()) => break,
                    Err(next) => err = next,
                }
            }
        }};
    }

    // The one full gather. A failure here is recovered like any other:
    // `try_gather` primes the transport's checkpoint before moving data,
    // so `recover` reloads every rank with exactly the gathered state.
    if S::ENABLED {
        sink.begin("gather", 0, 0);
    }
    let gathered = transport.try_gather(coords, &init_scores);
    if S::ENABLED {
        sink.end("gather");
    }
    if let Err(e) = gathered {
        recover_from!(e, "gather");
    }
    volume.full_gathers += 1;

    // the coordinator-side half of a checkpoint: everything the fold
    // needs to replay from the matching rank checkpoint
    struct Snap {
        qsum: Neumaier,
        quality: f64,
        iters_kept: usize,
        volume: ExchangeVolume,
        next_iter: usize,
        converged: bool,
        done: bool,
    }
    let mut snap =
        Snap { qsum, quality, iters_kept: 0, volume, next_iter: 1, converged: false, done: false };
    // A deferring transport (see `deferred_checkpoints`) commits each
    // checkpoint round one boundary late: its `Ok` promotes the
    // *previous* boundary's snapshot into `snap` and parks this
    // boundary's in the one-slot queue. For an immediate transport the
    // queue is never used and `snap` advances directly.
    let mut pending_snap: Option<Snap> = None;

    fn attempt_iteration<P: DomainPoint, T: FtResidentTransport<P>, S: TraceSink>(
        transport: &mut T,
        num_colors: usize,
        iter: u32,
        volume: &mut ExchangeVolume,
        deltas: &mut Vec<f64>,
        sink: &mut S,
    ) -> Result<(), T::Error> {
        if S::ENABLED {
            sink.begin("interior", iter, 0);
        }
        let interior = transport.try_interior_phase();
        if S::ENABLED {
            sink.end("interior");
        }
        interior?;
        for c in 0..num_colors {
            volume.exchange_rounds += 1;
            if S::ENABLED {
                sink.begin("color_step", iter, c as u32);
            }
            let stepped = transport.try_color_step(c, volume);
            if S::ENABLED {
                sink.end("color_step");
            }
            stepped?;
        }
        deltas.clear();
        if S::ENABLED {
            sink.begin("finish", iter, 0);
        }
        let finished = transport.try_finish_iteration(deltas, volume);
        if S::ENABLED {
            sink.end("finish");
        }
        finished?;
        Ok(())
    }

    let ckpt_every = policy.checkpoint_every.max(1);
    let n = dom.num_vertices() as f64;
    let mut deltas: Vec<f64> = Vec::new();
    let mut iter = 1usize;
    let mut converged = false;
    let mut done = false;
    loop {
        if done {
            // the one full scatter; on failure, recover and fall into
            // the rewind below — with a deferring transport the
            // restored checkpoint may predate the `done` boundary, so
            // the lost iterations replay before the scatter is retried
            // (for an immediate transport the snapshot IS the `done`
            // boundary and the rewind is a no-op retry)
            if S::ENABLED {
                sink.begin("scatter", 0, 0);
            }
            let scattered = transport.try_scatter(coords);
            if S::ENABLED {
                sink.end("scatter");
            }
            match scattered {
                Ok(()) => break,
                Err(e) => recover_from!(e, "scatter"),
            }
        } else {
            match attempt_iteration(
                transport,
                num_colors,
                iter as u32,
                &mut volume,
                &mut deltas,
                sink,
            ) {
                Ok(()) => {
                    for &d in &deltas {
                        if d != 0.0 {
                            qsum.add(d);
                        }
                    }
                    let new_quality = qsum.value() / n;
                    let improvement = new_quality - quality;
                    report.iterations.push(IterationStats {
                        iter,
                        quality: new_quality,
                        improvement,
                    });
                    quality = new_quality;
                    converged = improvement < cfg.tol;
                    done = converged || iter == cfg.max_iters;
                    let boundary_due = done || iter.is_multiple_of(ckpt_every);
                    iter += 1;
                    if boundary_due {
                        if S::ENABLED {
                            sink.begin("checkpoint", iter as u32, 0);
                        }
                        let checkpointed = transport.take_checkpoint();
                        if S::ENABLED {
                            sink.end("checkpoint");
                        }
                        match checkpointed {
                            Ok(()) => {
                                stats.checkpoints += 1;
                                let new_snap = Snap {
                                    qsum,
                                    quality,
                                    iters_kept: report.iterations.len(),
                                    volume,
                                    next_iter: iter,
                                    converged,
                                    done,
                                };
                                if transport.deferred_checkpoints() {
                                    if let Some(committed) = pending_snap.take() {
                                        snap = committed;
                                    }
                                    pending_snap = Some(new_snap);
                                } else {
                                    snap = new_snap;
                                }
                                continue;
                            }
                            Err(e) => recover_from!(e, "checkpoint"),
                        }
                    } else {
                        continue;
                    }
                }
                Err(e) => recover_from!(e, format!("iteration {iter}")),
            }
        }
        // recovered: rewind the fold to the snapshot matching the rank
        // checkpoint the transport just restored, then replay. A round
        // still pending at the failure was abandoned with it — its
        // snapshot must never be promoted.
        pending_snap = None;
        qsum = snap.qsum;
        quality = snap.quality;
        report.iterations.truncate(snap.iters_kept);
        volume = snap.volume;
        iter = snap.next_iter;
        converged = snap.converged;
        done = snap.done;
    }

    volume.full_scatters += 1;
    let exact = domain_quality(dom, coords);
    if let Some(last) = report.iterations.last_mut() {
        last.quality = exact;
    }
    report.final_quality = exact;
    report.converged = converged;
    report.exchange = Some(volume);
    Ok((report, stats))
}

/// The drivers' initial full scoring pass: every element scored on the
/// global coordinates, in element order. Runs the lane-batched SoA
/// kernel unless the scalar baseline is forced — both produce identical
/// bits per element, so either way the table matches a fresh quality
/// cache exactly.
fn initial_scores<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    cfg: &DomainConfig,
    coords: &[D::Point],
) -> Vec<(f64, bool)> {
    if cfg.scalar_scoring {
        dom.elements().iter().map(|&e| dom.score(coords, e)).collect()
    } else {
        let mut out = Vec::new();
        crate::soa::score_elements_batched(dom, coords, dom.elements(), &mut out);
        out
    }
}

/// Raw coordinate base pointer for the final disjoint scatter. Soundness:
/// parts own disjoint global vertex sets (a partition invariant,
/// property-tested in `lms-part`), so no slot is written by two parts.
struct ScatterPtr<P>(*mut P);
unsafe impl<P> Sync for ScatterPtr<P> {}
unsafe impl<P> Send for ScatterPtr<P> {}

/// The shared-address-space transport: every part is a [`ResidentRank`]
/// in this process, phases run on the persistent worker pool, and delta
/// routing is a receiver-side pull over double-buffered sender outboxes
/// (see the module docs). This is the PR-3 resident engine's behaviour,
/// bit for bit — the unmodified PR 1–4 property suites pin it.
pub struct InProcessTransport<'a, const C: usize, D: SmoothDomain<C>> {
    ranks: Vec<ResidentRank<'a, C, D>>,
    /// The published buffer set: `prev_out[p]` holds part `p`'s outbox
    /// of the *previous* exchange round (the one receivers pull), while
    /// each rank fills its in-rank buffer — swapped every round.
    prev_out: Vec<Vec<PairBatch<D::Point>>>,
    blocks: &'a [ResidentBlock<C>],
    pool: &'a rayon::ThreadPool,
}

impl<'a, const C: usize, D: SmoothDomain<C>> InProcessTransport<'a, C, D> {
    /// Build the transport: one rank per part plus the double-buffered
    /// outboxes shaped by the schedule's [`MessagePlan`].
    pub fn new(
        dom: &'a D,
        cfg: &DomainConfig,
        blocks: &'a [ResidentBlock<C>],
        schedule: &'a ExchangeSchedule,
        pool: &'a rayon::ThreadPool,
    ) -> Self {
        let plan = MessagePlan::build(schedule);
        let ranks: Vec<ResidentRank<'a, C, D>> = blocks
            .iter()
            .enumerate()
            .map(|(p, block)| ResidentRank::new(dom, cfg, p as u32, block, schedule, &plan))
            .collect();
        let prev_out = ranks.iter().map(|r| r.outbox_template()).collect();
        InProcessTransport { ranks, prev_out, blocks, pool }
    }
}

impl<const C: usize, D: SmoothDomain<C>> ResidentTransport<D::Point>
    for InProcessTransport<'_, C, D>
{
    fn gather(&mut self, coords: &[D::Point], scores: &[(f64, bool)]) {
        let ranks = &mut self.ranks;
        self.pool.install(|| {
            ranks.par_iter_mut().for_each(|rank| rank.load_global(coords, scores));
        });
    }

    fn interior_phase(&mut self) {
        let ranks = &mut self.ranks;
        self.pool.install(|| {
            ranks.par_iter_mut().for_each(|rank| rank.sweep_interior());
        });
    }

    fn color_step(&mut self, color: usize, volume: &mut ExchangeVolume) {
        let ranks = &mut self.ranks;
        let published: &[Vec<PairBatch<D::Point>>] = &self.prev_out;
        // pull, apply, sweep and publish fully in parallel: the routing
        // copies run receiver-side against the buffers published last
        // round, overlapping with this round's sweeps across parts
        self.pool.install(|| {
            ranks.par_iter_mut().for_each(|rank| {
                rank.pull_from(published);
                rank.apply_pending();
                rank.sweep_color(color);
                rank.route_moved();
            });
        });
        // serial seam: O(parts) buffer swaps + the deterministic traffic
        // accounting (charged with the wire formula, so in-process and
        // multi-process reports agree byte for byte)
        for (p, rank) in self.ranks.iter_mut().enumerate() {
            for batch in rank.outbox() {
                if !batch.slots.is_empty() {
                    volume.halo_messages_sent += 1;
                    volume.halo_entries_sent += batch.slots.len();
                    volume.halo_bytes_sent += halo_frame_wire_len(D::Point::DIM, batch.slots.len());
                }
            }
            rank.swap_outbox(&mut self.prev_out[p]);
        }
    }

    // the in-process transport charges every round's traffic at publish
    // time inside `color_step`, so nothing is left to charge here
    fn finish_iteration(&mut self, deltas: &mut Vec<f64>, _volume: &mut ExchangeVolume) {
        let ranks = &mut self.ranks;
        let published: &[Vec<PairBatch<D::Point>>] = &self.prev_out;
        self.pool.install(|| {
            ranks.par_iter_mut().for_each(|rank| {
                rank.pull_from(published);
                rank.finalize_iteration();
            });
        });
        for (p, rank) in self.ranks.iter_mut().enumerate() {
            deltas.push(rank.take_delta());
            // the published buffers were consumed by this pull; drain
            // them so the next iteration's first color step starts clean
            for batch in &mut self.prev_out[p] {
                batch.clear();
            }
        }
    }

    fn scatter(&mut self, coords: &mut [D::Point]) {
        self.scatter_impl(coords);
    }
}

/// The in-process transport cannot fail: ranks share the coordinator's
/// address space, so there is no process to die, no pipe to stall and no
/// wire to corrupt. Checkpointing is a no-op (state is never lost) and
/// `recover` is statically unreachable — [`drive_resident_ft`] over this
/// transport compiles down to exactly [`drive_resident`]'s behaviour,
/// which is what makes it the graceful-degradation fallback when rank
/// processes cannot be spawned at all.
impl<const C: usize, D: SmoothDomain<C>> FtResidentTransport<D::Point>
    for InProcessTransport<'_, C, D>
{
    type Error = std::convert::Infallible;

    fn try_gather(
        &mut self,
        coords: &[D::Point],
        scores: &[(f64, bool)],
    ) -> Result<(), Self::Error> {
        self.gather(coords, scores);
        Ok(())
    }

    fn try_interior_phase(&mut self) -> Result<(), Self::Error> {
        self.interior_phase();
        Ok(())
    }

    fn try_color_step(
        &mut self,
        color: usize,
        volume: &mut ExchangeVolume,
    ) -> Result<(), Self::Error> {
        self.color_step(color, volume);
        Ok(())
    }

    fn try_finish_iteration(
        &mut self,
        deltas: &mut Vec<f64>,
        volume: &mut ExchangeVolume,
    ) -> Result<(), Self::Error> {
        self.finish_iteration(deltas, volume);
        Ok(())
    }

    fn try_scatter(&mut self, coords: &mut [D::Point]) -> Result<(), Self::Error> {
        self.scatter_impl(coords);
        Ok(())
    }

    fn take_checkpoint(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    fn recover(&mut self, failure: &Self::Error) -> Result<(), Self::Error> {
        match *failure {}
    }
}

impl<const C: usize, D: SmoothDomain<C>> InProcessTransport<'_, C, D> {
    /// Switch per-rank phase self-timing on or off (off by default).
    /// Observation-only: timing changes no sweep arithmetic, no exchange
    /// contents and no fold order, so a profiled run's coordinates and
    /// report (minus `phase_breakdown`) are bit-identical.
    pub fn set_profiling(&mut self, on: bool) {
        for rank in &mut self.ranks {
            rank.set_timing(on);
        }
    }

    /// Drain the accumulated profile: per-rank phase timings plus the
    /// receiver-side per-(src,dst) routing matrix. The in-process
    /// transport has no frames and never waits, so its encode/decode/
    /// poll-wait totals are zero by definition.
    pub fn take_profile(&mut self) -> TransportProfile {
        let parts = self.ranks.len();
        let mut profile = TransportProfile {
            route_pair_ns: vec![0u64; parts * parts],
            ..TransportProfile::default()
        };
        for (p, rank) in self.ranks.iter_mut().enumerate() {
            profile.rank_phases.push(rank.take_phases());
            profile.scored_elements += rank.take_scored();
            for (s, ns) in rank.take_route_ns().into_iter().enumerate() {
                profile.route_pair_ns[s * parts + p] += ns;
            }
        }
        profile
    }

    fn scatter_impl(&mut self, coords: &mut [D::Point]) {
        let scatter = ScatterPtr(coords.as_mut_ptr());
        let scatter = &scatter;
        let ranks: &[ResidentRank<'_, C, D>] = &self.ranks;
        let blocks = self.blocks;
        self.pool.install(|| {
            (0..ranks.len()).into_par_iter().for_each(|i| {
                for (j, &v) in blocks[i].owned().iter().enumerate() {
                    // SAFETY: `v` is owned by part `i` alone; parts
                    // partition the vertex set, so no two workers
                    // write the same slot.
                    unsafe { *scatter.0.add(v as usize) = ranks[i].owned_coord(j) };
                }
            });
        });
    }
}
