//! Memory-access tracing.
//!
//! The paper measures reuse distance by "a verbose run noting the data
//! locations being addressed" (§5.2.3). [`AccessSink`] is that hook: the
//! traced engine reports the *storage index* of every vertex record it
//! touches — one event for the vertex being smoothed, then one per
//! neighbour whose coordinates are gathered. The resulting index stream is
//! what `lms-cache` feeds to the reuse-distance analyser and the cache
//! simulator.

/// Receiver for the vertex-access stream of a smoothing run.
pub trait AccessSink {
    /// A vertex record at storage position `idx` was accessed.
    fn access(&mut self, idx: u32);

    /// A sweep over the mesh finished (used to segment Figure 6's
    /// per-iteration profiles). Default: ignore.
    fn end_iteration(&mut self) {}
}

/// Discards all events (lets the traced engine double as the plain one).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AccessSink for NullSink {
    #[inline]
    fn access(&mut self, _idx: u32) {}
}

/// Records the full access stream and the iteration boundaries.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Storage indices in access order.
    pub accesses: Vec<u32>,
    /// `accesses` offsets at which each iteration ended.
    pub iteration_ends: Vec<usize>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The access slice of iteration `it` (0-based).
    pub fn iteration(&self, it: usize) -> &[u32] {
        let start = if it == 0 { 0 } else { self.iteration_ends[it - 1] };
        let end = self.iteration_ends.get(it).copied().unwrap_or(self.accesses.len());
        &self.accesses[start..end]
    }

    /// Number of completed iterations recorded.
    pub fn num_iterations(&self) -> usize {
        self.iteration_ends.len()
    }
}

impl AccessSink for VecSink {
    #[inline]
    fn access(&mut self, idx: u32) {
        self.accesses.push(idx);
    }

    fn end_iteration(&mut self) {
        self.iteration_ends.push(self.accesses.len());
    }
}

/// Counts events without storing them.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink {
    /// Total number of accesses seen.
    pub count: u64,
    /// Number of completed iterations.
    pub iterations: u32,
}

impl AccessSink for CountSink {
    #[inline]
    fn access(&mut self, _idx: u32) {
        self.count += 1;
    }

    fn end_iteration(&mut self) {
        self.iterations += 1;
    }
}

/// One sweep's access trace per static chunk: the vertex index space
/// `0..n` is split into `num_chunks` contiguous ranges (exactly like
/// [`SmoothEngine::smooth_parallel`](crate::SmoothEngine::smooth_parallel)'s
/// schedule and the paper's OpenMP static schedule), and each chunk's trace
/// lists the accesses its thread performs: the interior vertex, then its
/// neighbours.
pub fn chunked_sweep_traces(
    adj: &lms_mesh::Adjacency,
    boundary: &lms_mesh::Boundary,
    num_chunks: usize,
) -> Vec<Vec<u32>> {
    chunked_sweep_traces_opts(adj, boundary, num_chunks, false)
}

/// [`chunked_sweep_traces`] optionally including the per-vertex quality
/// update's triangle-record accesses (element ids `num_vertices + t`), as
/// in [`SmoothEngine::smooth_traced_with_quality`](crate::SmoothEngine::smooth_traced_with_quality).
pub fn chunked_sweep_traces_opts(
    adj: &lms_mesh::Adjacency,
    boundary: &lms_mesh::Boundary,
    num_chunks: usize,
    with_quality: bool,
) -> Vec<Vec<u32>> {
    assert!(num_chunks > 0, "need at least one chunk");
    let n = adj.num_vertices();
    let chunk = n.div_ceil(num_chunks).max(1);
    (0..num_chunks)
        .map(|c| {
            let lo = (c * chunk).min(n);
            let hi = ((c + 1) * chunk).min(n);
            let mut trace = Vec::new();
            for v in lo as u32..hi as u32 {
                if !boundary.is_interior(v) {
                    continue;
                }
                let ns = adj.neighbors(v);
                if ns.is_empty() {
                    continue;
                }
                trace.push(v);
                trace.extend_from_slice(ns);
                if with_quality {
                    for &t in adj.triangles_of(v) {
                        trace.push(n as u32 + t);
                    }
                }
            }
            trace
        })
        .collect()
}

impl<S: AccessSink + ?Sized> AccessSink for &mut S {
    #[inline]
    fn access(&mut self, idx: u32) {
        (**self).access(idx);
    }

    fn end_iteration(&mut self) {
        (**self).end_iteration();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_and_segments() {
        let mut s = VecSink::new();
        s.access(3);
        s.access(1);
        s.end_iteration();
        s.access(2);
        s.end_iteration();
        assert_eq!(s.accesses, vec![3, 1, 2]);
        assert_eq!(s.num_iterations(), 2);
        assert_eq!(s.iteration(0), &[3, 1]);
        assert_eq!(s.iteration(1), &[2]);
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        for i in 0..10 {
            s.access(i);
        }
        s.end_iteration();
        assert_eq!(s.count, 10);
        assert_eq!(s.iterations, 1);
    }

    #[test]
    fn chunked_traces_concatenate_to_serial_sweep() {
        use lms_mesh::{generators, Adjacency, Boundary};
        let m = generators::perturbed_grid(9, 9, 0.3, 1);
        let adj = Adjacency::build(&m);
        let b = Boundary::detect(&m);
        let serial = chunked_sweep_traces(&adj, &b, 1);
        assert_eq!(serial.len(), 1);
        for p in [2usize, 3, 5] {
            let chunks = chunked_sweep_traces(&adj, &b, p);
            assert_eq!(chunks.len(), p);
            assert_eq!(chunks.concat(), serial[0], "p={p} must cover the same accesses");
        }
    }

    #[test]
    fn chunked_trace_matches_engine_trace() {
        use crate::{SmoothEngine, SmoothParams};
        use lms_mesh::generators;
        let m = generators::perturbed_grid(8, 8, 0.25, 4);
        let engine = SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(1));
        let mut sink = VecSink::new();
        engine.smooth_traced(&mut m.clone(), &mut sink);
        let chunks = chunked_sweep_traces(engine.adjacency(), engine.boundary(), 1);
        assert_eq!(chunks[0], sink.accesses);
    }

    #[test]
    fn sink_by_mut_ref_forwards() {
        let mut s = VecSink::new();
        {
            let by_ref: &mut VecSink = &mut s;
            by_ref.access(9);
            by_ref.end_iteration();
        }
        assert_eq!(s.accesses, vec![9]);
        assert_eq!(s.num_iterations(), 1);
    }
}
