//! Per-engine thread-pool reuse.
//!
//! The rayon shim's [`rayon::ThreadPool`] now keeps persistent parked
//! workers — construction is the only moment OS threads are spawned. The
//! parallel engines used to rebuild a pool inside every `smooth()` call,
//! which under the persistent-worker model would still pay
//! `num_threads − 1` spawns *per run*. [`PoolCache`] moves that cost to
//! once per engine lifetime: the first run at a given thread count builds
//! the pool, every later run at the same count reuses the parked workers
//! (regression-tested against [`rayon::spawned_thread_count`]).
//!
//! The cache holds the single most recent thread count — engines are
//! benchmarked at one count per configuration, and a changed count is a
//! deliberate reconfiguration worth one rebuild.
//!
//! Public since the dimension-generic refactor: the 3D engines in
//! `lms-mesh3d` cache their pools through the same type.

use std::sync::{Arc, Mutex};

/// A lazily-built, engine-owned [`rayon::ThreadPool`] keyed by thread
/// count. Cloning an engine clones the cache *empty* (pools are not
/// shareable state worth copying), and the cache never participates in
/// equality.
pub struct PoolCache {
    slot: Mutex<Option<(usize, Arc<rayon::ThreadPool>)>>,
}

impl PoolCache {
    pub fn new() -> Self {
        PoolCache { slot: Mutex::new(None) }
    }

    /// The cached pool for `num_threads`, building (and caching) it on the
    /// first request or when the count changed.
    pub fn get(&self, num_threads: usize) -> Arc<rayon::ThreadPool> {
        assert!(num_threads >= 1, "need at least one thread");
        let mut slot = self.slot.lock().unwrap();
        if let Some((n, pool)) = &*slot {
            if *n == num_threads {
                return Arc::clone(pool);
            }
        }
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(num_threads)
                .build()
                .expect("rayon pool construction cannot fail with a positive thread count"),
        );
        *slot = Some((num_threads, Arc::clone(&pool)));
        pool
    }
}

impl Clone for PoolCache {
    fn clone(&self) -> Self {
        PoolCache::new()
    }
}

impl Default for PoolCache {
    fn default() -> Self {
        PoolCache::new()
    }
}

impl std::fmt::Debug for PoolCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached = self.slot.lock().map(|s| s.as_ref().map(|(n, _)| *n)).unwrap_or(None);
        f.debug_struct("PoolCache").field("cached_threads", &cached).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_count_reuses_the_pool() {
        let cache = PoolCache::new();
        let a = cache.get(2);
        let b = cache.get(2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn changed_count_rebuilds() {
        let cache = PoolCache::new();
        let a = cache.get(2);
        let b = cache.get(3);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.current_num_threads(), 3);
    }

    #[test]
    fn clone_starts_empty() {
        let cache = PoolCache::new();
        let a = cache.get(2);
        let cloned = cache.clone();
        let b = cloned.get(2);
        assert!(!Arc::ptr_eq(&a, &b));
    }
}
