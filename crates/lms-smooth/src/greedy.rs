//! Greedy quality-driven visit order (§4.2 of the paper).
//!
//! "The LMS algorithm starts by visiting the node that has the worst
//! quality. Once the smoothing process for the node is over, it selects
//! another node that has the worst quality among nodes nearby the node."
//!
//! This module computes that traversal from the *initial* vertex qualities:
//! pick the globally worst interior vertex, then repeatedly move to the
//! worst-quality unvisited interior neighbour; when stuck, restart at the
//! globally worst unvisited interior vertex. RDR (Algorithm 2) is precisely
//! the storage order that makes this traversal sequential.

use lms_mesh::{Adjacency, Boundary};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `f64` with a total order, for use as a heap key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The greedy worst-quality-first visit order over interior vertices.
///
/// Deterministic: quality ties break by vertex index.
pub fn greedy_visit_order(adj: &Adjacency, boundary: &Boundary, quality: &[f64]) -> Vec<u32> {
    let n = adj.num_vertices();
    assert_eq!(quality.len(), n, "need one quality value per vertex");

    let mut visited = vec![false; n];
    // Global fallback: min-heap of (quality, vertex) with lazy deletion.
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = (0..n as u32)
        .filter(|&v| boundary.is_interior(v))
        .map(|v| Reverse((OrdF64(quality[v as usize]), v)))
        .collect();
    let num_interior = heap.len();

    let mut order = Vec::with_capacity(num_interior);
    let mut current: Option<u32> = None;

    while order.len() < num_interior {
        // Prefer the worst unvisited interior neighbour of the last vertex.
        let next = current.and_then(|c| {
            adj.neighbors(c)
                .iter()
                .copied()
                .filter(|&w| boundary.is_interior(w) && !visited[w as usize])
                .min_by(|&a, &b| {
                    OrdF64(quality[a as usize]).cmp(&OrdF64(quality[b as usize])).then(a.cmp(&b))
                })
        });
        let v = match next {
            Some(v) => v,
            None => {
                // Restart at the globally worst unvisited vertex.
                let mut found = None;
                while let Some(Reverse((_, v))) = heap.pop() {
                    if !visited[v as usize] {
                        found = Some(v);
                        break;
                    }
                }
                match found {
                    Some(v) => v,
                    None => break, // all interior vertices visited
                }
            }
        };
        visited[v as usize] = true;
        order.push(v);
        current = Some(v);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::quality::{vertex_qualities, QualityMetric};
    use lms_mesh::{generators, Adjacency, Boundary};

    fn setup(seed: u64) -> (Adjacency, Boundary, Vec<f64>) {
        let m = generators::perturbed_grid(12, 12, 0.35, seed);
        let adj = Adjacency::build(&m);
        let b = Boundary::detect(&m);
        let q = vertex_qualities(&m, &adj, QualityMetric::EdgeLengthRatio);
        (adj, b, q)
    }

    #[test]
    fn covers_every_interior_vertex_exactly_once() {
        let (adj, b, q) = setup(3);
        let order = greedy_visit_order(&adj, &b, &q);
        assert_eq!(order.len(), b.num_interior());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, b.interior_vertices());
    }

    #[test]
    fn starts_at_globally_worst_interior_vertex() {
        let (adj, b, q) = setup(4);
        let order = greedy_visit_order(&adj, &b, &q);
        let worst = b
            .interior_vertices()
            .into_iter()
            .min_by(|&a, &c| OrdF64(q[a as usize]).cmp(&OrdF64(q[c as usize])))
            .unwrap();
        assert_eq!(q[order[0] as usize], q[worst as usize]);
    }

    #[test]
    fn successors_prefer_worst_neighbour() {
        let (adj, b, q) = setup(5);
        let order = greedy_visit_order(&adj, &b, &q);
        // Verify the greedy invariant for the first few steps: the next
        // vertex is either a neighbour of the previous one (the worst
        // unvisited) or a global restart.
        let mut visited = vec![false; adj.num_vertices()];
        for w in order.windows(2) {
            visited[w[0] as usize] = true;
            let nbr_choice = adj
                .neighbors(w[0])
                .iter()
                .copied()
                .filter(|&x| b.is_interior(x) && !visited[x as usize])
                .min_by(|&a, &c| OrdF64(q[a as usize]).cmp(&OrdF64(q[c as usize])).then(a.cmp(&c)));
            if let Some(best) = nbr_choice {
                assert_eq!(w[1], best, "greedy step must take the worst neighbour");
            }
        }
    }

    #[test]
    fn deterministic() {
        let (adj, b, q) = setup(6);
        assert_eq!(greedy_visit_order(&adj, &b, &q), greedy_visit_order(&adj, &b, &q));
    }

    #[test]
    fn ordf64_total_order() {
        let mut v = [OrdF64(0.3), OrdF64(0.1), OrdF64(f64::NAN), OrdF64(0.2)];
        v.sort();
        assert_eq!(v[0], OrdF64(0.1));
        assert_eq!(v[1], OrdF64(0.2));
        assert_eq!(v[2], OrdF64(0.3));
        // NaN sorts last under total_cmp
        assert!(v[3].0.is_nan());
    }
}
