//! The weighted Laplacian position update shared by every engine.

use crate::config::Weighting;
use lms_mesh::geometry::Point2;

/// New position of a vertex at `pv` from its neighbours' positions under
/// `weighting`.
///
/// Returns `None` when no position can be formed: an empty neighbour
/// iterator, or a total weight of zero (e.g. [`Weighting::EdgeLength`]
/// with every neighbour coincident with `pv`) — callers skip the vertex.
///
/// The [`Weighting::Uniform`] path is the exact `sum / n` expression of
/// Equation (1) and reproduces the unweighted engines bit for bit.
#[inline]
pub fn weighted_candidate(
    weighting: Weighting,
    pv: Point2,
    nbrs: impl Iterator<Item = Point2>,
) -> Option<Point2> {
    // the dimension-generic core at D = 2: identical accumulation order
    // and expressions, so every engine keeps its bit-identity guarantees
    crate::domain::weighted_candidate_on(weighting, pv, nbrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn uniform_is_the_plain_mean() {
        let nbrs = [p(0.0, 0.0), p(2.0, 0.0), p(1.0, 3.0)];
        let got = weighted_candidate(Weighting::Uniform, p(0.5, 0.5), nbrs.into_iter()).unwrap();
        // identical expression to the engines: sum / n
        let mut sum = Point2::ZERO;
        for q in nbrs {
            sum += q;
        }
        assert_eq!(got, sum / 3.0);
    }

    #[test]
    fn empty_neighbourhood_yields_none() {
        for w in [Weighting::Uniform, Weighting::InverseEdgeLength, Weighting::EdgeLength] {
            assert_eq!(weighted_candidate(w, p(0.0, 0.0), std::iter::empty()), None);
        }
    }

    #[test]
    fn all_weightings_stay_in_the_neighbour_bbox() {
        // every variant is a convex combination of the neighbours
        let nbrs = [p(-1.0, 0.0), p(3.0, 1.0), p(0.0, 4.0), p(1.0, -2.0)];
        for w in [Weighting::Uniform, Weighting::InverseEdgeLength, Weighting::EdgeLength] {
            let c = weighted_candidate(w, p(0.2, 0.2), nbrs.into_iter()).unwrap();
            assert!((-1.0..=3.0).contains(&c.x), "{:?}: {c:?}", w);
            assert!((-2.0..=4.0).contains(&c.y), "{:?}: {c:?}", w);
        }
    }

    #[test]
    fn inverse_weighting_leans_toward_the_near_neighbour() {
        // neighbours at distance 1 (left) and 3 (right) from the vertex
        let pv = p(0.0, 0.0);
        let nbrs = [p(-1.0, 0.0), p(3.0, 0.0)];
        let uni = weighted_candidate(Weighting::Uniform, pv, nbrs.into_iter()).unwrap();
        let inv = weighted_candidate(Weighting::InverseEdgeLength, pv, nbrs.into_iter()).unwrap();
        let len = weighted_candidate(Weighting::EdgeLength, pv, nbrs.into_iter()).unwrap();
        assert_eq!(uni.x, 1.0);
        assert!(inv.x < uni.x, "inverse must lean left: {inv:?}");
        assert!(len.x > uni.x, "length must lean right: {len:?}");
        // exact values: inv = (1·(−1) + ⅓·3)/(1+⅓) = 0; len = (1·(−1)+3·3)/4 = 2
        assert!((inv.x - 0.0).abs() < 1e-12);
        assert!((len.x - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coincident_neighbours_do_not_blow_up() {
        let pv = p(1.0, 1.0);
        let nbrs = [p(1.0, 1.0), p(2.0, 1.0)];
        let inv = weighted_candidate(Weighting::InverseEdgeLength, pv, nbrs.into_iter()).unwrap();
        assert!(inv.is_finite());
        // coincident neighbour carries the (huge) clamped weight, so the
        // candidate stays essentially at the vertex
        assert!(inv.dist(pv) < 1e-6);
        // EdgeLength with only coincident neighbours has zero total weight
        let only = [p(1.0, 1.0)];
        assert_eq!(weighted_candidate(Weighting::EdgeLength, pv, only.into_iter()), None);
    }
}
