//! The dimension-generic smoothing domain — one engine stack for
//! triangle and tetrahedral meshes.
//!
//! Every smoothing engine in this crate needs exactly five things from a
//! mesh: coordinates it can average ([`DomainPoint`]), element→vertex
//! incidence, per-element quality scoring (the incremental
//! [`crate::dcache::DomainQualityCache`] protocol), a boundary/fixed
//! mask, and CSR adjacency access. [`SmoothDomain`] abstracts those five
//! behind one trait, const-generic in the element corner count `C`
//! (3 for triangles, 4 for tetrahedra), so the serial incremental kernel
//! ([`crate::kernel`]), the colored parallel engine ([`crate::colored`]),
//! the partitioned engine ([`crate::partitioned`]) and the resident
//! halo-exchange engine ([`crate::resident`]) each have **one** generic
//! sweep body instead of a per-dimension copy.
//!
//! The canonical coordinate type of the layer is the const-generic array
//! `[f64; D]` (a blanket [`DomainPoint`] impl covers every `D`);
//! [`lms_mesh::Point2`] implements the same trait by delegating to its
//! operators, so the generic arithmetic is expression-for-expression the
//! arithmetic the pre-refactor 2D engines ran — coordinates stay
//! **bit-identical**, which the unmodified PR-1..3 property suites pin.
//! `lms-mesh3d` implements the trait for `Point3`/`TetMesh`, which is how
//! the partitioned and resident engines (and their `ExchangeSchedule`
//! counters) land in 3D without a second copy of any sweep.
//!
//! Concretely, a domain view is a borrowed bundle of (adjacency,
//! boundary, element connectivity, quality metric): [`TriDomain`] here,
//! `TetDomain` in `lms-mesh3d`. Views are cheap to construct per call and
//! `Sync`, so the parallel engines share them across workers.

use crate::config::{SmoothParams, UpdateScheme, Weighting};
use crate::stats::{IterationStats, SmoothReport};
use crate::trace::AccessSink;
use lms_mesh::geometry::signed_area;
use lms_mesh::quality::QualityMetric;
use lms_mesh::{Adjacency, Boundary, Point2};

/// A coordinate usable by the generic smoothing kernels: componentwise
/// `f64` vector arithmetic plus the Euclidean distance the weighted
/// Laplacian variants need.
///
/// Implementations must be exact componentwise IEEE arithmetic — the
/// engines' bit-identity guarantees ride on `padd`/`pdiv` matching the
/// concrete point types' operators expression for expression.
pub trait DomainPoint: Copy + Clone + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// The additive identity (the origin).
    const ZERO: Self;

    /// Number of `f64` components (2 for the plane, 3 for space) — the
    /// `dim` a wire transport declares in its handshake.
    const DIM: usize;

    /// Append the components to a flat buffer (wire encoding order).
    fn push_components(self, out: &mut Vec<f64>);

    /// Rebuild the point from [`Self::DIM`] components — the exact bit
    /// patterns pushed, so transported coordinates stay bit-identical.
    fn from_components(comps: &[f64]) -> Self;

    /// Componentwise sum.
    fn padd(self, other: Self) -> Self;

    /// Componentwise scale by `s`.
    fn pscale(self, s: f64) -> Self;

    /// Componentwise division by `s`.
    fn pdiv(self, s: f64) -> Self;

    /// Euclidean distance to `other`.
    fn pdist(self, other: Self) -> f64;
}

impl DomainPoint for Point2 {
    const ZERO: Self = Point2::ZERO;
    const DIM: usize = 2;

    #[inline]
    fn push_components(self, out: &mut Vec<f64>) {
        out.push(self.x);
        out.push(self.y);
    }

    #[inline]
    fn from_components(comps: &[f64]) -> Self {
        Point2::new(comps[0], comps[1])
    }

    #[inline]
    fn padd(self, other: Self) -> Self {
        self + other
    }

    #[inline]
    fn pscale(self, s: f64) -> Self {
        self * s
    }

    #[inline]
    fn pdiv(self, s: f64) -> Self {
        self / s
    }

    #[inline]
    fn pdist(self, other: Self) -> f64 {
        self.dist(other)
    }
}

/// The layer's canonical coordinate type: a `D`-component array. Lets
/// point-set consumers (partitioners, tests) run the generic machinery
/// without a mesh crate in sight.
impl<const D: usize> DomainPoint for [f64; D] {
    const ZERO: Self = [0.0; D];
    const DIM: usize = D;

    #[inline]
    fn push_components(self, out: &mut Vec<f64>) {
        out.extend_from_slice(&self);
    }

    #[inline]
    fn from_components(comps: &[f64]) -> Self {
        std::array::from_fn(|i| comps[i])
    }

    #[inline]
    fn padd(self, other: Self) -> Self {
        std::array::from_fn(|i| self[i] + other[i])
    }

    #[inline]
    fn pscale(self, s: f64) -> Self {
        std::array::from_fn(|i| self[i] * s)
    }

    #[inline]
    fn pdiv(self, s: f64) -> Self {
        std::array::from_fn(|i| self[i] / s)
    }

    #[inline]
    fn pdist(self, other: Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self[i] - other[i];
            acc += d * d;
        }
        acc.sqrt()
    }
}

/// A smoothing domain: coordinates, element→vertex incidence, CSR
/// adjacency, the boundary (fixed-vertex) mask, and per-element quality
/// scoring — everything the generic engines consume. `C` is the corner
/// count of one element (3 = triangle, 4 = tetrahedron).
///
/// The scoring contract: `score_points` returns `(quality, positively
/// oriented)` for one element's corner coordinates, with quality exactly
/// the value the domain's canonical `mesh_quality` sums — the incremental
/// cache and the exact reductions are built on it.
pub trait SmoothDomain<const C: usize>: Sync {
    /// Coordinate type of the domain.
    type Point: DomainPoint;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Element→vertex incidence: corner ids of every element.
    fn elements(&self) -> &[[u32; C]];

    /// Sorted neighbour vertices of `v` (CSR row).
    fn neighbors(&self, v: u32) -> &[u32];

    /// Sorted incident elements of `v` (CSR row).
    fn elements_of(&self, v: u32) -> &[u32];

    /// Flat offset of `v`'s incident-element row (star-layout indexing).
    fn elements_offset(&self, v: u32) -> usize;

    /// True when `v` may move (not on the fixed boundary).
    fn is_interior(&self, v: u32) -> bool;

    /// Score one element from its corner coordinates:
    /// `(quality, positively_oriented)`.
    fn score_points(&self, pts: [Self::Point; C]) -> (f64, bool);

    /// Number of elements.
    #[inline]
    fn num_elements(&self) -> usize {
        self.elements().len()
    }

    /// Score element `corners` on `coords` (any coordinate array indexed
    /// by the corner ids — the global mesh or a part-local block).
    #[inline]
    fn score(&self, coords: &[Self::Point], corners: [u32; C]) -> (f64, bool) {
        self.score_points(corners.map(|c| coords[c as usize]))
    }

    /// [`score`](Self::score) with vertex `v`'s position overridden by
    /// `pos_v` — candidate evaluation without touching the buffer.
    #[inline]
    fn score_with(
        &self,
        coords: &[Self::Point],
        corners: [u32; C],
        v: u32,
        pos_v: Self::Point,
    ) -> (f64, bool) {
        self.score_points(corners.map(|c| if c == v { pos_v } else { coords[c as usize] }))
    }
}

/// The 2D triangle-mesh domain view: borrowed adjacency + boundary +
/// connectivity + metric. [`crate::SmoothEngine`] builds one per call.
#[derive(Debug, Clone, Copy)]
pub struct TriDomain<'a> {
    adj: &'a Adjacency,
    boundary: &'a Boundary,
    triangles: &'a [[u32; 3]],
    metric: QualityMetric,
}

impl<'a> TriDomain<'a> {
    /// Bundle a triangle mesh's precomputed topology into a domain view.
    pub fn new(
        adj: &'a Adjacency,
        boundary: &'a Boundary,
        triangles: &'a [[u32; 3]],
        metric: QualityMetric,
    ) -> Self {
        TriDomain { adj, boundary, triangles, metric }
    }
}

impl SmoothDomain<3> for TriDomain<'_> {
    type Point = Point2;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.adj.num_vertices()
    }

    #[inline]
    fn elements(&self) -> &[[u32; 3]] {
        self.triangles
    }

    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        self.adj.neighbors(v)
    }

    #[inline]
    fn elements_of(&self, v: u32) -> &[u32] {
        self.adj.triangles_of(v)
    }

    #[inline]
    fn elements_offset(&self, v: u32) -> usize {
        self.adj.triangles_offset(v)
    }

    #[inline]
    fn is_interior(&self, v: u32) -> bool {
        self.boundary.is_interior(v)
    }

    #[inline]
    fn score_points(&self, p: [Point2; 3]) -> (f64, bool) {
        (self.metric.triangle_quality(p[0], p[1], p[2]), signed_area(p[0], p[1], p[2]) > 0.0)
    }
}

/// The dimension-free slice of a smoothing parameter set — what the
/// generic engines actually consume (the metric lives in the domain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainConfig {
    /// Convergence tolerance on the per-sweep quality improvement.
    pub tol: f64,
    /// Hard sweep cap.
    pub max_iters: usize,
    /// Gauss–Seidel (in place) or Jacobi (double-buffered) commits.
    pub update: UpdateScheme,
    /// Smart (quality-guarded, inversion-safe) commit rule.
    pub smart: bool,
    /// Neighbour weighting of the Laplacian update.
    pub weighting: Weighting,
}

impl From<&SmoothParams> for DomainConfig {
    fn from(p: &SmoothParams) -> Self {
        DomainConfig {
            tol: p.tol,
            max_iters: p.max_iters,
            update: p.update,
            smart: p.smart,
            weighting: p.weighting,
        }
    }
}

/// Generic weighted Laplacian candidate — the dimension-generic core of
/// [`crate::weighting::weighted_candidate`], with the exact uniform
/// `sum / n` arithmetic of Equation (1) at every `D`.
#[inline]
pub fn weighted_candidate_on<P: DomainPoint>(
    weighting: Weighting,
    pv: P,
    nbrs: impl Iterator<Item = P>,
) -> Option<P> {
    match weighting {
        Weighting::Uniform => {
            let mut sum = P::ZERO;
            let mut n = 0usize;
            for p in nbrs {
                sum = sum.padd(p);
                n += 1;
            }
            (n > 0).then(|| sum.pdiv(n as f64))
        }
        Weighting::InverseEdgeLength | Weighting::EdgeLength => {
            let mut acc = P::ZERO;
            let mut total = 0.0;
            for p in nbrs {
                let d = pv.pdist(p);
                let w = match weighting {
                    Weighting::InverseEdgeLength => {
                        // clamp so a (nearly) coincident neighbour does not
                        // turn into an infinite weight
                        1.0 / d.max(1e-12)
                    }
                    _ => d,
                };
                acc = acc.padd(p.pscale(w));
                total += w;
            }
            (total > 0.0).then(|| acc.pdiv(total))
        }
    }
}

/// The canonical reduction shared by every quality read-out: per-vertex
/// mean of incident element qualities, then the mean over all vertices —
/// exactly the reduction (and reduction *order*) of
/// `lms_mesh::quality::mesh_quality` and its 3D twin.
fn reduce_quality<const C: usize, D: SmoothDomain<C>>(dom: &D, q_of: impl Fn(usize) -> f64) -> f64 {
    let n = dom.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for v in 0..n as u32 {
        let ts = dom.elements_of(v);
        total += if ts.is_empty() {
            0.0
        } else {
            ts.iter().map(|&t| q_of(t as usize)).sum::<f64>() / ts.len() as f64
        };
    }
    total / n as f64
}

/// The canonical global quality of a domain, scored from scratch on
/// `coords` — bit-identical to the concrete `mesh_quality` recomputes the
/// pre-refactor engines called.
pub fn domain_quality<const C: usize, D: SmoothDomain<C>>(dom: &D, coords: &[D::Point]) -> f64 {
    let elem_q: Vec<f64> = dom.elements().iter().map(|&e| dom.score(coords, e).0).collect();
    reduce_quality(dom, |t| elem_q[t])
}

/// [`domain_quality`] from an already-scored element table (e.g. the
/// resident engine's initial scoring pass) — same canonical reduction, no
/// second scoring sweep.
pub fn domain_quality_scored<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    scores: &[(f64, bool)],
) -> f64 {
    debug_assert_eq!(scores.len(), dom.num_elements());
    reduce_quality(dom, |t| scores[t].0)
}

/// Sentinel star-layout code marking "the vertex being smoothed itself".
pub(crate) const SELF_CORNER: u8 = u8::MAX;

/// Build the star corner layout of a domain: for every vertex→element
/// incidence (flat CSR order, base [`SmoothDomain::elements_offset`]),
/// each stored corner encoded as its position in `neighbors(v)` — or
/// [`SELF_CORNER`] for `v` itself. `None` if any degree ≥ 255 or a corner
/// is missing from the vertex's neighbour list (non-manifold edge cases):
/// the smart sweeps then fall back to direct indexing.
pub(crate) fn build_star_layout_on<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
) -> Option<Vec<[u8; C]>> {
    let n = dom.num_vertices() as u32;
    let total: usize = (0..n).map(|v| dom.elements_of(v).len()).sum();
    let mut layout = Vec::with_capacity(total);
    for v in 0..n {
        let ns = dom.neighbors(v);
        if ns.len() >= SELF_CORNER as usize {
            return None;
        }
        for &t in dom.elements_of(v) {
            let mut enc = [0u8; C];
            for (k, &u) in dom.elements()[t as usize].iter().enumerate() {
                enc[k] = if u == v {
                    SELF_CORNER
                } else {
                    match ns.binary_search(&u) {
                        Ok(pos) => pos as u8,
                        Err(_) => return None,
                    }
                };
            }
            layout.push(enc);
        }
    }
    Some(layout)
}

/// Mean guarded quality of `v`'s element star with `v` at `pos_v`
/// (inverted elements score 0) — the smart guard's "before"/"after"
/// evaluations of the reference path.
fn local_quality_with<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    coords: &[D::Point],
    v: u32,
    pos_v: D::Point,
) -> f64 {
    let ts = dom.elements_of(v);
    if ts.is_empty() {
        return 0.0;
    }
    ts.iter()
        .map(|&t| {
            let (q, pos) = dom.score_with(coords, dom.elements()[t as usize], v, pos_v);
            if pos {
                q
            } else {
                0.0
            }
        })
        .sum::<f64>()
        / ts.len() as f64
}

/// True when every element of `v`'s star is positively oriented with `v`
/// at `pos_v`.
fn star_valid_with<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    coords: &[D::Point],
    v: u32,
    pos_v: D::Point,
) -> bool {
    dom.elements_of(v)
        .iter()
        .all(|&t| dom.score_with(coords, dom.elements()[t as usize], v, pos_v).1)
}

/// The generic **reference** smoothing path: full-mesh quality recompute
/// every sweep, mean-vs-mean smart guard, per-access tracing — Algorithm 1
/// as written, for any [`SmoothDomain`]. `SmoothEngine3` delegates its
/// serial (and traced) runs here; the 2D engine keeps its own concrete
/// reference body as the historical oracle the incremental kernel is
/// property-tested against.
pub fn smooth_reference_on<const C: usize, D: SmoothDomain<C>, S: AccessSink>(
    dom: &D,
    cfg: &DomainConfig,
    visit: &[u32],
    coords: &mut [D::Point],
    sink: &mut S,
) -> SmoothReport {
    assert_eq!(coords.len(), dom.num_vertices(), "engine was built for a different mesh");
    let initial_quality = domain_quality(dom, coords);
    let mut report = SmoothReport::starting(initial_quality);
    let mut quality = initial_quality;
    let mut scratch: Vec<D::Point> = Vec::new();

    for iter in 1..=cfg.max_iters {
        match cfg.update {
            UpdateScheme::GaussSeidel => {
                reference_sweep_gs(dom, cfg, visit, coords, sink);
            }
            UpdateScheme::Jacobi => {
                scratch.clear();
                scratch.extend_from_slice(coords);
                reference_sweep_jacobi(dom, cfg, visit, &scratch, coords, sink);
            }
        }
        sink.end_iteration();

        let new_quality = domain_quality(dom, coords);
        let improvement = new_quality - quality;
        report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
        quality = new_quality;
        if improvement < cfg.tol {
            report.converged = true;
            break;
        }
    }
    report.final_quality = quality;
    report
}

/// One in-place (Gauss–Seidel) reference sweep: later vertices see
/// already-committed neighbours.
fn reference_sweep_gs<const C: usize, D: SmoothDomain<C>, S: AccessSink>(
    dom: &D,
    cfg: &DomainConfig,
    visit: &[u32],
    coords: &mut [D::Point],
    sink: &mut S,
) {
    for &v in visit {
        let ns = dom.neighbors(v);
        if ns.is_empty() {
            continue;
        }
        sink.access(v);
        let pv = coords[v as usize];
        let gathered = ns.iter().map(|&w| {
            sink.access(w);
            coords[w as usize]
        });
        let Some(candidate) = weighted_candidate_on(cfg.weighting, pv, gathered) else {
            continue;
        };
        if cfg.smart {
            let before = local_quality_with(dom, coords, v, pv);
            let commit = local_quality_with(dom, coords, v, candidate) >= before
                && (star_valid_with(dom, coords, v, candidate)
                    || !star_valid_with(dom, coords, v, pv));
            if commit {
                coords[v as usize] = candidate;
            }
        } else {
            coords[v as usize] = candidate;
        }
    }
}

/// One double-buffered (Jacobi) reference sweep: reads `prev`, writes
/// `next`.
fn reference_sweep_jacobi<const C: usize, D: SmoothDomain<C>, S: AccessSink>(
    dom: &D,
    cfg: &DomainConfig,
    visit: &[u32],
    prev: &[D::Point],
    next: &mut [D::Point],
    sink: &mut S,
) {
    for &v in visit {
        let ns = dom.neighbors(v);
        if ns.is_empty() {
            continue;
        }
        sink.access(v);
        let pv = prev[v as usize];
        let gathered = ns.iter().map(|&w| {
            sink.access(w);
            prev[w as usize]
        });
        let Some(candidate) = weighted_candidate_on(cfg.weighting, pv, gathered) else {
            continue;
        };
        if cfg.smart {
            let before = local_quality_with(dom, prev, v, pv);
            let commit = local_quality_with(dom, prev, v, candidate) >= before
                && (star_valid_with(dom, prev, v, candidate) || !star_valid_with(dom, prev, v, pv));
            if commit {
                next[v as usize] = candidate;
            }
        } else {
            next[v as usize] = candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn array_points_match_point2_arithmetic_bitwise() {
        let ps = [(0.3, -1.25), (1e-9, 7.5), (2.0, 3.0), (-0.125, 0.75)];
        let mut sum2 = Point2::ZERO;
        let mut sumd = <[f64; 2]>::ZERO;
        for &(x, y) in &ps {
            sum2 = sum2.padd(Point2::new(x, y));
            sumd = sumd.padd([x, y]);
        }
        let m2 = sum2.pdiv(ps.len() as f64);
        let md = sumd.pdiv(ps.len() as f64);
        assert_eq!(m2.x.to_bits(), md[0].to_bits());
        assert_eq!(m2.y.to_bits(), md[1].to_bits());
        assert_eq!(
            Point2::new(0.1, 0.2).pdist(Point2::new(-3.0, 4.5)).to_bits(),
            [0.1, 0.2].pdist([-3.0, 4.5]).to_bits()
        );
    }

    #[test]
    fn tri_domain_quality_matches_mesh_quality_bitwise() {
        for seed in [1u64, 5, 11] {
            let m = generators::perturbed_grid(13, 11, 0.35, seed);
            let adj = Adjacency::build(&m);
            let boundary = Boundary::detect(&m);
            let dom =
                TriDomain::new(&adj, &boundary, m.triangles(), QualityMetric::EdgeLengthRatio);
            let generic = domain_quality(&dom, m.coords());
            let concrete =
                lms_mesh::quality::mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
            assert_eq!(generic.to_bits(), concrete.to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn tri_domain_scoring_matches_quality_cache() {
        let m = generators::perturbed_grid(9, 9, 0.3, 3);
        let adj = Adjacency::build(&m);
        let boundary = Boundary::detect(&m);
        let metric = QualityMetric::EdgeLengthRatio;
        let dom = TriDomain::new(&adj, &boundary, m.triangles(), metric);
        for (t, &tri) in m.triangles().iter().enumerate() {
            let (qa, pa) = dom.score(m.coords(), tri);
            let (qb, pb) = lms_mesh::QualityCache::score(metric, m.coords(), tri);
            assert_eq!(qa.to_bits(), qb.to_bits(), "triangle {t}");
            assert_eq!(pa, pb);
            let v = tri[0];
            let moved = Point2::new(0.123, 0.456);
            let (qa, pa) = dom.score_with(m.coords(), tri, v, moved);
            let (qb, pb) = lms_mesh::QualityCache::score_with(metric, m.coords(), tri, v, moved);
            assert_eq!(qa.to_bits(), qb.to_bits());
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn generic_weighted_candidate_matches_concrete() {
        use crate::weighting::weighted_candidate;
        let pv = Point2::new(0.2, 0.4);
        let nbrs = [Point2::new(0.0, 0.0), Point2::new(1.5, -0.5), Point2::new(0.25, 2.0)];
        for w in [Weighting::Uniform, Weighting::InverseEdgeLength, Weighting::EdgeLength] {
            assert_eq!(
                weighted_candidate(w, pv, nbrs.iter().copied()),
                weighted_candidate_on(w, pv, nbrs.iter().copied()),
                "{:?}",
                w
            );
        }
    }
}
