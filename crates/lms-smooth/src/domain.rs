//! The dimension-generic smoothing domain — one engine stack for
//! triangle and tetrahedral meshes.
//!
//! Every smoothing engine in this crate needs exactly five things from a
//! mesh: coordinates it can average ([`DomainPoint`]), element→vertex
//! incidence, per-element quality scoring (the incremental
//! [`crate::dcache::DomainQualityCache`] protocol), a boundary/fixed
//! mask, and CSR adjacency access. [`SmoothDomain`] abstracts those five
//! behind one trait, const-generic in the element corner count `C`
//! (3 for triangles, 4 for tetrahedra), so the serial incremental kernel
//! ([`crate::kernel`]), the colored parallel engine ([`crate::colored`]),
//! the partitioned engine ([`crate::partitioned`]) and the resident
//! halo-exchange engine ([`crate::resident`]) each have **one** generic
//! sweep body instead of a per-dimension copy.
//!
//! The canonical coordinate type of the layer is the const-generic array
//! `[f64; D]` (a blanket [`DomainPoint`] impl covers every `D`);
//! [`lms_mesh::Point2`] implements the same trait by delegating to its
//! operators, so the generic arithmetic is expression-for-expression the
//! arithmetic the pre-refactor 2D engines ran — coordinates stay
//! **bit-identical**, which the unmodified PR-1..3 property suites pin.
//! `lms-mesh3d` implements the trait for `Point3`/`TetMesh`, which is how
//! the partitioned and resident engines (and their `ExchangeSchedule`
//! counters) land in 3D without a second copy of any sweep.
//!
//! Concretely, a domain view is a borrowed bundle of (adjacency,
//! boundary, element connectivity, quality metric): [`TriDomain`] here,
//! `TetDomain` in `lms-mesh3d`. Views are cheap to construct per call and
//! `Sync`, so the parallel engines share them across workers.

use crate::config::{SmoothParams, UpdateScheme, Weighting};
use crate::soa::{SoaCoords, SoaLike, LANES};
use crate::stats::{IterationStats, SmoothReport};
use crate::trace::AccessSink;
use lms_mesh::geometry::signed_area;
use lms_mesh::quality::{edge_length_ratio_from_sq, QualityMetric};
use lms_mesh::{Adjacency, Boundary, Point2};

/// A coordinate usable by the generic smoothing kernels: componentwise
/// `f64` vector arithmetic plus the Euclidean distance the weighted
/// Laplacian variants need.
///
/// Implementations must be exact componentwise IEEE arithmetic — the
/// engines' bit-identity guarantees ride on `padd`/`pdiv` matching the
/// concrete point types' operators expression for expression.
pub trait DomainPoint: Copy + Clone + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// The additive identity (the origin).
    const ZERO: Self;

    /// Number of `f64` components (2 for the plane, 3 for space) — the
    /// `dim` a wire transport declares in its handshake.
    const DIM: usize;

    /// Append the components to a flat buffer (wire encoding order).
    fn push_components(self, out: &mut Vec<f64>);

    /// Rebuild the point from [`Self::DIM`] components — the exact bit
    /// patterns pushed, so transported coordinates stay bit-identical.
    fn from_components(comps: &[f64]) -> Self;

    /// Component `d` (`0 ≤ d <` [`Self::DIM`]) — the per-axis read the
    /// SoA gather/scatter paths are built on, exact bit copy.
    fn component(self, d: usize) -> f64;

    /// Componentwise sum.
    fn padd(self, other: Self) -> Self;

    /// Componentwise scale by `s`.
    fn pscale(self, s: f64) -> Self;

    /// Componentwise division by `s`.
    fn pdiv(self, s: f64) -> Self;

    /// Euclidean distance to `other`.
    fn pdist(self, other: Self) -> f64;
}

impl DomainPoint for Point2 {
    const ZERO: Self = Point2::ZERO;
    const DIM: usize = 2;

    #[inline]
    fn push_components(self, out: &mut Vec<f64>) {
        out.push(self.x);
        out.push(self.y);
    }

    #[inline]
    fn from_components(comps: &[f64]) -> Self {
        Point2::new(comps[0], comps[1])
    }

    #[inline]
    fn component(self, d: usize) -> f64 {
        match d {
            0 => self.x,
            _ => self.y,
        }
    }

    #[inline]
    fn padd(self, other: Self) -> Self {
        self + other
    }

    #[inline]
    fn pscale(self, s: f64) -> Self {
        self * s
    }

    #[inline]
    fn pdiv(self, s: f64) -> Self {
        self / s
    }

    #[inline]
    fn pdist(self, other: Self) -> f64 {
        self.dist(other)
    }
}

/// The layer's canonical coordinate type: a `D`-component array. Lets
/// point-set consumers (partitioners, tests) run the generic machinery
/// without a mesh crate in sight.
impl<const D: usize> DomainPoint for [f64; D] {
    const ZERO: Self = [0.0; D];
    const DIM: usize = D;

    #[inline]
    fn push_components(self, out: &mut Vec<f64>) {
        out.extend_from_slice(&self);
    }

    #[inline]
    fn from_components(comps: &[f64]) -> Self {
        std::array::from_fn(|i| comps[i])
    }

    #[inline]
    fn component(self, d: usize) -> f64 {
        self[d]
    }

    #[inline]
    fn padd(self, other: Self) -> Self {
        std::array::from_fn(|i| self[i] + other[i])
    }

    #[inline]
    fn pscale(self, s: f64) -> Self {
        std::array::from_fn(|i| self[i] * s)
    }

    #[inline]
    fn pdiv(self, s: f64) -> Self {
        std::array::from_fn(|i| self[i] / s)
    }

    #[inline]
    fn pdist(self, other: Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self[i] - other[i];
            acc += d * d;
        }
        acc.sqrt()
    }
}

/// A smoothing domain: coordinates, element→vertex incidence, CSR
/// adjacency, the boundary (fixed-vertex) mask, and per-element quality
/// scoring — everything the generic engines consume. `C` is the corner
/// count of one element (3 = triangle, 4 = tetrahedron).
///
/// The scoring contract: `score_points` returns `(quality, positively
/// oriented)` for one element's corner coordinates, with quality exactly
/// the value the domain's canonical `mesh_quality` sums — the incremental
/// cache and the exact reductions are built on it.
pub trait SmoothDomain<const C: usize>: Sync {
    /// Coordinate type of the domain.
    type Point: DomainPoint;

    /// Structure-of-arrays coordinate store of the domain (a
    /// [`SoaCoords`] of the right dimension) — what the resident and
    /// partitioned sweep scratches hold internally, and what
    /// [`score_batch`](Self::score_batch) consumes.
    type Soa: SoaLike<Self::Point>;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Element→vertex incidence: corner ids of every element.
    fn elements(&self) -> &[[u32; C]];

    /// Sorted neighbour vertices of `v` (CSR row).
    fn neighbors(&self, v: u32) -> &[u32];

    /// Sorted incident elements of `v` (CSR row).
    fn elements_of(&self, v: u32) -> &[u32];

    /// Flat offset of `v`'s incident-element row (star-layout indexing).
    fn elements_offset(&self, v: u32) -> usize;

    /// True when `v` may move (not on the fixed boundary).
    fn is_interior(&self, v: u32) -> bool;

    /// Score one element from its corner coordinates:
    /// `(quality, positively_oriented)`.
    fn score_points(&self, pts: [Self::Point; C]) -> (f64, bool);

    /// Number of elements.
    #[inline]
    fn num_elements(&self) -> usize {
        self.elements().len()
    }

    /// Score element `corners` on `coords` (any coordinate array indexed
    /// by the corner ids — the global mesh or a part-local block).
    #[inline]
    fn score(&self, coords: &[Self::Point], corners: [u32; C]) -> (f64, bool) {
        self.score_points(corners.map(|c| coords[c as usize]))
    }

    /// [`score`](Self::score) with vertex `v`'s position overridden by
    /// `pos_v` — candidate evaluation without touching the buffer.
    #[inline]
    fn score_with(
        &self,
        coords: &[Self::Point],
        corners: [u32; C],
        v: u32,
        pos_v: Self::Point,
    ) -> (f64, bool) {
        self.score_points(corners.map(|c| if c == v { pos_v } else { coords[c as usize] }))
    }

    /// [`score`](Self::score) against a structure-of-arrays store —
    /// per-element scalar form, bit-identical to the point-slice path.
    #[inline]
    fn score_soa(&self, coords: &Self::Soa, corners: [u32; C]) -> (f64, bool) {
        self.score_points(corners.map(|c| coords.get(c as usize)))
    }

    /// Batched element scoring: score `rows[i]` (corner slot ids into
    /// `coords`) into `out[i]`. Implementations process fixed-width
    /// [`LANES`]-wide chunks where every lane runs the **identical**
    /// scalar operation sequence on its own element, so the results are
    /// bit-identical to calling [`score_soa`](Self::score_soa) per row —
    /// the default does exactly that, and the property suites pin the
    /// overrides against it.
    fn score_batch(&self, coords: &Self::Soa, rows: &[[u32; C]], out: &mut [(f64, bool)]) {
        debug_assert_eq!(rows.len(), out.len());
        for (slot, &row) in out.iter_mut().zip(rows) {
            *slot = self.score_soa(coords, row);
        }
    }
}

/// The 2D triangle-mesh domain view: borrowed adjacency + boundary +
/// connectivity + metric. [`crate::SmoothEngine`] builds one per call.
#[derive(Debug, Clone, Copy)]
pub struct TriDomain<'a> {
    adj: &'a Adjacency,
    boundary: &'a Boundary,
    triangles: &'a [[u32; 3]],
    metric: QualityMetric,
}

impl<'a> TriDomain<'a> {
    /// Bundle a triangle mesh's precomputed topology into a domain view.
    pub fn new(
        adj: &'a Adjacency,
        boundary: &'a Boundary,
        triangles: &'a [[u32; 3]],
        metric: QualityMetric,
    ) -> Self {
        TriDomain { adj, boundary, triangles, metric }
    }
}

impl SmoothDomain<3> for TriDomain<'_> {
    type Point = Point2;
    type Soa = SoaCoords<2>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.adj.num_vertices()
    }

    #[inline]
    fn elements(&self) -> &[[u32; 3]] {
        self.triangles
    }

    #[inline]
    fn neighbors(&self, v: u32) -> &[u32] {
        self.adj.neighbors(v)
    }

    #[inline]
    fn elements_of(&self, v: u32) -> &[u32] {
        self.adj.triangles_of(v)
    }

    #[inline]
    fn elements_offset(&self, v: u32) -> usize {
        self.adj.triangles_offset(v)
    }

    #[inline]
    fn is_interior(&self, v: u32) -> bool {
        self.boundary.is_interior(v)
    }

    #[inline]
    fn score_points(&self, p: [Point2; 3]) -> (f64, bool) {
        (self.metric.triangle_quality(p[0], p[1], p[2]), signed_area(p[0], p[1], p[2]) > 0.0)
    }

    #[inline]
    fn score_batch(&self, coords: &SoaCoords<2>, rows: &[[u32; 3]], out: &mut [(f64, bool)]) {
        debug_assert_eq!(rows.len(), out.len());
        match self.metric {
            QualityMetric::EdgeLengthRatio => tri_elr_batch(coords, rows, out),
            // the ablation metrics stay on the per-lane scalar sequence
            // with the metric dispatch hoisted out of the element loop
            _ => {
                let xs = coords.axis(0);
                let ys = coords.axis(1);
                for (slot, &[ia, ib, ic]) in out.iter_mut().zip(rows) {
                    let a = Point2::new(xs[ia as usize], ys[ia as usize]);
                    let b = Point2::new(xs[ib as usize], ys[ib as usize]);
                    let c = Point2::new(xs[ic as usize], ys[ic as usize]);
                    *slot = self.score_points([a, b, c]);
                }
            }
        }
    }
}

/// Lane-batched edge-length-ratio scoring over SoA columns: fixed
/// [`LANES`]-wide blocks, scalar tail.
///
/// The block body is split into two phases on purpose. The *gather*
/// phase does the indexed loads (inherently scalar — the corner ids are
/// data-dependent) into per-corner lane columns; the *arithmetic* phase
/// is pure element-wise math over those fixed-size columns — no loads,
/// no branches, no cross-lane flow — which the auto-vectorizer turns
/// into packed 2×f64 ops, while the square-root/divide phase (the
/// expensive instructions of this metric, which LLVM declines to
/// vectorize on its own) goes through the explicit-SIMD
/// [`crate::soa::sqrt_div_lanes`]. Interleaving the loads with the math
/// in one per-lane helper (the previous shape) defeats SLP vectorization
/// and measures at scalar parity; the split form is where the SoA layout
/// actually pays.
///
/// Every lane still runs the exact scalar sequence of
/// `QualityMetric::triangle_quality` — `dist_sq` expression order, the
/// shared [`edge_length_ratio_from_sq`] core (`max`/`min` on squared
/// lengths, two square roots, degenerate select), and the
/// `signed_area > 0` orientation test with its `0.5 *` factor kept (the
/// factor can flip the sign test for subnormal areas, so dropping it
/// would not be bit-identical). Packed IEEE sqrt/divide/multiply round
/// exactly like their scalar forms, so results are bit-identical to the
/// per-element path by construction.
#[inline]
fn tri_elr_batch(coords: &SoaCoords<2>, rows: &[[u32; 3]], out: &mut [(f64, bool)]) {
    let xs = coords.axis(0);
    let ys = coords.axis(1);
    let main = rows.len() - rows.len() % LANES;
    let (rows_main, rows_tail) = rows.split_at(main);
    let (out_main, out_tail) = out.split_at_mut(main);
    // One runtime-cached feature test per *call*, and one non-inlinable
    // `#[target_feature]` call covering the whole main loop: dispatching
    // per 4-lane block instead costs a call + `vzeroupper` + AVX↔SSE
    // transition every 4 elements, which measures slower than scalar.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support verified above (cached runtime check).
        unsafe { tri_elr_main_avx(xs, ys, rows_main, out_main) };
        for (slot, &row) in out_tail.iter_mut().zip(rows_tail) {
            *slot = tri_elr_lane(xs, ys, row);
        }
        return;
    }
    for (block, slots) in rows_main.chunks_exact(LANES).zip(out_main.chunks_exact_mut(LANES)) {
        // gather: corner coordinates into per-corner lane columns
        let mut ax = [0.0f64; LANES];
        let mut ay = [0.0f64; LANES];
        let mut bx = [0.0f64; LANES];
        let mut by = [0.0f64; LANES];
        let mut cx = [0.0f64; LANES];
        let mut cy = [0.0f64; LANES];
        for l in 0..LANES {
            let [ia, ib, ic] = block[l];
            ax[l] = xs[ia as usize];
            ay[l] = ys[ia as usize];
            bx[l] = xs[ib as usize];
            by[l] = ys[ib as usize];
            cx[l] = xs[ic as usize];
            cy[l] = ys[ic as usize];
        }
        // arithmetic: element-wise over the lane columns (vectorizable)
        let mut min_sq = [0.0f64; LANES];
        let mut max_sq = [0.0f64; LANES];
        let mut area2 = [0.0f64; LANES];
        for l in 0..LANES {
            let e0x = ax[l] - bx[l];
            let e0y = ay[l] - by[l];
            let d0 = e0x * e0x + e0y * e0y;
            let e1x = bx[l] - cx[l];
            let e1y = by[l] - cy[l];
            let d1 = e1x * e1x + e1y * e1y;
            let e2x = cx[l] - ax[l];
            let e2y = cy[l] - ay[l];
            let d2 = e2x * e2x + e2y * e2y;
            max_sq[l] = d0.max(d1).max(d2);
            min_sq[l] = d0.min(d1).min(d2);
            area2[l] = (bx[l] - ax[l]) * (cy[l] - ay[l]) - (by[l] - ay[l]) * (cx[l] - ax[l]);
        }
        let mut q = [0.0f64; LANES];
        crate::soa::sqrt_div_lanes(&min_sq, &max_sq, &mut q);
        for l in 0..LANES {
            slots[l] = (if max_sq[l] <= 0.0 { 0.0 } else { q[l] }, 0.5 * area2[l] > 0.0);
        }
    }
    for (slot, &row) in out_tail.iter_mut().zip(rows_tail) {
        *slot = tri_elr_lane(xs, ys, row);
    }
}

/// The whole-blocks part of [`tri_elr_batch`] in explicit AVX — the same
/// value sequence as the portable block body, spelled out in 256-bit ops
/// because LLVM auto-vectorizes neither the square roots nor the
/// `maxnum`/`minnum` chains at the SSE2 baseline. `rows.len()` must be a
/// multiple of [`LANES`] (the caller splits the tail off first).
///
/// Bit-identity notes (each packed op is matched to its scalar twin):
/// - `sub`/`mul`/`add`/`sqrt`/`div` are IEEE correctly rounded in both
///   scalar and packed form — identical bits, subnormals included, and
///   Rust emits no FMA contraction to differ from.
/// - `f64::max`/`f64::min` are IEEE `maxNum`/`minNum`, but `maxpd` picks
///   the *second* operand when either input is NaN, so the raw packed
///   op is followed by a blend that restores the first operand when the
///   second is NaN. The ±0 ambiguity is moot: squared edge lengths are
///   sums of products of identical factors, which are never `-0.0`.
/// - The degenerate select and the orientation test use ordered-quiet
///   compares (`_CMP_LE_OQ`/`_CMP_GT_OQ`), which are false on NaN —
///   exactly how `max_sq <= 0.0` and `0.5 * area2 > 0.0` behave.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[inline]
unsafe fn tri_elr_main_avx(xs: &[f64], ys: &[f64], rows: &[[u32; 3]], out: &mut [(f64, bool)]) {
    use core::arch::x86_64::*;
    const { assert!(LANES == 4, "one 256-bit register holds exactly one block") };
    debug_assert_eq!(rows.len() % LANES, 0);
    debug_assert_eq!(rows.len(), out.len());
    // maxNum/minNum: packed max/min, then restore `a` where `b` is NaN
    // (cmp-unord on `b` with itself) to match `f64::max`/`f64::min`.
    #[inline(always)]
    unsafe fn maxnum(a: __m256d, b: __m256d) -> __m256d {
        _mm256_blendv_pd(_mm256_max_pd(a, b), a, _mm256_cmp_pd::<_CMP_UNORD_Q>(b, b))
    }
    #[inline(always)]
    unsafe fn minnum(a: __m256d, b: __m256d) -> __m256d {
        _mm256_blendv_pd(_mm256_min_pd(a, b), a, _mm256_cmp_pd::<_CMP_UNORD_Q>(b, b))
    }
    let zero = _mm256_setzero_pd();
    let half = _mm256_set1_pd(0.5);
    for (block, slots) in rows.chunks_exact(LANES).zip(out.chunks_exact_mut(LANES)) {
        // gather: corner coordinates into per-corner lane columns
        let mut axs = [0.0f64; LANES];
        let mut ays = [0.0f64; LANES];
        let mut bxs = [0.0f64; LANES];
        let mut bys = [0.0f64; LANES];
        let mut cxs = [0.0f64; LANES];
        let mut cys = [0.0f64; LANES];
        for l in 0..LANES {
            let [ia, ib, ic] = block[l];
            axs[l] = xs[ia as usize];
            ays[l] = ys[ia as usize];
            bxs[l] = xs[ib as usize];
            bys[l] = ys[ib as usize];
            cxs[l] = xs[ic as usize];
            cys[l] = ys[ic as usize];
        }
        let ax = _mm256_loadu_pd(axs.as_ptr());
        let ay = _mm256_loadu_pd(ays.as_ptr());
        let bx = _mm256_loadu_pd(bxs.as_ptr());
        let by = _mm256_loadu_pd(bys.as_ptr());
        let cx = _mm256_loadu_pd(cxs.as_ptr());
        let cy = _mm256_loadu_pd(cys.as_ptr());
        // d0 = (ax-bx)^2 + (ay-by)^2, d1, d2: `dist_sq` expression order
        let e0x = _mm256_sub_pd(ax, bx);
        let e0y = _mm256_sub_pd(ay, by);
        let d0 = _mm256_add_pd(_mm256_mul_pd(e0x, e0x), _mm256_mul_pd(e0y, e0y));
        let e1x = _mm256_sub_pd(bx, cx);
        let e1y = _mm256_sub_pd(by, cy);
        let d1 = _mm256_add_pd(_mm256_mul_pd(e1x, e1x), _mm256_mul_pd(e1y, e1y));
        let e2x = _mm256_sub_pd(cx, ax);
        let e2y = _mm256_sub_pd(cy, ay);
        let d2 = _mm256_add_pd(_mm256_mul_pd(e2x, e2x), _mm256_mul_pd(e2y, e2y));
        let max_sq = maxnum(maxnum(d0, d1), d2);
        let min_sq = minnum(minnum(d0, d1), d2);
        // area2 = (bx-ax)*(cy-ay) - (by-ay)*(cx-ax): `orient2d` sequence
        let area2 = _mm256_sub_pd(
            _mm256_mul_pd(_mm256_sub_pd(bx, ax), _mm256_sub_pd(cy, ay)),
            _mm256_mul_pd(_mm256_sub_pd(by, ay), _mm256_sub_pd(cx, ax)),
        );
        let q = _mm256_div_pd(_mm256_sqrt_pd(min_sq), _mm256_sqrt_pd(max_sq));
        let degenerate = _mm256_cmp_pd::<_CMP_LE_OQ>(max_sq, zero);
        let score = _mm256_blendv_pd(q, zero, degenerate);
        let half_area = _mm256_mul_pd(area2, half);
        let pos_mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(half_area, zero));
        let mut s = [0.0f64; LANES];
        _mm256_storeu_pd(s.as_mut_ptr(), score);
        for (l, slot) in slots.iter_mut().enumerate() {
            *slot = (s[l], pos_mask & (1 << l) != 0);
        }
    }
}

/// One scalar lane of [`tri_elr_batch`] — the tail path, and the shape
/// every vector lane reproduces bit for bit.
#[inline(always)]
fn tri_elr_lane(xs: &[f64], ys: &[f64], [ia, ib, ic]: [u32; 3]) -> (f64, bool) {
    let a = Point2::new(xs[ia as usize], ys[ia as usize]);
    let b = Point2::new(xs[ib as usize], ys[ib as usize]);
    let c = Point2::new(xs[ic as usize], ys[ic as usize]);
    let d0 = a.dist_sq(b);
    let d1 = b.dist_sq(c);
    let d2 = c.dist_sq(a);
    (edge_length_ratio_from_sq(d0, d1, d2), signed_area(a, b, c) > 0.0)
}

/// The dimension-free slice of a smoothing parameter set — what the
/// generic engines actually consume (the metric lives in the domain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainConfig {
    /// Convergence tolerance on the per-sweep quality improvement.
    pub tol: f64,
    /// Hard sweep cap.
    pub max_iters: usize,
    /// Gauss–Seidel (in place) or Jacobi (double-buffered) commits.
    pub update: UpdateScheme,
    /// Smart (quality-guarded, inversion-safe) commit rule.
    pub smart: bool,
    /// Neighbour weighting of the Laplacian update.
    pub weighting: Weighting,
    /// Force the pre-SoA per-element scalar scoring path (bench/oracle
    /// baseline; bit-identical to the default lane-batched scoring).
    pub scalar_scoring: bool,
}

impl From<&SmoothParams> for DomainConfig {
    fn from(p: &SmoothParams) -> Self {
        DomainConfig {
            tol: p.tol,
            max_iters: p.max_iters,
            update: p.update,
            smart: p.smart,
            weighting: p.weighting,
            scalar_scoring: p.scalar_scoring,
        }
    }
}

/// Generic weighted Laplacian candidate — the dimension-generic core of
/// [`crate::weighting::weighted_candidate`], with the exact uniform
/// `sum / n` arithmetic of Equation (1) at every `D`.
#[inline]
pub fn weighted_candidate_on<P: DomainPoint>(
    weighting: Weighting,
    pv: P,
    nbrs: impl Iterator<Item = P>,
) -> Option<P> {
    match weighting {
        Weighting::Uniform => {
            let mut sum = P::ZERO;
            let mut n = 0usize;
            for p in nbrs {
                sum = sum.padd(p);
                n += 1;
            }
            (n > 0).then(|| sum.pdiv(n as f64))
        }
        Weighting::InverseEdgeLength | Weighting::EdgeLength => {
            let mut acc = P::ZERO;
            let mut total = 0.0;
            for p in nbrs {
                let d = pv.pdist(p);
                let w = match weighting {
                    Weighting::InverseEdgeLength => {
                        // clamp so a (nearly) coincident neighbour does not
                        // turn into an infinite weight
                        1.0 / d.max(1e-12)
                    }
                    _ => d,
                };
                acc = acc.padd(p.pscale(w));
                total += w;
            }
            (total > 0.0).then(|| acc.pdiv(total))
        }
    }
}

/// The canonical reduction shared by every quality read-out: per-vertex
/// mean of incident element qualities, then the mean over all vertices —
/// exactly the reduction (and reduction *order*) of
/// `lms_mesh::quality::mesh_quality` and its 3D twin.
fn reduce_quality<const C: usize, D: SmoothDomain<C>>(dom: &D, q_of: impl Fn(usize) -> f64) -> f64 {
    let n = dom.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for v in 0..n as u32 {
        let ts = dom.elements_of(v);
        total += if ts.is_empty() {
            0.0
        } else {
            ts.iter().map(|&t| q_of(t as usize)).sum::<f64>() / ts.len() as f64
        };
    }
    total / n as f64
}

/// The canonical global quality of a domain, scored from scratch on
/// `coords` — bit-identical to the concrete `mesh_quality` recomputes the
/// pre-refactor engines called.
pub fn domain_quality<const C: usize, D: SmoothDomain<C>>(dom: &D, coords: &[D::Point]) -> f64 {
    let elem_q: Vec<f64> = dom.elements().iter().map(|&e| dom.score(coords, e).0).collect();
    reduce_quality(dom, |t| elem_q[t])
}

/// [`domain_quality`] from an already-scored element table (e.g. the
/// resident engine's initial scoring pass) — same canonical reduction, no
/// second scoring sweep.
pub fn domain_quality_scored<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    scores: &[(f64, bool)],
) -> f64 {
    debug_assert_eq!(scores.len(), dom.num_elements());
    reduce_quality(dom, |t| scores[t].0)
}

/// Sentinel star-layout code marking "the vertex being smoothed itself".
pub(crate) const SELF_CORNER: u8 = u8::MAX;

/// Build the star corner layout of a domain: for every vertex→element
/// incidence (flat CSR order, base [`SmoothDomain::elements_offset`]),
/// each stored corner encoded as its position in `neighbors(v)` — or
/// [`SELF_CORNER`] for `v` itself. `None` if any degree ≥ 255 or a corner
/// is missing from the vertex's neighbour list (non-manifold edge cases):
/// the smart sweeps then fall back to direct indexing.
pub(crate) fn build_star_layout_on<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
) -> Option<Vec<[u8; C]>> {
    let n = dom.num_vertices() as u32;
    let total: usize = (0..n).map(|v| dom.elements_of(v).len()).sum();
    let mut layout = Vec::with_capacity(total);
    for v in 0..n {
        let ns = dom.neighbors(v);
        if ns.len() >= SELF_CORNER as usize {
            return None;
        }
        for &t in dom.elements_of(v) {
            let mut enc = [0u8; C];
            for (k, &u) in dom.elements()[t as usize].iter().enumerate() {
                enc[k] = if u == v {
                    SELF_CORNER
                } else {
                    match ns.binary_search(&u) {
                        Ok(pos) => pos as u8,
                        Err(_) => return None,
                    }
                };
            }
            layout.push(enc);
        }
    }
    Some(layout)
}

/// Mean guarded quality of `v`'s element star with `v` at `pos_v`
/// (inverted elements score 0) — the smart guard's "before"/"after"
/// evaluations of the reference path.
fn local_quality_with<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    coords: &[D::Point],
    v: u32,
    pos_v: D::Point,
) -> f64 {
    let ts = dom.elements_of(v);
    if ts.is_empty() {
        return 0.0;
    }
    ts.iter()
        .map(|&t| {
            let (q, pos) = dom.score_with(coords, dom.elements()[t as usize], v, pos_v);
            if pos {
                q
            } else {
                0.0
            }
        })
        .sum::<f64>()
        / ts.len() as f64
}

/// True when every element of `v`'s star is positively oriented with `v`
/// at `pos_v`.
fn star_valid_with<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    coords: &[D::Point],
    v: u32,
    pos_v: D::Point,
) -> bool {
    dom.elements_of(v)
        .iter()
        .all(|&t| dom.score_with(coords, dom.elements()[t as usize], v, pos_v).1)
}

/// The generic **reference** smoothing path: full-mesh quality recompute
/// every sweep, mean-vs-mean smart guard, per-access tracing — Algorithm 1
/// as written, for any [`SmoothDomain`]. `SmoothEngine3` delegates its
/// serial (and traced) runs here; the 2D engine keeps its own concrete
/// reference body as the historical oracle the incremental kernel is
/// property-tested against.
pub fn smooth_reference_on<const C: usize, D: SmoothDomain<C>, S: AccessSink>(
    dom: &D,
    cfg: &DomainConfig,
    visit: &[u32],
    coords: &mut [D::Point],
    sink: &mut S,
) -> SmoothReport {
    assert_eq!(coords.len(), dom.num_vertices(), "engine was built for a different mesh");
    let initial_quality = domain_quality(dom, coords);
    let mut report = SmoothReport::starting(initial_quality);
    let mut quality = initial_quality;
    let mut scratch: Vec<D::Point> = Vec::new();

    for iter in 1..=cfg.max_iters {
        match cfg.update {
            UpdateScheme::GaussSeidel => {
                reference_sweep_gs(dom, cfg, visit, coords, sink);
            }
            UpdateScheme::Jacobi => {
                scratch.clear();
                scratch.extend_from_slice(coords);
                reference_sweep_jacobi(dom, cfg, visit, &scratch, coords, sink);
            }
        }
        sink.end_iteration();

        let new_quality = domain_quality(dom, coords);
        let improvement = new_quality - quality;
        report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
        quality = new_quality;
        if improvement < cfg.tol {
            report.converged = true;
            break;
        }
    }
    report.final_quality = quality;
    report
}

/// One in-place (Gauss–Seidel) reference sweep: later vertices see
/// already-committed neighbours.
fn reference_sweep_gs<const C: usize, D: SmoothDomain<C>, S: AccessSink>(
    dom: &D,
    cfg: &DomainConfig,
    visit: &[u32],
    coords: &mut [D::Point],
    sink: &mut S,
) {
    for &v in visit {
        let ns = dom.neighbors(v);
        if ns.is_empty() {
            continue;
        }
        sink.access(v);
        let pv = coords[v as usize];
        let gathered = ns.iter().map(|&w| {
            sink.access(w);
            coords[w as usize]
        });
        let Some(candidate) = weighted_candidate_on(cfg.weighting, pv, gathered) else {
            continue;
        };
        if cfg.smart {
            let before = local_quality_with(dom, coords, v, pv);
            let commit = local_quality_with(dom, coords, v, candidate) >= before
                && (star_valid_with(dom, coords, v, candidate)
                    || !star_valid_with(dom, coords, v, pv));
            if commit {
                coords[v as usize] = candidate;
            }
        } else {
            coords[v as usize] = candidate;
        }
    }
}

/// One double-buffered (Jacobi) reference sweep: reads `prev`, writes
/// `next`.
fn reference_sweep_jacobi<const C: usize, D: SmoothDomain<C>, S: AccessSink>(
    dom: &D,
    cfg: &DomainConfig,
    visit: &[u32],
    prev: &[D::Point],
    next: &mut [D::Point],
    sink: &mut S,
) {
    for &v in visit {
        let ns = dom.neighbors(v);
        if ns.is_empty() {
            continue;
        }
        sink.access(v);
        let pv = prev[v as usize];
        let gathered = ns.iter().map(|&w| {
            sink.access(w);
            prev[w as usize]
        });
        let Some(candidate) = weighted_candidate_on(cfg.weighting, pv, gathered) else {
            continue;
        };
        if cfg.smart {
            let before = local_quality_with(dom, prev, v, pv);
            let commit = local_quality_with(dom, prev, v, candidate) >= before
                && (star_valid_with(dom, prev, v, candidate) || !star_valid_with(dom, prev, v, pv));
            if commit {
                next[v as usize] = candidate;
            }
        } else {
            next[v as usize] = candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn array_points_match_point2_arithmetic_bitwise() {
        let ps = [(0.3, -1.25), (1e-9, 7.5), (2.0, 3.0), (-0.125, 0.75)];
        let mut sum2 = Point2::ZERO;
        let mut sumd = <[f64; 2]>::ZERO;
        for &(x, y) in &ps {
            sum2 = sum2.padd(Point2::new(x, y));
            sumd = sumd.padd([x, y]);
        }
        let m2 = sum2.pdiv(ps.len() as f64);
        let md = sumd.pdiv(ps.len() as f64);
        assert_eq!(m2.x.to_bits(), md[0].to_bits());
        assert_eq!(m2.y.to_bits(), md[1].to_bits());
        assert_eq!(
            Point2::new(0.1, 0.2).pdist(Point2::new(-3.0, 4.5)).to_bits(),
            [0.1, 0.2].pdist([-3.0, 4.5]).to_bits()
        );
    }

    #[test]
    fn tri_domain_quality_matches_mesh_quality_bitwise() {
        for seed in [1u64, 5, 11] {
            let m = generators::perturbed_grid(13, 11, 0.35, seed);
            let adj = Adjacency::build(&m);
            let boundary = Boundary::detect(&m);
            let dom =
                TriDomain::new(&adj, &boundary, m.triangles(), QualityMetric::EdgeLengthRatio);
            let generic = domain_quality(&dom, m.coords());
            let concrete =
                lms_mesh::quality::mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
            assert_eq!(generic.to_bits(), concrete.to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn tri_domain_scoring_matches_quality_cache() {
        let m = generators::perturbed_grid(9, 9, 0.3, 3);
        let adj = Adjacency::build(&m);
        let boundary = Boundary::detect(&m);
        let metric = QualityMetric::EdgeLengthRatio;
        let dom = TriDomain::new(&adj, &boundary, m.triangles(), metric);
        for (t, &tri) in m.triangles().iter().enumerate() {
            let (qa, pa) = dom.score(m.coords(), tri);
            let (qb, pb) = lms_mesh::QualityCache::score(metric, m.coords(), tri);
            assert_eq!(qa.to_bits(), qb.to_bits(), "triangle {t}");
            assert_eq!(pa, pb);
            let v = tri[0];
            let moved = Point2::new(0.123, 0.456);
            let (qa, pa) = dom.score_with(m.coords(), tri, v, moved);
            let (qb, pb) = lms_mesh::QualityCache::score_with(metric, m.coords(), tri, v, moved);
            assert_eq!(qa.to_bits(), qb.to_bits());
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn generic_weighted_candidate_matches_concrete() {
        use crate::weighting::weighted_candidate;
        let pv = Point2::new(0.2, 0.4);
        let nbrs = [Point2::new(0.0, 0.0), Point2::new(1.5, -0.5), Point2::new(0.25, 2.0)];
        for w in [Weighting::Uniform, Weighting::InverseEdgeLength, Weighting::EdgeLength] {
            assert_eq!(
                weighted_candidate(w, pv, nbrs.iter().copied()),
                weighted_candidate_on(w, pv, nbrs.iter().copied()),
                "{:?}",
                w
            );
        }
    }
}
