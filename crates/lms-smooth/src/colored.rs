//! Colored deterministic parallel Gauss–Seidel smoothing, generic over
//! the smoothing domain.
//!
//! The paper's OpenMP loop runs in-place sweeps with a static schedule and
//! simply races on neighbour reads ([`SmoothEngine::smooth_parallel_chaotic`]
//! reproduces that); the deterministic alternative it compares against is
//! double-buffered Jacobi ([`SmoothEngine::smooth_parallel`]), which gives
//! up the Gauss–Seidel convergence rate. This module provides the classic
//! third option: **graph-colored Gauss–Seidel**.
//!
//! The vertex–vertex graph is greedily colored
//! ([`lms_order::coloring::greedy_coloring_on`]); a sweep processes one
//! color class at a time, evaluating the class's candidates in parallel
//! from the current coordinates and then committing them. Within a class
//! no two vertices are adjacent — and in a simplicial mesh, no two
//! same-class vertices even share an element (an element's corners are
//! mutually adjacent) — so:
//!
//! * candidate evaluation reads nothing a same-class commit writes →
//!   **race-free in-place semantics**, and the result is independent of
//!   how the class is split across threads → **bitwise-deterministic for
//!   any thread count**;
//! * the smart guard's cached "before" qualities stay coherent for the
//!   whole class (incident elements of distinct same-class vertices are
//!   disjoint), so the incremental [`DomainQualityCache`] protocol of the
//!   serial hot path carries over unchanged.
//!
//! The sweep is *exactly* serial Gauss–Seidel under the class-major visit
//! order ([`SmoothEngine::colored_visit_order`]) — property-tested
//! bit-for-bit in `tests/colored.rs` — and converges to the same fixed
//! point as any other Gauss–Seidel order. The same generic body drives
//! `SmoothEngine3::smooth_parallel_colored` in `lms-mesh3d` (a tet's four
//! corners are mutually adjacent, so the class argument holds verbatim).

use crate::config::UpdateScheme;
use crate::dcache::DomainQualityCache;
use crate::domain::{DomainConfig, SmoothDomain};
use crate::engine::SmoothEngine;
use crate::kernel::candidate_for;
use crate::stats::{IterationStats, SmoothReport};
use lms_mesh::TriMesh;
use lms_order::coloring::greedy_coloring_on;
use rayon::prelude::*;

/// Outcome of one parallel candidate evaluation.
///
/// Deliberately minimal: carrying the guard's per-element scores from
/// the parallel phase into the commit pass (to avoid re-scoring committed
/// stars) was measured and rejected — the inline score array inflates the
/// per-class result buffers enough that the engine runs ~2× slower on a
/// 512² grid than simply re-scoring the committed stars serially.
#[derive(Clone, Copy)]
struct ClassMove<P> {
    v: u32,
    candidate: P,
}

/// One plain color-class step: candidates in parallel from the pre-class
/// coordinates, then a serial commit pass (class vertices are mutually
/// non-adjacent, so the snapshot equals what serial Gauss–Seidel would
/// read). Shared with the partitioned engine's interface phase.
pub(crate) fn colored_class_plain_on<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    weighting: crate::config::Weighting,
    class: &[u32],
    coords: &mut [D::Point],
    moved: &mut Vec<u32>,
    pool: &rayon::ThreadPool,
) {
    let results: Vec<Option<ClassMove<D::Point>>> = {
        let shared: &[D::Point] = coords;
        pool.install(|| {
            class
                .par_iter()
                .map(|&v| {
                    let ns = dom.neighbors(v);
                    if ns.is_empty() {
                        return None;
                    }
                    let pv = shared[v as usize];
                    candidate_for(weighting, pv, ns, shared)
                        .map(|candidate| ClassMove { v, candidate })
                })
                .collect()
        })
    };
    for mv in results.into_iter().flatten() {
        coords[mv.v as usize] = mv.candidate;
        moved.push(mv.v);
    }
}

/// One smart color-class step: candidate evaluation *and* the
/// quality-guard decision in parallel (reads only pre-class state), then
/// a serial commit pass that re-scores each committed star once to keep
/// the cache coherent for the next class (see [`ClassMove`] for why the
/// guard's scores are not carried over). Shared with the partitioned
/// engine's interface phase.
pub(crate) fn colored_class_smart_on<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    weighting: crate::config::Weighting,
    class: &[u32],
    coords: &mut [D::Point],
    cache: &mut DomainQualityCache,
    pool: &rayon::ThreadPool,
) {
    let accepted: Vec<Option<ClassMove<D::Point>>> = {
        let shared: &[D::Point] = coords;
        let cache_ref: &DomainQualityCache = cache;
        pool.install(|| {
            class
                .par_iter()
                .map(|&v| {
                    let ns = dom.neighbors(v);
                    if ns.is_empty() {
                        return None;
                    }
                    let pv = shared[v as usize];
                    let candidate = candidate_for(weighting, pv, ns, shared)?;
                    let ts = dom.elements_of(v);
                    if ts.is_empty() {
                        return Some(ClassMove { v, candidate });
                    }
                    let mut after_sum = 0.0;
                    let mut after_all_pos = true;
                    let mut before_sum = 0.0;
                    for &t in ts {
                        before_sum += cache_ref.guarded_quality(t);
                        let (q, pos) =
                            dom.score_with(shared, dom.elements()[t as usize], v, candidate);
                        if pos {
                            after_sum += q;
                        } else {
                            after_all_pos = false;
                        }
                    }
                    let len = ts.len() as f64;
                    let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
                    let commit = quality_ok
                        && (after_all_pos || ts.iter().any(|&t| !cache_ref.elem_is_positive(t)));
                    commit.then_some(ClassMove { v, candidate })
                })
                .collect()
        })
    };

    // serial commit in class order: write coordinates, then re-score
    // the committed stars (disjoint within a class) into the cache
    let mut committed: Vec<u32> = Vec::with_capacity(class.len());
    for mv in accepted.into_iter().flatten() {
        coords[mv.v as usize] = mv.candidate;
        committed.push(mv.v);
    }
    let mut scores: Vec<(f64, bool)> = Vec::new();
    for &v in &committed {
        let ts = dom.elements_of(v);
        scores.clear();
        scores.extend(ts.iter().map(|&t| dom.score(coords, dom.elements()[t as usize])));
        cache.set_star(ts, &scores);
    }
}

/// The generic colored-Gauss–Seidel driver: in-place smoothing of
/// `coords` one color class at a time, race-free and
/// bitwise-deterministic for any thread count. `classes` must be the
/// movable (interior) vertices grouped by color, ascending within each
/// class; the caller provides the pool (engines cache one per instance).
pub fn smooth_colored_on<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    cfg: &DomainConfig,
    classes: &[Vec<u32>],
    coords: &mut [D::Point],
    pool: &rayon::ThreadPool,
) -> SmoothReport {
    assert_eq!(coords.len(), dom.num_vertices(), "engine was built for a different mesh");
    assert_eq!(
        cfg.update,
        UpdateScheme::GaussSeidel,
        "colored smoothing is an in-place (Gauss-Seidel) schedule; \
         use smooth_parallel for deterministic Jacobi"
    );
    let mut cache = DomainQualityCache::build(dom, coords);
    let initial_quality = cache.quality_exact(dom);
    let mut report = SmoothReport::starting(initial_quality);
    let mut quality = initial_quality;
    let mut moved: Vec<u32> = Vec::new();

    for iter in 1..=cfg.max_iters {
        moved.clear();
        for class in classes {
            if class.is_empty() {
                continue;
            }
            if cfg.smart {
                colored_class_smart_on(dom, cfg.weighting, class, coords, &mut cache, pool);
            } else {
                colored_class_plain_on(dom, cfg.weighting, class, coords, &mut moved, pool);
            }
        }
        if !moved.is_empty() {
            cache.apply_moves(dom, &moved, coords);
        }

        let new_quality = cache.quality_running();
        let improvement = new_quality - quality;
        report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
        quality = new_quality;
        if improvement < cfg.tol {
            report.converged = true;
            break;
        }
    }

    let exact =
        if report.iterations.is_empty() { initial_quality } else { cache.quality_exact(dom) };
    if let Some(last) = report.iterations.last_mut() {
        last.quality = exact;
    }
    report.final_quality = exact;
    report
}

impl SmoothEngine {
    /// Greedy coloring of the engine's vertex–vertex adjacency, with each
    /// color class restricted to interior vertices (ascending within a
    /// class) — the schedule [`smooth_parallel_colored`] sweeps. Computed
    /// once per engine (topology-only) and cached.
    ///
    /// [`smooth_parallel_colored`]: Self::smooth_parallel_colored
    pub fn interior_color_classes(&self) -> &[Vec<u32>] {
        self.colored_classes.get_or_init(|| {
            let coloring = greedy_coloring_on(&self.adj);
            coloring
                .classes()
                .map(|class| {
                    class.iter().copied().filter(|&v| self.boundary.is_interior(v)).collect()
                })
                .collect()
        })
    }

    /// The class-major visit order: interior vertices grouped by color,
    /// ascending within each class. Feeding this to
    /// [`with_visit_order`](Self::with_visit_order) makes the serial
    /// engine execute the exact sequence the colored parallel engine
    /// commits — they produce bit-identical coordinates.
    pub fn colored_visit_order(&self) -> Vec<u32> {
        self.interior_color_classes().iter().flatten().copied().collect()
    }

    /// In-place Gauss–Seidel smoothing, parallelised by color class:
    /// race-free, bitwise-deterministic for any `num_threads`, and with
    /// true in-place convergence behaviour (unlike the Jacobi engine).
    /// Honours the engine's `smart` flag through the same incremental
    /// quality-cache protocol as the serial hot path; the `Jacobi` update
    /// scheme is rejected (use [`smooth_parallel`](Self::smooth_parallel),
    /// which is already deterministic).
    pub fn smooth_parallel_colored(&self, mesh: &mut TriMesh, num_threads: usize) -> SmoothReport {
        assert!(num_threads >= 1, "need at least one thread");
        assert_eq!(
            mesh.num_vertices(),
            self.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        // one persistent pool per engine: the spawn cost of the shim's
        // parked workers is paid on the first run at this thread count
        let pool = self.pool.get(num_threads);
        let classes = self.interior_color_classes();
        let dom = self.domain();
        smooth_colored_on(
            &dom,
            &DomainConfig::from(&self.params),
            classes,
            mesh.coords_mut(),
            &pool,
        )
    }
}

/// Convenience: build an engine and run the colored parallel smoother.
pub fn smooth_parallel_colored(
    mesh: &mut TriMesh,
    params: &crate::config::SmoothParams,
    num_threads: usize,
) -> SmoothReport {
    SmoothEngine::new(mesh, params.clone()).smooth_parallel_colored(mesh, num_threads)
}
