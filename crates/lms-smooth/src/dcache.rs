//! The dimension-generic incremental element-quality cache — the
//! [`lms_mesh::QualityCache`] protocol lifted onto [`SmoothDomain`].
//!
//! Identical bookkeeping to the 2D original (see its module docs for the
//! derivation): per-element raw quality `q` and orientation-guarded
//! quality `g`, constant weights `w_t = Σ_{v ∈ t} 1/deg_t(v)` of the
//! linear global-quality functional, a Neumaier-compensated running
//! weighted sum for O(1) convergence tests, an epoch-stamped dirty set
//! for deferred re-scores, and a canonical-order exact reduction for
//! reported values. Every update expression is ported verbatim, so on a
//! triangle domain the cache's states — running sum included — are
//! bit-identical to the 2D `QualityCache`'s, which is what keeps the
//! refactored engines' reports pinned to their PR-1..3 behaviour.

use crate::domain::SmoothDomain;
use crate::soa::score_elements_batched;

/// Cached per-element qualities with an incrementally-maintained global
/// quality, generic over the smoothing domain. Scoring runs through the
/// domain ([`SmoothDomain::score`]); the cache itself stores only `f64`
/// state and is dimension-blind.
#[derive(Debug, Clone)]
pub struct DomainQualityCache {
    /// Current quality of each element.
    elem_q: Vec<f64>,
    /// Orientation-guarded quality: `elem_q[t]` when positively oriented,
    /// `0.0` otherwise.
    elem_g: Vec<f64>,
    /// Constant weight `w_t` of each element in the global quality.
    elem_w: Vec<f64>,
    num_vertices: usize,
    /// Neumaier-compensated running `Σ_t elem_q[t] · elem_w[t]`.
    sum: f64,
    comp: f64,
    /// Epoch-stamped dirty set (no clearing between flushes).
    dirty_stamp: Vec<u32>,
    dirty: Vec<u32>,
    epoch: u32,
    /// Reusable output buffer of the batched re-score paths.
    score_scratch: Vec<(f64, bool)>,
}

impl DomainQualityCache {
    /// Build the cache for a domain (scores every element once).
    pub fn build<const C: usize, D: SmoothDomain<C>>(dom: &D, coords: &[D::Point]) -> Self {
        let nt = dom.num_elements();
        let n = dom.num_vertices();
        assert_eq!(n, coords.len(), "coordinate array does not match the domain");

        let mut elem_w = Vec::with_capacity(nt);
        for e in dom.elements() {
            let w: f64 = e.iter().map(|&v| 1.0 / dom.elements_of(v).len() as f64).sum();
            elem_w.push(w);
        }

        let mut cache = DomainQualityCache {
            elem_q: vec![0.0; nt],
            elem_g: vec![0.0; nt],
            elem_w,
            num_vertices: n,
            sum: 0.0,
            comp: 0.0,
            dirty_stamp: vec![0; nt],
            dirty: Vec::new(),
            epoch: 1,
            score_scratch: Vec::new(),
        };
        cache.rescore_all(dom, coords);
        cache
    }

    /// Neumaier-compensated accumulate.
    #[inline]
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Number of cached elements.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.elem_q.len()
    }

    /// Current cached quality of element `t`.
    #[inline]
    pub fn elem_quality(&self, t: u32) -> f64 {
        self.elem_q[t as usize]
    }

    /// Whether element `t` is currently positively oriented (via the
    /// guarded-value invariant: positive orientation ⇒ positive quality).
    #[inline]
    pub fn elem_is_positive(&self, t: u32) -> bool {
        self.elem_g[t as usize] > 0.0
    }

    /// Orientation-guarded quality of element `t`: 0 when inverted — the
    /// value the smart-smoothing guard averages over a vertex star.
    #[inline]
    pub fn guarded_quality(&self, t: u32) -> f64 {
        self.elem_g[t as usize]
    }

    /// Batch update for one vertex star: `scores[k]` is the fresh
    /// `(quality, positively_oriented)` of element `ts[k]`. Deltas are
    /// accumulated plainly and folded into the running sum with a single
    /// compensated add — exactly `QualityCache::set_star`.
    #[inline]
    pub fn set_star(&mut self, ts: &[u32], scores: &[(f64, bool)]) {
        debug_assert_eq!(ts.len(), scores.len());
        let mut delta = 0.0;
        for (&t, &(q, pos)) in ts.iter().zip(scores) {
            debug_assert!(
                q > 0.0 || !pos,
                "metric invariant violated: positive orientation with zero quality"
            );
            let i = t as usize;
            let w = self.elem_w[i];
            delta += q * w - self.elem_q[i] * w;
            self.elem_q[i] = q;
            self.elem_g[i] = if pos { q } else { 0.0 };
        }
        if delta != 0.0 {
            self.add(delta);
        }
    }

    /// Re-score **every** element and rebuild the running sum from
    /// scratch (same accumulation order as [`build`](Self::build)).
    /// Scoring runs through the lane-batched SoA kernel
    /// ([`score_elements_batched`]); the fold over the results keeps the
    /// sequential element order, so the rebuilt sum is bit-identical to
    /// the scalar loop it replaces.
    pub fn rescore_all<const C: usize, D: SmoothDomain<C>>(
        &mut self,
        dom: &D,
        coords: &[D::Point],
    ) {
        assert_eq!(dom.num_elements(), self.elem_q.len(), "element count changed");
        self.sum = 0.0;
        self.comp = 0.0;
        score_elements_batched(dom, coords, dom.elements(), &mut self.score_scratch);
        let scored = std::mem::take(&mut self.score_scratch);
        for (i, &(q, pos)) in scored.iter().enumerate() {
            self.elem_q[i] = q;
            self.elem_g[i] = if pos { q } else { 0.0 };
            self.add(q * self.elem_w[i]);
        }
        self.score_scratch = scored;
    }

    /// Fold a sweep's committed moves into the cache: sparse move sets
    /// re-score each incident element once, dense ones (≥ ~¼ of the
    /// vertices) fall back to the cheaper streaming rescore.
    pub fn apply_moves<const C: usize, D: SmoothDomain<C>>(
        &mut self,
        dom: &D,
        moved: &[u32],
        coords: &[D::Point],
    ) {
        if moved.len() * 4 >= self.num_vertices {
            self.rescore_all(dom, coords);
            return;
        }
        for &v in moved {
            for &t in dom.elements_of(v) {
                self.mark_dirty(t);
            }
        }
        self.flush_dirty(dom, coords);
    }

    /// Queue element `t` for the next flush (deduplicated; O(1)).
    #[inline]
    pub fn mark_dirty(&mut self, t: u32) {
        if self.dirty_stamp[t as usize] != self.epoch {
            self.dirty_stamp[t as usize] = self.epoch;
            self.dirty.push(t);
        }
    }

    /// Whether any element awaits re-scoring.
    #[inline]
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Re-score every queued element once, in ascending element order
    /// (through the lane-batched SoA kernel; the delta fold keeps the
    /// ascending order, so the running sum stays bit-identical to the
    /// scalar flush), folding the deltas into the running sum.
    pub fn flush_dirty<const C: usize, D: SmoothDomain<C>>(
        &mut self,
        dom: &D,
        coords: &[D::Point],
    ) {
        self.dirty.sort_unstable();
        let mut dirty = std::mem::take(&mut self.dirty);
        let rows: Vec<[u32; C]> = dirty.iter().map(|&t| dom.elements()[t as usize]).collect();
        score_elements_batched(dom, coords, &rows, &mut self.score_scratch);
        let scored = std::mem::take(&mut self.score_scratch);
        for (&t, &(q, pos)) in dirty.iter().zip(&scored) {
            debug_assert!(
                q > 0.0 || !pos,
                "metric invariant violated: positive orientation with zero quality"
            );
            let i = t as usize;
            let w = self.elem_w[i];
            let delta = q * w - self.elem_q[i] * w;
            if delta != 0.0 {
                self.add(delta);
            }
            self.elem_q[i] = q;
            self.elem_g[i] = if pos { q } else { 0.0 };
        }
        self.score_scratch = scored;
        dirty.clear();
        self.dirty = dirty;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wrapped: stamps from 2^32 flushes ago could collide — reset
            self.dirty_stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// O(1) global quality from the compensated running sum. Within a few
    /// ulps of [`quality_exact`](Self::quality_exact); use for convergence
    /// tests, not for reported results.
    #[inline]
    pub fn quality_running(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        (self.sum + self.comp) / self.num_vertices as f64
    }

    /// Global quality re-reduced from the cached per-element values in the
    /// canonical order of the domain's `mesh_quality` — bit-identical to a
    /// from-scratch recompute on the current coordinates (provided the
    /// cache is coherent with no pending dirty elements).
    pub fn quality_exact<const C: usize, D: SmoothDomain<C>>(&self, dom: &D) -> f64 {
        debug_assert!(!self.has_dirty(), "flush_dirty before reading exact quality");
        let n = self.num_vertices;
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for v in 0..n as u32 {
            let ts = dom.elements_of(v);
            total += if ts.is_empty() {
                0.0
            } else {
                ts.iter().map(|&t| self.elem_q[t as usize]).sum::<f64>() / ts.len() as f64
            };
        }
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::TriDomain;
    use lms_mesh::quality::{mesh_quality, QualityMetric};
    use lms_mesh::{generators, Adjacency, Boundary, Point2, QualityCache, TriMesh};

    fn setup(seed: u64) -> (TriMesh, Adjacency, Boundary) {
        let m = generators::perturbed_grid(14, 14, 0.35, seed);
        let adj = Adjacency::build(&m);
        let b = Boundary::detect(&m);
        (m, adj, b)
    }

    /// The generic cache must mirror the 2D `QualityCache` bit for bit:
    /// same exact quality, same running sum, through builds and updates.
    #[test]
    fn generic_cache_matches_2d_cache_bitwise() {
        for seed in [1u64, 5, 9] {
            let (mut m, adj, b) = setup(seed);
            let metric = QualityMetric::EdgeLengthRatio;
            let tris: Vec<[u32; 3]> = m.triangles().to_vec();
            let dom = TriDomain::new(&adj, &b, &tris, metric);
            let mut gen_cache = DomainQualityCache::build(&dom, m.coords());
            let mut cache2d = QualityCache::build(&m, &adj, metric);
            assert_eq!(
                gen_cache.quality_exact(&dom).to_bits(),
                cache2d.quality_exact(&adj).to_bits()
            );
            assert_eq!(gen_cache.quality_running().to_bits(), cache2d.quality_running().to_bits());

            // move a batch of interior vertices, update both caches by the
            // moved list, compare again
            let movers: Vec<u32> =
                (0..m.num_vertices() as u32).filter(|&v| b.is_interior(v)).take(25).collect();
            for (k, &v) in movers.iter().enumerate() {
                let p = m.coords()[v as usize];
                let s = if k % 2 == 0 { 0.03 } else { -0.02 };
                m.coords_mut()[v as usize] = Point2::new(p.x + s, p.y - s * 0.5);
            }
            gen_cache.apply_moves(&dom, &movers, m.coords());
            cache2d.apply_moves(&movers, &adj, m.coords(), &tris);
            assert_eq!(
                gen_cache.quality_exact(&dom).to_bits(),
                cache2d.quality_exact(&adj).to_bits()
            );
            assert_eq!(gen_cache.quality_running().to_bits(), cache2d.quality_running().to_bits());
            let fresh = mesh_quality(&m, &adj, metric);
            assert_eq!(gen_cache.quality_exact(&dom).to_bits(), fresh.to_bits());

            // star update parity
            let v = movers[0];
            let ts = adj.triangles_of(v);
            let scores: Vec<(f64, bool)> =
                ts.iter().map(|&t| dom.score(m.coords(), tris[t as usize])).collect();
            gen_cache.set_star(ts, &scores);
            cache2d.set_star(ts, &scores);
            assert_eq!(gen_cache.quality_running().to_bits(), cache2d.quality_running().to_bits());
        }
    }

    #[test]
    fn dense_moves_stream_rescore() {
        let (mut m, adj, b) = setup(7);
        let tris: Vec<[u32; 3]> = m.triangles().to_vec();
        let dom = TriDomain::new(&adj, &b, &tris, QualityMetric::EdgeLengthRatio);
        let mut cache = DomainQualityCache::build(&dom, m.coords());
        let movers: Vec<u32> = (0..m.num_vertices() as u32).filter(|&v| b.is_interior(v)).collect();
        for &v in &movers {
            let p = m.coords()[v as usize];
            m.coords_mut()[v as usize] = Point2::new(p.x + 0.011, p.y + 0.007);
        }
        cache.apply_moves(&dom, &movers, m.coords());
        let fresh = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        assert_eq!(cache.quality_exact(&dom).to_bits(), fresh.to_bits());
    }
}
