//! Halo-aware partitioned deterministic Gauss–Seidel smoothing — the
//! domain-decomposition engine that joins the ordering zoo's locality
//! story to the parallel one.
//!
//! The colored engine ([`SmoothEngine::smooth_parallel_colored`])
//! parallelises *across the whole mesh*: each color class scatters its
//! vertices over every worker, so the per-core working set is the entire
//! coordinate array — exactly the locality the geometric orderings try to
//! create is thrown away. This module instead decomposes the mesh with
//! [`lms_part`]: each worker owns a geometrically compact part and sweeps
//! the part's **interior** (vertices whose whole 1-ring it owns) as one
//! contiguous, cache-resident block — a gathered local coordinate buffer
//! plus a local element-score table, updated serially inside the part in
//! ascending order, exactly the incremental protocol of the serial hot
//! path ([`crate::kernel`]). Only the thin **interface** layer (vertices
//! with cross-part neighbours) needs coordination; it is swept with the
//! existing colored machinery.
//!
//! Since PR 4 the block builder and both sweep bodies are generic over
//! [`SmoothDomain`]: [`PartitionedEngine`] instantiates them for the 2D
//! [`TriMesh`], `lms-mesh3d`'s `PartitionedEngine3` for tetrahedra — one
//! code path, two dimensions.
//!
//! Determinism and equivalence:
//!
//! * interior vertices of different parts are never adjacent and their
//!   incident elements are disjoint, so the parallel part sweeps commute
//!   — results are gathered per part and folded back in part order,
//!   making coordinates **and** reports **bitwise-deterministic for any
//!   thread count**;
//! * the whole sweep is *exactly* serial Gauss–Seidel under the
//!   **part-major visit order** ([`PartitionedEngine::part_major_visit_order`]:
//!   part-0 interiors ascending, part-1 interiors, …, then the interface
//!   color classes) — coordinates match bit for bit, property-tested in
//!   `tests/partitioned.rs`.
//!
//! One caveat, inherited from [`crate::kernel`] and slightly widened: the
//! per-iteration convergence statistic is the cache's compensated running
//! sum, whose fold order here differs from the serial engine's (per-part
//! batches instead of per-commit stars). The value agrees to a few ulps,
//! so an improvement landing exactly on `tol` can stop the two engines
//! one sweep apart; disable the tolerance (`tol < 0`) when exact
//! sweep-count parity matters. Coordinates per sweep are unaffected.

use crate::colored::{colored_class_plain_on, colored_class_smart_on};
use crate::config::{SmoothParams, UpdateScheme};
use crate::dcache::DomainQualityCache;
use crate::domain::{DomainConfig, SmoothDomain};
use crate::engine::SmoothEngine;
use crate::kernel::candidate_for_soa;
use crate::soa::{note_scratch_grow, resize_tracked, SoaLike, SoaScores, LANES};
use crate::stats::{IterationStats, SmoothReport};
use lms_mesh::{Adjacency, TriMesh};
use lms_part::{partition_mesh, Partition, PartitionMethod};
use rayon::prelude::*;

/// A smoothing engine over a domain decomposition: parallel cache-resident
/// interior sweeps per part, colored interface sweeps, bitwise
/// deterministic for any thread count. Gauss–Seidel only (for parallel
/// Jacobi use [`SmoothEngine::smooth_parallel`], which needs no
/// decomposition to be deterministic).
#[derive(Debug, Clone)]
pub struct PartitionedEngine {
    engine: SmoothEngine,
    partition: Partition,
    blocks: Vec<PartBlock<3>>,
    /// Interface vertices (mesh-interior) grouped by color class —
    /// the engine's interior color classes restricted to the interface.
    interface_classes: Vec<Vec<u32>>,
}

/// Immutable per-part topology: the local view a worker sweeps, generic
/// in the element corner count `C`.
///
/// Local vertex ids index the part's owned vertices in ascending global
/// order (the `lms_part` ghost-map convention); the halo never enters the
/// sweep because part-interior vertices have fully-owned 1-rings. Local
/// element ids index `elem_globals` (ascending global order), so slices
/// keep the serial engine's ascending iteration order.
#[derive(Debug, Clone)]
pub struct PartBlock<const C: usize> {
    /// Owned vertices, global ids ascending (gather/scatter map).
    owned: Vec<u32>,
    /// Vertices this part sweeps (part-interior ∩ mesh-interior):
    /// global ids, ascending.
    sweep_globals: Vec<u32>,
    /// The same vertices as local owned indices.
    sweep_locals: Vec<u32>,
    /// Local CSR neighbour rows, aligned with `sweep_locals`; entries are
    /// local owned indices in the global ascending-neighbour order.
    nbr_offsets: Vec<u32>,
    nbrs: Vec<u32>,
    /// Local element set: every element incident to a sweep vertex
    /// (all corners are owned). Global ids, ascending.
    elem_globals: Vec<u32>,
    /// Corner indices of each local element, in stored corner order.
    elem_corners: Vec<[u32; C]>,
    /// Local CSR incident-element rows, aligned with `sweep_locals`.
    vt_offsets: Vec<u32>,
    vt: Vec<u32>,
    /// Owned interface vertices the interface phase can move:
    /// `(local, global)` pairs — the per-iteration coordinate refresh.
    iface_refresh: Vec<(u32, u32)>,
    /// Local elements incident to such a vertex — the per-iteration
    /// score refresh (the interface phase re-scores them in the cache).
    frontier_elems: Vec<u32>,
}

impl<const C: usize> PartBlock<C> {
    /// The sweep vertices (part-interior ∩ mesh-interior), global ids
    /// ascending — the block's slice of the part-major visit order.
    pub fn sweep_globals(&self) -> &[u32] {
        &self.sweep_globals
    }
}

/// Restrict interior color classes to partition-interface vertices
/// (ascending within a class preserved, empty classes dropped) — the
/// coordination schedule both decomposed engines (2D and 3D) build from
/// one definition, so they share one serial-equivalence order.
pub fn interface_classes(classes: &[Vec<u32>], partition: &Partition) -> Vec<Vec<u32>> {
    classes
        .iter()
        .map(|class| {
            class.iter().copied().filter(|&v| partition.is_interface(v)).collect::<Vec<u32>>()
        })
        .filter(|class| !class.is_empty())
        .collect()
}

/// The serial visit order a partitioned/resident sweep over `blocks` is
/// exactly equal to: each part's interior vertices ascending, parts in
/// order, then the interface color classes class-major.
pub fn part_major_order<const C: usize>(
    blocks: &[PartBlock<C>],
    interface_classes: &[Vec<u32>],
) -> Vec<u32> {
    let mut order: Vec<u32> = blocks.iter().flat_map(|b| b.sweep_globals.iter().copied()).collect();
    order.extend(interface_classes.iter().flatten().copied());
    order
}

/// Per-run mutable state of one part: the cache-resident block, held in
/// the domain's structure-of-arrays layout so the smart sweep can score
/// candidate stars through the lane-batched [`SmoothDomain::score_batch`]
/// kernel.
struct PartScratch<const C: usize, D: SmoothDomain<C>> {
    /// Local copies of the owned vertices' coordinates (SoA).
    coords: D::Soa,
    /// Local `(quality, positively_oriented)` per local element (smart
    /// runs only), mirroring the global [`DomainQualityCache`] entries.
    scores: SoaScores,
    /// Local owned indices committed this iteration (scatter list).
    committed: Vec<u32>,
    /// Local elements re-scored this iteration (cache write-back list).
    dirty: Vec<u32>,
    dirty_mark: Vec<bool>,
    /// Candidate-star scratch, grown once to the largest star.
    star: Vec<(f64, bool)>,
    /// Corner-row staging for the batched star score.
    rows: Vec<[u32; C]>,
}

impl<const C: usize, D: SmoothDomain<C>> PartScratch<C, D> {
    fn new(block: &PartBlock<C>, smart: bool) -> Self {
        PartScratch {
            coords: D::Soa::with_len(block.owned.len()),
            scores: SoaScores::with_len(if smart { block.elem_globals.len() } else { 0 }),
            committed: Vec::new(),
            dirty: Vec::new(),
            dirty_mark: if smart { vec![false; block.elem_globals.len()] } else { Vec::new() },
            star: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// First-iteration gather: all owned coordinates, and (smart) the
    /// current cache state of every local element.
    fn gather(
        &mut self,
        block: &PartBlock<C>,
        coords: &[D::Point],
        cache: &DomainQualityCache,
        smart: bool,
    ) {
        for (i, &v) in block.owned.iter().enumerate() {
            self.coords.set(i, coords[v as usize]);
        }
        if smart {
            for (i, &t) in block.elem_globals.iter().enumerate() {
                self.scores.set(i, (cache.elem_quality(t), cache.elem_is_positive(t)));
            }
        }
    }

    /// Steady-state refresh: only what the interface phase could have
    /// changed — owned interface coordinates and frontier-element scores
    /// (everything else is maintained locally by this part alone).
    fn refresh(
        &mut self,
        block: &PartBlock<C>,
        coords: &[D::Point],
        cache: &DomainQualityCache,
        smart: bool,
    ) {
        for &(lv, gv) in &block.iface_refresh {
            self.coords.set(lv as usize, coords[gv as usize]);
        }
        if smart {
            for &lt in &block.frontier_elems {
                let t = block.elem_globals[lt as usize];
                self.scores.set(lt as usize, (cache.elem_quality(t), cache.elem_is_positive(t)));
            }
        }
    }
}

/// Build every part's local topology for a domain + decomposition.
pub fn build_part_blocks<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    partition: &Partition,
) -> Vec<PartBlock<C>> {
    let n = dom.num_vertices();
    let mut g2l = vec![u32::MAX; n];
    let mut elem_l = vec![u32::MAX; dom.num_elements()];
    let mut blocks = Vec::with_capacity(partition.num_parts() as usize);
    for p in 0..partition.num_parts() {
        blocks.push(build_block(dom, partition, p, &mut g2l, &mut elem_l));
    }
    blocks
}

/// One plain local sweep: every candidate commits; arithmetic identical
/// to the serial plain sweep on the gathered values.
fn sweep_block_plain<const C: usize, D: SmoothDomain<C>>(
    weighting: crate::config::Weighting,
    block: &PartBlock<C>,
    work: &mut PartScratch<C, D>,
) {
    for (si, &lv) in block.sweep_locals.iter().enumerate() {
        let ns = &block.nbrs[block.nbr_offsets[si] as usize..block.nbr_offsets[si + 1] as usize];
        if ns.is_empty() {
            continue;
        }
        let pv: D::Point = work.coords.get(lv as usize);
        let Some(candidate) = candidate_for_soa(weighting, pv, ns, &work.coords) else {
            continue;
        };
        work.coords.set(lv as usize, candidate);
        work.committed.push(lv);
    }
}

/// One smart local sweep: the serial hot path's incremental protocol on
/// the local block — "before" from the local score table, candidate star
/// scored once, scores reused as the table update on commit. The guard
/// expressions mirror `kernel`'s smart sweep term for term, so commit
/// decisions (hence coordinates) are bit-identical to the serial engine's.
///
/// The candidate is *staged* into the SoA store before scoring: the star
/// rows then read the new position through ordinary corner loads, which
/// is exactly the substitution `score_with` used to perform — every
/// element sees the same inputs, so the scores (and the commit decision)
/// are bit-identical. On reject the previous position is restored.
fn sweep_block_smart<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    weighting: crate::config::Weighting,
    scalar: bool,
    block: &PartBlock<C>,
    work: &mut PartScratch<C, D>,
) {
    // multiversioned like `resident::sweep_range_smart` — same reasoning
    #[cfg(target_arch = "x86_64")]
    if !scalar && std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support verified above (cached runtime check).
        unsafe { sweep_block_smart_avx(dom, weighting, scalar, block, work) };
        return;
    }
    sweep_block_smart_body(dom, weighting, scalar, block, work);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn sweep_block_smart_avx<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    weighting: crate::config::Weighting,
    scalar: bool,
    block: &PartBlock<C>,
    work: &mut PartScratch<C, D>,
) {
    sweep_block_smart_body(dom, weighting, scalar, block, work);
}

#[inline(always)]
fn sweep_block_smart_body<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    weighting: crate::config::Weighting,
    scalar: bool,
    block: &PartBlock<C>,
    work: &mut PartScratch<C, D>,
) {
    for (si, &lv) in block.sweep_locals.iter().enumerate() {
        let ns = &block.nbrs[block.nbr_offsets[si] as usize..block.nbr_offsets[si + 1] as usize];
        if ns.is_empty() {
            continue;
        }
        let pv: D::Point = work.coords.get(lv as usize);
        let Some(candidate) = candidate_for_soa(weighting, pv, ns, &work.coords) else {
            continue;
        };
        let ts = &block.vt[block.vt_offsets[si] as usize..block.vt_offsets[si + 1] as usize];
        if ts.is_empty() {
            work.coords.set(lv as usize, candidate);
            work.committed.push(lv);
            continue;
        }

        work.coords.set(lv as usize, candidate);
        let k = ts.len();
        // pad the batch to a whole number of lanes: every real element
        // rides the packed path, the pad rows (slot-0 corners) are scored
        // into slots the fold below never reads
        let kp = k.next_multiple_of(LANES);
        if work.star.len() < kp {
            resize_tracked(&mut work.star, kp);
        }
        if scalar {
            for (slot, &lt) in work.star.iter_mut().zip(ts) {
                *slot = dom.score_soa(&work.coords, block.elem_corners[lt as usize]);
            }
        } else {
            if kp > work.rows.capacity() {
                note_scratch_grow();
            }
            work.rows.clear();
            work.rows.extend(ts.iter().map(|&lt| block.elem_corners[lt as usize]));
            work.rows.resize(kp, [0; C]);
            dom.score_batch(&work.coords, &work.rows, &mut work.star[..kp]);
        }

        let mut after_sum = 0.0;
        let mut before_sum = 0.0;
        let mut all_pos = true;
        for (i, &lt) in ts.iter().enumerate() {
            let (q0, pos0) = work.scores.get(lt as usize);
            before_sum += if pos0 { q0 } else { 0.0 };
            let (q, pos) = work.star[i];
            if pos {
                after_sum += q;
            } else {
                all_pos = false;
            }
        }
        let len = ts.len() as f64;
        let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
        let commit = quality_ok && (all_pos || ts.iter().any(|&lt| !work.scores.pos(lt as usize)));
        if commit {
            for (i, &lt) in ts.iter().enumerate() {
                work.scores.set(lt as usize, work.star[i]);
                if !work.dirty_mark[lt as usize] {
                    work.dirty_mark[lt as usize] = true;
                    work.dirty.push(lt);
                }
            }
            work.committed.push(lv);
        } else {
            work.coords.set(lv as usize, pv);
        }
    }
}

/// The generic partitioned driver: part interiors in parallel (one
/// cache-resident block per part), interface vertices by color class,
/// serial write-back in part order. Race-free, bitwise-deterministic for
/// any thread count, and exactly serial Gauss–Seidel under
/// [`part_major_order`].
pub fn smooth_partitioned_on<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    cfg: &DomainConfig,
    blocks: &[PartBlock<C>],
    interface_classes: &[Vec<u32>],
    coords: &mut [D::Point],
    pool: &rayon::ThreadPool,
) -> SmoothReport {
    assert_eq!(coords.len(), dom.num_vertices(), "engine was built for a different mesh");
    let smart = cfg.smart;
    let mut cache = DomainQualityCache::build(dom, coords);
    let initial_quality = cache.quality_exact(dom);
    let mut report = SmoothReport::starting(initial_quality);
    let mut quality = initial_quality;
    let mut works: Vec<PartScratch<C, D>> =
        blocks.iter().map(|b| PartScratch::<C, D>::new(b, smart)).collect();
    let mut moved: Vec<u32> = Vec::new();
    let mut star_ids: Vec<u32> = Vec::new();
    let mut star_scores: Vec<(f64, bool)> = Vec::new();

    for iter in 1..=cfg.max_iters {
        moved.clear();

        // Interior phase: every part sweeps its local block in parallel.
        // Workers read the global coordinates and cache and write only
        // their own scratch, so the phase is race-free and its outputs
        // are independent of the thread schedule.
        {
            let shared: &[D::Point] = coords;
            let cache_ref: &DomainQualityCache = &cache;
            let first = iter == 1;
            let scalar = cfg.scalar_scoring;
            pool.install(|| {
                works.par_iter_mut().enumerate().for_each(|(i, work)| {
                    let block = &blocks[i];
                    if first {
                        work.gather(block, shared, cache_ref, smart);
                    } else {
                        work.refresh(block, shared, cache_ref, smart);
                    }
                    if smart {
                        sweep_block_smart(dom, cfg.weighting, scalar, block, work);
                    } else {
                        sweep_block_plain(cfg.weighting, block, work);
                    }
                });
            });
        }

        // Serial write-back in part order: scatter the committed
        // coordinates and fold each part's element re-scores into the
        // cache — deterministic for any thread count.
        for (block, work) in blocks.iter().zip(works.iter_mut()) {
            for &lv in &work.committed {
                coords[block.owned[lv as usize] as usize] = work.coords.get(lv as usize);
            }
            if smart {
                work.dirty.sort_unstable();
                star_ids.clear();
                star_scores.clear();
                for &lt in &work.dirty {
                    star_ids.push(block.elem_globals[lt as usize]);
                    star_scores.push(work.scores.get(lt as usize));
                    work.dirty_mark[lt as usize] = false;
                }
                work.dirty.clear();
                if !star_ids.is_empty() {
                    cache.set_star(&star_ids, &star_scores);
                }
            } else {
                moved.extend(work.committed.iter().map(|&lv| block.owned[lv as usize]));
            }
            work.committed.clear();
        }

        // Interface phase: the colored machinery on the global mesh —
        // classes contain only interface vertices.
        for class in interface_classes {
            if smart {
                colored_class_smart_on(dom, cfg.weighting, class, coords, &mut cache, pool);
            } else {
                colored_class_plain_on(dom, cfg.weighting, class, coords, &mut moved, pool);
            }
        }
        if !moved.is_empty() {
            cache.apply_moves(dom, &moved, coords);
        }

        let new_quality = cache.quality_running();
        let improvement = new_quality - quality;
        report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
        quality = new_quality;
        if improvement < cfg.tol {
            report.converged = true;
            break;
        }
    }

    let exact =
        if report.iterations.is_empty() { initial_quality } else { cache.quality_exact(dom) };
    if let Some(last) = report.iterations.last_mut() {
        last.quality = exact;
    }
    report.final_quality = exact;
    report
}

impl PartitionedEngine {
    /// Build a partitioned engine for `mesh` under `params` and an
    /// existing decomposition (Gauss–Seidel parameters only).
    pub fn new(mesh: &TriMesh, params: SmoothParams, partition: Partition) -> Self {
        assert_eq!(
            partition.len(),
            mesh.num_vertices(),
            "partition was built for a different mesh"
        );
        assert_eq!(
            params.update,
            UpdateScheme::GaussSeidel,
            "partitioned smoothing is an in-place (Gauss-Seidel) schedule; \
             use smooth_parallel for deterministic Jacobi"
        );
        let engine = SmoothEngine::new(mesh, params);
        let interface_classes = interface_classes(engine.interior_color_classes(), &partition);
        let blocks = build_part_blocks(&engine.domain(), &partition);
        PartitionedEngine { engine, partition, blocks, interface_classes }
    }

    /// Convenience: decompose `mesh` into `num_parts` with `method`, then
    /// build the engine.
    pub fn by_method(
        mesh: &TriMesh,
        params: SmoothParams,
        num_parts: usize,
        method: PartitionMethod,
    ) -> Self {
        let adj = Adjacency::build(mesh);
        let partition = partition_mesh(mesh, &adj, num_parts, method);
        PartitionedEngine::new(mesh, params, partition)
    }

    /// The underlying serial engine (adjacency, boundary, parameters).
    pub fn engine(&self) -> &SmoothEngine {
        &self.engine
    }

    /// The decomposition the engine runs on.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The interface color classes the coordination phase sweeps.
    pub fn interface_classes(&self) -> &[Vec<u32>] {
        &self.interface_classes
    }

    /// The serial visit order this engine's sweep is exactly equal to:
    /// each part's interior vertices ascending, parts in order, then the
    /// interface color classes class-major. Feed it to
    /// [`SmoothEngine::with_visit_order`] to reproduce the partitioned
    /// result bit for bit on the serial engine.
    pub fn part_major_visit_order(&self) -> Vec<u32> {
        part_major_order(&self.blocks, &self.interface_classes)
    }

    /// Partitioned in-place Gauss–Seidel smoothing: part interiors in
    /// parallel (one cache-resident block per part), interface vertices
    /// by color class. Race-free, bitwise-deterministic for any
    /// `num_threads`, and exactly serial Gauss–Seidel under
    /// [`part_major_visit_order`](Self::part_major_visit_order).
    pub fn smooth(&self, mesh: &mut TriMesh, num_threads: usize) -> SmoothReport {
        assert!(num_threads >= 1, "need at least one thread");
        assert_eq!(
            mesh.num_vertices(),
            self.engine.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        // engine-cached persistent pool: workers are spawned on the first
        // run at this thread count and parked between phases thereafter
        let pool = self.engine.pool.get(num_threads);
        let dom = self.engine.domain();
        smooth_partitioned_on(
            &dom,
            &DomainConfig::from(&self.engine.params),
            &self.blocks,
            &self.interface_classes,
            mesh.coords_mut(),
            &pool,
        )
    }
}

/// Build one part's local topology. `g2l` and `elem_l` are
/// `u32::MAX`-filled scratch maps of global→local ids, restored before
/// returning.
fn build_block<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    partition: &Partition,
    p: u32,
    g2l: &mut [u32],
    elem_l: &mut [u32],
) -> PartBlock<C> {
    let elements = dom.elements();
    let owned: Vec<u32> = partition.part(p).to_vec();
    for (i, &v) in owned.iter().enumerate() {
        g2l[v as usize] = i as u32;
    }

    let mut sweep_globals = Vec::new();
    let mut sweep_locals = Vec::new();
    for (i, &v) in owned.iter().enumerate() {
        if !partition.is_interface(v) && dom.is_interior(v) {
            sweep_globals.push(v);
            sweep_locals.push(i as u32);
        }
    }

    // local element set: the sweep vertices' stars (corners are all
    // owned — a part-interior vertex's ring is owned by construction)
    let mut elem_globals: Vec<u32> =
        sweep_globals.iter().flat_map(|&v| dom.elements_of(v).iter().copied()).collect();
    elem_globals.sort_unstable();
    elem_globals.dedup();
    for (i, &t) in elem_globals.iter().enumerate() {
        elem_l[t as usize] = i as u32;
    }
    let elem_corners: Vec<[u32; C]> = elem_globals
        .iter()
        .map(|&t| {
            elements[t as usize].map(|c| {
                debug_assert_ne!(
                    g2l[c as usize],
                    u32::MAX,
                    "sweep-star corner not owned by its part"
                );
                g2l[c as usize]
            })
        })
        .collect();

    let mut nbr_offsets = Vec::with_capacity(sweep_globals.len() + 1);
    nbr_offsets.push(0u32);
    let mut nbrs = Vec::new();
    let mut vt_offsets = Vec::with_capacity(sweep_globals.len() + 1);
    vt_offsets.push(0u32);
    let mut vt = Vec::new();
    for &v in &sweep_globals {
        nbrs.extend(dom.neighbors(v).iter().map(|&w| g2l[w as usize]));
        nbr_offsets.push(nbrs.len() as u32);
        vt.extend(dom.elements_of(v).iter().map(|&t| elem_l[t as usize]));
        vt_offsets.push(vt.len() as u32);
    }

    let movable_iface = |v: u32| partition.is_interface(v) && dom.is_interior(v);
    let iface_refresh: Vec<(u32, u32)> = owned
        .iter()
        .enumerate()
        .filter(|&(_, &v)| movable_iface(v))
        .map(|(i, &v)| (i as u32, v))
        .collect();
    let frontier_elems: Vec<u32> = elem_globals
        .iter()
        .enumerate()
        .filter(|&(_, &t)| elements[t as usize].iter().any(|&c| movable_iface(c)))
        .map(|(i, _)| i as u32)
        .collect();

    for &t in &elem_globals {
        elem_l[t as usize] = u32::MAX;
    }
    for &v in &owned {
        g2l[v as usize] = u32::MAX;
    }
    PartBlock {
        owned,
        sweep_globals,
        sweep_locals,
        nbr_offsets,
        nbrs,
        elem_globals,
        elem_corners,
        vt_offsets,
        vt,
        iface_refresh,
        frontier_elems,
    }
}

/// Convenience: decompose, build the engine and run the partitioned
/// smoother in one call. Takes the parameters by value — they are moved
/// into the engine, never cloned (callers that keep a parameter set
/// around clone at the call site, once, explicitly).
pub fn smooth_partitioned(
    mesh: &mut TriMesh,
    params: SmoothParams,
    num_parts: usize,
    method: PartitionMethod,
    num_threads: usize,
) -> SmoothReport {
    PartitionedEngine::by_method(mesh, params, num_parts, method).smooth(mesh, num_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn improves_quality_and_pins_boundary() {
        let mut m = generators::perturbed_grid(20, 20, 0.4, 1);
        let before = m.coords().to_vec();
        let engine =
            PartitionedEngine::by_method(&m, SmoothParams::paper(), 4, PartitionMethod::Rcb);
        let report = engine.smooth(&mut m, 2);
        assert!(report.final_quality > report.initial_quality + 0.01);
        for v in engine.engine().boundary().boundary_vertices() {
            assert_eq!(m.coords()[v as usize], before[v as usize], "boundary vertex {v} moved");
        }
    }

    #[test]
    fn single_part_equals_serial_storage_order() {
        // k = 1: no interfaces, one block sweeping all interiors ascending
        // — exactly the serial engine's storage-order sweep.
        let m = generators::perturbed_grid(14, 14, 0.35, 3);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(6).with_tol(-1.0);
        let part_engine = PartitionedEngine::by_method(&m, params.clone(), 1, PartitionMethod::Rcb);
        assert!(part_engine.interface_classes().is_empty());
        let mut a = m.clone();
        part_engine.smooth(&mut a, 3);
        let mut b = m.clone();
        SmoothEngine::new(&m, params).smooth(&mut b);
        assert_eq!(a.coords(), b.coords());
    }

    #[test]
    fn part_major_order_covers_interior_once() {
        let m = generators::perturbed_grid(13, 17, 0.3, 9);
        let engine =
            PartitionedEngine::by_method(&m, SmoothParams::paper(), 5, PartitionMethod::Hilbert);
        let order = engine.part_major_visit_order();
        assert_eq!(order.len(), engine.engine().boundary().num_interior());
        let mut seen = vec![false; m.num_vertices()];
        for &v in &order {
            assert!(engine.engine().boundary().is_interior(v));
            assert!(!seen[v as usize], "vertex {v} visited twice");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn rejects_jacobi_params() {
        let m = generators::perturbed_grid(8, 8, 0.2, 1);
        let params = SmoothParams::paper().with_update(UpdateScheme::Jacobi);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            PartitionedEngine::by_method(&m, params, 2, PartitionMethod::Rcb)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn convenience_wrapper_runs() {
        let mut m = generators::perturbed_grid(12, 12, 0.35, 2);
        let report = smooth_partitioned(
            &mut m,
            SmoothParams::paper().with_max_iters(10),
            3,
            PartitionMethod::Morton,
            2,
        );
        assert!(report.final_quality > report.initial_quality);
    }
}
