//! The serial smoothing engine (Algorithm 1).

use crate::config::{IterationPolicy, SmoothParams, UpdateScheme};
use crate::greedy::greedy_visit_order;
use crate::stats::{IterationStats, SmoothReport};
use crate::trace::{AccessSink, NullSink};
use crate::weighting::weighted_candidate;
use lms_mesh::geometry::Point2;
use lms_mesh::quality::{mesh_quality, vertex_qualities};
use lms_mesh::{Adjacency, Boundary, TriMesh};

/// A smoothing engine bound to one mesh topology.
///
/// Construction precomputes the CSR adjacency, the boundary flags and the
/// sweep visit order; [`smooth`](SmoothEngine::smooth) can then be run on
/// the mesh (or any mesh with identical connectivity — e.g. a re-smoothing
/// after further perturbation) without re-deriving topology.
///
/// The triangle connectivity is held behind an [`Arc`]: cloning the engine
/// (or handing the connectivity to the colored parallel engine or an
/// external [`lms_mesh::QualityCache`] consumer) shares one allocation
/// instead of copying the array per engine.
#[derive(Debug, Clone)]
pub struct SmoothEngine {
    pub(crate) params: SmoothParams,
    pub(crate) adj: Adjacency,
    pub(crate) boundary: Boundary,
    /// Interior vertices in sweep order.
    pub(crate) visit: Vec<u32>,
    /// Shared triangle connectivity (smart smoothing's local quality
    /// checks and the quality cache score against it).
    pub(crate) triangles: std::sync::Arc<[[u32; 3]]>,
    /// Star layout: for every vertex→triangle incidence (aligned with the
    /// flat CSR slice order, base [`Adjacency::triangles_offset`]), the
    /// three stored corners encoded as ring positions — the index of the
    /// corner in `neighbors(v)`, or [`SELF_CORNER`] for `v` itself. Lets
    /// the smart sweeps score a candidate star from a gathered ring buffer
    /// instead of scattered coordinate loads. `None` when a vertex degree
    /// exceeds `u8` encoding (fall back to direct indexing).
    pub(crate) star: Option<std::sync::Arc<[[u8; 3]]>>,
    /// Lazily-computed interior color classes for the colored parallel
    /// engine (topology-only, so one computation serves every run).
    pub(crate) colored_classes: std::sync::OnceLock<Vec<Vec<u32>>>,
    /// Cached persistent worker pool: the parallel engines spawn OS
    /// threads once per engine lifetime, not once per `smooth()` call.
    pub(crate) pool: crate::pool::PoolCache,
}

impl SmoothEngine {
    /// Build an engine for `mesh` under `params`.
    pub fn new(mesh: &TriMesh, params: SmoothParams) -> Self {
        let adj = Adjacency::build(mesh);
        let boundary = Boundary::detect(mesh);
        let visit = match params.policy {
            IterationPolicy::StorageOrder => boundary.interior_vertices(),
            IterationPolicy::GreedyQuality => {
                let q = vertex_qualities(mesh, &adj, params.metric);
                greedy_visit_order(&adj, &boundary, &q)
            }
        };
        // only the smart sweeps read the star layout; skip the O(3T)
        // binary-search construction for plain engines
        let star = if params.smart {
            let dom =
                crate::domain::TriDomain::new(&adj, &boundary, mesh.triangles(), params.metric);
            crate::domain::build_star_layout_on(&dom).map(Into::into)
        } else {
            None
        };
        SmoothEngine {
            params,
            adj,
            boundary,
            visit,
            triangles: mesh.triangles().into(),
            star,
            colored_classes: std::sync::OnceLock::new(),
            pool: crate::pool::PoolCache::new(),
        }
    }

    /// The engine's [`crate::domain::SmoothDomain`] view: the borrowed
    /// (adjacency, boundary, connectivity, metric) bundle every generic
    /// sweep in [`crate::kernel`] / [`crate::colored`] /
    /// [`crate::partitioned`] / [`crate::resident`] runs against.
    pub fn domain(&self) -> crate::domain::TriDomain<'_> {
        crate::domain::TriDomain::new(
            &self.adj,
            &self.boundary,
            &self.triangles,
            self.params.metric,
        )
    }

    /// The shared triangle connectivity the engine was built for.
    pub fn triangles(&self) -> &[[u32; 3]] {
        &self.triangles
    }

    /// Mean quality of the triangles incident to `v`, evaluated on
    /// `coords`.
    fn local_quality(&self, coords: &[Point2], v: u32) -> f64 {
        self.local_quality_with(coords, v, coords[v as usize])
    }

    /// [`local_quality`](Self::local_quality) with `v`'s position
    /// overridden by `pos_v` (no buffer copy).
    ///
    /// Orientation-aware: a triangle whose stored vertex order turns
    /// non-positive in area scores 0 — shape metrics like edge-length
    /// ratio are blind to inversion, and guarding against inversions is
    /// the point of Freitag's smart variant. (Assumes a consistently CCW
    /// mesh, which every generator in `lms-mesh` produces.)
    fn local_quality_with(&self, coords: &[Point2], v: u32, pos_v: Point2) -> f64 {
        let ts = self.adj.triangles_of(v);
        if ts.is_empty() {
            return 0.0;
        }
        let at = |u: u32| if u == v { pos_v } else { coords[u as usize] };
        ts.iter()
            .map(|&t| {
                let [a, b, c] = self.triangles[t as usize];
                let (pa, pb, pc) = (at(a), at(b), at(c));
                if lms_mesh::geometry::signed_area(pa, pb, pc) <= 0.0 {
                    0.0
                } else {
                    self.params.metric.triangle_quality(pa, pb, pc)
                }
            })
            .sum::<f64>()
            / ts.len() as f64
    }

    /// Replace the sweep visit order — the *iteration reordering* of
    /// Strout & Hovland \[18\], decoupled from the data layout.
    ///
    /// Renumbering a mesh (the paper's approach) changes layout and
    /// iteration together, because the sweep walks the vertex array in
    /// storage order. This override changes only the iteration: the data
    /// stays where it is and the sweep visits `order` instead. The
    /// `iter-reorder` experiment uses it to separate the two effects.
    ///
    /// Non-interior vertices in `order` are dropped; each interior vertex
    /// must appear exactly once.
    pub fn with_visit_order(mut self, order: Vec<u32>) -> Self {
        let filtered: Vec<u32> =
            order.into_iter().filter(|&v| self.boundary.is_interior(v)).collect();
        assert_eq!(
            filtered.len(),
            self.boundary.num_interior(),
            "visit order must cover every interior vertex exactly once"
        );
        let mut seen = vec![false; self.adj.num_vertices()];
        for &v in &filtered {
            assert!(!seen[v as usize], "vertex {v} visited twice");
            seen[v as usize] = true;
        }
        self.visit = filtered;
        self
    }

    /// The engine's parameters.
    pub fn params(&self) -> &SmoothParams {
        &self.params
    }

    /// The precomputed adjacency.
    pub fn adjacency(&self) -> &Adjacency {
        &self.adj
    }

    /// The precomputed boundary classification.
    pub fn boundary(&self) -> &Boundary {
        &self.boundary
    }

    /// The sweep visit order (interior vertices).
    pub fn visit_order(&self) -> &[u32] {
        &self.visit
    }

    /// Smooth `mesh` in place until convergence or `max_iters`.
    ///
    /// Runs the incremental-quality hot path (see [`crate::kernel`]): the
    /// per-iteration convergence statistics and the smart-commit "before"
    /// qualities come from an [`lms_mesh::QualityCache`] that re-scores
    /// only the triangles a move touched, instead of recomputing the whole
    /// mesh quality every sweep. Produces bit-identical coordinates to
    /// [`smooth_full_recompute`](Self::smooth_full_recompute) for any
    /// fixed sweep count (see [`crate::kernel`] for the one ulp-level
    /// caveat around the convergence tolerance).
    pub fn smooth(&self, mesh: &mut TriMesh) -> SmoothReport {
        self.smooth_incremental(mesh)
    }

    /// The pre-incremental reference path: recomputes the full mesh
    /// quality from scratch every iteration and re-evaluates both sides of
    /// every smart-commit test. Kept as the oracle for property tests and
    /// as the baseline the `bench_smooth_hot` bench measures the
    /// incremental path against.
    pub fn smooth_full_recompute(&self, mesh: &mut TriMesh) -> SmoothReport {
        self.smooth_traced_opts(mesh, &mut NullSink, false)
    }

    /// [`smooth`](Self::smooth) while reporting every vertex-record access
    /// to `sink` (one event for the smoothed vertex, one per gathered
    /// neighbour — the stream analysed in §5.2.3).
    pub fn smooth_traced(&self, mesh: &mut TriMesh, sink: &mut impl AccessSink) -> SmoothReport {
        self.smooth_traced_opts(mesh, sink, false)
    }

    /// [`smooth_traced`](Self::smooth_traced) that additionally reports the
    /// per-vertex **quality update** (Algorithm 1, line 13): after moving a
    /// vertex, the smoother re-evaluates the quality of its incident
    /// triangles, streaming the triangle records through the cache. Those
    /// accesses are reported as element ids `num_vertices + t` for triangle
    /// `t`, so the combined stream spans `num_vertices + num_triangles`
    /// element ids. Including them reproduces the shared-L3 pressure of the
    /// paper's full application.
    pub fn smooth_traced_with_quality(
        &self,
        mesh: &mut TriMesh,
        sink: &mut impl AccessSink,
    ) -> SmoothReport {
        self.smooth_traced_opts(mesh, sink, true)
    }

    fn smooth_traced_opts(
        &self,
        mesh: &mut TriMesh,
        sink: &mut impl AccessSink,
        trace_quality: bool,
    ) -> SmoothReport {
        assert_eq!(
            mesh.num_vertices(),
            self.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        let initial_quality = mesh_quality(mesh, &self.adj, self.params.metric);
        let mut report = SmoothReport::starting(initial_quality);
        let mut quality = initial_quality;
        let mut scratch: Vec<Point2> = Vec::new();

        let tri_base = if trace_quality { Some(mesh.num_vertices() as u32) } else { None };
        for iter in 1..=self.params.max_iters {
            match self.params.update {
                UpdateScheme::GaussSeidel => {
                    self.sweep_gauss_seidel(mesh.coords_mut(), sink, tri_base)
                }
                UpdateScheme::Jacobi => {
                    scratch.clear();
                    scratch.extend_from_slice(mesh.coords());
                    self.sweep_jacobi(&scratch, mesh.coords_mut(), sink, tri_base);
                }
            }
            sink.end_iteration();

            let new_quality = mesh_quality(mesh, &self.adj, self.params.metric);
            let improvement = new_quality - quality;
            report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
            quality = new_quality;
            if improvement < self.params.tol {
                report.converged = true;
                break;
            }
        }
        report.final_quality = quality;
        report
    }

    /// Smart-commit validity rule: a move may never turn a currently
    /// valid vertex star (all incident triangles positively oriented)
    /// into an invalid one. The mean-quality test alone cannot guarantee
    /// this — a move can invert one incident triangle (scoring 0) yet
    /// still raise the mean.
    fn commit_keeps_validity(&self, coords: &[Point2], v: u32, candidate: Point2) -> bool {
        let at = |u: u32, pos_v: Point2| if u == v { pos_v } else { coords[u as usize] };
        let min_area = |pos_v: Point2| {
            self.adj
                .triangles_of(v)
                .iter()
                .map(|&t| {
                    let [a, b, c] = self.triangles[t as usize];
                    lms_mesh::geometry::signed_area(at(a, pos_v), at(b, pos_v), at(c, pos_v))
                })
                .fold(f64::INFINITY, f64::min)
        };
        min_area(candidate) > 0.0 || min_area(coords[v as usize]) <= 0.0
    }

    /// Emit the quality-update accesses of vertex `v` (its incident
    /// triangle records, in the `tri_base + t` id range).
    #[inline]
    fn trace_quality_update(&self, v: u32, tri_base: Option<u32>, sink: &mut impl AccessSink) {
        if let Some(base) = tri_base {
            for &t in self.adj.triangles_of(v) {
                sink.access(base + t);
            }
        }
    }

    /// One in-place sweep: each visited vertex moves to the mean of its
    /// neighbours' *current* positions (Equation (1)).
    fn sweep_gauss_seidel(
        &self,
        coords: &mut [Point2],
        sink: &mut impl AccessSink,
        tri_base: Option<u32>,
    ) {
        for &v in &self.visit {
            let ns = self.adj.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            sink.access(v);
            let pv = coords[v as usize];
            let gathered = ns.iter().map(|&w| {
                sink.access(w);
                coords[w as usize]
            });
            let Some(candidate) = weighted_candidate(self.params.weighting, pv, gathered) else {
                continue;
            };
            if self.params.smart {
                let before = self.local_quality(coords, v);
                if self.local_quality_with(coords, v, candidate) >= before
                    && self.commit_keeps_validity(coords, v, candidate)
                {
                    coords[v as usize] = candidate;
                }
            } else {
                coords[v as usize] = candidate;
            }
            self.trace_quality_update(v, tri_base, sink);
        }
    }

    /// One double-buffered sweep: reads `prev`, writes `next`.
    fn sweep_jacobi(
        &self,
        prev: &[Point2],
        next: &mut [Point2],
        sink: &mut impl AccessSink,
        tri_base: Option<u32>,
    ) {
        for &v in &self.visit {
            let ns = self.adj.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            sink.access(v);
            let pv = prev[v as usize];
            let gathered = ns.iter().map(|&w| {
                sink.access(w);
                prev[w as usize]
            });
            let Some(candidate) = weighted_candidate(self.params.weighting, pv, gathered) else {
                continue;
            };
            if self.params.smart {
                // evaluate against the previous sweep's neighbourhood
                let before = self.local_quality(prev, v);
                if self.local_quality_with(prev, v, candidate) >= before
                    && self.commit_keeps_validity(prev, v, candidate)
                {
                    next[v as usize] = candidate;
                }
            } else {
                next[v as usize] = candidate;
            }
            self.trace_quality_update(v, tri_base, sink);
        }
    }
}

/// Convenience: smooth with default construction in one call.
impl SmoothParams {
    /// Build a [`SmoothEngine`] for `mesh` and run it.
    pub fn smooth(&self, mesh: &mut TriMesh) -> SmoothReport {
        SmoothEngine::new(mesh, self.clone()).smooth(mesh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountSink, VecSink};
    use lms_mesh::generators;

    #[test]
    fn smoothing_improves_quality() {
        let mut m = generators::perturbed_grid(20, 20, 0.4, 1);
        let report = SmoothParams::paper().smooth(&mut m);
        assert!(report.final_quality > report.initial_quality + 0.01);
        assert!(report.converged, "small mesh should converge well before 200 sweeps");
    }

    #[test]
    fn boundary_vertices_never_move() {
        let mut m = generators::perturbed_grid(14, 14, 0.35, 2);
        let before = m.coords().to_vec();
        let engine = SmoothEngine::new(&m, SmoothParams::paper());
        engine.smooth(&mut m);
        for v in engine.boundary().boundary_vertices() {
            assert_eq!(m.coords()[v as usize], before[v as usize], "boundary vertex {v} moved");
        }
    }

    #[test]
    fn wheel_center_converges_to_centroid() {
        // One interior vertex surrounded by a regular hexagon: Laplacian
        // smoothing must move it to the hexagon centroid in a single sweep.
        let mut coords = vec![Point2::new(0.4, 0.2)]; // off-centre
        for k in 0..6 {
            let th = std::f64::consts::FRAC_PI_3 * k as f64;
            coords.push(Point2::new(th.cos(), th.sin()));
        }
        let tris = (0..6).map(|k| [0u32, 1 + k as u32, 1 + ((k + 1) % 6) as u32]).collect();
        let mut m = TriMesh::new(coords, tris).unwrap();
        SmoothParams::paper().with_max_iters(1).smooth(&mut m);
        let c = m.coords()[0];
        assert!(c.norm() < 1e-12, "centre at {c:?}, expected origin");
    }

    #[test]
    fn smoothing_rarely_inverts_elements() {
        // Plain Laplacian smoothing is not inversion-free in general (that
        // is why "smart" variants exist); on a jittered convex grid the
        // inverted fraction must nevertheless be negligible.
        let mut m = generators::perturbed_grid(25, 25, 0.38, 9);
        SmoothParams::paper().smooth(&mut m);
        let inverted = (0..m.num_triangles())
            .filter(|&t| {
                let [a, b, c] = m.tri_coords(t);
                lms_mesh::geometry::orient2d(a, b, c) <= 0.0
            })
            .count();
        assert!(
            inverted * 100 < m.num_triangles(),
            "{inverted}/{} triangles inverted",
            m.num_triangles()
        );
    }

    #[test]
    fn jacobi_and_gauss_seidel_converge_to_similar_quality() {
        let m0 = generators::perturbed_grid(16, 16, 0.35, 4);
        let mut gs = m0.clone();
        let mut jc = m0.clone();
        let rg = SmoothParams::paper().smooth(&mut gs);
        let rj = SmoothParams::paper().with_update(UpdateScheme::Jacobi).smooth(&mut jc);
        assert!((rg.final_quality - rj.final_quality).abs() < 0.02);
    }

    #[test]
    fn greedy_policy_visits_interior_only_and_improves() {
        let mut m = generators::perturbed_grid(15, 15, 0.35, 6);
        let params = SmoothParams::paper().with_policy(IterationPolicy::GreedyQuality);
        let engine = SmoothEngine::new(&m, params);
        assert_eq!(engine.visit_order().len(), engine.boundary().num_interior());
        let report = engine.smooth(&mut m);
        assert!(report.total_improvement() > 0.0);
    }

    #[test]
    fn trace_counts_match_topology() {
        // Each sweep accesses every interior vertex once plus its degree.
        let mut m = generators::perturbed_grid(10, 10, 0.3, 7);
        let engine = SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(3));
        let expected_per_iter: u64 =
            engine.visit_order().iter().map(|&v| 1 + engine.adjacency().degree(v) as u64).sum();
        let mut sink = CountSink::default();
        let report = engine.smooth_traced(&mut m, &mut sink);
        assert_eq!(sink.iterations as usize, report.num_iterations());
        assert_eq!(sink.count, expected_per_iter * report.num_iterations() as u64);
    }

    #[test]
    fn trace_structure_vertex_then_neighbours() {
        let mut m = generators::perturbed_grid(6, 6, 0.2, 8);
        let engine = SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(1));
        let mut sink = VecSink::new();
        engine.smooth_traced(&mut m, &mut sink);
        // First event is the first visited vertex; following deg(v) events
        // are exactly its neighbours.
        let v0 = engine.visit_order()[0];
        assert_eq!(sink.accesses[0], v0);
        let deg = engine.adjacency().degree(v0);
        let mut nbrs: Vec<u32> = sink.accesses[1..=deg].to_vec();
        nbrs.sort_unstable();
        assert_eq!(&nbrs[..], engine.adjacency().neighbors(v0));
    }

    #[test]
    fn smart_smoothing_never_decreases_quality() {
        use lms_mesh::quality::mesh_quality;
        // Smart Laplacian rejects quality-decreasing moves, so global
        // quality is monotone over sweeps — even on meshes where plain
        // Laplacian would regress.
        for seed in [1u64, 9, 23, 41] {
            let mut m = generators::perturbed_grid(12, 12, 0.42, seed);
            let params = SmoothParams::paper().with_smart(true).with_max_iters(15);
            let report = params.smooth(&mut m);
            for w in report.iterations.windows(2) {
                assert!(
                    w[1].quality >= w[0].quality - 1e-12,
                    "seed {seed}: smart smoothing regressed: {:?}",
                    report.iterations
                );
            }
            let adj = Adjacency::build(&m);
            let q = mesh_quality(&m, &adj, report_metric());
            assert!((q - report.final_quality).abs() < 1e-12);
        }
    }

    fn report_metric() -> lms_mesh::quality::QualityMetric {
        SmoothParams::paper().metric
    }

    #[test]
    fn smart_jacobi_also_monotone() {
        let mut m = generators::perturbed_grid(10, 10, 0.4, 7);
        let params = SmoothParams::paper()
            .with_smart(true)
            .with_update(UpdateScheme::Jacobi)
            .with_max_iters(10);
        let report = params.smooth(&mut m);
        for w in report.iterations.windows(2) {
            assert!(w[1].quality >= w[0].quality - 1e-12);
        }
    }

    #[test]
    fn smart_reaches_comparable_quality_to_plain() {
        // Rejecting the occasional regressive move must not prevent smart
        // smoothing from reaching essentially the same final quality. (The
        // coordinates themselves can differ: one rejected in-place move
        // shifts every downstream Gauss–Seidel update.)
        let base = generators::perturbed_grid(12, 12, 0.3, 3);
        let rp = SmoothParams::paper().smooth(&mut base.clone());
        let rs = SmoothParams::paper().with_smart(true).smooth(&mut base.clone());
        assert!((rp.final_quality - rs.final_quality).abs() < 0.02);
        assert!(rs.total_improvement() > 0.0);
    }

    #[test]
    fn weighted_variants_converge_and_improve_quality() {
        use crate::config::Weighting;
        for weighting in [Weighting::InverseEdgeLength, Weighting::EdgeLength] {
            let mut m = generators::perturbed_grid(16, 16, 0.35, 4);
            let report =
                SmoothParams::paper().with_weighting(weighting).with_max_iters(100).smooth(&mut m);
            assert!(
                report.final_quality > report.initial_quality + 0.01,
                "{}: {} -> {}",
                weighting.name(),
                report.initial_quality,
                report.final_quality
            );
        }
    }

    #[test]
    fn uniform_weighting_is_the_default_and_changes_nothing() {
        use crate::config::Weighting;
        let base = generators::perturbed_grid(12, 12, 0.3, 9);
        let mut a = base.clone();
        let mut b = base.clone();
        let ra = SmoothParams::paper().smooth(&mut a);
        let rb = SmoothParams::paper().with_weighting(Weighting::Uniform).smooth(&mut b);
        assert_eq!(a.coords(), b.coords());
        assert_eq!(ra.num_iterations(), rb.num_iterations());
    }

    #[test]
    fn weighted_variants_produce_distinct_geometry() {
        use crate::config::Weighting;
        let base = generators::perturbed_grid(12, 12, 0.35, 6);
        let run = |w: Weighting| {
            let mut m = base.clone();
            SmoothParams::paper().with_weighting(w).with_max_iters(5).smooth(&mut m);
            m
        };
        let uni = run(Weighting::Uniform);
        let inv = run(Weighting::InverseEdgeLength);
        let len = run(Weighting::EdgeLength);
        assert_ne!(uni.coords(), inv.coords());
        assert_ne!(uni.coords(), len.coords());
        assert_ne!(inv.coords(), len.coords());
    }

    #[test]
    fn smart_smoothing_never_inverts_valid_meshes() {
        // the mean-quality guard alone can invert a triangle while raising
        // the mean; the validity rule must prevent it (regression test for
        // the mesh-improvement pipeline)
        use lms_mesh::geometry::signed_area;
        let count_inverted = |m: &lms_mesh::TriMesh| {
            m.triangles()
                .iter()
                .filter(|t| {
                    let [a, b, c] = **t;
                    signed_area(
                        m.coords()[a as usize],
                        m.coords()[b as usize],
                        m.coords()[c as usize],
                    ) <= 0.0
                })
                .count()
        };
        for seed in [3, 7, 11] {
            let mut m = generators::perturbed_grid(40, 40, 0.42, seed);
            m.orient_ccw();
            assert_eq!(count_inverted(&m), 0);
            SmoothParams::paper().with_smart(true).with_max_iters(40).smooth(&mut m);
            assert_eq!(count_inverted(&m), 0, "seed {seed}: smart smoothing inverted");
        }
    }

    #[test]
    fn zero_tolerance_runs_to_max_iters() {
        let mut m = generators::perturbed_grid(8, 8, 0.3, 3);
        let report = SmoothParams::paper().with_tol(-1.0).with_max_iters(5).smooth(&mut m);
        assert_eq!(report.num_iterations(), 5);
        assert!(!report.converged);
    }

    #[test]
    fn custom_visit_order_changes_the_trace_not_the_outcome() {
        let m = generators::perturbed_grid(10, 10, 0.3, 5);
        let params = SmoothParams::paper().with_update(UpdateScheme::Jacobi).with_max_iters(3);
        let engine = SmoothEngine::new(&m, params.clone());
        let reversed: Vec<u32> = engine.visit_order().iter().rev().copied().collect();
        let engine_rev = SmoothEngine::new(&m, params).with_visit_order(reversed.clone());
        assert_eq!(engine_rev.visit_order(), &reversed[..]);

        // Jacobi: visit order cannot change the result, only the trace.
        let mut a = m.clone();
        let mut b = m.clone();
        let mut ta = VecSink::new();
        let mut tb = VecSink::new();
        engine.smooth_traced(&mut a, &mut ta);
        engine_rev.smooth_traced(&mut b, &mut tb);
        assert_eq!(a.coords(), b.coords());
        assert_ne!(ta.accesses, tb.accesses, "the access stream must differ");
    }

    #[test]
    fn visit_order_drops_boundary_and_validates_coverage() {
        let m = generators::perturbed_grid(6, 6, 0.2, 1);
        let engine = SmoothEngine::new(&m, SmoothParams::paper());
        // all vertices (boundary included): boundary entries are filtered
        let all: Vec<u32> = (0..m.num_vertices() as u32).collect();
        let e = engine.clone().with_visit_order(all);
        assert_eq!(e.visit_order().len(), e.boundary().num_interior());
        // missing an interior vertex must panic
        let short: Vec<u32> = e.visit_order()[1..].to_vec();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.clone().with_visit_order(short);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn engine_rejects_mismatched_mesh() {
        let m1 = generators::perturbed_grid(6, 6, 0.2, 1);
        let mut m2 = generators::perturbed_grid(7, 7, 0.2, 1);
        let engine = SmoothEngine::new(&m1, SmoothParams::paper());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.smooth(&mut m2);
        }));
        assert!(result.is_err());
    }
}
