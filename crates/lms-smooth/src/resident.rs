//! Resident-block partitioned smoothing with halo-delta exchange — the
//! distributed-memory-shaped successor of [`crate::partitioned`].
//!
//! The PR-2 [`PartitionedEngine`](crate::PartitionedEngine) keeps the
//! global mesh authoritative: every sweep re-gathers interface coordinates
//! and frontier scores into the part blocks, writes every part's commits
//! back serially, and runs the interface vertices through a *global*
//! colored pass. Those per-sweep ping-pongs are exactly the traffic a
//! distributed-memory implementation cannot afford — and they are why its
//! 2-thread time sat on top of its 1-thread time.
//!
//! This engine makes the blocks **resident for the whole run**:
//!
//! * each part gathers its owned + halo coordinates and its local element
//!   scores **once** (the single full gather);
//! * interiors sweep exactly as in PR-2 — serial ascending inside the
//!   part, fully parallel across parts;
//! * interface vertices are smoothed **inside their owning part**, in
//!   global color order: within a color class no two vertices are adjacent
//!   or share an element (even across parts), so each part commits its
//!   class members locally and the only cross-part dependency is the halo
//!   refresh between color steps;
//! * between color steps only the **moved vertices'** coordinates travel,
//!   coalesced into one message per (source part → destination part) pair
//!   along the [`ExchangeSchedule`]'s [`lms_part::MessagePlan`];
//!   receiving parts re-score just the local elements the delivered halo
//!   vertices touch;
//! * the global mesh is written back in **one parallel disjoint scatter**
//!   at the end (parts own disjoint vertex sets).
//!
//! Since PR 5 the *protocol* lives in two layers. The per-part compute —
//! local sweeps, delta application, per-pair outbox batching, the
//! `Σ w_t·Δq_t` stat accumulation — is [`ResidentRank`], and the data
//! movement between ranks is a [`crate::transport::ResidentTransport`]
//! driven by the generic [`crate::transport::drive_resident`] loop.
//! [`smooth_resident_on`] (and therefore this [`ResidentEngine`] and
//! `lms-mesh3d`'s `ResidentEngine3`) runs the
//! [`InProcessTransport`](crate::transport::InProcessTransport); the
//! `lms-dist` crate runs the identical ranks as forked worker processes
//! over Unix pipes, exchanging the same batches as
//! [`lms_part::wire`] frames — property-tested bit-identical, coordinates
//! *and* reports.
//!
//! Between the first gather and the final scatter the engine performs zero
//! full-mesh gather/refresh/write-back passes — the
//! [`ExchangeVolume`](crate::ExchangeVolume) counters in the report pin
//! this (`full_gathers == 1 && full_scatters == 1`), property-tested in
//! `tests/resident.rs`.
//!
//! The per-iteration quality statistic is maintained incrementally too:
//! the global quality is the linear functional `Σ_t q_t·w_t / V` (see
//! [`crate::dcache::DomainQualityCache`]), each changed element is
//! *stat-owned* by exactly one part (the part owning its smallest movable
//! corner), and every part accumulates `w_t·Δq_t` over its own commits and
//! halo re-scores. Part deltas fold into a Neumaier-compensated running
//! sum in part order, so reports are bitwise-deterministic for any thread
//! count; like PR-2's running sum it tracks the exact quality to a few
//! ulps, so disable the tolerance (`tol < 0`) when exact sweep-count
//! parity with another engine matters.
//!
//! Determinism and equivalence (property-tested in `tests/resident.rs`):
//! coordinates are **bitwise-deterministic for any thread count** and
//! **bit-identical** both to serial Gauss–Seidel under the part-major
//! visit order ([`ResidentEngine::part_major_visit_order`]) and to the
//! PR-2 [`PartitionedEngine`](crate::PartitionedEngine) over the same
//! decomposition.

use crate::config::{SmoothParams, UpdateScheme, Weighting};
use crate::domain::{DomainConfig, SmoothDomain};
use crate::engine::SmoothEngine;
use crate::kernel::candidate_for_soa;
use crate::soa::{note_scratch_grow, resize_tracked, SoaLike, SoaScores, LANES};
use crate::stats::SmoothReport;
use crate::transport::{drive_resident, drive_resident_with, InProcessTransport};
use lms_mesh::{Adjacency, TriMesh};
use lms_part::{partition_mesh, ExchangeSchedule, MessagePlan, Partition, PartitionMethod};
use lms_trace::{now_ns, PhaseBreakdown, RankPhaseNanos, Recorder};

/// Domain-decomposed Gauss–Seidel smoothing over blocks that stay
/// resident for the whole run, with halo-delta exchange between interface
/// color steps. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct ResidentEngine {
    engine: SmoothEngine,
    partition: Partition,
    schedule: ExchangeSchedule,
    /// Interface vertices (mesh-interior) grouped by global color class —
    /// the engine's interior color classes restricted to the interface,
    /// empty classes dropped. Same construction as the PR-2 engine, so
    /// both engines share one serial-equivalence order.
    interface_classes: Vec<Vec<u32>>,
    blocks: Vec<ResidentBlock<3>>,
    /// Constant global element weights `w_t` of the quality functional —
    /// computed once at construction, shared with every run's statistic.
    elem_w: Vec<f64>,
}

/// Immutable per-part topology of a resident block, generic in the
/// element corner count `C`. Local vertex ids follow the
/// [`Partition::local_of`] convention — owned ascending, then halo
/// ascending — so exchange-schedule destinations index straight into the
/// block's coordinate buffer.
#[derive(Debug, Clone)]
pub struct ResidentBlock<const C: usize> {
    /// Owned vertices, global ids ascending (the final scatter map).
    owned: Vec<u32>,
    /// Halo (ghost) vertices, global ids ascending.
    halo: Vec<u32>,
    num_owned: u32,
    /// Part-interior ∩ mesh-interior sweep vertices (owned locals,
    /// ascending) with their local CSR neighbour / incident-element rows.
    int_locals: Vec<u32>,
    int_nbr_offsets: Vec<u32>,
    int_nbrs: Vec<u32>,
    int_vt_offsets: Vec<u32>,
    int_vt: Vec<u32>,
    /// Owned interface ∩ mesh-interior sweep vertices, grouped color-major
    /// (`ifc_color_offsets[c]..[c+1]` indexes the per-color run), ascending
    /// within a color; CSR rows aligned with `ifc_locals`.
    ifc_color_offsets: Vec<u32>,
    ifc_locals: Vec<u32>,
    ifc_nbr_offsets: Vec<u32>,
    ifc_nbrs: Vec<u32>,
    ifc_vt_offsets: Vec<u32>,
    ifc_vt: Vec<u32>,
    /// Local element set — every element incident to a sweep vertex.
    /// Global ids ascending; corners as local ids.
    elem_globals: Vec<u32>,
    elem_corners: Vec<[u32; C]>,
    /// Per local element: the global weight `w_t` when this part
    /// stat-owns the element (it owns the smallest movable corner),
    /// `0.0` otherwise — multiplying score deltas by this folds each
    /// element's quality change into exactly one part's accumulator.
    elem_weight: Vec<f64>,
    /// Per halo local (index − `num_owned`): incident local elements —
    /// what a delivered halo coordinate forces us to re-score.
    halo_vt_offsets: Vec<u32>,
    halo_vt: Vec<u32>,
}

impl<const C: usize> ResidentBlock<C> {
    /// The block's interior sweep vertices as global ids, ascending — its
    /// slice of the part-major visit order.
    pub fn interior_globals(&self) -> impl Iterator<Item = u32> + '_ {
        self.int_locals.iter().map(|&lv| self.owned[lv as usize])
    }

    /// Owned vertices, global ids ascending — the gather/scatter map a
    /// coordinator slices global arrays with.
    pub fn owned(&self) -> &[u32] {
        &self.owned
    }

    /// Halo (ghost) vertices, global ids ascending.
    pub fn halo(&self) -> &[u32] {
        &self.halo
    }

    /// Number of owned vertices (halo locals start here).
    pub fn num_owned(&self) -> usize {
        self.num_owned as usize
    }

    /// Local element set as global element ids, ascending — the score
    /// gather map.
    pub fn elem_globals(&self) -> &[u32] {
        &self.elem_globals
    }
}

/// The serial visit order a resident sweep over `blocks` is exactly equal
/// to — identical to [`crate::partitioned::part_major_order`] over the
/// same decomposition.
pub fn resident_part_major_order<const C: usize>(
    blocks: &[ResidentBlock<C>],
    interface_classes: &[Vec<u32>],
) -> Vec<u32> {
    let mut order: Vec<u32> = blocks.iter().flat_map(|b| b.interior_globals()).collect();
    order.extend(interface_classes.iter().flatten().copied());
    order
}

/// One coalesced (source part → destination part) delta batch: the
/// destination-local slots and new coordinates of every moved source
/// vertex the destination ghosts — the in-memory form of one
/// `lms_part::wire::Frame::HaloDelta`.
#[derive(Debug, Clone)]
pub struct PairBatch<P> {
    /// Destination part.
    pub dst: u32,
    /// Destination-local halo slot per entry.
    pub slots: Vec<u32>,
    /// New coordinate per entry, aligned with `slots`.
    pub coords: Vec<P>,
}

impl<P> PairBatch<P> {
    /// Empty the batch, keeping its capacity (buffers are round-reused).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.coords.clear();
    }
}

/// One part's resident compute kernel: the block's mutable run state
/// (local coordinates, local element scores, the `Σ w_t·Δq_t` stat
/// accumulator) plus every local operation of the resident protocol —
/// interior/color sweeps, pending-delta application, per-pair outbox
/// batching. Transports differ only in how they move the batches:
/// [`crate::transport::InProcessTransport`] holds all ranks in one
/// process, `lms-dist` runs one `ResidentRank` per forked worker process.
///
/// The sweep arithmetic is identical, expression by expression, to the
/// serial hot path ([`crate::kernel`]) and the PR-2 block/colored sweeps,
/// so commit decisions (hence coordinates) stay bit-identical.
pub struct ResidentRank<'a, const C: usize, D: SmoothDomain<C>> {
    dom: &'a D,
    smart: bool,
    weighting: Weighting,
    part: u32,
    block: &'a ResidentBlock<C>,
    schedule: &'a ExchangeSchedule,
    /// Dense destination-part → outbox-batch index map (`u32::MAX` for
    /// non-neighbours), built from the [`MessagePlan`].
    batch_of: Vec<u32>,
    /// Local coordinates: owned then halo, in the per-axis SoA layout the
    /// lane-batched scoring kernels stream. Points cross this boundary
    /// only through [`SoaLike::get`]/[`SoaLike::set`] (exact bit copies).
    coords: D::Soa,
    /// Local `(quality, positively_oriented)` per local element, split
    /// into SoA columns.
    scores: SoaScores,
    /// This iteration's `Σ w_t·Δq_t` over stat-owned elements.
    delta: f64,
    /// Owned locals committed in the current interface color round — the
    /// moved-restriction of the exchange.
    round_moved: Vec<u32>,
    /// Plain runs: local elements awaiting the end-of-iteration re-score.
    iter_dirty: Vec<u32>,
    dirty_mark: Vec<bool>,
    /// Candidate-star / re-score output scratch, reused across vertices.
    star: Vec<(f64, bool)>,
    /// Corner-row scratch fed to `score_batch`, reused across vertices.
    rows: Vec<[u32; C]>,
    /// Lane-padded corner rows per interior-span vertex, precomputed at
    /// construction: the star topology is static across sweeps, so the
    /// smart batched sweep indexes straight into this CSR instead of
    /// rebuilding (and re-padding) the row list per vertex per sweep.
    /// Pad rows are `[0; C]` (slot 0 is always a valid element); their
    /// scores land in pad slots of `star` that no fold ever reads.
    int_star_rows: Vec<[u32; C]>,
    int_star_offsets: Vec<u32>,
    /// Interface-span twin of `int_star_rows`/`int_star_offsets`.
    ifc_star_rows: Vec<[u32; C]>,
    ifc_star_offsets: Vec<u32>,
    /// Bench/oracle baseline: force per-element scalar scoring
    /// ([`DomainConfig::scalar_scoring`]); bit-identical either way.
    scalar_scoring: bool,
    /// Elements scored by this rank's sweeps and re-scores (throughput
    /// counter; drained by [`take_scored`](Self::take_scored)).
    scored: u64,
    /// Pending halo deliveries `(dst local, coordinate)`.
    inbox: Vec<(u32, D::Point)>,
    /// Smart runs: elements to re-score right after an inbox application.
    apply_dirty: Vec<u32>,
    /// This round's published delta batches, one per plan neighbour.
    outbox: Vec<PairBatch<D::Point>>,
    /// Profiling switch ([`set_timing`](Self::set_timing)): when on, the
    /// sweep entry points clock themselves into `phases` and
    /// [`pull_from`](Self::pull_from) clocks per-source routing into
    /// `route_ns`. Strictly observation-only — the sweep arithmetic is
    /// untouched either way, so coordinates stay bit-identical.
    timing: bool,
    /// Accumulated phase timings + moved-vertex count while `timing`.
    phases: RankPhaseNanos,
    /// Per-source-part routing (pull + stash) nanos while `timing`,
    /// lazily sized to the published part count.
    route_ns: Vec<u64>,
}

impl<'a, const C: usize, D: SmoothDomain<C>> ResidentRank<'a, C, D> {
    /// Build the rank for `part` over its resident block, exchange
    /// schedule and message plan.
    pub fn new(
        dom: &'a D,
        cfg: &DomainConfig,
        part: u32,
        block: &'a ResidentBlock<C>,
        schedule: &'a ExchangeSchedule,
        plan: &MessagePlan,
    ) -> Self {
        let mut batch_of = vec![u32::MAX; plan.num_parts()];
        let outbox: Vec<PairBatch<D::Point>> = plan
            .neighbors(part)
            .iter()
            .zip(plan.pair_entry_counts(part))
            .enumerate()
            .map(|(i, (&q, &cap))| {
                batch_of[q as usize] = i as u32;
                PairBatch {
                    dst: q,
                    slots: Vec::with_capacity(cap as usize),
                    coords: Vec::with_capacity(cap as usize),
                }
            })
            .collect();
        // the smart batched sweep scores through precomputed padded rows;
        // plain or scalar-scoring configurations never read them
        let (mut int_star_rows, mut int_star_offsets) = (Vec::new(), Vec::new());
        let (mut ifc_star_rows, mut ifc_star_offsets) = (Vec::new(), Vec::new());
        if cfg.smart && !cfg.scalar_scoring {
            build_padded_star_rows(
                block,
                &block.int_vt_offsets,
                &block.int_vt,
                &mut int_star_rows,
                &mut int_star_offsets,
            );
            build_padded_star_rows(
                block,
                &block.ifc_vt_offsets,
                &block.ifc_vt,
                &mut ifc_star_rows,
                &mut ifc_star_offsets,
            );
        }
        ResidentRank {
            dom,
            smart: cfg.smart,
            weighting: cfg.weighting,
            part,
            block,
            schedule,
            batch_of,
            coords: D::Soa::with_len(block.owned.len() + block.halo.len()),
            scores: SoaScores::with_len(block.elem_globals.len()),
            delta: 0.0,
            round_moved: Vec::new(),
            iter_dirty: Vec::new(),
            dirty_mark: vec![false; block.elem_globals.len()],
            star: Vec::new(),
            rows: Vec::new(),
            int_star_rows,
            int_star_offsets,
            ifc_star_rows,
            ifc_star_offsets,
            scalar_scoring: cfg.scalar_scoring,
            scored: 0,
            inbox: Vec::new(),
            apply_dirty: Vec::new(),
            outbox,
            timing: false,
            phases: RankPhaseNanos::default(),
            route_ns: Vec::new(),
        }
    }

    /// The part this rank computes.
    pub fn part(&self) -> u32 {
        self.part
    }

    /// Switch per-phase self-timing on or off (off by default — an
    /// untimed rank performs zero clock reads).
    pub fn set_timing(&mut self, on: bool) {
        self.timing = on;
    }

    /// Drain the accumulated phase timings + moved count (the counters
    /// restart at zero — callers ship *deltas*, which keeps distributed
    /// accounting correct across rank respawns).
    pub fn take_phases(&mut self) -> RankPhaseNanos {
        std::mem::take(&mut self.phases)
    }

    /// Drain the per-source routing nanos accumulated by
    /// [`pull_from`](Self::pull_from), indexed by source part.
    pub fn take_route_ns(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.route_ns)
    }

    /// The one full gather from the global arrays: all owned + halo
    /// coordinates and every local element's initial score.
    pub fn load_global(&mut self, coords: &[D::Point], scores: &[(f64, bool)]) {
        self.reset_transient();
        for (i, &v) in self.block.owned.iter().chain(&self.block.halo).enumerate() {
            self.coords.set(i, coords[v as usize]);
        }
        for (i, &t) in self.block.elem_globals.iter().enumerate() {
            self.scores.set(i, scores[t as usize]);
        }
    }

    /// The one full gather from an already-sliced block payload (a wire
    /// [`lms_part::wire::Frame::Gather`]): coordinates owned-then-halo in
    /// block-local order, scores in local element order.
    ///
    /// Loading fully defines the rank's run state: at an iteration
    /// boundary a rank is exactly `(coords, scores)` plus empty transient
    /// buffers, so a mid-iteration survivor re-loaded from a recovery
    /// checkpoint returns bit-identically to that boundary.
    pub fn load_block(&mut self, coords: &[D::Point], scores: &[(f64, bool)]) {
        assert_eq!(coords.len(), self.coords.len(), "gather payload has wrong coordinate count");
        assert_eq!(scores.len(), self.scores.len(), "gather payload has wrong score count");
        self.reset_transient();
        self.coords.gather_from(coords);
        self.scores.gather_from(scores);
    }

    /// Drop every in-flight buffer (pending deliveries, dirty queues, the
    /// stat accumulator, unpulled outbox batches) so a load puts the rank
    /// into a pristine iteration-boundary state — a no-op on the normal
    /// path, where loads only ever happen before the first iteration.
    fn reset_transient(&mut self) {
        self.delta = 0.0;
        self.round_moved.clear();
        self.inbox.clear();
        for &lt in self.iter_dirty.iter().chain(&self.apply_dirty) {
            self.dirty_mark[lt as usize] = false;
        }
        self.iter_dirty.clear();
        self.apply_dirty.clear();
        for batch in &mut self.outbox {
            batch.clear();
        }
    }

    /// Sweep the part-interior ∩ mesh-interior vertices (fully local:
    /// an interior vertex is in no other part's halo).
    pub fn sweep_interior(&mut self) {
        let t0 = if self.timing { now_ns() } else { 0 };
        let range = 0..self.block.int_locals.len();
        if self.smart {
            self.sweep_range_smart(SweepSpan::Interior, range, false);
        } else {
            self.sweep_range_plain(SweepSpan::Interior, range, false);
        }
        if self.timing {
            self.phases.interior_ns += now_ns() - t0;
        }
    }

    /// Sweep this part's slice of interface color class `c`, recording
    /// the committed vertices for the round's exchange.
    pub fn sweep_color(&mut self, c: usize) {
        let t0 = if self.timing { now_ns() } else { 0 };
        let range =
            self.block.ifc_color_offsets[c] as usize..self.block.ifc_color_offsets[c + 1] as usize;
        if self.smart {
            self.sweep_range_smart(SweepSpan::Interface, range, true);
        } else {
            self.sweep_range_plain(SweepSpan::Interface, range, true);
        }
        if self.timing {
            self.phases.color_ns += now_ns() - t0;
        }
    }

    /// Queue delivered halo coordinates (one incoming batch) without
    /// applying them — application is deferred to [`apply_pending`]
    /// so a round's deliveries act as one batch whatever transport
    /// carried them.
    ///
    /// [`apply_pending`]: Self::apply_pending
    pub fn stash_deltas(&mut self, slots: &[u32], coords: &[D::Point]) {
        debug_assert_eq!(slots.len(), coords.len());
        self.inbox.extend(slots.iter().copied().zip(coords.iter().copied()));
    }

    /// [`stash_deltas`](Self::stash_deltas) from every published outbox
    /// addressed to this part, in ascending source-part order — the
    /// in-process pull side of the exchange.
    pub fn pull_from(&mut self, published: &[Vec<PairBatch<D::Point>>]) {
        if self.timing && self.route_ns.len() < published.len() {
            self.route_ns.resize(published.len(), 0);
        }
        for (s, src) in published.iter().enumerate() {
            let t0 = if self.timing { now_ns() } else { 0 };
            let mut stashed = false;
            for batch in src {
                if batch.dst == self.part && !batch.slots.is_empty() {
                    self.stash_deltas(&batch.slots, &batch.coords);
                    stashed = true;
                }
            }
            if self.timing && stashed {
                self.route_ns[s] += now_ns() - t0;
            }
        }
    }

    /// Apply every pending halo delivery. Smart runs re-score the touched
    /// elements immediately (the next color step's guard reads them);
    /// plain runs only queue them for the iteration-end re-score.
    pub fn apply_pending(&mut self) {
        if self.inbox.is_empty() {
            return;
        }
        for idx in 0..self.inbox.len() {
            let (dst, pos) = self.inbox[idx];
            self.coords.set(dst as usize, pos);
            let h = (dst - self.block.num_owned) as usize;
            let row = &self.block.halo_vt[self.block.halo_vt_offsets[h] as usize
                ..self.block.halo_vt_offsets[h + 1] as usize];
            let queue = if self.smart { &mut self.apply_dirty } else { &mut self.iter_dirty };
            for &lt in row {
                if !self.dirty_mark[lt as usize] {
                    self.dirty_mark[lt as usize] = true;
                    queue.push(lt);
                }
            }
        }
        self.inbox.clear();
        if self.smart {
            let mut queue = std::mem::take(&mut self.apply_dirty);
            queue.sort_unstable();
            self.rescore_elements(&queue);
            queue.clear();
            self.apply_dirty = queue;
        }
    }

    /// Re-score the local elements in `queue` (ascending), folding the
    /// weighted quality deltas into the stat accumulator in queue order
    /// and clearing the dirty marks — the shared tail of the smart
    /// post-delivery re-score and the plain end-of-iteration re-score.
    /// Scoring goes through the lane-batched [`SmoothDomain::score_batch`]
    /// unless the scalar baseline is forced; both paths are bit-identical
    /// per element and the delta fold order is unchanged.
    fn rescore_elements(&mut self, queue: &[u32]) {
        if queue.is_empty() {
            return;
        }
        let block = self.block;
        let k = queue.len();
        if self.star.len() < k {
            resize_tracked(&mut self.star, k);
        }
        if self.scalar_scoring {
            for (slot, &lt) in self.star.iter_mut().zip(queue) {
                *slot = self.dom.score_soa(&self.coords, block.elem_corners[lt as usize]);
            }
        } else {
            if k > self.rows.capacity() {
                note_scratch_grow();
            }
            self.rows.clear();
            self.rows.extend(queue.iter().map(|&lt| block.elem_corners[lt as usize]));
            self.dom.score_batch(&self.coords, &self.rows, &mut self.star[..k]);
        }
        self.scored += k as u64;
        for (&lt, &(q, pos)) in queue.iter().zip(&self.star) {
            let i = lt as usize;
            self.delta += block.elem_weight[i] * (q - self.scores.q(i));
            self.scores.set(i, (q, pos));
            self.dirty_mark[i] = false;
        }
    }

    /// Coalesce the round's moved vertices into the per-destination
    /// outbox batches (one prospective message per neighbouring part),
    /// clearing the moved list.
    pub fn route_moved(&mut self) {
        for batch in &mut self.outbox {
            batch.clear();
        }
        for idx in 0..self.round_moved.len() {
            let lv = self.round_moved[idx];
            for &(q, dst) in self.schedule.outgoing(self.part, lv) {
                let batch = &mut self.outbox[self.batch_of[q as usize] as usize];
                batch.slots.push(dst);
                batch.coords.push(self.coords.get(lv as usize));
            }
        }
        if self.timing {
            self.phases.moved += self.round_moved.len() as u64;
        }
        self.round_moved.clear();
    }

    /// The round's published batches, aligned with the plan neighbours
    /// (possibly empty — transports skip empty batches).
    pub fn outbox(&self) -> &[PairBatch<D::Point>] {
        &self.outbox
    }

    /// Swap the outbox buffer set with `other` (the double-buffer flip:
    /// the freshly routed batches become the published set, the consumed
    /// set becomes next round's scratch). `other` must be a buffer set
    /// created by [`outbox_template`](Self::outbox_template).
    pub fn swap_outbox(&mut self, other: &mut Vec<PairBatch<D::Point>>) {
        debug_assert_eq!(self.outbox.len(), other.len());
        std::mem::swap(&mut self.outbox, other);
    }

    /// A fresh buffer set shaped like this rank's outbox — the second
    /// buffer of the double-buffered exchange. Batches are allocated at
    /// the plan's pair-entry capacity up front, so steady-state rounds
    /// recycle both buffer sets without reallocating.
    pub fn outbox_template(&self) -> Vec<PairBatch<D::Point>> {
        self.outbox
            .iter()
            .map(|b| PairBatch {
                dst: b.dst,
                slots: Vec::with_capacity(b.slots.capacity()),
                coords: Vec::with_capacity(b.coords.capacity()),
            })
            .collect()
    }

    /// Iteration end: plain runs re-score every element a commit or a
    /// halo delivery touched, in ascending local order, folding the score
    /// changes into the stat delta. (Smart runs re-score incrementally,
    /// so this is a no-op for them.) Call after the final
    /// [`apply_pending`](Self::apply_pending) of the iteration.
    pub fn finalize_iteration(&mut self) {
        let t0 = if self.timing { now_ns() } else { 0 };
        self.finalize_iteration_inner();
        if self.timing {
            self.phases.finish_ns += now_ns() - t0;
        }
    }

    fn finalize_iteration_inner(&mut self) {
        self.apply_pending();
        if self.smart {
            return;
        }
        let mut queue = std::mem::take(&mut self.iter_dirty);
        queue.sort_unstable();
        self.rescore_elements(&queue);
        queue.clear();
        self.iter_dirty = queue;
    }

    /// Drain the iteration's `Σ w_t·Δq_t` stat delta.
    pub fn take_delta(&mut self) -> f64 {
        std::mem::take(&mut self.delta)
    }

    /// Drain the count of elements this rank scored (sweep stars plus
    /// dirty re-scores) — the scored-elements throughput counter.
    pub fn take_scored(&mut self) -> u64 {
        std::mem::take(&mut self.scored)
    }

    /// One owned vertex's current coordinate (slot `j < num_owned`) —
    /// the per-vertex scatter read (the SoA store has no point slice to
    /// borrow).
    #[inline]
    pub fn owned_coord(&self, j: usize) -> D::Point {
        debug_assert!(j < self.block.num_owned as usize);
        self.coords.get(j)
    }

    /// Copy the owned coordinates into `out` — the bulk scatter payload
    /// at the transport boundary.
    pub fn owned_coords_into(&self, out: &mut Vec<D::Point>) {
        out.clear();
        out.reserve(self.block.num_owned as usize);
        for j in 0..self.block.num_owned as usize {
            out.push(self.coords.get(j));
        }
    }

    /// One smart local span sweep — arithmetic identical, expression by
    /// expression, to the serial hot path ([`crate::kernel`]) and to the
    /// PR-2 block/colored sweeps, so commit decisions (hence coordinates)
    /// stay bit-identical. Score updates fold `w_t·Δq` into the part's
    /// stat delta as they land.
    ///
    /// The candidate star is scored **in place**: the candidate is staged
    /// into the SoA store, the incident elements run through the
    /// lane-batched [`SmoothDomain::score_batch`] on their ordinary corner
    /// rows, and the old position is restored if the guard rejects. Every
    /// element sees exactly the values the old substituting `score_with`
    /// fed it, so the guard sums — hence commits — are bit-identical.
    fn sweep_range_smart(
        &mut self,
        span: SweepSpan,
        range: std::ops::Range<usize>,
        record_moved: bool,
    ) {
        // Function multiversioning: compile the whole sweep body a second
        // time with AVX enabled and dispatch once per span sweep. Inside
        // the AVX copy the per-vertex `score_batch` → `tri_elr_main_avx`
        // chain inlines completely (a `#[target_feature]` function can
        // inline into a caller that already has the feature), so the hot
        // loop pays no call / `vzeroupper` / SSE↔AVX-transition cost per
        // vertex. The body is `#[inline(always)]` and identical in both
        // copies — VEX encoding changes no IEEE semantics, and LLVM does
        // not reassociate float math without fast-math flags, so the two
        // versions are bit-identical. The scalar-scoring baseline stays
        // on the plain copy on purpose: it stands in for the pre-SoA
        // kernel in before/after benches, so it keeps the compilation
        // environment that kernel had.
        #[cfg(target_arch = "x86_64")]
        if !self.scalar_scoring && std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support verified above (cached runtime check).
            unsafe { self.sweep_range_smart_avx(span, range, record_moved) };
            return;
        }
        self.sweep_range_smart_body(span, range, record_moved);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn sweep_range_smart_avx(
        &mut self,
        span: SweepSpan,
        range: std::ops::Range<usize>,
        record_moved: bool,
    ) {
        self.sweep_range_smart_body(span, range, record_moved);
    }

    #[inline(always)]
    fn sweep_range_smart_body(
        &mut self,
        span: SweepSpan,
        range: std::ops::Range<usize>,
        record_moved: bool,
    ) {
        let block = self.block;
        let (locals, nbr_offsets, nbrs, vt_offsets, vt) = span.arrays(block);
        let (star_rows, star_offsets) = match span {
            SweepSpan::Interior => (&self.int_star_rows, &self.int_star_offsets),
            SweepSpan::Interface => (&self.ifc_star_rows, &self.ifc_star_offsets),
        };
        let weighting = self.weighting;
        let scalar = self.scalar_scoring;
        for si in range {
            let lv = locals[si];
            let ns = &nbrs[nbr_offsets[si] as usize..nbr_offsets[si + 1] as usize];
            if ns.is_empty() {
                continue;
            }
            let pv: D::Point = self.coords.get(lv as usize);
            let Some(candidate) = candidate_for_soa(weighting, pv, ns, &self.coords) else {
                continue;
            };
            let ts = &vt[vt_offsets[si] as usize..vt_offsets[si + 1] as usize];
            if ts.is_empty() {
                self.coords.set(lv as usize, candidate);
                if record_moved {
                    self.round_moved.push(lv);
                }
                continue;
            }

            // stage the candidate; rolled back below if the guard rejects
            self.coords.set(lv as usize, candidate);
            let k = ts.len();
            if scalar {
                if self.star.len() < k {
                    resize_tracked(&mut self.star, k);
                }
                for (slot, &lt) in self.star.iter_mut().zip(ts) {
                    *slot = self.dom.score_soa(&self.coords, block.elem_corners[lt as usize]);
                }
            } else {
                // precomputed lane-padded rows: every real element rides
                // the packed path; pad outputs land past index `k` in
                // `star` and are never read — the fold below walks `ts`
                let rows = &star_rows[star_offsets[si] as usize..star_offsets[si + 1] as usize];
                let kp = rows.len();
                if self.star.len() < kp {
                    resize_tracked(&mut self.star, kp);
                }
                self.dom.score_batch(&self.coords, rows, &mut self.star[..kp]);
            }
            self.scored += k as u64;

            let mut after_sum = 0.0;
            let mut before_sum = 0.0;
            let mut all_pos = true;
            for (&lt, &(q, pos)) in ts.iter().zip(&self.star) {
                let (q0, pos0) = self.scores.get(lt as usize);
                before_sum += if pos0 { q0 } else { 0.0 };
                if pos {
                    after_sum += q;
                } else {
                    all_pos = false;
                }
            }
            let len = k as f64;
            let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
            let commit =
                quality_ok && (all_pos || ts.iter().any(|&lt| !self.scores.pos(lt as usize)));
            if commit {
                for (&lt, &(q_new, pos_new)) in ts.iter().zip(&self.star) {
                    let i = lt as usize;
                    self.delta += block.elem_weight[i] * (q_new - self.scores.q(i));
                    self.scores.set(i, (q_new, pos_new));
                }
                if record_moved {
                    self.round_moved.push(lv);
                }
            } else {
                self.coords.set(lv as usize, pv);
            }
        }
    }

    /// One plain local span sweep: every candidate commits; touched
    /// elements are queued for the end-of-iteration re-score (plain
    /// sweeps never evaluate scores inline).
    fn sweep_range_plain(
        &mut self,
        span: SweepSpan,
        range: std::ops::Range<usize>,
        record_moved: bool,
    ) {
        let block = self.block;
        let (locals, nbr_offsets, nbrs, vt_offsets, vt) = span.arrays(block);
        let weighting = self.weighting;
        for si in range {
            let lv = locals[si];
            let ns = &nbrs[nbr_offsets[si] as usize..nbr_offsets[si + 1] as usize];
            if ns.is_empty() {
                continue;
            }
            let pv: D::Point = self.coords.get(lv as usize);
            let Some(candidate) = candidate_for_soa(weighting, pv, ns, &self.coords) else {
                continue;
            };
            self.coords.set(lv as usize, candidate);
            for &lt in &vt[vt_offsets[si] as usize..vt_offsets[si + 1] as usize] {
                if !self.dirty_mark[lt as usize] {
                    self.dirty_mark[lt as usize] = true;
                    self.iter_dirty.push(lt);
                }
            }
            if record_moved {
                self.round_moved.push(lv);
            }
        }
    }
}

/// Neumaier-compensated accumulator mirroring the quality cache's running
/// sum (same per-add expressions, so the initial fold is bit-equal to a
/// freshly built cache's).
#[derive(Default, Clone, Copy)]
pub(crate) struct Neumaier {
    sum: f64,
    comp: f64,
}

impl Neumaier {
    #[inline]
    pub(crate) fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    #[inline]
    pub(crate) fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

/// Build every part's resident topology for a domain + decomposition +
/// interface color classes. Also returns the constant global element
/// weights `w_t` (the same table the per-block stat weights are sliced
/// from), which [`smooth_resident_on`] folds the initial running sum
/// with — computed here once instead of once per run.
pub fn build_resident_blocks<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    partition: &Partition,
    interface_classes: &[Vec<u32>],
) -> (Vec<ResidentBlock<C>>, Vec<f64>) {
    let n = dom.num_vertices();
    let elements = dom.elements();
    // constant global element weights `w_t = Σ_{v ∈ t} 1/deg_t(v)` of the
    // quality functional
    let elem_w: Vec<f64> = elements
        .iter()
        .map(|e| e.iter().map(|&v| 1.0 / dom.elements_of(v).len() as f64).sum())
        .collect();
    // stat owner of each element: the part owning its smallest
    // mesh-interior (movable) corner; unchangeable elements have none
    let stat_owner: Vec<u32> = elements
        .iter()
        .map(|e| {
            e.iter()
                .copied()
                .filter(|&v| dom.is_interior(v))
                .min()
                .map_or(u32::MAX, |v| partition.part_of(v))
        })
        .collect();

    let mut g2l = vec![u32::MAX; n];
    let mut elem_l = vec![u32::MAX; elements.len()];
    let mut blocks = Vec::with_capacity(partition.num_parts() as usize);
    for p in 0..partition.num_parts() {
        blocks.push(build_resident_block(
            dom,
            partition,
            interface_classes,
            &elem_w,
            &stat_owner,
            p,
            &mut g2l,
            &mut elem_l,
        ));
    }
    (blocks, elem_w)
}

/// Resident smoothing on the in-process transport: one full gather, local
/// sweeps with coalesced halo-delta exchange between interface color
/// steps, one parallel disjoint scatter. Race-free,
/// bitwise-deterministic for any thread count, and exactly serial
/// Gauss–Seidel under [`resident_part_major_order`]. (This is
/// [`crate::transport::drive_resident`] over an
/// [`InProcessTransport`]; `lms-dist` drives the same loop over forked
/// rank processes.)
#[allow(clippy::too_many_arguments)]
pub fn smooth_resident_on<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    cfg: &DomainConfig,
    blocks: &[ResidentBlock<C>],
    elem_w: &[f64],
    interface_classes: &[Vec<u32>],
    schedule: &ExchangeSchedule,
    coords: &mut [D::Point],
    pool: &rayon::ThreadPool,
) -> SmoothReport {
    let mut transport = InProcessTransport::new(dom, cfg, blocks, schedule, pool);
    drive_resident(dom, cfg, elem_w, interface_classes.len(), &mut transport, coords)
}

/// [`smooth_resident_on`] with tracing and per-rank profiling enabled:
/// the driver records its phase spans into a [`Recorder`] (tid 0) and
/// the ranks clock their sweeps, and the report comes back with
/// `phase_breakdown` populated. Everything else — coordinates and every
/// other report field — is bit-identical to the unprofiled run
/// (property-tested in `lms-dist/tests/traced.rs`).
#[allow(clippy::too_many_arguments)]
pub fn smooth_resident_profiled_on<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    cfg: &DomainConfig,
    blocks: &[ResidentBlock<C>],
    elem_w: &[f64],
    interface_classes: &[Vec<u32>],
    schedule: &ExchangeSchedule,
    coords: &mut [D::Point],
    pool: &rayon::ThreadPool,
) -> (SmoothReport, Recorder) {
    let mut transport = InProcessTransport::new(dom, cfg, blocks, schedule, pool);
    transport.set_profiling(true);
    let mut recorder = Recorder::new(0);
    let mut report = drive_resident_with(
        dom,
        cfg,
        elem_w,
        interface_classes.len(),
        &mut transport,
        coords,
        &mut recorder,
    );
    let mut breakdown = PhaseBreakdown::default();
    breakdown.apply_span_totals(&recorder.span_totals());
    breakdown.transport = transport.take_profile();
    report.phase_breakdown = Some(breakdown);
    (report, recorder)
}

impl ResidentEngine {
    /// Build a resident engine for `mesh` under `params` and an existing
    /// decomposition (Gauss–Seidel parameters only).
    pub fn new(mesh: &TriMesh, params: SmoothParams, partition: Partition) -> Self {
        assert_eq!(
            partition.len(),
            mesh.num_vertices(),
            "partition was built for a different mesh"
        );
        assert_eq!(
            params.update,
            UpdateScheme::GaussSeidel,
            "resident smoothing is an in-place (Gauss-Seidel) schedule; \
             use smooth_parallel for deterministic Jacobi"
        );
        let engine = SmoothEngine::new(mesh, params);
        let interface_classes =
            crate::partitioned::interface_classes(engine.interior_color_classes(), &partition);
        let schedule = ExchangeSchedule::build(&partition);
        let (blocks, elem_w) =
            build_resident_blocks(&engine.domain(), &partition, &interface_classes);
        ResidentEngine { engine, partition, schedule, interface_classes, blocks, elem_w }
    }

    /// Convenience: decompose `mesh` into `num_parts` with `method`, then
    /// build the engine.
    pub fn by_method(
        mesh: &TriMesh,
        params: SmoothParams,
        num_parts: usize,
        method: PartitionMethod,
    ) -> Self {
        let adj = Adjacency::build(mesh);
        let partition = partition_mesh(mesh, &adj, num_parts, method);
        ResidentEngine::new(mesh, params, partition)
    }

    /// The underlying serial engine (adjacency, boundary, parameters).
    pub fn engine(&self) -> &SmoothEngine {
        &self.engine
    }

    /// The decomposition the engine runs on.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The static halo-exchange pattern the runs route moved deltas along.
    pub fn exchange_schedule(&self) -> &ExchangeSchedule {
        &self.schedule
    }

    /// The global interface color classes the interface phase steps through.
    pub fn interface_classes(&self) -> &[Vec<u32>] {
        &self.interface_classes
    }

    /// The per-part resident topologies — one block per part, the
    /// per-rank state of a distributed backend.
    pub fn blocks(&self) -> &[ResidentBlock<3>] {
        &self.blocks
    }

    /// The constant global element weights `w_t` of the quality
    /// functional.
    pub fn elem_weights(&self) -> &[f64] {
        &self.elem_w
    }

    /// The serial visit order this engine's sweep is exactly equal to:
    /// each part's interior vertices ascending, parts in order, then the
    /// interface color classes class-major — identical to the PR-2
    /// [`PartitionedEngine`](crate::PartitionedEngine)'s order over the
    /// same decomposition.
    pub fn part_major_visit_order(&self) -> Vec<u32> {
        resident_part_major_order(&self.blocks, &self.interface_classes)
    }

    /// Resident in-place Gauss–Seidel smoothing: one full gather, local
    /// sweeps with halo-delta exchange between interface color steps, one
    /// parallel disjoint scatter. Race-free, bitwise-deterministic for any
    /// `num_threads`, and exactly serial Gauss–Seidel under
    /// [`part_major_visit_order`](Self::part_major_visit_order).
    pub fn smooth(&self, mesh: &mut TriMesh, num_threads: usize) -> SmoothReport {
        assert!(num_threads >= 1, "need at least one thread");
        assert_eq!(
            mesh.num_vertices(),
            self.engine.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        let pool = self.engine.pool.get(num_threads);
        let dom = self.engine.domain();
        smooth_resident_on(
            &dom,
            &DomainConfig::from(&self.engine.params),
            &self.blocks,
            &self.elem_w,
            &self.interface_classes,
            &self.schedule,
            mesh.coords_mut(),
            &pool,
        )
    }

    /// [`smooth`](Self::smooth) with tracing + profiling: the report
    /// comes back with `phase_breakdown` populated (per-phase driver
    /// nanos, per-part sweep nanos + moved counts) and the raw span
    /// [`Recorder`] is returned for chrome-trace export. Coordinates and
    /// every other report field are bit-identical to an unprofiled run.
    pub fn smooth_profiled(
        &self,
        mesh: &mut TriMesh,
        num_threads: usize,
    ) -> (SmoothReport, Recorder) {
        assert!(num_threads >= 1, "need at least one thread");
        assert_eq!(
            mesh.num_vertices(),
            self.engine.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        let pool = self.engine.pool.get(num_threads);
        let dom = self.engine.domain();
        smooth_resident_profiled_on(
            &dom,
            &DomainConfig::from(&self.engine.params),
            &self.blocks,
            &self.elem_w,
            &self.interface_classes,
            &self.schedule,
            mesh.coords_mut(),
            &pool,
        )
    }
}

/// Build the lane-padded corner-row CSR of one sweep span: for each span
/// vertex, its incident elements' corner rows padded with `[0; C]` up to
/// a whole number of [`LANES`]-wide blocks. Row 0 of pad entries indexes
/// local vertex 0 — always present — so pad lanes score a valid (if
/// meaningless) element whose output is simply never read.
fn build_padded_star_rows<const C: usize>(
    block: &ResidentBlock<C>,
    vt_offsets: &[u32],
    vt: &[u32],
    rows: &mut Vec<[u32; C]>,
    offsets: &mut Vec<u32>,
) {
    offsets.reserve(vt_offsets.len());
    offsets.push(0);
    for w in vt_offsets.windows(2) {
        let ts = &vt[w[0] as usize..w[1] as usize];
        for &lt in ts {
            rows.push(block.elem_corners[lt as usize]);
        }
        rows.resize(rows.len() + ts.len().next_multiple_of(LANES) - ts.len(), [0; C]);
        offsets.push(rows.len() as u32);
    }
}

/// Which sweep-list a span sweep walks.
#[derive(Clone, Copy)]
enum SweepSpan {
    Interior,
    Interface,
}

impl SweepSpan {
    #[allow(clippy::type_complexity)]
    fn arrays<const C: usize>(
        self,
        block: &ResidentBlock<C>,
    ) -> (&[u32], &[u32], &[u32], &[u32], &[u32]) {
        match self {
            SweepSpan::Interior => (
                &block.int_locals,
                &block.int_nbr_offsets,
                &block.int_nbrs,
                &block.int_vt_offsets,
                &block.int_vt,
            ),
            SweepSpan::Interface => (
                &block.ifc_locals,
                &block.ifc_nbr_offsets,
                &block.ifc_nbrs,
                &block.ifc_vt_offsets,
                &block.ifc_vt,
            ),
        }
    }
}

/// Build one part's resident topology. `g2l` and `elem_l` are
/// `u32::MAX`-filled scratch maps of global→local ids, restored before
/// returning.
#[allow(clippy::too_many_arguments)]
fn build_resident_block<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    partition: &Partition,
    interface_classes: &[Vec<u32>],
    elem_w: &[f64],
    stat_owner: &[u32],
    p: u32,
    g2l: &mut [u32],
    elem_l: &mut [u32],
) -> ResidentBlock<C> {
    let elements = dom.elements();
    let owned: Vec<u32> = partition.part(p).to_vec();
    let halo: Vec<u32> = partition.halo(p).to_vec();
    let num_owned = owned.len() as u32;
    for (i, &v) in owned.iter().enumerate() {
        g2l[v as usize] = i as u32;
    }
    for (j, &u) in halo.iter().enumerate() {
        g2l[u as usize] = num_owned + j as u32;
    }

    // sweep lists: interiors ascending, interfaces color-major
    let mut int_locals = Vec::new();
    let mut int_globals = Vec::new();
    for (i, &v) in owned.iter().enumerate() {
        if !partition.is_interface(v) && dom.is_interior(v) {
            int_locals.push(i as u32);
            int_globals.push(v);
        }
    }
    let mut ifc_color_offsets = Vec::with_capacity(interface_classes.len() + 1);
    ifc_color_offsets.push(0u32);
    let mut ifc_locals = Vec::new();
    let mut ifc_globals = Vec::new();
    for class in interface_classes {
        for &v in class {
            if partition.part_of(v) == p {
                ifc_locals.push(g2l[v as usize]);
                ifc_globals.push(v);
            }
        }
        ifc_color_offsets.push(ifc_locals.len() as u32);
    }

    // local element set: every element incident to a sweep vertex; all
    // corners land in owned ∪ halo (a corner is adjacent to the owned
    // star centre)
    let mut elem_globals: Vec<u32> = int_globals
        .iter()
        .chain(&ifc_globals)
        .flat_map(|&v| dom.elements_of(v).iter().copied())
        .collect();
    elem_globals.sort_unstable();
    elem_globals.dedup();
    for (i, &t) in elem_globals.iter().enumerate() {
        elem_l[t as usize] = i as u32;
    }
    let elem_corners: Vec<[u32; C]> = elem_globals
        .iter()
        .map(|&t| {
            elements[t as usize].map(|c| {
                debug_assert_ne!(g2l[c as usize], u32::MAX, "sweep-star corner outside the block");
                g2l[c as usize]
            })
        })
        .collect();
    let elem_weight: Vec<f64> = elem_globals
        .iter()
        .map(|&t| if stat_owner[t as usize] == p { elem_w[t as usize] } else { 0.0 })
        .collect();

    // CSR rows for both sweep lists, in the global ascending neighbour /
    // incident-element order the serial engine uses
    let build_csr = |globals: &[u32]| {
        let mut nbr_offsets = Vec::with_capacity(globals.len() + 1);
        nbr_offsets.push(0u32);
        let mut nbrs = Vec::new();
        let mut vt_offsets = Vec::with_capacity(globals.len() + 1);
        vt_offsets.push(0u32);
        let mut vt = Vec::new();
        for &v in globals {
            nbrs.extend(dom.neighbors(v).iter().map(|&w| g2l[w as usize]));
            nbr_offsets.push(nbrs.len() as u32);
            vt.extend(dom.elements_of(v).iter().map(|&t| elem_l[t as usize]));
            vt_offsets.push(vt.len() as u32);
        }
        (nbr_offsets, nbrs, vt_offsets, vt)
    };
    let (int_nbr_offsets, int_nbrs, int_vt_offsets, int_vt) = build_csr(&int_globals);
    let (ifc_nbr_offsets, ifc_nbrs, ifc_vt_offsets, ifc_vt) = build_csr(&ifc_globals);

    // halo incidence: which local elements a delivered halo coordinate
    // forces us to re-score
    let mut halo_counts = vec![0u32; halo.len()];
    for corners in &elem_corners {
        for &c in corners {
            if c >= num_owned {
                halo_counts[(c - num_owned) as usize] += 1;
            }
        }
    }
    let mut halo_vt_offsets = Vec::with_capacity(halo.len() + 1);
    halo_vt_offsets.push(0u32);
    for &count in &halo_counts {
        halo_vt_offsets.push(halo_vt_offsets.last().unwrap() + count);
    }
    let mut cursor: Vec<u32> = halo_vt_offsets[..halo.len()].to_vec();
    let mut halo_vt = vec![0u32; *halo_vt_offsets.last().unwrap() as usize];
    for (lt, corners) in elem_corners.iter().enumerate() {
        for &c in corners {
            if c >= num_owned {
                let h = (c - num_owned) as usize;
                halo_vt[cursor[h] as usize] = lt as u32;
                cursor[h] += 1;
            }
        }
    }

    for &t in &elem_globals {
        elem_l[t as usize] = u32::MAX;
    }
    for &v in owned.iter().chain(&halo) {
        g2l[v as usize] = u32::MAX;
    }
    ResidentBlock {
        owned,
        halo,
        num_owned,
        int_locals,
        int_nbr_offsets,
        int_nbrs,
        int_vt_offsets,
        int_vt,
        ifc_color_offsets,
        ifc_locals,
        ifc_nbr_offsets,
        ifc_nbrs,
        ifc_vt_offsets,
        ifc_vt,
        elem_globals,
        elem_corners,
        elem_weight,
        halo_vt_offsets,
        halo_vt,
    }
}

/// Convenience: decompose, build the resident engine and run it in one
/// call. Parameters are moved, never cloned.
pub fn smooth_resident(
    mesh: &mut TriMesh,
    params: SmoothParams,
    num_parts: usize,
    method: PartitionMethod,
    num_threads: usize,
) -> SmoothReport {
    ResidentEngine::by_method(mesh, params, num_parts, method).smooth(mesh, num_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_mesh::generators;

    #[test]
    fn improves_quality_and_pins_boundary() {
        let mut m = generators::perturbed_grid(20, 20, 0.4, 1);
        let before = m.coords().to_vec();
        let engine = ResidentEngine::by_method(&m, SmoothParams::paper(), 4, PartitionMethod::Rcb);
        let report = engine.smooth(&mut m, 2);
        assert!(report.final_quality > report.initial_quality + 0.01);
        for v in engine.engine().boundary().boundary_vertices() {
            assert_eq!(m.coords()[v as usize], before[v as usize], "boundary vertex {v} moved");
        }
    }

    #[test]
    fn single_part_equals_serial_storage_order() {
        let m = generators::perturbed_grid(14, 14, 0.35, 3);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(6).with_tol(-1.0);
        let engine = ResidentEngine::by_method(&m, params.clone(), 1, PartitionMethod::Rcb);
        assert!(engine.interface_classes().is_empty());
        let mut a = m.clone();
        let report = engine.smooth(&mut a, 3);
        let mut b = m.clone();
        SmoothEngine::new(&m, params).smooth(&mut b);
        assert_eq!(a.coords(), b.coords());
        let volume = report.exchange.unwrap();
        assert_eq!(volume.full_gathers, 1);
        assert_eq!(volume.full_scatters, 1);
        assert_eq!(volume.halo_entries_sent, 0, "one part has nothing to exchange");
        assert_eq!(volume.halo_messages_sent, 0);
        assert_eq!(volume.halo_bytes_sent, 0);
    }

    #[test]
    fn exchange_volume_counts_one_gather_one_scatter() {
        let m = generators::perturbed_grid(16, 16, 0.35, 5);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(8).with_tol(-1.0);
        let engine = ResidentEngine::by_method(&m, params, 4, PartitionMethod::Rcb);
        let mut work = m.clone();
        let report = engine.smooth(&mut work, 2);
        let volume = report.exchange.unwrap();
        assert_eq!(report.num_iterations(), 8);
        assert_eq!(volume.full_gathers, 1, "resident blocks gather once, not per sweep");
        assert_eq!(volume.full_scatters, 1, "one disjoint write-back at the end");
        assert_eq!(
            volume.exchange_rounds,
            8 * engine.interface_classes().len(),
            "one exchange round per color step per iteration"
        );
        assert!(volume.halo_entries_sent > 0, "multi-part smoothing must exchange halos");
    }

    #[test]
    fn coalesced_messages_respect_plan_and_entry_counts() {
        let m = generators::perturbed_grid(18, 15, 0.35, 7);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(6).with_tol(-1.0);
        let engine = ResidentEngine::by_method(&m, params, 6, PartitionMethod::Hilbert);
        let plan = MessagePlan::build(engine.exchange_schedule());
        let report = engine.smooth(&mut m.clone(), 2);
        let volume = report.exchange.unwrap();
        // a message carries ≥ 1 entry, and one round sends at most one
        // message per directed neighbour pair
        assert!(volume.halo_messages_sent >= 1);
        assert!(volume.halo_messages_sent <= volume.halo_entries_sent);
        assert!(
            volume.halo_messages_sent <= volume.exchange_rounds * plan.num_pairs(),
            "coalescing bound violated: {} messages over {} rounds x {} pairs",
            volume.halo_messages_sent,
            volume.exchange_rounds,
            plan.num_pairs()
        );
        // byte accounting follows the wire formula: per message one frame
        // header, per entry one slot id + one 2D coordinate
        let overhead = lms_part::wire::halo_frame_wire_len(2, 0);
        assert_eq!(
            volume.halo_bytes_sent,
            volume.halo_messages_sent * overhead + volume.halo_entries_sent * (4 + 16),
        );
    }

    #[test]
    fn zero_iterations_touch_nothing() {
        let m = generators::perturbed_grid(10, 10, 0.3, 2);
        let params = SmoothParams::paper().with_max_iters(0);
        let engine = ResidentEngine::by_method(&m, params, 3, PartitionMethod::Hilbert);
        let mut work = m.clone();
        let report = engine.smooth(&mut work, 2);
        assert_eq!(work.coords(), m.coords());
        let volume = report.exchange.unwrap();
        assert_eq!(volume.full_gathers, 0);
        assert_eq!(volume.full_scatters, 0);
    }

    #[test]
    fn rejects_jacobi_params() {
        let m = generators::perturbed_grid(8, 8, 0.2, 1);
        let params = SmoothParams::paper().with_update(UpdateScheme::Jacobi);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ResidentEngine::by_method(&m, params, 2, PartitionMethod::Rcb)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn convenience_wrapper_runs() {
        let mut m = generators::perturbed_grid(12, 12, 0.35, 2);
        let report = smooth_resident(
            &mut m,
            SmoothParams::paper().with_max_iters(10),
            3,
            PartitionMethod::Morton,
            2,
        );
        assert!(report.final_quality > report.initial_quality);
    }

    #[test]
    fn part_major_order_covers_interior_once() {
        let m = generators::perturbed_grid(13, 17, 0.3, 9);
        let engine =
            ResidentEngine::by_method(&m, SmoothParams::paper(), 5, PartitionMethod::Hilbert);
        let order = engine.part_major_visit_order();
        assert_eq!(order.len(), engine.engine().boundary().num_interior());
        let mut seen = vec![false; m.num_vertices()];
        for &v in &order {
            assert!(engine.engine().boundary().is_interior(v));
            assert!(!seen[v as usize], "vertex {v} visited twice");
            seen[v as usize] = true;
        }
    }
}
