//! Automatic measured repartitioning between runs — the closed
//! observability loop of PR 7's profiling stack.
//!
//! A decomposition that balances vertex counts (or areas) can still be
//! badly *time*-imbalanced: cache behaviour, valence distribution and
//! grading all skew per-part sweep cost away from per-part size. PR 7
//! made that skew measurable (each rank clocks its sweep phases;
//! [`PhaseBreakdown::per_part_sweep_ns`] surfaces the totals) and
//! `lms_part::repartition_measured` turns measured cost into a re-split.
//! This module automates the loop: every [`smooth_adaptive`] run is
//! profiled, and at the run boundary — the natural checkpoint boundary,
//! where no halo state is in flight and the whole mesh is authoritative
//! on the caller's side — the engine re-splits itself whenever the
//! measured spread exceeds the policy threshold.
//!
//! Rebalancing changes *which part owns which vertex*, and Gauss–Seidel
//! results depend on visit order — so a rebalanced run is **not**
//! bit-identical to one on the old decomposition, by design. What is
//! preserved: each individual run stays bitwise-deterministic for any
//! thread count (and bit-identical to serial part-major Gauss–Seidel
//! over its own decomposition), and the rebalance decision itself is
//! deterministic given the same measured timings.
//!
//! [`PhaseBreakdown::per_part_sweep_ns`]: lms_trace::PhaseBreakdown::per_part_sweep_ns
//! [`smooth_adaptive`]: AutoRebalanceEngine::smooth_adaptive

use crate::resident::ResidentEngine;
use crate::stats::SmoothReport;
use lms_mesh::TriMesh;
use lms_part::repartition_measured;

/// When a measured sweep-time imbalance is worth a re-split.
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    /// Trigger threshold on the per-part sweep spread, measured as
    /// `max / mean` of the parts' sweep nanos (1.0 = perfectly even).
    /// A profiled run whose spread exceeds this re-splits the mesh at
    /// measured-cost medians before the next run.
    pub spread_threshold: f64,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        // below ~1.25 the repartition's own disturbance (new halo
        // surfaces, cold blocks) tends to cost more than the skew
        RebalancePolicy { spread_threshold: 1.25 }
    }
}

/// The measured per-part sweep spread: `max / mean` over parts that did
/// any work. Degenerate profiles (no parts, all-zero timings) read as
/// perfectly balanced.
pub fn sweep_spread(per_part_sweep_ns: &[u64]) -> f64 {
    let total: u64 = per_part_sweep_ns.iter().sum();
    if per_part_sweep_ns.is_empty() || total == 0 {
        return 1.0;
    }
    let mean = total as f64 / per_part_sweep_ns.len() as f64;
    *per_part_sweep_ns.iter().max().unwrap() as f64 / mean
}

/// A [`ResidentEngine`] that re-splits itself by measured cost.
///
/// Each [`smooth_adaptive`](Self::smooth_adaptive) call runs the current
/// decomposition profiled; if the measured per-part sweep spread exceeds
/// the policy threshold, the engine rebuilds itself between runs from
/// `lms_part::repartition_measured` over those timings — so a standing
/// imbalance is corrected after one run's evidence, and a balanced
/// decomposition is left untouched.
#[derive(Debug)]
pub struct AutoRebalanceEngine {
    engine: ResidentEngine,
    policy: RebalancePolicy,
    rebalances: usize,
    last_spread: Option<f64>,
}

impl AutoRebalanceEngine {
    /// Wrap an existing engine (any construction: explicit partition or
    /// [`ResidentEngine::by_method`]) under `policy`.
    pub fn new(engine: ResidentEngine, policy: RebalancePolicy) -> Self {
        AutoRebalanceEngine { engine, policy, rebalances: 0, last_spread: None }
    }

    /// The current engine — its [`partition`](ResidentEngine::partition)
    /// reflects every rebalance taken so far.
    pub fn engine(&self) -> &ResidentEngine {
        &self.engine
    }

    /// How many runs ended in a measured re-split.
    pub fn rebalances(&self) -> usize {
        self.rebalances
    }

    /// The spread the most recent run measured (1.0 = perfectly even).
    pub fn last_spread(&self) -> Option<f64> {
        self.last_spread
    }

    /// One profiled smoothing run plus the boundary decision. Returns the
    /// run's report (with `phase_breakdown` attached); query
    /// [`rebalances`](Self::rebalances) /
    /// [`last_spread`](Self::last_spread) for what the boundary did.
    pub fn smooth_adaptive(&mut self, mesh: &mut TriMesh, num_threads: usize) -> SmoothReport {
        let (report, _) = self.engine.smooth_profiled(mesh, num_threads);
        let per_part = report.phase_breakdown.as_ref().expect("profiled run").per_part_sweep_ns();
        let spread = sweep_spread(&per_part);
        self.last_spread = Some(spread);
        if spread > self.policy.spread_threshold {
            // run boundary = checkpoint boundary: the scatter has made
            // the caller's mesh authoritative, so re-splitting here
            // invalidates no in-flight halo state
            let params = self.engine.engine().params().clone();
            let adj = self.engine.engine().adjacency();
            let partition = repartition_measured(mesh, adj, self.engine.partition(), &per_part);
            self.engine = ResidentEngine::new(mesh, params, partition);
            self.rebalances += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmoothParams;
    use lms_mesh::{Adjacency, Point2, TriMesh};
    use lms_part::{partition_mesh, PartitionMethod};

    /// An x³-graded grid: vertex density varies by orders of magnitude
    /// across the x axis, so an *area*-balanced decomposition is
    /// strongly count- and sweep-time-imbalanced.
    fn graded_mesh(side: usize) -> TriMesh {
        let m = lms_mesh::generators::perturbed_grid(side, side, 0.0, 0);
        let (coords, tris) = m.into_parts();
        let graded: Vec<Point2> =
            coords.into_iter().map(|p| Point2::new(p.x * p.x * p.x, p.y)).collect();
        TriMesh::new(graded, tris).unwrap()
    }

    fn part_counts(assignment: &[u32], k: usize) -> Vec<usize> {
        let mut counts = vec![0usize; k];
        for &p in assignment {
            counts[p as usize] += 1;
        }
        counts
    }

    fn count_imbalance(counts: &[usize]) -> f64 {
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        max / mean
    }

    #[test]
    fn spread_of_even_and_degenerate_profiles_is_one() {
        assert_eq!(sweep_spread(&[]), 1.0);
        assert_eq!(sweep_spread(&[0, 0, 0]), 1.0);
        assert_eq!(sweep_spread(&[7, 7, 7, 7]), 1.0);
        assert!(sweep_spread(&[1, 1, 1, 9]) > 2.5);
    }

    #[test]
    fn graded_workload_triggers_a_rebalance_that_narrows_the_split() {
        let mesh = graded_mesh(48);
        let adj = Adjacency::build(&mesh);
        let k = 8usize;
        // the skewed baseline: equal *area* per part ⇒ wildly unequal
        // vertex counts (hence sweep times) under the x³ grading
        let skewed = partition_mesh(&mesh, &adj, k, PartitionMethod::RcbWeighted);
        let before_counts = part_counts(skewed.assignment(), k);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(3).with_tol(-1.0);
        let engine = ResidentEngine::new(&mesh, params, skewed);

        let mut auto = AutoRebalanceEngine::new(engine, RebalancePolicy::default());
        let mut work = mesh.clone();
        let report = auto.smooth_adaptive(&mut work, 2);
        assert!(report.final_quality > report.initial_quality);
        assert_eq!(auto.rebalances(), 1, "spread {:?} must trip the threshold", auto.last_spread());
        assert!(auto.last_spread().unwrap() > 1.25);

        // the structural claim (robust, unlike wall-clock): measured
        // re-splitting must strictly narrow the vertex-count imbalance
        // the grading induced
        let after_counts = part_counts(auto.engine().partition().assignment(), k);
        assert!(
            count_imbalance(&after_counts) < count_imbalance(&before_counts),
            "imbalance must narrow: {before_counts:?} -> {after_counts:?}"
        );

        // and the rebuilt engine must run (deterministically) on the
        // rebalanced decomposition
        let mut again = work.clone();
        let report2 = auto.engine().smooth(&mut again, 2);
        assert!(report2.final_quality >= report2.initial_quality);
    }

    #[test]
    fn balanced_workload_is_left_alone() {
        let mesh = lms_mesh::generators::perturbed_grid(24, 24, 0.3, 5);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
        let engine = ResidentEngine::by_method(&mesh, params, 4, PartitionMethod::Rcb);
        let before = engine.partition().assignment().to_vec();
        // a generous threshold a uniform grid's noise cannot cross
        let mut auto = AutoRebalanceEngine::new(engine, RebalancePolicy { spread_threshold: 50.0 });
        let mut work = mesh.clone();
        auto.smooth_adaptive(&mut work, 2);
        assert_eq!(auto.rebalances(), 0);
        assert_eq!(auto.engine().partition().assignment(), &before[..], "partition untouched");
    }
}
