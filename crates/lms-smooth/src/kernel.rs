//! The incremental-quality sweep kernel — the serial hot path, generic
//! over the smoothing domain.
//!
//! The reference engine ([`SmoothEngine::smooth_full_recompute`]) spends
//! most of its time on *bookkeeping* rather than smoothing:
//!
//! * every iteration ends with a full-mesh quality recompute (O(T) element
//!   scorings plus the per-vertex means) just to evaluate the convergence
//!   test;
//! * every smart-commit test scores the vertex star twice — once for the
//!   "before" quality and once for the candidate — through a per-corner
//!   closure, so a sweep over a mesh with mean degree ~6 performs ~12
//!   element scorings per vertex.
//!
//! This module rewrites both around a [`DomainQualityCache`]:
//!
//! * the **"before"** star quality is a cache lookup (the incident
//!   elements' current qualities are already known);
//! * the **candidate** star is scored once, from a ring buffer gathered
//!   through the CSR neighbour slice into (usually) stack scratch and
//!   addressed through the precomputed star layout (no closure dispatch,
//!   no re-scattered coordinate loads), and the scores are *reused* to
//!   update the cache at commit time;
//! * per-iteration statistics read the cache's compensated running sum —
//!   O(1) — with elements touched by unevaluated moves (plain sweeps,
//!   Jacobi) re-scored exactly once per sweep via the dirty set;
//! * the reported `final_quality` is re-reduced in canonical order
//!   ([`DomainQualityCache::quality_exact`]), bit-identical to a
//!   from-scratch `mesh_quality` on the output mesh.
//!
//! Since PR 4 the sweeps are **dimension-generic** ([`SmoothDomain`]):
//! one body serves the 2D [`SmoothEngine`] and the 3D engines of
//! `lms-mesh3d`. The arithmetic of every committed move is identical to
//! the reference path expression by expression, so coordinates stay
//! **bit-identical** over any fixed number of sweeps — property-tested in
//! `tests/incremental.rs`. One caveat: the per-iteration convergence test
//! reads the compensated running sum, which tracks the exact quality to a
//! few ulps; an improvement landing exactly on `tol` could therefore stop
//! the incremental and reference paths one sweep apart. Disable the
//! tolerance (`tol < 0`) when exact sweep-count parity matters.

use crate::config::{UpdateScheme, Weighting};
use crate::dcache::DomainQualityCache;
use crate::domain::{weighted_candidate_on, DomainConfig, DomainPoint, SmoothDomain, SELF_CORNER};
use crate::engine::SmoothEngine;
use crate::soa::{SoaLike, LANES};
use crate::stats::{IterationStats, SmoothReport};
use lms_mesh::TriMesh;

/// Scratch for one vertex's candidate evaluation, aligned with the
/// vertex's incident-element slice: candidate quality + orientation.
type ElemScore = (f64, bool);

/// Stars/rings up to this size use stack scratch; larger ones fall back
/// to heap scratch (mean degree of a triangulation is ~6).
const STACK_STAR: usize = 16;

/// Reusable per-sweep scratch for the smart sweeps. Every per-vertex
/// temporary of the hot loop lives here, so a warm sweep performs
/// **zero** allocations — pinned by the scratch audit in `tests/soa.rs`
/// via [`crate::soa::scratch_grow_count`].
///
/// The batched path additionally carries the run-wide SoA mirror of the
/// coordinates plus the precomputed lane-padded star-row CSR (see
/// [`SerialKernel::run`]); both are built once per run, before the first
/// sweep, so the sweeps themselves stay allocation-free.
struct SmartScratch<const C: usize, D: SmoothDomain<C>> {
    ring_stack: [D::Point; STACK_STAR],
    ring_spill: Vec<D::Point>,
    score_stack: [ElemScore; STACK_STAR],
    score_spill: Vec<ElemScore>,
    /// Full-mesh SoA mirror of the working coordinates (batched path
    /// only): kept bit-in-sync with the AoS store across commits, the
    /// scoring and candidate gathers read it in plane-major order.
    soa: D::Soa,
    /// Lane-padded corner rows of every visit vertex's star, in visit
    /// order (batched path only). Pad rows are `[0; C]` — scored, never
    /// read — so whole stars ride the packed kernel.
    star_rows: Vec<[u32; C]>,
    /// `star_rows` span of visit position `si`:
    /// `star_offsets[si]..star_offsets[si + 1]`.
    star_offsets: Vec<u32>,
}

impl<const C: usize, D: SmoothDomain<C>> SmartScratch<C, D> {
    fn new() -> Self {
        SmartScratch {
            ring_stack: [D::Point::ZERO; STACK_STAR],
            ring_spill: Vec::new(),
            score_stack: [(0.0, false); STACK_STAR],
            score_spill: Vec::new(),
            soa: D::Soa::with_len(0),
            star_rows: Vec::new(),
            star_offsets: Vec::new(),
        }
    }
}

/// [`candidate_for`] reading an already-gathered ring buffer
/// (`ring[k] == coords[ns[k]]`), so the arithmetic — accumulation order
/// included — is identical.
#[inline]
fn candidate_from_ring<P: DomainPoint>(weighting: Weighting, pv: P, ring: &[P]) -> Option<P> {
    match weighting {
        Weighting::Uniform => {
            let mut sum = P::ZERO;
            for &p in ring {
                sum = sum.padd(p);
            }
            (!ring.is_empty()).then(|| sum.pdiv(ring.len() as f64))
        }
        _ => weighted_candidate_on(weighting, pv, ring.iter().copied()),
    }
}

/// Score vertex `v`'s candidate star. Corners come from the gathered
/// `ring` + `candidate` via the star layout when available (L1-resident,
/// no scattered loads), falling back to direct coordinate indexing.
/// Scores land in `out[..ts_len]`; returns the fused star evaluation.
///
/// Both paths evaluate the domain's scoring on corner values bit-equal to
/// the source coordinates, so the outcome is identical to the reference
/// engine's closure-based evaluation.
#[inline]
#[allow(clippy::too_many_arguments)]
fn score_candidate_star<const C: usize, D: SmoothDomain<C>, R: Fn(u8) -> D::Point>(
    dom: &D,
    cache: &DomainQualityCache,
    star: Option<&[[u8; C]]>,
    star_base: usize,
    ts: &[u32],
    source: &[D::Point],
    ring_at: R,
    v: u32,
    candidate: D::Point,
    out: &mut [ElemScore],
) -> StarEval {
    let mut after_sum = 0.0;
    let mut before_sum = 0.0;
    let mut all_pos = true;
    match star {
        Some(layout) => {
            let lay = &layout[star_base..star_base + ts.len()];
            for ((&t, codes), slot) in ts.iter().zip(lay).zip(out.iter_mut()) {
                before_sum += cache.guarded_quality(t);
                let pts: [D::Point; C] =
                    codes.map(|c| if c == SELF_CORNER { candidate } else { ring_at(c) });
                let (q, pos) = dom.score_points(pts);
                *slot = (q, pos);
                if pos {
                    after_sum += q;
                } else {
                    all_pos = false;
                }
            }
        }
        None => {
            for (&t, slot) in ts.iter().zip(out.iter_mut()) {
                before_sum += cache.guarded_quality(t);
                let (q, pos) = dom.score_with(source, dom.elements()[t as usize], v, candidate);
                *slot = (q, pos);
                if pos {
                    after_sum += q;
                } else {
                    all_pos = false;
                }
            }
        }
    }
    StarEval { after_sum, before_sum, after_all_pos: all_pos }
}

/// Result of one fused star evaluation.
struct StarEval {
    after_sum: f64,
    before_sum: f64,
    after_all_pos: bool,
}

/// Fold the batched scores of vertex star `ts` (in `out[..ts.len()]`)
/// together with the cached "before" qualities into a [`StarEval`] —
/// the same per-element accumulation order as the closure-based scalar
/// path, so the commit decision is bit-identical.
#[inline(always)]
fn fold_star_scores(cache: &DomainQualityCache, ts: &[u32], out: &[ElemScore]) -> StarEval {
    let mut after_sum = 0.0;
    let mut before_sum = 0.0;
    let mut all_pos = true;
    for (&t, &(q, pos)) in ts.iter().zip(out.iter()) {
        before_sum += cache.guarded_quality(t);
        if pos {
            after_sum += q;
        } else {
            all_pos = false;
        }
    }
    StarEval { after_sum, before_sum, after_all_pos: all_pos }
}

/// The Laplacian candidate gathered through a CSR neighbour slice.
///
/// The uniform (paper) weighting is specialised — one fused
/// gather-and-accumulate loop, no per-vertex dispatch — with arithmetic
/// identical to [`weighted_candidate_on`]'s uniform arm (same accumulation
/// order, same `sum / n` expression), so results stay bit-equal across
/// every engine and dimension.
#[inline]
pub(crate) fn candidate_for<P: DomainPoint>(
    weighting: Weighting,
    pv: P,
    ns: &[u32],
    coords: &[P],
) -> Option<P> {
    match weighting {
        Weighting::Uniform => {
            let mut sum = P::ZERO;
            for &w in ns {
                sum = sum.padd(coords[w as usize]);
            }
            (!ns.is_empty()).then(|| sum.pdiv(ns.len() as f64))
        }
        _ => weighted_candidate_on(weighting, pv, ns.iter().map(|&w| coords[w as usize])),
    }
}

/// [`candidate_for`] reading a structure-of-arrays store instead of a
/// point slice — identical accumulation order and expressions (the SoA
/// `get` is an exact per-component bit copy), so candidates stay
/// bit-equal to the point-slice path on the same coordinates.
#[inline]
pub(crate) fn candidate_for_soa<P: DomainPoint, S: SoaLike<P>>(
    weighting: Weighting,
    pv: P,
    ns: &[u32],
    coords: &S,
) -> Option<P> {
    match weighting {
        Weighting::Uniform => {
            let mut sum = P::ZERO;
            for &w in ns {
                sum = sum.padd(coords.get(w as usize));
            }
            (!ns.is_empty()).then(|| sum.pdiv(ns.len() as f64))
        }
        _ => weighted_candidate_on(weighting, pv, ns.iter().map(|&w| coords.get(w as usize))),
    }
}

/// The serial incremental sweeps bound to one domain view: the generic
/// body behind [`SmoothEngine::smooth`] (and any other domain's serial
/// hot path). Construction is free — all state is borrowed.
pub struct SerialKernel<'a, const C: usize, D: SmoothDomain<C>> {
    /// The smoothing domain.
    pub dom: &'a D,
    /// The dimension-free parameter slice.
    pub cfg: DomainConfig,
    /// Interior vertices in sweep order.
    pub visit: &'a [u32],
    /// Optional precomputed star layout (see [`crate::domain`]).
    pub star: Option<&'a [[u8; C]]>,
    /// Force the pre-SoA per-element scalar scoring path. The default
    /// (`false`) routes smart star evaluation through the lane-batched
    /// [`SmoothDomain::score_batch`]; both paths are bit-identical, so
    /// this toggle exists purely as the before/after baseline of the
    /// `kernel_soa` benches and the property suites.
    pub scalar_scoring: bool,
}

impl<const C: usize, D: SmoothDomain<C>> SerialKernel<'_, C, D> {
    /// Run the incremental-quality sweeps on `coords` until convergence
    /// or the sweep cap.
    pub fn run(&self, coords: &mut [D::Point]) -> SmoothReport {
        assert_eq!(coords.len(), self.dom.num_vertices(), "engine was built for a different mesh");
        let cfg = &self.cfg;
        let mut cache = DomainQualityCache::build(self.dom, coords);
        let initial_quality = cache.quality_exact(self.dom);
        let mut report = SmoothReport::starting(initial_quality);
        let mut quality = initial_quality;
        let mut prev: Vec<D::Point> = Vec::new();
        let mut scratch = SmartScratch::new();
        let mut moved: Vec<u32> = Vec::new();

        // Batched smart scoring works the way the resident engine does:
        // a full SoA mirror of the coordinates plus a lane-padded star-row
        // CSR precomputed over the (static) topology, so the sweeps never
        // stage rings or rebuild corner rows per vertex. Built once here —
        // ~one star traversal — and amortised over every sweep.
        if cfg.smart && !self.scalar_scoring && self.star.is_some() {
            <D::Soa as SoaLike<D::Point>>::gather_from(&mut scratch.soa, coords);
            let elems = self.dom.elements();
            scratch.star_offsets.reserve(self.visit.len() + 1);
            scratch.star_offsets.push(0);
            for &v in self.visit {
                let ts = self.dom.elements_of(v);
                for &t in ts {
                    scratch.star_rows.push(elems[t as usize]);
                }
                let pad = ts.len().next_multiple_of(LANES) - ts.len();
                let padded = scratch.star_rows.len() + pad;
                scratch.star_rows.resize(padded, [0; C]);
                scratch.star_offsets.push(scratch.star_rows.len() as u32);
            }
        }

        for iter in 1..=cfg.max_iters {
            moved.clear();
            match (cfg.update, cfg.smart) {
                (UpdateScheme::GaussSeidel, false) => self.sweep_gs_plain(coords, &mut moved),
                (UpdateScheme::GaussSeidel, true) => {
                    self.sweep_gs_smart(coords, &mut cache, &mut scratch)
                }
                (UpdateScheme::Jacobi, false) => {
                    prev.clear();
                    prev.extend_from_slice(coords);
                    self.sweep_jacobi_plain(&prev, coords, &mut moved);
                }
                (UpdateScheme::Jacobi, true) => {
                    prev.clear();
                    prev.extend_from_slice(coords);
                    self.sweep_jacobi_smart(&prev, coords, &cache, &mut moved, &mut scratch);
                    // the SoA mirror tracked `prev` through the sweep
                    // (double-buffered reads); fold the committed moves in
                    // so it mirrors the new coordinates again
                    if !scratch.star_offsets.is_empty() {
                        for &v in &moved {
                            scratch.soa.set(v as usize, coords[v as usize]);
                        }
                    }
                }
            }
            if !moved.is_empty() {
                cache.apply_moves(self.dom, &moved, coords);
            }

            let new_quality = cache.quality_running();
            let improvement = new_quality - quality;
            report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
            quality = new_quality;
            if improvement < cfg.tol {
                report.converged = true;
                break;
            }
        }

        // Report the exact value (canonical reduction order), so
        // `final_quality` matches a from-scratch recompute bit for bit.
        let exact = if report.iterations.is_empty() {
            initial_quality
        } else {
            cache.quality_exact(self.dom)
        };
        if let Some(last) = report.iterations.last_mut() {
            last.quality = exact;
        }
        report.final_quality = exact;
        report
    }

    /// Plain in-place sweep: every candidate commits; movers are recorded
    /// for the post-sweep cache update (no quality evaluation inside the
    /// sweep at all).
    fn sweep_gs_plain(&self, coords: &mut [D::Point], moved: &mut Vec<u32>) {
        for &v in self.visit {
            let ns = self.dom.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = coords[v as usize];
            let Some(candidate) = candidate_for(self.cfg.weighting, pv, ns, coords) else {
                continue;
            };
            coords[v as usize] = candidate;
            moved.push(v);
        }
    }

    /// Smart in-place sweep: "before" from the cache, candidate scored
    /// once from the gathered ring, scores reused as the cache update on
    /// commit.
    fn sweep_gs_smart(
        &self,
        coords: &mut [D::Point],
        cache: &mut DomainQualityCache,
        scratch: &mut SmartScratch<C, D>,
    ) {
        // Function multiversioning (see `resident::sweep_range_smart`):
        // one AVX-enabled copy of the sweep body so the lane-batched
        // scoring chain inlines with no per-vertex call / `vzeroupper`
        // cost; the scalar-scoring baseline keeps the plain copy — it
        // stands in for the pre-SoA kernel in before/after benches.
        #[cfg(target_arch = "x86_64")]
        if !self.scalar_scoring && std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support verified above (cached runtime check).
            unsafe { self.sweep_gs_smart_avx(coords, cache, scratch) };
            return;
        }
        self.sweep_gs_smart_body(coords, cache, scratch);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn sweep_gs_smart_avx(
        &self,
        coords: &mut [D::Point],
        cache: &mut DomainQualityCache,
        scratch: &mut SmartScratch<C, D>,
    ) {
        self.sweep_gs_smart_body(coords, cache, scratch);
    }

    /// The batched loop: candidate gathered from the SoA mirror, the
    /// candidate *staged* into the mirror (slot `v`), the whole star
    /// scored through one [`SmoothDomain::score_batch`] on the
    /// precomputed lane-padded rows, and the stage committed or reverted
    /// with the decision. Every corner read carries the exact source
    /// bits and the fold keeps the per-element order, so the outcome is
    /// bit-identical to the scalar loop — property-tested in
    /// `tests/soa.rs`.
    #[inline(always)]
    fn sweep_gs_smart_batched(
        &self,
        coords: &mut [D::Point],
        cache: &mut DomainQualityCache,
        scratch: &mut SmartScratch<C, D>,
    ) {
        let weighting = self.cfg.weighting;
        let SmartScratch { score_stack, score_spill, soa, star_rows, star_offsets, .. } = scratch;
        for (si, &v) in self.visit.iter().enumerate() {
            let ns = self.dom.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = coords[v as usize];
            let Some(candidate) = candidate_for_soa(weighting, pv, ns, soa) else {
                continue;
            };

            let ts = self.dom.elements_of(v);
            if ts.is_empty() {
                // star-less vertex: both local qualities are 0 and the
                // validity rule is vacuous — the reference path commits
                coords[v as usize] = candidate;
                soa.set(v as usize, candidate);
                continue;
            }

            let rows = &star_rows[star_offsets[si] as usize..star_offsets[si + 1] as usize];
            let kp = rows.len();
            let out: &mut [ElemScore] = if kp <= STACK_STAR {
                &mut score_stack[..kp]
            } else {
                score_spill.clear();
                score_spill.resize(kp, (0.0, false));
                score_spill
            };
            soa.set(v as usize, candidate);
            self.dom.score_batch(soa, rows, out);
            let StarEval { after_sum, before_sum, after_all_pos } =
                fold_star_scores(cache, ts, out);

            let len = ts.len() as f64;
            let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
            let commit =
                quality_ok && (after_all_pos || ts.iter().any(|&t| !cache.elem_is_positive(t)));
            if commit {
                coords[v as usize] = candidate;
                cache.set_star(ts, &out[..ts.len()]);
            } else {
                soa.set(v as usize, pv);
            }
        }
    }

    #[inline(always)]
    fn sweep_gs_smart_body(
        &self,
        coords: &mut [D::Point],
        cache: &mut DomainQualityCache,
        scratch: &mut SmartScratch<C, D>,
    ) {
        if !self.scalar_scoring && !scratch.star_offsets.is_empty() {
            self.sweep_gs_smart_batched(coords, cache, scratch);
            return;
        }
        let weighting = self.cfg.weighting;
        let star = self.star;
        let SmartScratch { ring_stack, ring_spill, score_stack, score_spill, .. } = scratch;
        for &v in self.visit {
            let ns = self.dom.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = coords[v as usize];

            // gather the ring once; candidate and scoring both read it
            let on_stack = ns.len() <= STACK_STAR;
            let ring: &[D::Point] = if on_stack {
                for (slot, &w) in ring_stack.iter_mut().zip(ns) {
                    *slot = coords[w as usize];
                }
                &ring_stack[..ns.len()]
            } else {
                ring_spill.clear();
                ring_spill.extend(ns.iter().map(|&w| coords[w as usize]));
                ring_spill
            };
            let Some(candidate) = candidate_from_ring(weighting, pv, ring) else {
                continue;
            };

            let ts = self.dom.elements_of(v);
            if ts.is_empty() {
                // star-less vertex: both local qualities are 0 and the
                // validity rule is vacuous — the reference path commits
                coords[v as usize] = candidate;
                continue;
            }

            let out: &mut [ElemScore] = if ts.len() <= STACK_STAR {
                &mut score_stack[..ts.len()]
            } else {
                score_spill.clear();
                score_spill.resize(ts.len(), (0.0, false));
                score_spill
            };
            // one fused star pass: branchless guarded "before" from cache
            // lookups, candidate scored alongside. The stack-ring accessor
            // masks the index (codes are < STACK_STAR by construction), so
            // the fixed-size array read needs no bounds check.
            let base = self.dom.elements_offset(v);
            let StarEval { after_sum, before_sum, after_all_pos } = if on_stack {
                let arr: &[D::Point; STACK_STAR] = ring_stack;
                score_candidate_star(
                    self.dom,
                    cache,
                    star,
                    base,
                    ts,
                    coords,
                    |c| arr[(c as usize) & (STACK_STAR - 1)],
                    v,
                    candidate,
                    out,
                )
            } else {
                let rs: &[D::Point] = ring_spill;
                score_candidate_star(
                    self.dom,
                    cache,
                    star,
                    base,
                    ts,
                    coords,
                    |c| rs[c as usize],
                    v,
                    candidate,
                    out,
                )
            };

            // Same decision as the reference path's mean-vs-mean test:
            // IEEE division by a positive constant is monotone, so a sum
            // win implies a mean win and the divisions only run on the
            // boundary where rounding could collapse a strict sum loss
            // into mean equality. The "before was already invalid" escape
            // hatch is only consulted when the candidate star is invalid.
            let len = ts.len() as f64;
            let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
            let commit =
                quality_ok && (after_all_pos || ts.iter().any(|&t| !cache.elem_is_positive(t)));
            if commit {
                coords[v as usize] = candidate;
                cache.set_star(ts, &out[..ts.len()]);
            }
        }
    }

    /// Plain double-buffered sweep: reads `prev`, writes `next`, records
    /// movers (an element can gain several moved corners, so scoring waits
    /// for the post-sweep cache update).
    fn sweep_jacobi_plain(&self, prev: &[D::Point], next: &mut [D::Point], moved: &mut Vec<u32>) {
        for &v in self.visit {
            let ns = self.dom.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = prev[v as usize];
            let Some(candidate) = candidate_for(self.cfg.weighting, pv, ns, prev) else {
                continue;
            };
            next[v as usize] = candidate;
            moved.push(v);
        }
    }

    /// Smart double-buffered sweep: the cache still reflects `prev` (it is
    /// only updated between sweeps), so "before" lookups are the previous
    /// sweep's values — exactly the reference path's semantics.
    fn sweep_jacobi_smart(
        &self,
        prev: &[D::Point],
        next: &mut [D::Point],
        cache: &DomainQualityCache,
        moved: &mut Vec<u32>,
        scratch: &mut SmartScratch<C, D>,
    ) {
        // multiversioned like `sweep_gs_smart` — same reasoning
        #[cfg(target_arch = "x86_64")]
        if !self.scalar_scoring && std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support verified above (cached runtime check).
            unsafe { self.sweep_jacobi_smart_avx(prev, next, cache, moved, scratch) };
            return;
        }
        self.sweep_jacobi_smart_body(prev, next, cache, moved, scratch);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn sweep_jacobi_smart_avx(
        &self,
        prev: &[D::Point],
        next: &mut [D::Point],
        cache: &DomainQualityCache,
        moved: &mut Vec<u32>,
        scratch: &mut SmartScratch<C, D>,
    ) {
        self.sweep_jacobi_smart_body(prev, next, cache, moved, scratch);
    }

    /// The batched double-buffered loop: like
    /// [`sweep_gs_smart_batched`](Self::sweep_gs_smart_batched), except
    /// the SoA mirror tracks `prev` — the candidate stage is *always*
    /// reverted after scoring (later vertices must read the previous
    /// sweep's positions) and commits land in `next` only; the caller
    /// folds the moves into the mirror after the sweep.
    #[inline(always)]
    fn sweep_jacobi_smart_batched(
        &self,
        prev: &[D::Point],
        next: &mut [D::Point],
        cache: &DomainQualityCache,
        moved: &mut Vec<u32>,
        scratch: &mut SmartScratch<C, D>,
    ) {
        let weighting = self.cfg.weighting;
        let SmartScratch { score_stack, score_spill, soa, star_rows, star_offsets, .. } = scratch;
        for (si, &v) in self.visit.iter().enumerate() {
            let ns = self.dom.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = prev[v as usize];
            let Some(candidate) = candidate_for_soa(weighting, pv, ns, soa) else {
                continue;
            };

            let ts = self.dom.elements_of(v);
            if ts.is_empty() {
                next[v as usize] = candidate;
                // no elements to rescore — `apply_moves` is a no-op for a
                // star-less vertex — but the post-sweep mirror sync needs
                // to see the move
                moved.push(v);
                continue;
            }

            // scores are provisional (an element can gain several moved
            // corners this sweep — the post-sweep update re-scores), so
            // the scratch output is discarded after the commit test
            let rows = &star_rows[star_offsets[si] as usize..star_offsets[si + 1] as usize];
            let kp = rows.len();
            let out: &mut [ElemScore] = if kp <= STACK_STAR {
                &mut score_stack[..kp]
            } else {
                score_spill.clear();
                score_spill.resize(kp, (0.0, false));
                score_spill
            };
            soa.set(v as usize, candidate);
            self.dom.score_batch(soa, rows, out);
            soa.set(v as usize, pv);
            let StarEval { after_sum, before_sum, after_all_pos } =
                fold_star_scores(cache, ts, out);

            let len = ts.len() as f64;
            let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
            let commit =
                quality_ok && (after_all_pos || ts.iter().any(|&t| !cache.elem_is_positive(t)));
            if commit {
                next[v as usize] = candidate;
                moved.push(v);
            }
        }
    }

    #[inline(always)]
    fn sweep_jacobi_smart_body(
        &self,
        prev: &[D::Point],
        next: &mut [D::Point],
        cache: &DomainQualityCache,
        moved: &mut Vec<u32>,
        scratch: &mut SmartScratch<C, D>,
    ) {
        if !self.scalar_scoring && !scratch.star_offsets.is_empty() {
            self.sweep_jacobi_smart_batched(prev, next, cache, moved, scratch);
            return;
        }
        let weighting = self.cfg.weighting;
        let star = self.star;
        let SmartScratch { ring_stack, ring_spill, score_stack, score_spill, .. } = scratch;
        for &v in self.visit {
            let ns = self.dom.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = prev[v as usize];
            let on_stack = ns.len() <= STACK_STAR;
            let ring: &[D::Point] = if on_stack {
                for (slot, &w) in ring_stack.iter_mut().zip(ns) {
                    *slot = prev[w as usize];
                }
                &ring_stack[..ns.len()]
            } else {
                ring_spill.clear();
                ring_spill.extend(ns.iter().map(|&w| prev[w as usize]));
                ring_spill
            };
            let Some(candidate) = candidate_from_ring(weighting, pv, ring) else {
                continue;
            };

            let ts = self.dom.elements_of(v);
            if ts.is_empty() {
                next[v as usize] = candidate;
                continue;
            }

            // scores are provisional (an element can gain several moved
            // corners this sweep — the post-sweep update re-scores), so
            // the scratch output is discarded after the commit test
            let out: &mut [ElemScore] = if ts.len() <= STACK_STAR {
                &mut score_stack[..ts.len()]
            } else {
                score_spill.clear();
                score_spill.resize(ts.len(), (0.0, false));
                score_spill
            };
            let base = self.dom.elements_offset(v);
            let StarEval { after_sum, before_sum, after_all_pos } = if on_stack {
                let arr: &[D::Point; STACK_STAR] = ring_stack;
                score_candidate_star(
                    self.dom,
                    cache,
                    star,
                    base,
                    ts,
                    prev,
                    |c| arr[(c as usize) & (STACK_STAR - 1)],
                    v,
                    candidate,
                    out,
                )
            } else {
                let rs: &[D::Point] = ring_spill;
                score_candidate_star(
                    self.dom,
                    cache,
                    star,
                    base,
                    ts,
                    prev,
                    |c| rs[c as usize],
                    v,
                    candidate,
                    out,
                )
            };

            let len = ts.len() as f64;
            let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
            let commit =
                quality_ok && (after_all_pos || ts.iter().any(|&t| !cache.elem_is_positive(t)));
            if commit {
                next[v as usize] = candidate;
                moved.push(v);
            }
        }
    }
}

impl SmoothEngine {
    /// [`smooth`](Self::smooth)'s implementation: the generic incremental
    /// kernel over the engine's [`TriDomain`](crate::domain::TriDomain)
    /// view.
    pub(crate) fn smooth_incremental(&self, mesh: &mut TriMesh) -> SmoothReport {
        assert_eq!(
            mesh.num_vertices(),
            self.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        let dom = self.domain();
        let kernel = SerialKernel {
            dom: &dom,
            cfg: DomainConfig::from(&self.params),
            visit: &self.visit,
            star: self.star.as_deref(),
            scalar_scoring: self.params.scalar_scoring,
        };
        kernel.run(mesh.coords_mut())
    }

    /// [`smooth`](Self::smooth) with the pre-SoA per-element scalar
    /// scoring path forced. Bit-identical to the default lane-batched
    /// run — kept as the before/after baseline of the `kernel_soa`
    /// benches and the SoA property suites.
    pub fn smooth_scalar_scoring(&self, mesh: &mut TriMesh) -> SmoothReport {
        assert_eq!(
            mesh.num_vertices(),
            self.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        let dom = self.domain();
        let kernel = SerialKernel {
            dom: &dom,
            cfg: DomainConfig::from(&self.params),
            visit: &self.visit,
            star: self.star.as_deref(),
            scalar_scoring: true,
        };
        kernel.run(mesh.coords_mut())
    }
}
