//! The incremental-quality sweep kernel — the serial hot path.
//!
//! The reference engine ([`SmoothEngine::smooth_full_recompute`]) spends
//! most of its time on *bookkeeping* rather than smoothing:
//!
//! * every iteration ends with a full-mesh `mesh_quality` recompute
//!   (O(T) triangle scorings plus the per-vertex means) just to evaluate
//!   the convergence test;
//! * every smart-commit test scores the vertex star twice — once for the
//!   "before" quality and once for the candidate — through a per-corner
//!   closure (`local_quality_with`'s `at`), so a sweep over a mesh with
//!   mean degree ~6 performs ~12 triangle scorings per vertex.
//!
//! This module rewrites both around an [`lms_mesh::QualityCache`]:
//!
//! * the **"before"** star quality is a cache lookup (the incident
//!   triangles' current qualities are already known);
//! * the **candidate** star is scored once, from a ring buffer gathered
//!   through the CSR neighbour slice into (usually) stack scratch and
//!   addressed through the engine's precomputed star layout (no closure
//!   dispatch, no re-scattered coordinate loads), and the scores are
//!   *reused* to update the cache at commit time;
//! * per-iteration statistics read the cache's compensated running sum —
//!   O(1) — with triangles touched by unevaluated moves (plain sweeps,
//!   Jacobi) re-scored exactly once per sweep via the dirty set;
//! * the reported `final_quality` is re-reduced in canonical order
//!   ([`QualityCache::quality_exact`]), bit-identical to a from-scratch
//!   `mesh_quality` on the output mesh.
//!
//! The arithmetic of every committed move is identical to the reference
//! path expression by expression, so coordinates stay **bit-identical**
//! over any fixed number of sweeps — property-tested in
//! `tests/incremental.rs`. One caveat: the per-iteration convergence test
//! reads the compensated running sum, which tracks the exact quality to a
//! few ulps; an improvement landing exactly on `tol` could therefore stop
//! the incremental and reference paths one sweep apart. Disable the
//! tolerance (`tol < 0`) when exact sweep-count parity matters.

use crate::config::{UpdateScheme, Weighting};
use crate::engine::{SmoothEngine, SELF_CORNER};
use crate::stats::{IterationStats, SmoothReport};
use crate::weighting::weighted_candidate;
use lms_mesh::geometry::{signed_area, Point2};
use lms_mesh::quality::QualityMetric;
use lms_mesh::{QualityCache, TriMesh};

/// Scratch for one vertex's candidate evaluation, aligned with the
/// vertex's incident-triangle slice: candidate quality + orientation.
type TriScore = (f64, bool);

/// Stars/rings up to this size use stack scratch; larger ones fall back
/// to heap scratch (mean degree of a triangulation is ~6).
const STACK_STAR: usize = 16;

/// Reusable per-sweep scratch for the smart sweeps.
struct SmartScratch {
    ring_stack: [Point2; STACK_STAR],
    ring_spill: Vec<Point2>,
    score_stack: [TriScore; STACK_STAR],
    score_spill: Vec<TriScore>,
}

impl SmartScratch {
    fn new() -> Self {
        SmartScratch {
            ring_stack: [Point2::ZERO; STACK_STAR],
            ring_spill: Vec::new(),
            score_stack: [(0.0, false); STACK_STAR],
            score_spill: Vec::new(),
        }
    }
}

/// [`candidate_for`] reading an already-gathered ring buffer
/// (`ring[k] == coords[ns[k]]`), so the arithmetic — accumulation order
/// included — is identical.
#[inline]
fn candidate_from_ring(weighting: Weighting, pv: Point2, ring: &[Point2]) -> Option<Point2> {
    match weighting {
        Weighting::Uniform => {
            let mut sum = Point2::ZERO;
            for &p in ring {
                sum += p;
            }
            (!ring.is_empty()).then(|| sum / ring.len() as f64)
        }
        _ => weighted_candidate(weighting, pv, ring.iter().copied()),
    }
}

/// Score vertex `v`'s candidate star. Corners come from the gathered
/// `ring` + `candidate` via the engine's star layout when available
/// (L1-resident, no scattered loads), falling back to direct coordinate
/// indexing. Scores land in `out[..ts_len]`; returns
/// `(after_sum, after_all_pos)`.
///
/// Both paths evaluate `metric.triangle_quality` / [`signed_area`] on
/// corner values bit-equal to the source coordinates, so the outcome is
/// identical to the reference engine's closure-based evaluation.
#[inline]
#[allow(clippy::too_many_arguments)]
fn score_candidate_star<R: Fn(u8) -> Point2>(
    metric: QualityMetric,
    cache: &QualityCache,
    star: Option<&[[u8; 3]]>,
    star_base: usize,
    ts: &[u32],
    triangles: &[[u32; 3]],
    source: &[Point2],
    ring_at: R,
    v: u32,
    candidate: Point2,
    out: &mut [TriScore],
) -> StarEval {
    let mut after_sum = 0.0;
    let mut before_sum = 0.0;
    let mut all_pos = true;
    match star {
        Some(layout) => {
            let lay = &layout[star_base..star_base + ts.len()];
            for ((&t, &[c0, c1, c2]), slot) in ts.iter().zip(lay).zip(out.iter_mut()) {
                before_sum += cache.guarded_quality(t);
                let pick = |c: u8| {
                    if c == SELF_CORNER {
                        candidate
                    } else {
                        ring_at(c)
                    }
                };
                let (pa, pb, pc) = (pick(c0), pick(c1), pick(c2));
                let q = metric.triangle_quality(pa, pb, pc);
                let pos = signed_area(pa, pb, pc) > 0.0;
                *slot = (q, pos);
                if pos {
                    after_sum += q;
                } else {
                    all_pos = false;
                }
            }
        }
        None => {
            for (&t, slot) in ts.iter().zip(out.iter_mut()) {
                before_sum += cache.guarded_quality(t);
                let (q, pos) =
                    QualityCache::score_with(metric, source, triangles[t as usize], v, candidate);
                *slot = (q, pos);
                if pos {
                    after_sum += q;
                } else {
                    all_pos = false;
                }
            }
        }
    }
    StarEval { after_sum, before_sum, after_all_pos: all_pos }
}

/// Result of one fused star evaluation.
struct StarEval {
    after_sum: f64,
    before_sum: f64,
    after_all_pos: bool,
}

/// The Laplacian candidate gathered through a CSR neighbour slice.
///
/// The uniform (paper) weighting is specialised — one fused
/// gather-and-accumulate loop, no per-vertex dispatch — with arithmetic
/// identical to [`weighted_candidate`]'s uniform arm (same accumulation
/// order, same `sum / n` expression), so results stay bit-equal across
/// every engine. Other weightings delegate.
#[inline]
pub(crate) fn candidate_for(
    weighting: Weighting,
    pv: Point2,
    ns: &[u32],
    coords: &[Point2],
) -> Option<Point2> {
    match weighting {
        Weighting::Uniform => {
            let mut sum = Point2::ZERO;
            for &w in ns {
                sum += coords[w as usize];
            }
            (!ns.is_empty()).then(|| sum / ns.len() as f64)
        }
        _ => weighted_candidate(weighting, pv, ns.iter().map(|&w| coords[w as usize])),
    }
}

impl SmoothEngine {
    /// [`smooth`](Self::smooth)'s implementation: incremental-quality
    /// sweeps, no tracing.
    pub(crate) fn smooth_incremental(&self, mesh: &mut TriMesh) -> SmoothReport {
        assert_eq!(
            mesh.num_vertices(),
            self.adj.num_vertices(),
            "engine was built for a different mesh"
        );
        let params = &self.params;
        let mut cache = QualityCache::build(mesh, &self.adj, params.metric);
        let initial_quality = cache.quality_exact(&self.adj);
        let mut report = SmoothReport::starting(initial_quality);
        let mut quality = initial_quality;
        let mut prev: Vec<Point2> = Vec::new();
        let mut scratch = SmartScratch::new();
        let mut moved: Vec<u32> = Vec::new();

        for iter in 1..=params.max_iters {
            moved.clear();
            match (params.update, params.smart) {
                (UpdateScheme::GaussSeidel, false) => {
                    self.sweep_gs_plain(mesh.coords_mut(), &mut moved)
                }
                (UpdateScheme::GaussSeidel, true) => {
                    self.sweep_gs_smart(mesh.coords_mut(), &mut cache, &mut scratch)
                }
                (UpdateScheme::Jacobi, false) => {
                    prev.clear();
                    prev.extend_from_slice(mesh.coords());
                    self.sweep_jacobi_plain(&prev, mesh.coords_mut(), &mut moved);
                }
                (UpdateScheme::Jacobi, true) => {
                    prev.clear();
                    prev.extend_from_slice(mesh.coords());
                    self.sweep_jacobi_smart(
                        &prev,
                        mesh.coords_mut(),
                        &cache,
                        &mut moved,
                        &mut scratch,
                    );
                }
            }
            if !moved.is_empty() {
                cache.apply_moves(&moved, &self.adj, mesh.coords(), &self.triangles);
            }

            let new_quality = cache.quality_running();
            let improvement = new_quality - quality;
            report.iterations.push(IterationStats { iter, quality: new_quality, improvement });
            quality = new_quality;
            if improvement < params.tol {
                report.converged = true;
                break;
            }
        }

        // Report the exact value (canonical reduction order), so
        // `final_quality` matches a from-scratch recompute bit for bit.
        let exact = if report.iterations.is_empty() {
            initial_quality
        } else {
            cache.quality_exact(&self.adj)
        };
        if let Some(last) = report.iterations.last_mut() {
            last.quality = exact;
        }
        report.final_quality = exact;
        report
    }

    /// Plain in-place sweep: every candidate commits; movers are recorded
    /// for the post-sweep cache update (no quality evaluation inside the
    /// sweep at all).
    fn sweep_gs_plain(&self, coords: &mut [Point2], moved: &mut Vec<u32>) {
        for &v in &self.visit {
            let ns = self.adj.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = coords[v as usize];
            let Some(candidate) = candidate_for(self.params.weighting, pv, ns, coords) else {
                continue;
            };
            coords[v as usize] = candidate;
            moved.push(v);
        }
    }

    /// Smart in-place sweep: "before" from the cache, candidate scored
    /// once from the gathered ring, scores reused as the cache update on
    /// commit.
    fn sweep_gs_smart(
        &self,
        coords: &mut [Point2],
        cache: &mut QualityCache,
        scratch: &mut SmartScratch,
    ) {
        let metric = self.params.metric;
        let weighting = self.params.weighting;
        let triangles: &[[u32; 3]] = &self.triangles;
        let star = self.star.as_deref();
        let SmartScratch { ring_stack, ring_spill, score_stack, score_spill } = scratch;
        for &v in &self.visit {
            let ns = self.adj.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = coords[v as usize];

            // gather the ring once; candidate and scoring both read it
            let on_stack = ns.len() <= STACK_STAR;
            let ring: &[Point2] = if on_stack {
                for (slot, &w) in ring_stack.iter_mut().zip(ns) {
                    *slot = coords[w as usize];
                }
                &ring_stack[..ns.len()]
            } else {
                ring_spill.clear();
                ring_spill.extend(ns.iter().map(|&w| coords[w as usize]));
                ring_spill
            };
            let Some(candidate) = candidate_from_ring(weighting, pv, ring) else {
                continue;
            };

            let ts = self.adj.triangles_of(v);
            if ts.is_empty() {
                // star-less vertex: both local qualities are 0 and the
                // validity rule is vacuous — the reference path commits
                coords[v as usize] = candidate;
                continue;
            }

            let out: &mut [TriScore] = if ts.len() <= STACK_STAR {
                &mut score_stack[..ts.len()]
            } else {
                score_spill.clear();
                score_spill.resize(ts.len(), (0.0, false));
                score_spill
            };
            // one fused star pass: branchless guarded "before" from cache
            // lookups, candidate scored alongside. The stack-ring accessor
            // masks the index (codes are < STACK_STAR by construction), so
            // the fixed-size array read needs no bounds check.
            let base = self.adj.triangles_offset(v);
            let StarEval { after_sum, before_sum, after_all_pos } = if on_stack {
                let arr: &[Point2; STACK_STAR] = ring_stack;
                score_candidate_star(
                    metric,
                    cache,
                    star,
                    base,
                    ts,
                    triangles,
                    coords,
                    |c| arr[(c as usize) & (STACK_STAR - 1)],
                    v,
                    candidate,
                    out,
                )
            } else {
                let rs: &[Point2] = ring_spill;
                score_candidate_star(
                    metric,
                    cache,
                    star,
                    base,
                    ts,
                    triangles,
                    coords,
                    |c| rs[c as usize],
                    v,
                    candidate,
                    out,
                )
            };

            // Same decision as the reference path's mean-vs-mean test:
            // IEEE division by a positive constant is monotone, so a sum
            // win implies a mean win and the divisions only run on the
            // boundary where rounding could collapse a strict sum loss
            // into mean equality. The "before was already invalid" escape
            // hatch is only consulted when the candidate star is invalid.
            let len = ts.len() as f64;
            let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
            let commit =
                quality_ok && (after_all_pos || ts.iter().any(|&t| !cache.tri_is_positive(t)));
            if commit {
                coords[v as usize] = candidate;
                cache.set_star(ts, out);
            }
        }
    }

    /// Plain double-buffered sweep: reads `prev`, writes `next`, records
    /// movers (a triangle can gain several moved corners, so scoring waits
    /// for the post-sweep cache update).
    fn sweep_jacobi_plain(&self, prev: &[Point2], next: &mut [Point2], moved: &mut Vec<u32>) {
        for &v in &self.visit {
            let ns = self.adj.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = prev[v as usize];
            let Some(candidate) = candidate_for(self.params.weighting, pv, ns, prev) else {
                continue;
            };
            next[v as usize] = candidate;
            moved.push(v);
        }
    }

    /// Smart double-buffered sweep: the cache still reflects `prev` (it is
    /// only updated between sweeps), so "before" lookups are the previous
    /// sweep's values — exactly the reference path's semantics.
    fn sweep_jacobi_smart(
        &self,
        prev: &[Point2],
        next: &mut [Point2],
        cache: &QualityCache,
        moved: &mut Vec<u32>,
        scratch: &mut SmartScratch,
    ) {
        let metric = self.params.metric;
        let weighting = self.params.weighting;
        let triangles: &[[u32; 3]] = &self.triangles;
        let star = self.star.as_deref();
        let SmartScratch { ring_stack, ring_spill, score_stack, score_spill } = scratch;
        for &v in &self.visit {
            let ns = self.adj.neighbors(v);
            if ns.is_empty() {
                continue;
            }
            let pv = prev[v as usize];
            let on_stack = ns.len() <= STACK_STAR;
            let ring: &[Point2] = if on_stack {
                for (slot, &w) in ring_stack.iter_mut().zip(ns) {
                    *slot = prev[w as usize];
                }
                &ring_stack[..ns.len()]
            } else {
                ring_spill.clear();
                ring_spill.extend(ns.iter().map(|&w| prev[w as usize]));
                ring_spill
            };
            let Some(candidate) = candidate_from_ring(weighting, pv, ring) else {
                continue;
            };

            let ts = self.adj.triangles_of(v);
            if ts.is_empty() {
                next[v as usize] = candidate;
                continue;
            }

            // scores are provisional (a triangle can gain several moved
            // corners this sweep — the post-sweep update re-scores), so
            // the scratch output is discarded after the commit test
            let out: &mut [TriScore] = if ts.len() <= STACK_STAR {
                &mut score_stack[..ts.len()]
            } else {
                score_spill.clear();
                score_spill.resize(ts.len(), (0.0, false));
                score_spill
            };
            let base = self.adj.triangles_offset(v);
            let StarEval { after_sum, before_sum, after_all_pos } = if on_stack {
                let arr: &[Point2; STACK_STAR] = ring_stack;
                score_candidate_star(
                    metric,
                    cache,
                    star,
                    base,
                    ts,
                    triangles,
                    prev,
                    |c| arr[(c as usize) & (STACK_STAR - 1)],
                    v,
                    candidate,
                    out,
                )
            } else {
                let rs: &[Point2] = ring_spill;
                score_candidate_star(
                    metric,
                    cache,
                    star,
                    base,
                    ts,
                    triangles,
                    prev,
                    |c| rs[c as usize],
                    v,
                    candidate,
                    out,
                )
            };

            let len = ts.len() as f64;
            let quality_ok = after_sum >= before_sum || after_sum / len >= before_sum / len;
            let commit =
                quality_ok && (after_all_pos || ts.iter().any(|&t| !cache.tri_is_positive(t)));
            if commit {
                next[v as usize] = candidate;
                moved.push(v);
            }
        }
    }
}
