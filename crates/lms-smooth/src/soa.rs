//! Structure-of-arrays coordinate and score storage for the sweep hot
//! path.
//!
//! Every engine from [`crate::kernel::SerialKernel`] to the distributed
//! rank workers ultimately spends its time in the same loop: gather a
//! vertex ring, score the incident elements, decide a commit. The
//! array-of-points layout those loops historically ran on interleaves
//! x/y(/z) in memory, so the quality metrics — pure per-axis arithmetic —
//! never see the contiguous per-axis streams an auto-vectorizer wants.
//! [`SoaCoords`] is the per-axis layout; [`SmoothDomain::score_batch`]
//! consumes it in fixed-width [`LANES`]-wide chunks where **every lane
//! executes the identical scalar operation sequence** on its own element.
//! Lanewise IEEE arithmetic has no cross-lane interaction, so the batched
//! results are bit-identical to the scalar path by construction — the
//! PR 1–8 bit-identity suites stay the gate, unmodified.
//!
//! Conversion to and from point slices happens only at transport
//! boundaries ([`SoaLike::gather_from`] / [`SoaLike::scatter_to`]): wire
//! frames, `load_global`, and the final scatter keep their existing
//! point-slice shapes, so `lms-dist` and the wire format are untouched.
//!
//! The module also hosts the scratch-reallocation counter backing the
//! sweep allocation audit: reusable hot-loop buffers route growth through
//! [`resize_tracked`], and tests pin that steady-state sweeps perform
//! zero reallocations.

use crate::domain::{DomainPoint, SmoothDomain};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed lane width of the batched scoring kernels: 4 × f64 (one AVX2
/// register, two NEON registers). The batch loops process
/// `chunks_exact(LANES)` with a scalar tail, so the width is a structural
/// constant, not a performance knob — results are lane-count-invariant.
pub const LANES: usize = 4;

/// Upper bound on coordinate dimension for stack staging buffers.
const MAX_DIM: usize = 8;

/// Process-global count of hot-loop scratch reallocations (see
/// [`scratch_grow_count`]).
static SCRATCH_GROWS: AtomicU64 = AtomicU64::new(0);

/// Number of times a reusable sweep scratch buffer had to reallocate
/// since process start. Warm sweeps are expected to add **zero**: every
/// per-vertex temporary lives in a kernel-owned buffer that only grows on
/// first use. The counter is the observable face of the scratch-reuse
/// audit — tests snapshot it around a warm sweep and assert no growth.
pub fn scratch_grow_count() -> u64 {
    SCRATCH_GROWS.load(Ordering::Relaxed)
}

/// Record one scratch reallocation (relaxed; growth is rare by design).
#[inline]
pub(crate) fn note_scratch_grow() {
    SCRATCH_GROWS.fetch_add(1, Ordering::Relaxed);
}

/// Grow `v` to `len` elements, counting a real reallocation in the
/// scratch audit. The capacity check happens *before* the resize so only
/// genuine growth is counted — shrinking or refilling is free.
#[inline]
pub(crate) fn resize_tracked<T: Clone + Default>(v: &mut Vec<T>, len: usize) {
    if len > v.capacity() {
        note_scratch_grow();
    }
    v.resize(len, T::default());
}

/// Per-axis (structure-of-arrays) coordinate storage: `D` parallel
/// `Vec<f64>` columns, slot-addressed exactly like the point vectors it
/// replaces inside `ResidentRank` and the partitioned sweep scratch.
///
/// Gather/scatter against `&[P]` preserve bit patterns verbatim (they
/// move `f64` components, never reinterpret them), so NaN payloads and
/// `-0.0` survive a round trip — pinned by the `soa` test suite.
#[derive(Debug, Clone)]
pub struct SoaCoords<const D: usize> {
    len: usize,
    axes: [Vec<f64>; D],
}

impl<const D: usize> SoaCoords<D> {
    /// An empty store.
    pub fn new() -> Self {
        SoaCoords { len: 0, axes: std::array::from_fn(|_| Vec::new()) }
    }

    /// A zero-filled store of `n` slots.
    pub fn with_len(n: usize) -> Self {
        let mut s = Self::new();
        s.resize(n);
        s
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to `n` slots (new slots zero-filled). Growth past capacity
    /// is counted in the scratch audit.
    pub fn resize(&mut self, n: usize) {
        for ax in &mut self.axes {
            if n > ax.capacity() {
                note_scratch_grow();
            }
            ax.resize(n, 0.0);
        }
        self.len = n;
    }

    /// The contiguous component column of axis `d` — what the lane
    /// kernels stream.
    #[inline]
    pub fn axis(&self, d: usize) -> &[f64] {
        &self.axes[d]
    }

    /// Mutable component column of axis `d`.
    #[inline]
    pub fn axis_mut(&mut self, d: usize) -> &mut [f64] {
        &mut self.axes[d]
    }

    /// Read slot `i` as a typed point (exact bit copy per component).
    #[inline]
    pub fn get<P: DomainPoint>(&self, i: usize) -> P {
        debug_assert_eq!(P::DIM, D);
        let mut comps = [0.0f64; MAX_DIM];
        for (slot, axis) in comps.iter_mut().zip(&self.axes) {
            *slot = axis[i];
        }
        P::from_components(&comps[..D])
    }

    /// Write slot `i` from a typed point (exact bit copy per component).
    #[inline]
    pub fn set<P: DomainPoint>(&mut self, i: usize, p: P) {
        debug_assert_eq!(P::DIM, D);
        for d in 0..D {
            self.axes[d][i] = p.component(d);
        }
    }
}

impl<const D: usize> Default for SoaCoords<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// The capability the generic engines need from a coordinate store: a
/// slot-addressed SoA convertible to/from point slices at the transport
/// boundary. [`SmoothDomain::Soa`] names the concrete store per domain
/// (a [`SoaCoords`] of the right dimension), keeping the engine bodies
/// free of const-generic dimension plumbing on stable Rust.
pub trait SoaLike<P: DomainPoint>: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// A zero-filled store of `n` slots.
    fn with_len(n: usize) -> Self;

    /// Number of slots.
    fn len(&self) -> usize;

    /// True when no slots are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resize to `n` slots (audited growth).
    fn resize(&mut self, n: usize);

    /// Read slot `i` as a typed point.
    fn get(&self, i: usize) -> P;

    /// Write slot `i` from a typed point.
    fn set(&mut self, i: usize, p: P);

    /// Replace the whole store with the components of `pts`
    /// (bit-preserving; resizes to `pts.len()`).
    fn gather_from(&mut self, pts: &[P]);

    /// Write the first `out.len()` slots back as points (bit-preserving).
    fn scatter_to(&self, out: &mut [P]);
}

impl<P: DomainPoint, const D: usize> SoaLike<P> for SoaCoords<D> {
    fn with_len(n: usize) -> Self {
        debug_assert_eq!(P::DIM, D);
        SoaCoords::with_len(n)
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    fn resize(&mut self, n: usize) {
        SoaCoords::resize(self, n);
    }

    #[inline]
    fn get(&self, i: usize) -> P {
        SoaCoords::get(self, i)
    }

    #[inline]
    fn set(&mut self, i: usize, p: P) {
        SoaCoords::set(self, i, p);
    }

    fn gather_from(&mut self, pts: &[P]) {
        SoaCoords::resize(self, pts.len());
        for (i, &p) in pts.iter().enumerate() {
            SoaCoords::set(self, i, p);
        }
    }

    fn scatter_to(&self, out: &mut [P]) {
        debug_assert!(out.len() <= self.len);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = SoaCoords::get(self, i);
        }
    }
}

/// Structure-of-arrays element scores: the `(quality, positively
/// oriented)` pairs of the sweep caches split into a contiguous `f64`
/// column (what the quality sums stream) and a `bool` column.
#[derive(Debug, Clone, Default)]
pub struct SoaScores {
    q: Vec<f64>,
    pos: Vec<bool>,
}

impl SoaScores {
    /// An empty table.
    pub fn new() -> Self {
        SoaScores::default()
    }

    /// A table of `n` slots, zero-quality / non-oriented.
    pub fn with_len(n: usize) -> Self {
        let mut s = Self::new();
        s.resize(n);
        s
    }

    /// Number of scored slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when no slots are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Resize to `n` slots (audited growth).
    pub fn resize(&mut self, n: usize) {
        if n > self.q.capacity() {
            note_scratch_grow();
        }
        self.q.resize(n, 0.0);
        if n > self.pos.capacity() {
            note_scratch_grow();
        }
        self.pos.resize(n, false);
    }

    /// Quality of slot `i`.
    #[inline]
    pub fn q(&self, i: usize) -> f64 {
        self.q[i]
    }

    /// Orientation flag of slot `i`.
    #[inline]
    pub fn pos(&self, i: usize) -> bool {
        self.pos[i]
    }

    /// Slot `i` as the classic `(quality, oriented)` pair.
    #[inline]
    pub fn get(&self, i: usize) -> (f64, bool) {
        (self.q[i], self.pos[i])
    }

    /// Overwrite slot `i`.
    #[inline]
    pub fn set(&mut self, i: usize, s: (f64, bool)) {
        self.q[i] = s.0;
        self.pos[i] = s.1;
    }

    /// Replace the whole table from a pair slice (transport boundary).
    pub fn gather_from(&mut self, scores: &[(f64, bool)]) {
        self.resize(scores.len());
        for (i, &s) in scores.iter().enumerate() {
            self.q[i] = s.0;
            self.pos[i] = s.1;
        }
    }

    /// The contiguous quality column.
    #[inline]
    pub fn qualities(&self) -> &[f64] {
        &self.q
    }
}

/// Lanewise correctly-rounded `sqrt(num[l]) / sqrt(den[l])` over one
/// [`LANES`]-wide block — the expensive phase of the edge-length-ratio
/// metric, spelled out in explicit SIMD on x86-64.
///
/// IEEE 754 requires square root and division to be **correctly
/// rounded**, and the packed instructions (`sqrtpd`/`divpd`,
/// `vsqrtpd`/`vdivpd`) implement exactly the same rounding as their
/// scalar forms — so this helper is bit-identical to the portable
/// `num.sqrt() / den.sqrt()` loop on every input, NaN and subnormal
/// included. It exists because LLVM's cost model declines to
/// auto-vectorize `sqrt` on the SSE2 baseline (the divisions vectorize,
/// the square roots stay `sqrtsd` — measured at scalar parity), so the
/// packed form has to be requested by hand. AVX (4 lanes per op) is
/// picked by cached runtime detection; the SSE2 pair-of-halves form is
/// the x86-64 baseline; every other architecture keeps the portable
/// loop, which is still the identical value sequence.
#[inline(always)]
pub(crate) fn sqrt_div_lanes(num: &[f64; LANES], den: &[f64; LANES], out: &mut [f64; LANES]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { sqrt_div_lanes_avx(num, den, out) }
        } else {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            unsafe { sqrt_div_lanes_sse2(num, den, out) }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    for l in 0..LANES {
        out[l] = num[l].sqrt() / den[l].sqrt();
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn sqrt_div_lanes_avx(num: &[f64; LANES], den: &[f64; LANES], out: &mut [f64; LANES]) {
    use core::arch::x86_64::*;
    const { assert!(LANES == 4, "one 256-bit register holds exactly one block") };
    let n = _mm256_loadu_pd(num.as_ptr());
    let d = _mm256_loadu_pd(den.as_ptr());
    _mm256_storeu_pd(out.as_mut_ptr(), _mm256_div_pd(_mm256_sqrt_pd(n), _mm256_sqrt_pd(d)));
}

#[cfg(target_arch = "x86_64")]
unsafe fn sqrt_div_lanes_sse2(num: &[f64; LANES], den: &[f64; LANES], out: &mut [f64; LANES]) {
    use core::arch::x86_64::*;
    const { assert!(LANES.is_multiple_of(2), "blocks split into 128-bit halves") };
    for h in (0..LANES).step_by(2) {
        let n = _mm_loadu_pd(num.as_ptr().add(h));
        let d = _mm_loadu_pd(den.as_ptr().add(h));
        _mm_storeu_pd(out.as_mut_ptr().add(h), _mm_div_pd(_mm_sqrt_pd(n), _mm_sqrt_pd(d)));
    }
}

/// Score every element of `elems` on point-slice `coords` through the
/// batched SoA kernel: gather each fixed-size chunk's corner coordinates
/// into a reusable SoA scratch, run [`SmoothDomain::score_batch`], and
/// push the `(quality, oriented)` pairs in element order. Bit-identical
/// to the per-element scalar loop it replaces (same per-element
/// arithmetic, same output order) — this is the batched form behind the
/// quality-cache build/rescore and the resident initial scoring pass.
pub fn score_elements_batched<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    coords: &[D::Point],
    elems: &[[u32; C]],
    out: &mut Vec<(f64, bool)>,
) {
    const CHUNK: usize = 256;
    out.clear();
    out.reserve(elems.len());
    let mut scratch = D::Soa::with_len(CHUNK * C);
    let mut rows: Vec<[u32; C]> = Vec::with_capacity(CHUNK);
    let mut scored = [(0.0f64, false); CHUNK];
    for chunk in elems.chunks(CHUNK) {
        rows.clear();
        for (i, e) in chunk.iter().enumerate() {
            for (k, &c) in e.iter().enumerate() {
                scratch.set(i * C + k, coords[c as usize]);
            }
            rows.push(std::array::from_fn(|k| (i * C + k) as u32));
        }
        dom.score_batch(&scratch, &rows, &mut scored[..chunk.len()]);
        out.extend_from_slice(&scored[..chunk.len()]);
    }
}
