//! # lms-smooth — Laplacian Mesh Smoothing engines
//!
//! Implements Algorithm 1 of the paper and its variants:
//!
//! * [`SmoothEngine::smooth`] — serial sweeps, Gauss–Seidel (in place,
//!   Mesquite-like) or Jacobi (double-buffered), with the paper's
//!   storage-order or §4.2 greedy quality-driven visit policy;
//! * [`SmoothEngine::smooth_parallel`] — rayon static-chunk Jacobi,
//!   deterministic for any thread count;
//! * [`SmoothEngine::smooth_parallel_chaotic`] — in-place relaxed-atomic
//!   Gauss–Seidel, the closest analogue of the paper's OpenMP loop;
//! * [`SmoothEngine::smooth_parallel_colored`] — graph-colored in-place
//!   Gauss–Seidel: race-free **and** bitwise-deterministic for any thread
//!   count, driven by the same incremental quality cache as the serial
//!   hot path;
//! * [`PartitionedEngine::smooth`] — domain-decomposed in-place
//!   Gauss–Seidel over an `lms-part` decomposition: part interiors sweep
//!   as contiguous cache-resident blocks fully in parallel, interface
//!   vertices run through the colored machinery; bitwise-deterministic
//!   and exactly serial Gauss–Seidel under the part-major visit order;
//! * [`SmoothEngine::smooth_traced`] — any serial configuration while
//!   streaming every vertex-record access to an [`AccessSink`], feeding the
//!   reuse-distance and cache analyses of `lms-cache`.
//!
//! Every engine above runs on the **dimension-generic smoothing domain**
//! ([`domain::SmoothDomain`], const-generic in the element corner count,
//! with the [`dcache::DomainQualityCache`] carrying the incremental
//! quality protocol): the 2D `TriMesh` instantiations live here, and
//! `lms-mesh3d` instantiates the *same* sweep bodies for tetrahedra —
//! `SmoothEngine3`, `PartitionedEngine3` and `ResidentEngine3` are thin
//! wrappers, not copies.
//!
//! ```
//! use lms_smooth::SmoothParams;
//! let mut mesh = lms_mesh::generators::perturbed_grid(20, 20, 0.35, 1);
//! let report = SmoothParams::paper().smooth(&mut mesh);
//! assert!(report.final_quality > report.initial_quality);
//! ```

pub mod colored;
pub mod config;
pub mod dcache;
pub mod domain;
pub mod engine;
pub mod greedy;
pub mod kernel;
pub mod parallel;
pub mod partitioned;
pub mod pool;
pub mod rebalance;
pub mod resident;
pub mod soa;
pub mod stats;
pub mod trace;
pub mod transport;
pub mod weighting;

pub use colored::smooth_parallel_colored;
pub use config::{IterationPolicy, SmoothParams, UpdateScheme, Weighting};
pub use dcache::DomainQualityCache;
pub use domain::{
    domain_quality, domain_quality_scored, smooth_reference_on, weighted_candidate_on,
    DomainConfig, DomainPoint, SmoothDomain, TriDomain,
};
pub use engine::SmoothEngine;
pub use greedy::greedy_visit_order;
pub use parallel::{parallel_mesh_quality, smooth_parallel};
pub use partitioned::{smooth_partitioned, PartitionedEngine};
pub use pool::PoolCache;
pub use rebalance::{sweep_spread, AutoRebalanceEngine, RebalancePolicy};
pub use resident::{smooth_resident, PairBatch, ResidentEngine, ResidentRank};
pub use soa::{score_elements_batched, scratch_grow_count, SoaCoords, SoaLike, SoaScores, LANES};
pub use stats::{ExchangeVolume, IterationStats, SmoothReport};
pub use trace::{AccessSink, CountSink, NullSink, VecSink};
pub use transport::{
    drive_resident, drive_resident_ft, drive_resident_ft_with, drive_resident_with, FtPolicy,
    FtResidentTransport, FtStats, InProcessTransport, ResidentTransport,
};
pub use weighting::weighted_candidate;
