//! Reports produced by smoothing runs.

/// Quality bookkeeping for one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Sweep number, starting at 1.
    pub iter: usize,
    /// Global quality after the sweep.
    pub quality: f64,
    /// Improvement over the previous global quality (may be negative).
    pub improvement: f64,
}

/// Outcome of a full smoothing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothReport {
    /// Global quality before the first sweep.
    pub initial_quality: f64,
    /// Global quality after the last sweep.
    pub final_quality: f64,
    /// Per-sweep statistics, in order.
    pub iterations: Vec<IterationStats>,
    /// True when the run stopped because improvement fell below `tol`
    /// (false when it hit `max_iters`).
    pub converged: bool,
}

impl SmoothReport {
    /// Number of sweeps executed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Total quality gained.
    pub fn total_improvement(&self) -> f64 {
        self.final_quality - self.initial_quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let r = SmoothReport {
            initial_quality: 0.5,
            final_quality: 0.8,
            iterations: vec![
                IterationStats { iter: 1, quality: 0.7, improvement: 0.2 },
                IterationStats { iter: 2, quality: 0.8, improvement: 0.1 },
            ],
            converged: true,
        };
        assert_eq!(r.num_iterations(), 2);
        assert!((r.total_improvement() - 0.3).abs() < 1e-15);
    }
}
