//! Reports produced by smoothing runs.

use lms_trace::PhaseBreakdown;

/// Quality bookkeeping for one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Sweep number, starting at 1.
    pub iter: usize,
    /// Global quality after the sweep.
    pub quality: f64,
    /// Improvement over the previous global quality (may be negative).
    pub improvement: f64,
}

/// Communication accounting of a resident halo-exchange run
/// ([`crate::ResidentEngine`]): how often whole blocks moved versus how
/// many individual halo coordinates did. The tentpole invariant — between
/// the first gather and the final scatter the engine exchanges **only**
/// halo deltas — shows up here as `full_gathers == 1 && full_scatters == 1`
/// for any iteration count, which the property tests assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeVolume {
    /// Whole-block gathers from the global mesh (must be 1: the initial
    /// residency load).
    pub full_gathers: usize,
    /// Whole-mesh write-backs (must be 1: the final disjoint scatter).
    pub full_scatters: usize,
    /// Halo-delta exchange rounds executed (one per interface color step
    /// per iteration).
    pub exchange_rounds: usize,
    /// Individual `(vertex, receiver)` coordinate deliveries routed across
    /// all rounds — the engine's entire inter-part communication volume.
    pub halo_entries_sent: usize,
    /// Coalesced (source part → destination part) messages the deliveries
    /// travelled in: all of a pair's moved deltas within one color step
    /// share one message, so this is what a per-pair-frame transport
    /// actually sends — bounded by `rounds × directed neighbour pairs`,
    /// not by `halo_entries_sent`.
    pub halo_messages_sent: usize,
    /// Wire bytes of those messages under the `lms_part::wire` halo-delta
    /// frame encoding. The in-process transport charges the same formula
    /// (`halo_frame_wire_len`) without serialising, so in-process and
    /// multi-process runs of one workload report identical byte counts.
    pub halo_bytes_sent: usize,
}

/// Outcome of a full smoothing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothReport {
    /// Global quality before the first sweep.
    pub initial_quality: f64,
    /// Global quality after the last sweep.
    pub final_quality: f64,
    /// Per-sweep statistics, in order.
    pub iterations: Vec<IterationStats>,
    /// True when the run stopped because improvement fell below `tol`
    /// (false when it hit `max_iters`).
    pub converged: bool,
    /// Halo-exchange accounting — `Some` only for engines that run the
    /// resident exchange protocol.
    pub exchange: Option<ExchangeVolume>,
    /// Per-phase / per-part timing summary — `Some` only after a
    /// profiled run (`smooth_profiled`); always `None` otherwise, so
    /// report-equality gates between unprofiled runs are unaffected.
    /// Timings are observational: two runs that differ only in this
    /// field computed bit-identical coordinates.
    pub phase_breakdown: Option<PhaseBreakdown>,
}

impl SmoothReport {
    /// A fresh report before the first sweep: final quality mirrors the
    /// initial one until sweeps land, no iterations, not converged.
    pub fn starting(initial_quality: f64) -> Self {
        SmoothReport {
            initial_quality,
            final_quality: initial_quality,
            iterations: Vec::new(),
            converged: false,
            exchange: None,
            phase_breakdown: None,
        }
    }

    /// Number of sweeps executed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Total quality gained.
    pub fn total_improvement(&self) -> f64 {
        self.final_quality - self.initial_quality
    }

    /// Moved interface vertices per second of accumulated rank sweep
    /// time, from the profiled phase breakdown. `None` on unprofiled
    /// runs or when no sweep time was accumulated. The counters are
    /// observational — throughput never affects coordinates.
    pub fn moved_vertices_per_sec(&self) -> Option<f64> {
        let b = self.phase_breakdown.as_ref()?;
        let ns: u64 = b.transport.rank_phases.iter().map(|r| r.sweep_ns()).sum();
        let moved: u64 = b.transport.rank_phases.iter().map(|r| r.moved).sum();
        (ns > 0).then(|| moved as f64 * 1e9 / ns as f64)
    }

    /// Elements scored per second of accumulated rank sweep time — the
    /// raw-speed figure of the lane-batched scoring kernel. `None` on
    /// unprofiled runs, when no sweep time was accumulated, or when the
    /// transport could not observe the scored-elements counter (remote
    /// ranks do not ship it over the wire).
    pub fn scored_elements_per_sec(&self) -> Option<f64> {
        let b = self.phase_breakdown.as_ref()?;
        let ns: u64 = b.transport.rank_phases.iter().map(|r| r.sweep_ns()).sum();
        (ns > 0 && b.transport.scored_elements > 0)
            .then(|| b.transport.scored_elements as f64 * 1e9 / ns as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let mut r = SmoothReport::starting(0.5);
        r.final_quality = 0.8;
        r.iterations = vec![
            IterationStats { iter: 1, quality: 0.7, improvement: 0.2 },
            IterationStats { iter: 2, quality: 0.8, improvement: 0.1 },
        ];
        r.converged = true;
        assert_eq!(r.num_iterations(), 2);
        assert!((r.total_improvement() - 0.3).abs() < 1e-15);
        assert_eq!(r.exchange, None);
    }

    #[test]
    fn throughput_counters_from_breakdown() {
        let mut r = SmoothReport::starting(0.5);
        assert_eq!(r.moved_vertices_per_sec(), None);
        assert_eq!(r.scored_elements_per_sec(), None);
        let mut b = PhaseBreakdown::default();
        b.transport.rank_phases = vec![lms_trace::RankPhaseNanos {
            interior_ns: 500_000_000,
            color_ns: 500_000_000,
            finish_ns: 0,
            moved: 2_000,
        }];
        b.transport.scored_elements = 4_000;
        r.phase_breakdown = Some(b);
        assert_eq!(r.moved_vertices_per_sec(), Some(2_000.0));
        assert_eq!(r.scored_elements_per_sec(), Some(4_000.0));
    }

    #[test]
    fn starting_report_is_flat() {
        let r = SmoothReport::starting(0.42);
        assert_eq!(r.initial_quality, 0.42);
        assert_eq!(r.final_quality, 0.42);
        assert_eq!(r.num_iterations(), 0);
        assert!(!r.converged);
        assert_eq!(r.total_improvement(), 0.0);
    }
}
