//! The sweep scratch-reuse audit: hot-loop buffers grow on first use and
//! never again, so the process-global [`lms_smooth::scratch_grow_count`]
//! must not scale with the number of sweeps. We measure the growth of a
//! short run and a much longer run over identical engine configurations —
//! the deltas must be equal: every reallocation happens during setup /
//! first-sweep warm-up, zero in steady state.
//!
//! This lives in its own integration-test file on purpose: the counter is
//! process-global, so it must not race with unrelated tests. Keep the
//! file to this single test function.

use lms_part::PartitionMethod;
use lms_smooth::{scratch_grow_count, ResidentEngine, SmoothEngine, SmoothParams};

fn growth_of(run: impl FnOnce()) -> u64 {
    let before = scratch_grow_count();
    run();
    scratch_grow_count() - before
}

#[test]
fn steady_state_sweeps_do_not_reallocate() {
    let mesh = lms_mesh::generators::perturbed_grid(40, 40, 0.35, 42);
    let base = SmoothParams::paper().with_smart(true).with_tol(-1.0);

    // serial engine: growth of a 12-sweep run == growth of a 3-sweep run
    let short = growth_of(|| {
        SmoothEngine::new(&mesh, base.clone().with_max_iters(3)).smooth(&mut mesh.clone());
    });
    let long = growth_of(|| {
        SmoothEngine::new(&mesh, base.clone().with_max_iters(12)).smooth(&mut mesh.clone());
    });
    assert_eq!(
        short, long,
        "serial kernel scratch grew with sweep count: {short} grows in 3 sweeps \
         vs {long} in 12 — steady-state sweeps must not reallocate"
    );

    // resident engine (the partitioned sweep scratch): same invariant,
    // smart and plain
    for smart in [true, false] {
        let params = base.clone().with_smart(smart);
        let short = growth_of(|| {
            let e = ResidentEngine::by_method(
                &mesh,
                params.clone().with_max_iters(3),
                4,
                PartitionMethod::Rcb,
            );
            e.smooth(&mut mesh.clone(), 2);
        });
        let long = growth_of(|| {
            let e = ResidentEngine::by_method(
                &mesh,
                params.clone().with_max_iters(12),
                4,
                PartitionMethod::Rcb,
            );
            e.smooth(&mut mesh.clone(), 2);
        });
        assert_eq!(
            short, long,
            "resident sweep scratch grew with sweep count (smart={smart}): \
             {short} grows in 3 sweeps vs {long} in 12"
        );
    }

    // repeat runs on one engine: no growth at all after the first run
    let engine =
        ResidentEngine::by_method(&mesh, base.clone().with_max_iters(3), 4, PartitionMethod::Rcb);
    engine.smooth(&mut mesh.clone(), 2); // warm-up pays all growth
    let first = growth_of(|| {
        engine.smooth(&mut mesh.clone(), 2);
    });
    let second = growth_of(|| {
        engine.smooth(&mut mesh.clone(), 2);
    });
    assert_eq!(
        first, second,
        "repeat smooths on a warmed engine must reallocate identically \
         (expected a fixed per-run setup cost, got {first} then {second})"
    );
}
