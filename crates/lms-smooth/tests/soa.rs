//! The SoA/lane-batched scoring acceptance suite — the bit-identity gate
//! of the structure-of-arrays refactor:
//!
//! * `SoaCoords` gather/scatter round-trips preserve every `f64` bit
//!   pattern, NaN payloads and `-0.0` included;
//! * `score_batch` equals the per-element `score` bit for bit for every
//!   2D `QualityMetric` (each lane runs the identical scalar IEEE op
//!   sequence, so this is equality of `to_bits`, not approximate);
//! * full resident runs with the default lane-batched kernel are
//!   bit-identical — coordinates AND reports — to the forced pre-SoA
//!   scalar path (`with_scalar_scoring(true)`) across threads {1, 2, 4}
//!   × parts {2, 4, 8} × smart/plain, and so are partitioned and serial
//!   engine runs.

use lms_mesh::quality::QualityMetric;
use lms_mesh::{generators, Adjacency, Boundary, TriMesh};
use lms_part::PartitionMethod;
use lms_smooth::domain::{SmoothDomain, TriDomain};
use lms_smooth::{
    PartitionedEngine, ResidentEngine, SmoothEngine, SmoothParams, SoaCoords, SoaLike,
};
use proptest::prelude::*;

const METRICS: [QualityMetric; 3] =
    [QualityMetric::EdgeLengthRatio, QualityMetric::MinAngle, QualityMetric::RadiusRatio];

#[test]
fn soa_roundtrip_preserves_every_bit_pattern() {
    // exotic f64s: NaN with payload, -0.0, infinities, subnormals
    let specials = [
        f64::from_bits(0x7ff8_0000_dead_beef), // NaN, payload bits set
        f64::from_bits(0xfff0_0000_0000_0001), // signalling-ish negative NaN
        -0.0,
        0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE / 2.0, // subnormal
        1.5e308,
        -2.2250738585072014e-308,
    ];
    let points: Vec<lms_mesh::Point2> = specials
        .iter()
        .enumerate()
        .map(|(i, &x)| lms_mesh::Point2 { x, y: specials[(i + 3) % specials.len()] })
        .collect();
    let mut soa = SoaCoords::<2>::with_len(points.len());
    soa.gather_from(&points);
    let mut back = vec![lms_mesh::Point2 { x: 7.0, y: 7.0 }; points.len()];
    soa.scatter_to(&mut back);
    for (a, b) in points.iter().zip(&back) {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
    // per-slot get/set preserves bits too
    for (i, p) in points.iter().enumerate() {
        let q: lms_mesh::Point2 = soa.get(i);
        assert_eq!(p.x.to_bits(), q.x.to_bits());
        assert_eq!(p.y.to_bits(), q.y.to_bits());
    }
}

fn batch_equals_scalar_on(mesh: &TriMesh, metric: QualityMetric) {
    let adj = Adjacency::build(mesh);
    let boundary = Boundary::detect(mesh);
    let dom = TriDomain::new(&adj, &boundary, mesh.triangles(), metric);
    let mut soa = SoaCoords::<2>::with_len(mesh.num_vertices());
    soa.gather_from(mesh.coords());
    let rows: Vec<[u32; 3]> = dom.elements().to_vec();
    let mut out = vec![(0.0, false); rows.len()];
    dom.score_batch(&soa, &rows, &mut out);
    for (i, &row) in rows.iter().enumerate() {
        let (q, pos) = dom.score(mesh.coords(), row);
        assert_eq!(q.to_bits(), out[i].0.to_bits(), "metric {metric:?}, element {i}");
        assert_eq!(pos, out[i].1, "metric {metric:?}, element {i}");
        // the per-element SoA entry point agrees as well
        let (qs, ps) = dom.score_soa(&soa, row);
        assert_eq!(q.to_bits(), qs.to_bits());
        assert_eq!(pos, ps);
    }
}

#[test]
fn score_batch_matches_scalar_for_every_metric() {
    // ragged sizes so the 4-wide lane chunks leave every tail length
    for (nx, ny, seed) in [(9, 7, 1), (12, 12, 5), (10, 13, 9)] {
        let mesh = generators::perturbed_grid(nx, ny, 0.4, seed);
        for metric in METRICS {
            batch_equals_scalar_on(&mesh, metric);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Resident runs: lane-batched scoring == forced scalar scoring, bit
    /// for bit (coords and reports), across the acceptance grid.
    #[test]
    fn resident_batched_equals_scalar_oracle(
        nx in 6usize..11, ny in 6usize..11, seed in 0u64..1000,
        smart in any::<bool>(), k_ix in 0usize..3, threads_ix in 0usize..3,
    ) {
        let parts = [2usize, 4, 8][k_ix];
        let threads = [1usize, 2, 4][threads_ix];
        let mesh = generators::perturbed_grid(nx, ny, 0.35, seed);
        let params = SmoothParams::paper().with_smart(smart).with_max_iters(3).with_tol(-1.0);
        let batched = ResidentEngine::by_method(&mesh, params.clone(), parts, PartitionMethod::Rcb);
        let scalar = ResidentEngine::by_method(
            &mesh, params.with_scalar_scoring(true), parts, PartitionMethod::Rcb,
        );
        let mut a = mesh.clone();
        let ra = batched.smooth(&mut a, threads);
        let mut b = mesh.clone();
        let rb = scalar.smooth(&mut b, threads);
        prop_assert_eq!(a.coords(), b.coords());
        prop_assert_eq!(ra, rb);
    }

    /// Partitioned and serial engines under the same toggle: the batched
    /// kernel must not change a single bit anywhere in the engine ladder.
    #[test]
    fn partitioned_and_serial_batched_equal_scalar(
        nx in 6usize..11, ny in 6usize..11, seed in 0u64..1000, smart in any::<bool>(),
    ) {
        let mesh = generators::perturbed_grid(nx, ny, 0.35, seed);
        let params = SmoothParams::paper().with_smart(smart).with_max_iters(3).with_tol(-1.0);

        let mut a = mesh.clone();
        let ra = SmoothEngine::new(&mesh, params.clone()).smooth(&mut a);
        let mut b = mesh.clone();
        let rb = SmoothEngine::new(&mesh, params.clone().with_scalar_scoring(true)).smooth(&mut b);
        prop_assert_eq!(a.coords(), b.coords());
        prop_assert_eq!(ra, rb);

        let mut c = mesh.clone();
        let rc = PartitionedEngine::by_method(&mesh, params.clone(), 4, PartitionMethod::Rcb)
            .smooth(&mut c, 2);
        let mut d = mesh.clone();
        let rd = PartitionedEngine::by_method(
            &mesh, params.with_scalar_scoring(true), 4, PartitionMethod::Rcb,
        )
        .smooth(&mut d, 2);
        prop_assert_eq!(c.coords(), d.coords());
        prop_assert_eq!(rc, rd);
    }
}
