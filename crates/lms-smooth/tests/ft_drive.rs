//! The fault-tolerant drive loop over the in-process transport must be
//! exactly the plain drive loop: same coordinates, same report, bit for
//! bit — the FT control flow (snapshots, checkpoint calls, the recovery
//! machinery) must be arithmetic-free on the failure-free path. This is
//! what makes `drive_resident_ft` safe to put under every distributed
//! run, and what makes the in-process transport a sound degradation
//! target when rank processes cannot be spawned.

use lms_part::PartitionMethod;
use lms_smooth::domain::DomainConfig;
use lms_smooth::{
    drive_resident, drive_resident_ft, FtPolicy, InProcessTransport, ResidentEngine, SmoothParams,
};

fn run_both(checkpoint_every: usize, max_iters: usize) {
    let mesh = lms_mesh::generators::perturbed_grid(16, 14, 0.35, 7);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(max_iters).with_tol(-1.0);
    let engine = ResidentEngine::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    let dom = engine.engine().domain();
    let cfg = DomainConfig::from(engine.engine().params());
    let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let num_colors = engine.interface_classes().len();

    let mut plain_mesh = mesh.clone();
    let mut transport =
        InProcessTransport::new(&dom, &cfg, engine.blocks(), engine.exchange_schedule(), &pool);
    let plain_report = drive_resident(
        &dom,
        &cfg,
        engine.elem_weights(),
        num_colors,
        &mut transport,
        plain_mesh.coords_mut(),
    );

    let mut ft_mesh = mesh.clone();
    let mut transport =
        InProcessTransport::new(&dom, &cfg, engine.blocks(), engine.exchange_schedule(), &pool);
    let policy = FtPolicy { checkpoint_every, ..FtPolicy::default() };
    let (ft_report, stats) = drive_resident_ft(
        &dom,
        &cfg,
        engine.elem_weights(),
        num_colors,
        &mut transport,
        ft_mesh.coords_mut(),
        &policy,
    )
    .expect("the in-process transport cannot fail");

    assert_eq!(ft_mesh.coords(), plain_mesh.coords(), "checkpoint_every={checkpoint_every}");
    assert_eq!(ft_report, plain_report, "checkpoint_every={checkpoint_every}");
    assert!(stats.recoveries.is_empty());
    // one checkpoint per boundary the cadence selects, plus the final
    // boundary (max_iters is a multiple-free count so the last iteration
    // checkpoints exactly once)
    let expected = (1..=max_iters).filter(|i| *i == max_iters || i % checkpoint_every == 0).count();
    assert_eq!(stats.checkpoints, expected, "checkpoint_every={checkpoint_every}");
}

#[test]
fn ft_drive_is_bit_identical_to_plain_drive() {
    run_both(1, 4);
}

#[test]
fn checkpoint_cadence_does_not_change_the_answer() {
    run_both(2, 5);
    run_both(3, 4);
}
