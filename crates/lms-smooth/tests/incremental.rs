//! Property tests for the incremental-quality hot path: bitwise
//! equivalence with the full-recompute reference engine, and
//! `QualityCache` coherence across randomized smoothing runs.

use lms_mesh::quality::mesh_quality;
use lms_mesh::{Adjacency, QualityCache, TriMesh};
use lms_smooth::{SmoothEngine, SmoothParams, UpdateScheme};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = TriMesh> {
    (4usize..14, 4usize..14, 0u64..1000, 0..40u32).prop_map(|(nx, ny, seed, jit)| {
        lms_mesh::generators::perturbed_grid(nx, ny, jit as f64 / 100.0, seed)
    })
}

fn arb_params() -> impl Strategy<Value = SmoothParams> {
    (any::<bool>(), any::<bool>(), 1usize..8).prop_map(|(smart, jacobi, iters)| {
        let update = if jacobi { UpdateScheme::Jacobi } else { UpdateScheme::GaussSeidel };
        // tol disabled: the incremental path's convergence test reads the
        // compensated running sum, which can in principle differ from the
        // reference's exact per-iteration quality by ulps right at the
        // tolerance boundary and stop one sweep apart. With a fixed sweep
        // count the two paths must agree bit for bit.
        SmoothParams::paper()
            .with_smart(smart)
            .with_update(update)
            .with_max_iters(iters)
            .with_tol(-1.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental path produces bit-identical coordinates to the
    /// full-recompute reference for every update scheme × smart flag, and
    /// its reported final quality matches a from-scratch recompute
    /// bit for bit.
    #[test]
    fn incremental_matches_full_recompute(mesh in arb_mesh(), params in arb_params()) {
        let engine = SmoothEngine::new(&mesh, params);

        let mut fast = mesh.clone();
        let fast_report = engine.smooth(&mut fast);

        let mut reference = mesh.clone();
        let ref_report = engine.smooth_full_recompute(&mut reference);

        prop_assert_eq!(fast.coords(), reference.coords());
        prop_assert_eq!(fast_report.num_iterations(), ref_report.num_iterations());

        let adj = Adjacency::build(&fast);
        let fresh = mesh_quality(&fast, &adj, engine.params().metric);
        prop_assert_eq!(
            fast_report.final_quality.to_bits(), fresh.to_bits(),
            "final_quality must equal the from-scratch recompute bitwise"
        );
    }

    /// QualityCache stays bit-identical to a from-scratch recompute across
    /// a randomized sequence of vertex moves with mixed immediate /
    /// dirty-flush updates.
    #[test]
    fn quality_cache_coherent_under_random_moves(
        mesh in arb_mesh(),
        moves in proptest::collection::vec((0u64..1 << 32, -20i64..21, -20i64..21, any::<bool>()), 1..60),
    ) {
        let mut mesh = mesh;
        let adj = Adjacency::build(&mesh);
        let metric = lms_mesh::quality::QualityMetric::EdgeLengthRatio;
        let mut cache = QualityCache::build(&mesh, &adj, metric);
        let triangles: Vec<[u32; 3]> = mesh.triangles().to_vec();
        let n = mesh.num_vertices();

        for (pick, dx, dy, immediate) in moves {
            let v = (pick % n as u64) as u32;
            let p = mesh.coords()[v as usize];
            mesh.coords_mut()[v as usize] =
                lms_mesh::Point2::new(p.x + dx as f64 / 97.0, p.y + dy as f64 / 89.0);
            if immediate {
                for &t in adj.triangles_of(v) {
                    let (q, pos) = QualityCache::score(metric, mesh.coords(), triangles[t as usize]);
                    cache.set_tri(t, q, pos);
                }
            } else {
                cache.mark_incident_dirty(v, &adj);
            }
        }
        if cache.has_dirty() {
            cache.flush_dirty(mesh.coords(), &triangles);
        }

        let fresh = mesh_quality(&mesh, &adj, metric);
        prop_assert_eq!(
            cache.quality_exact(&adj).to_bits(), fresh.to_bits(),
            "exact cache quality diverged from scratch recompute"
        );
        prop_assert!(
            (cache.quality_running() - fresh).abs() < 1e-12,
            "running sum drifted: {} vs {}", cache.quality_running(), fresh
        );

        // per-triangle values are exactly the fresh scores
        for (t, tri) in triangles.iter().enumerate() {
            let (q, pos) = QualityCache::score(metric, mesh.coords(), *tri);
            prop_assert_eq!(cache.tri_quality(t as u32).to_bits(), q.to_bits());
            prop_assert_eq!(cache.tri_is_positive(t as u32), pos);
        }
    }

    /// Smart smoothing through the incremental path never regresses the
    /// reported quality (the guard property, now evaluated from the cache).
    /// Restricted to untangled inputs: the guard compares orientation-aware
    /// local means, while the global statistic is orientation-blind, so on
    /// folded meshes monotonicity is not guaranteed by either path.
    #[test]
    fn incremental_smart_is_monotone(
        (nx, ny, seed, jit) in (4usize..14, 4usize..14, 0u64..1000, 0..23u32),
    ) {
        let mesh = lms_mesh::generators::perturbed_grid(nx, ny, jit as f64 / 100.0, seed);
        prop_assume!(mesh.is_ccw());
        let params = SmoothParams::paper().with_smart(true).with_max_iters(12);
        let mut m = mesh;
        let report = params.smooth(&mut m);
        for w in report.iterations.windows(2) {
            prop_assert!(
                w[1].quality >= w[0].quality - 1e-12,
                "smart smoothing regressed: {:?}", report.iterations
            );
        }
    }
}
