//! Property tests for the colored deterministic parallel Gauss–Seidel
//! engine: bitwise determinism across thread counts, exact equivalence
//! with serial Gauss–Seidel under the class-major order, proper colorings
//! on the generator suite, and fixed-point agreement with storage-order
//! Gauss–Seidel.

use lms_mesh::{Adjacency, TriMesh};
use lms_order::coloring::greedy_coloring;
use lms_smooth::{SmoothEngine, SmoothParams};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = TriMesh> {
    (4usize..14, 4usize..14, 0u64..1000, 0..40u32).prop_map(|(nx, ny, seed, jit)| {
        lms_mesh::generators::perturbed_grid(nx, ny, jit as f64 / 100.0, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bitwise determinism: 1, 2 and 8 threads produce identical
    /// coordinates and identical reports, smart and plain alike.
    #[test]
    fn colored_is_bitwise_deterministic_across_threads(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..6,
    ) {
        let params = SmoothParams::paper().with_smart(smart).with_max_iters(iters);
        let engine = SmoothEngine::new(&mesh, params);
        let mut one = mesh.clone();
        let r1 = engine.smooth_parallel_colored(&mut one, 1);
        for threads in [2usize, 8] {
            let mut multi = mesh.clone();
            let rt = engine.smooth_parallel_colored(&mut multi, threads);
            prop_assert_eq!(one.coords(), multi.coords(), "threads={}", threads);
            prop_assert_eq!(&r1, &rt, "threads={}", threads);
        }
    }

    /// The colored parallel sweep is *exactly* serial Gauss–Seidel under
    /// the class-major visit order — coordinates match bit for bit.
    #[test]
    fn colored_equals_serial_class_major_order(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..6,
    ) {
        let params = SmoothParams::paper().with_smart(smart).with_max_iters(iters);
        let engine = SmoothEngine::new(&mesh, params);

        let mut par = mesh.clone();
        engine.smooth_parallel_colored(&mut par, 4);

        let order = engine.colored_visit_order();
        let serial_engine = engine.clone().with_visit_order(order);
        let mut ser = mesh.clone();
        serial_engine.smooth(&mut ser);

        prop_assert_eq!(par.coords(), ser.coords());
    }

    /// Greedy colorings of arbitrary perturbed grids are proper and use
    /// at most max_degree + 1 colors.
    #[test]
    fn colorings_are_proper(mesh in arb_mesh()) {
        let adj = Adjacency::build(&mesh);
        let coloring = greedy_coloring(&adj);
        prop_assert!(coloring.is_proper(&adj));
        prop_assert!(coloring.num_colors() as usize <= adj.max_degree() + 1);
    }
}

/// Colorings on the nine-mesh evaluation suite (scaled down) are proper.
#[test]
fn colorings_proper_on_generator_suite() {
    for spec in lms_mesh::suite::SUITE.iter() {
        let mesh = lms_mesh::suite::generate(spec, 0.01);
        let adj = Adjacency::build(&mesh);
        let coloring = greedy_coloring(&adj);
        assert!(coloring.is_proper(&adj), "{}: improper coloring", spec.name);
        assert!(
            coloring.num_colors() as usize <= adj.max_degree() + 1,
            "{}: {} colors for max degree {}",
            spec.name,
            coloring.num_colors(),
            adj.max_degree()
        );
    }
}

/// Plain uniform Gauss–Seidel has a unique fixed point (each interior
/// vertex at its neighbours' mean), so colored and storage-order sweeps
/// driven to tight convergence agree to 1e-12 in quality — across the
/// generator suite.
#[test]
fn colored_quality_matches_serial_gauss_seidel_at_convergence() {
    for spec in lms_mesh::suite::SUITE.iter().take(4) {
        let mesh = lms_mesh::suite::generate(spec, 0.004);
        // run to the floating-point fixed point (no early stop): quality
        // stalls well before the coordinates meet, so a tolerance-based
        // stop would freeze the two sweeps at different points
        let params = SmoothParams::paper().with_tol(-1.0).with_max_iters(8000);
        let engine = SmoothEngine::new(&mesh, params);

        let mut serial = mesh.clone();
        let rs = engine.smooth(&mut serial);

        let mut colored = mesh.clone();
        let rc = engine.smooth_parallel_colored(&mut colored, 3);

        assert!(
            (rs.final_quality - rc.final_quality).abs() < 1e-12,
            "{}: serial {} vs colored {} (diff {:.3e})",
            spec.name,
            rs.final_quality,
            rc.final_quality,
            (rs.final_quality - rc.final_quality).abs()
        );
    }
}
