//! Property tests for the partitioned deterministic Gauss–Seidel engine:
//! bitwise determinism across thread counts, exact equivalence with
//! serial Gauss–Seidel under the part-major visit order (smart and plain,
//! across every partition method), and fixed-point agreement with
//! storage-order Gauss–Seidel.

use lms_mesh::TriMesh;
use lms_part::PartitionMethod;
use lms_smooth::{PartitionedEngine, SmoothEngine, SmoothParams};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = TriMesh> {
    (5usize..14, 5usize..14, 0u64..1000, 0..40u32).prop_map(|(nx, ny, seed, jit)| {
        lms_mesh::generators::perturbed_grid(nx, ny, jit as f64 / 100.0, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bitwise determinism: 1, 2 and 8 threads produce identical
    /// coordinates and identical reports, smart and plain alike, for
    /// every partition method.
    #[test]
    fn partitioned_is_bitwise_deterministic_across_threads(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..5,
        k in 2usize..7, method_ix in 0usize..3,
    ) {
        let params = SmoothParams::paper().with_smart(smart).with_max_iters(iters);
        let engine = PartitionedEngine::by_method(
            &mesh, params, k, PartitionMethod::ALL[method_ix],
        );
        let mut one = mesh.clone();
        let r1 = engine.smooth(&mut one, 1);
        for threads in [2usize, 8] {
            let mut multi = mesh.clone();
            let rt = engine.smooth(&mut multi, threads);
            prop_assert_eq!(one.coords(), multi.coords(), "threads={}", threads);
            prop_assert_eq!(&r1, &rt, "threads={}", threads);
        }
    }

    /// The partitioned sweep is *exactly* serial Gauss–Seidel under the
    /// part-major visit order — coordinates match bit for bit. Tolerance
    /// disabled to pin the sweep count (the running-sum fold order
    /// differs in ulps; see the module docs).
    #[test]
    fn partitioned_equals_serial_part_major_order(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..5,
        k in 2usize..7, method_ix in 0usize..3,
    ) {
        let params = SmoothParams::paper()
            .with_smart(smart)
            .with_max_iters(iters)
            .with_tol(-1.0);
        let engine = PartitionedEngine::by_method(
            &mesh, params.clone(), k, PartitionMethod::ALL[method_ix],
        );

        let mut par = mesh.clone();
        engine.smooth(&mut par, 4);

        let order = engine.part_major_visit_order();
        let serial = SmoothEngine::new(&mesh, params).with_visit_order(order);
        let mut ser = mesh.clone();
        serial.smooth(&mut ser);

        prop_assert_eq!(par.coords(), ser.coords());
    }

    /// The partitioned engine agrees with the colored engine's final
    /// quality at the fixed point (both are Gauss–Seidel sweeps of the
    /// same update, only the visit order differs).
    #[test]
    fn partitioned_reaches_the_gauss_seidel_fixed_point(
        seed in 0u64..200, k in 2usize..6,
    ) {
        let mesh = lms_mesh::generators::perturbed_grid(10, 10, 0.25, seed);
        let params = SmoothParams::paper().with_tol(-1.0).with_max_iters(3000);
        let part_engine = PartitionedEngine::by_method(
            &mesh, params.clone(), k, PartitionMethod::Rcb,
        );
        let mut a = mesh.clone();
        let ra = part_engine.smooth(&mut a, 2);
        let mut b = mesh.clone();
        let rb = SmoothEngine::new(&mesh, params).smooth(&mut b);
        prop_assert!(
            (ra.final_quality - rb.final_quality).abs() < 1e-12,
            "partitioned {} vs serial {}", ra.final_quality, rb.final_quality
        );
    }
}

/// The decomposition must leave real work in the interiors: on the suite
/// meshes (scaled down), most interior vertices are part-interior and the
/// partitioned engine still matches serial bit for bit.
#[test]
fn partitioned_equivalence_on_generator_suite() {
    for spec in lms_mesh::suite::SUITE.iter().take(4) {
        let mesh = lms_mesh::suite::generate(spec, 0.004);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(4).with_tol(-1.0);
        let engine = PartitionedEngine::by_method(&mesh, params.clone(), 4, PartitionMethod::Rcb);

        let interface: usize = engine.interface_classes().iter().map(Vec::len).sum();
        let interiors = engine.part_major_visit_order().len() - interface;
        assert!(
            2 * interiors > engine.engine().boundary().num_interior(),
            "{}: interiors should dominate ({} of {})",
            spec.name,
            interiors,
            engine.engine().boundary().num_interior()
        );

        let mut par = mesh.clone();
        engine.smooth(&mut par, 3);
        let order = engine.part_major_visit_order();
        let serial = SmoothEngine::new(&mesh, params).with_visit_order(order);
        let mut ser = mesh.clone();
        serial.smooth(&mut ser);
        assert_eq!(par.coords(), ser.coords(), "{}: diverged from serial", spec.name);
    }
}
