//! The zero-cost guard: the disabled tracing path must never touch the
//! monotonic clock (and hence no atomics on the hot sweep loops).
//!
//! `lms_trace::now_ns` bumps a process-global sample counter on every
//! call, so "no clock reads" is directly observable. This lives in its
//! own integration-test binary because the counter is process-global:
//! any sibling test that legitimately profiles would pollute it.

use lms_smooth::{ResidentEngine, SmoothParams};

#[test]
fn untraced_resident_smoothing_reads_the_clock_zero_times() {
    let mesh = lms_mesh::generators::perturbed_grid(16, 14, 0.35, 7);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(3).with_tol(-1.0);
    let engine = ResidentEngine::by_method(&mesh, params, 4, lms_part::PartitionMethod::Rcb);

    // warm up pools and code paths, then measure
    let mut warm = mesh.clone();
    engine.smooth(&mut warm, 2);

    let before = lms_trace::clock_reads();
    let mut work = mesh.clone();
    let report = engine.smooth(&mut work, 2);
    let after = lms_trace::clock_reads();
    assert_eq!(
        after - before,
        0,
        "the untraced path (NullTrace + timing off) must be compile-time free of clock samples"
    );
    assert!(report.phase_breakdown.is_none());

    // sanity: the profiled path DOES read the clock (the counter works)
    let mut traced = mesh.clone();
    let (_, recorder) = engine.smooth_profiled(&mut traced, 2);
    assert!(lms_trace::clock_reads() > after, "profiling must sample the clock");
    assert!(recorder.is_balanced());
    assert_eq!(work.coords(), traced.coords(), "profiling is observation-only");
}
