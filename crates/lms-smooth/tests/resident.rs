//! Property tests for the resident halo-exchange engine:
//!
//! * bitwise determinism (coordinates **and** reports, exchange counters
//!   included) across thread counts {1, 2, 4};
//! * exact coordinate equivalence with (a) serial Gauss–Seidel under the
//!   part-major visit order and (b) the PR-2 `PartitionedEngine` over the
//!   same decomposition — across parts {2, 4, 8}, smart and plain, every
//!   partition method;
//! * the tentpole residency invariant: one full gather, one full scatter,
//!   whatever the sweep count — everything in between is halo deltas;
//! * per-run halo traffic is bounded by the static schedule
//!   (moved-restriction can only shrink a round below `num_entries`).

use lms_mesh::TriMesh;
use lms_part::PartitionMethod;
use lms_smooth::{PartitionedEngine, ResidentEngine, SmoothEngine, SmoothParams};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = TriMesh> {
    (5usize..14, 5usize..14, 0u64..1000, 0..40u32).prop_map(|(nx, ny, seed, jit)| {
        lms_mesh::generators::perturbed_grid(nx, ny, jit as f64 / 100.0, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bitwise determinism: 1, 2 and 4 threads produce identical
    /// coordinates and identical reports (exchange accounting included),
    /// smart and plain alike, for every partition method.
    #[test]
    fn resident_is_bitwise_deterministic_across_threads(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..5,
        k in 2usize..9, method_ix in 0usize..4,
    ) {
        let params = SmoothParams::paper().with_smart(smart).with_max_iters(iters);
        let engine = ResidentEngine::by_method(
            &mesh, params, k, PartitionMethod::ALL[method_ix],
        );
        let mut one = mesh.clone();
        let r1 = engine.smooth(&mut one, 1);
        for threads in [2usize, 4] {
            let mut multi = mesh.clone();
            let rt = engine.smooth(&mut multi, threads);
            prop_assert_eq!(one.coords(), multi.coords(), "threads={}", threads);
            prop_assert_eq!(&r1, &rt, "threads={}", threads);
        }
    }

    /// The resident sweep is *exactly* serial Gauss–Seidel under the
    /// part-major visit order — coordinates match bit for bit. Tolerance
    /// disabled to pin the sweep count (the running-sum fold order
    /// differs in ulps; see the module docs).
    #[test]
    fn resident_equals_serial_part_major_order(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..5,
        k in 2usize..9, method_ix in 0usize..4,
    ) {
        let params = SmoothParams::paper()
            .with_smart(smart)
            .with_max_iters(iters)
            .with_tol(-1.0);
        let engine = ResidentEngine::by_method(
            &mesh, params.clone(), k, PartitionMethod::ALL[method_ix],
        );

        let mut par = mesh.clone();
        engine.smooth(&mut par, 4);

        let order = engine.part_major_visit_order();
        let serial = SmoothEngine::new(&mesh, params).with_visit_order(order);
        let mut ser = mesh.clone();
        serial.smooth(&mut ser);

        prop_assert_eq!(par.coords(), ser.coords());
    }

    /// Resident and PR-2 partitioned engines are bit-identical over the
    /// same decomposition: the residency refactor changed the data
    /// movement, not one bit of the arithmetic.
    #[test]
    fn resident_equals_pr2_partitioned_engine(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..5,
        k in 2usize..9, method_ix in 0usize..4,
    ) {
        let params = SmoothParams::paper()
            .with_smart(smart)
            .with_max_iters(iters)
            .with_tol(-1.0);
        let method = PartitionMethod::ALL[method_ix];
        let resident = ResidentEngine::by_method(&mesh, params.clone(), k, method);
        let partitioned = PartitionedEngine::by_method(&mesh, params, k, method);

        let mut a = mesh.clone();
        resident.smooth(&mut a, 2);
        let mut b = mesh.clone();
        partitioned.smooth(&mut b, 2);

        prop_assert_eq!(a.coords(), b.coords());
        prop_assert_eq!(
            resident.part_major_visit_order(),
            partitioned.part_major_visit_order(),
            "both engines must expose one serial-equivalence order"
        );
    }

    /// The residency invariant: one full gather, one full scatter, one
    /// exchange round per color step — for any sweep count. Per-round
    /// traffic never exceeds the static schedule size.
    #[test]
    fn residency_invariant_holds_for_any_sweep_count(
        mesh in arb_mesh(), smart in any::<bool>(), iters in 1usize..7,
        k in 2usize..6,
    ) {
        let params = SmoothParams::paper()
            .with_smart(smart)
            .with_max_iters(iters)
            .with_tol(-1.0);
        let engine = ResidentEngine::by_method(&mesh, params, k, PartitionMethod::Rcb);
        let mut work = mesh.clone();
        let report = engine.smooth(&mut work, 2);
        let volume = report.exchange.expect("resident runs report exchange accounting");
        prop_assert_eq!(volume.full_gathers, 1);
        prop_assert_eq!(volume.full_scatters, 1);
        prop_assert_eq!(
            volume.exchange_rounds,
            iters * engine.interface_classes().len()
        );
        prop_assert!(
            volume.halo_entries_sent
                <= volume.exchange_rounds * engine.exchange_schedule().num_entries(),
            "{} entries over {} rounds exceeds the static schedule ({})",
            volume.halo_entries_sent, volume.exchange_rounds,
            engine.exchange_schedule().num_entries()
        );
    }

    /// The resident engine reaches the same Gauss–Seidel fixed point as
    /// the serial engine (the visit order cannot change the fixed point).
    #[test]
    fn resident_reaches_the_gauss_seidel_fixed_point(
        seed in 0u64..200, k in 2usize..6,
    ) {
        let mesh = lms_mesh::generators::perturbed_grid(10, 10, 0.25, seed);
        let params = SmoothParams::paper().with_tol(-1.0).with_max_iters(3000);
        let engine = ResidentEngine::by_method(&mesh, params.clone(), k, PartitionMethod::Rcb);
        let mut a = mesh.clone();
        let ra = engine.smooth(&mut a, 2);
        let mut b = mesh.clone();
        let rb = SmoothEngine::new(&mesh, params).smooth(&mut b);
        prop_assert!(
            (ra.final_quality - rb.final_quality).abs() < 1e-12,
            "resident {} vs serial {}", ra.final_quality, rb.final_quality
        );
    }
}

/// The suite meshes (scaled down): the resident engine matches serial
/// bit for bit beyond perturbed grids, and its per-iteration quality
/// statistic tracks the PR-2 engine's to ulp precision.
#[test]
fn resident_equivalence_on_generator_suite() {
    for spec in lms_mesh::suite::SUITE.iter().take(4) {
        let mesh = lms_mesh::suite::generate(spec, 0.004);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(4).with_tol(-1.0);
        let resident = ResidentEngine::by_method(&mesh, params.clone(), 4, PartitionMethod::Rcb);
        let partitioned =
            PartitionedEngine::by_method(&mesh, params.clone(), 4, PartitionMethod::Rcb);

        let mut par = mesh.clone();
        let rr = resident.smooth(&mut par, 3);
        let order = resident.part_major_visit_order();
        let serial = SmoothEngine::new(&mesh, params).with_visit_order(order);
        let mut ser = mesh.clone();
        serial.smooth(&mut ser);
        assert_eq!(par.coords(), ser.coords(), "{}: diverged from serial", spec.name);

        let mut pr2 = mesh.clone();
        let rp = partitioned.smooth(&mut pr2, 3);
        assert_eq!(par.coords(), pr2.coords(), "{}: diverged from PR-2", spec.name);
        for (a, b) in rr.iterations.iter().zip(&rp.iterations) {
            assert!(
                (a.quality - b.quality).abs() <= 1e-12 * (1.0 + b.quality.abs()),
                "{}: iteration quality diverged beyond ulps: {} vs {}",
                spec.name,
                a.quality,
                b.quality
            );
        }
        assert_eq!(rr.final_quality.to_bits(), rp.final_quality.to_bits(), "{}", spec.name);
    }
}

/// Thread-pool reuse regression: after the first run at a thread count,
/// further runs on the same engine spawn no OS threads at all.
#[test]
fn engine_runs_spawn_threads_once() {
    let mesh = lms_mesh::generators::perturbed_grid(16, 16, 0.3, 7);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(3).with_tol(-1.0);
    let engine = ResidentEngine::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    // first run pays the one-time spawn for this engine's pool
    engine.smooth(&mut mesh.clone(), 3);
    let after_first = rayon::spawned_thread_count();
    for _ in 0..5 {
        engine.smooth(&mut mesh.clone(), 3);
    }
    assert_eq!(
        rayon::spawned_thread_count(),
        after_first,
        "repeat runs must reuse the engine's parked workers"
    );
}
