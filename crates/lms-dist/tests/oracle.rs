//! The cross-transport oracle: multi-process resident smoothing must be
//! **bit-identical** to the in-process resident engine — coordinates and
//! full reports (quality trajectories and exchange accounting included) —
//! across part counts, commit rules and dimensions; and therefore, by the
//! in-process suites of `lms-smooth`/`lms-mesh3d`, bit-identical to
//! serial part-major Gauss–Seidel. The serial gate is re-asserted here
//! directly in 2D so this suite stands on its own.

use lms_dist::{DistResidentEngine, DistResidentEngine3, FtOptions, TransportMode};
use lms_mesh3d::{ResidentEngine3, SmoothEngine3, SmoothParams3};
use lms_part::PartitionMethod;
use lms_smooth::{SmoothEngine, SmoothParams};

#[test]
fn dist_matches_in_process_2d_across_parts_and_modes() {
    let mesh = lms_mesh::generators::perturbed_grid(20, 18, 0.35, 11);
    for parts in [2usize, 4, 8] {
        for smart in [true, false] {
            let params = SmoothParams::paper().with_smart(smart).with_max_iters(3).with_tol(-1.0);
            let engine = DistResidentEngine::by_method(&mesh, params, parts, PartitionMethod::Rcb);
            assert_eq!(engine.num_ranks(), parts);

            let mut dist = mesh.clone();
            let dist_report = engine.smooth(&mut dist);
            for threads in [1usize, 2, 4] {
                let mut local = mesh.clone();
                let local_report = engine.inner().smooth(&mut local, threads);
                assert_eq!(
                    dist.coords(),
                    local.coords(),
                    "coords diverged: {parts} parts, smart={smart}, {threads} threads"
                );
                assert_eq!(
                    dist_report, local_report,
                    "reports diverged: {parts} parts, smart={smart}, {threads} threads"
                );
            }

            let volume = dist_report.exchange.expect("resident runs report exchange accounting");
            assert_eq!(volume.full_gathers, 1, "{parts} parts, smart={smart}");
            assert_eq!(volume.full_scatters, 1, "{parts} parts, smart={smart}");
            assert!(volume.halo_entries_sent > 0, "multi-part runs must exchange halos");
            assert!(volume.halo_messages_sent <= volume.halo_entries_sent);
        }
    }
}

#[test]
fn dist_matches_serial_part_major_gauss_seidel_2d() {
    let mesh = lms_mesh::generators::perturbed_grid(17, 15, 0.3, 4);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(4).with_tol(-1.0);
    let engine = DistResidentEngine::by_method(&mesh, params.clone(), 4, PartitionMethod::Hilbert);
    let mut dist = mesh.clone();
    engine.smooth(&mut dist);
    let serial =
        SmoothEngine::new(&mesh, params).with_visit_order(engine.inner().part_major_visit_order());
    let mut reference = mesh.clone();
    serial.smooth(&mut reference);
    assert_eq!(dist.coords(), reference.coords());
}

#[test]
fn dist_matches_in_process_3d_across_parts_and_modes() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(7, 6, 7, 0.35, 9);
    for parts in [2usize, 4, 8] {
        for smart in [true, false] {
            let params = SmoothParams3::paper().with_smart(smart).with_max_iters(2).with_tol(-1.0);
            let engine = DistResidentEngine3::by_method(&mesh, params, parts, PartitionMethod::Rcb);
            assert_eq!(engine.num_ranks(), parts);

            let mut dist = mesh.clone();
            let dist_report = engine.smooth(&mut dist);
            let mut local = mesh.clone();
            let local_report = engine.inner().smooth(&mut local, 2);
            assert_eq!(
                dist.coords(),
                local.coords(),
                "coords diverged: {parts} parts, smart={smart}"
            );
            assert_eq!(dist_report, local_report, "{parts} parts, smart={smart}");

            let volume = dist_report.exchange.unwrap();
            assert_eq!(volume.full_gathers, 1);
            assert_eq!(volume.full_scatters, 1);
        }
    }
}

#[test]
fn dist_matches_serial_part_major_gauss_seidel_3d() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(6, 6, 6, 0.3, 2);
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(3).with_tol(-1.0);
    let engine = DistResidentEngine3::by_method(&mesh, params.clone(), 4, PartitionMethod::Rcb);
    let mut dist = mesh.clone();
    engine.smooth(&mut dist);
    let mut reference = mesh.clone();
    SmoothEngine3::new(&mesh, params)
        .with_visit_order(engine.inner().part_major_visit_order())
        .smooth(&mut reference);
    assert_eq!(dist.coords(), reference.coords());
}

#[test]
fn single_rank_run_works_and_exchanges_nothing() {
    let mesh = lms_mesh::generators::perturbed_grid(10, 10, 0.3, 6);
    let params = SmoothParams::paper().with_max_iters(3);
    let engine = DistResidentEngine::by_method(&mesh, params, 1, PartitionMethod::Morton);
    let mut work = mesh.clone();
    let report = engine.smooth(&mut work);
    assert!(report.final_quality > report.initial_quality);
    let volume = report.exchange.unwrap();
    assert_eq!(volume.halo_entries_sent, 0);
    assert_eq!(volume.halo_messages_sent, 0);
    assert_eq!(volume.halo_bytes_sent, 0);
}

#[test]
fn engines_sharing_a_decomposition_agree_with_existing_engine_zoo() {
    // the distributed engine joins the PR-2/PR-3 equivalence class: same
    // decomposition ⇒ same coordinates as the partitioned engine too
    let mesh = lms_mesh::generators::perturbed_grid(16, 16, 0.35, 7);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(3).with_tol(-1.0);
    let spec = PartitionMethod::Rcb;
    let dist_engine = DistResidentEngine::by_method(&mesh, params.clone(), 4, spec);
    let part_engine = lms_smooth::PartitionedEngine::by_method(&mesh, params, 4, spec);
    let mut a = mesh.clone();
    dist_engine.smooth(&mut a);
    let mut b = mesh.clone();
    part_engine.smooth(&mut b, 2);
    assert_eq!(a.coords(), b.coords());
}

/// The PR-8 socket rungs join the bit-identity class: forked workers
/// dialling back over a Unix-domain socket or TCP loopback compute the
/// same coordinates *and* the same report — exchange accounting included,
/// because `halo_frame_wire_len` charges every transport identically —
/// as the in-process resident engine.
#[test]
fn socket_transports_match_in_process_2d() {
    let mesh = lms_mesh::generators::perturbed_grid(18, 16, 0.35, 11);
    for mode in [TransportMode::UnixSocket, TransportMode::TcpLoopback] {
        for parts in [2usize, 4] {
            for smart in [true, false] {
                let params =
                    SmoothParams::paper().with_smart(smart).with_max_iters(3).with_tol(-1.0);
                let engine =
                    DistResidentEngine::by_method(&mesh, params, parts, PartitionMethod::Rcb);
                let opts = FtOptions { mode, ..FtOptions::default() };
                let mut dist = mesh.clone();
                let (dist_report, stats) = engine
                    .smooth_ft(&mut dist, &opts)
                    .unwrap_or_else(|e| panic!("{mode:?}, {parts} parts, smart={smart}: {e}"));
                assert!(stats.recoveries.is_empty(), "{mode:?}: clean run must not recover");
                let mut local = mesh.clone();
                let local_report = engine.inner().smooth(&mut local, 2);
                assert_eq!(
                    dist.coords(),
                    local.coords(),
                    "coords diverged over {mode:?}: {parts} parts, smart={smart}"
                );
                assert_eq!(
                    dist_report, local_report,
                    "reports diverged over {mode:?}: {parts} parts, smart={smart}"
                );
            }
        }
    }
}

/// 3D over sockets: one representative cell per family keeps the suite
/// fast while pinning that the handshake's dimension plumb-through works
/// end to end.
#[test]
fn socket_transports_match_in_process_3d() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(7, 6, 7, 0.35, 9);
    for mode in [TransportMode::UnixSocket, TransportMode::TcpLoopback] {
        let params = SmoothParams3::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
        let engine = DistResidentEngine3::by_method(&mesh, params, 4, PartitionMethod::Rcb);
        let opts = FtOptions { mode, ..FtOptions::default() };
        let mut dist = mesh.clone();
        let (dist_report, _) =
            engine.smooth_ft(&mut dist, &opts).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        let mut local = mesh.clone();
        let local_report = engine.inner().smooth(&mut local, 2);
        assert_eq!(dist.coords(), local.coords(), "3D coords diverged over {mode:?}");
        assert_eq!(dist_report, local_report, "3D report diverged over {mode:?}");
    }
}

/// All three multi-process substrates agree with each other byte for
/// byte on the same run — the transport is invisible to the result.
#[test]
fn pipes_unix_and_tcp_agree_with_each_other() {
    let mesh = lms_mesh::generators::perturbed_grid(16, 14, 0.3, 7);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(3).with_tol(-1.0);
    let engine = DistResidentEngine::by_method(&mesh, params, 4, PartitionMethod::Hilbert);
    let mut runs = Vec::new();
    for mode in [TransportMode::Pipes, TransportMode::UnixSocket, TransportMode::TcpLoopback] {
        let mut work = mesh.clone();
        let (report, _) = engine
            .smooth_ft(&mut work, &FtOptions { mode, ..FtOptions::default() })
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        runs.push((mode, work, report));
    }
    let (_, ref_mesh, ref_report) = &runs[0];
    for (mode, work, report) in &runs[1..] {
        assert_eq!(work.coords(), ref_mesh.coords(), "{mode:?} vs Pipes coords");
        assert_eq!(report, ref_report, "{mode:?} vs Pipes report");
    }
}

/// PR 10: the overlap multiplexer (eager forwarding, eager release,
/// non-blocking drain) against the serialized drain loop it replaced —
/// same coordinates, same report, exchange accounting included, on
/// every substrate, in both dimensions; and both sides match the
/// in-process engine. The serialized loop is the permanent oracle the
/// `overlap` escape hatch keeps alive.
#[test]
fn overlap_on_and_off_agree_bit_identical_across_modes() {
    let mesh = lms_mesh::generators::perturbed_grid(18, 16, 0.35, 11);
    let params = SmoothParams::paper().with_smart(true).with_max_iters(3).with_tol(-1.0);
    let engine = DistResidentEngine::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    let mut local = mesh.clone();
    let local_report = engine.inner().smooth(&mut local, 2);
    for mode in [TransportMode::Pipes, TransportMode::UnixSocket, TransportMode::TcpLoopback] {
        let mut runs = Vec::new();
        for overlap in [true, false] {
            let opts = FtOptions { mode, overlap, ..FtOptions::default() };
            let mut work = mesh.clone();
            let (report, stats) = engine
                .smooth_ft(&mut work, &opts)
                .unwrap_or_else(|e| panic!("{mode:?}, overlap={overlap}: {e}"));
            assert!(stats.recoveries.is_empty(), "{mode:?}, overlap={overlap}");
            runs.push((overlap, work, report));
        }
        let (_, on_mesh, on_report) = &runs[0];
        let (_, off_mesh, off_report) = &runs[1];
        assert_eq!(on_mesh.coords(), off_mesh.coords(), "{mode:?}: overlap changed coords");
        assert_eq!(on_report, off_report, "{mode:?}: overlap changed the report");
        assert_eq!(on_mesh.coords(), local.coords(), "{mode:?}: coords vs in-process");
        assert_eq!(on_report, &local_report, "{mode:?}: report vs in-process");
    }
}

/// The 3D twin of the overlap-on/off gate, one socket substrate plus
/// pipes — the drain loop is dimension-generic.
#[test]
fn overlap_on_and_off_agree_bit_identical_3d() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(7, 6, 7, 0.35, 9);
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
    let engine = DistResidentEngine3::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    let mut local = mesh.clone();
    let local_report = engine.inner().smooth(&mut local, 2);
    for mode in [TransportMode::Pipes, TransportMode::TcpLoopback] {
        for overlap in [true, false] {
            let opts = FtOptions { mode, overlap, ..FtOptions::default() };
            let mut work = mesh.clone();
            let (report, _) = engine
                .smooth_ft(&mut work, &opts)
                .unwrap_or_else(|e| panic!("3D {mode:?}, overlap={overlap}: {e}"));
            assert_eq!(work.coords(), local.coords(), "3D {mode:?}, overlap={overlap}");
            assert_eq!(report, local_report, "3D {mode:?}, overlap={overlap}");
        }
    }
}

#[test]
fn dist_3d_engine_reuses_resident3_construction() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(6, 5, 6, 0.3, 3);
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
    let dist = DistResidentEngine3::by_method(&mesh, params.clone(), 3, PartitionMethod::Hilbert);
    let solo = ResidentEngine3::by_method(&mesh, params, 3, PartitionMethod::Hilbert);
    assert_eq!(dist.inner().part_major_visit_order(), solo.part_major_visit_order());
}
