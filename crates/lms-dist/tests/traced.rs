//! The observability contract: instrumentation is observation-only.
//!
//! Every test here runs the same smoothing twice — once untraced, once
//! with profiling and a span recorder attached — and demands the traced
//! run be **bit-identical** in coordinates *and* report (minus the
//! attached `phase_breakdown`) across both transports and both
//! dimensions. The chaos variant proves the span stack survives a rank
//! kill + recovery without corrupting its nesting, and every recorded
//! stream must export to valid chrome-trace JSON.

use lms_dist::{DistResidentEngine, DistResidentEngine3, FaultPlan, FaultPoint, FtOptions};
use lms_mesh::TriMesh;
use lms_mesh3d::SmoothParams3;
use lms_part::PartitionMethod;
use lms_smooth::{SmoothParams, SmoothReport};
use lms_trace::{chrome_trace_json, validate_chrome_trace, Recorder};

fn mesh_2d() -> TriMesh {
    lms_mesh::generators::perturbed_grid(18, 16, 0.35, 11)
}

fn params_2d(max_iters: usize) -> SmoothParams {
    SmoothParams::paper().with_smart(true).with_max_iters(max_iters).with_tol(-1.0)
}

/// Strip the profiling attachment so the rest of the report can be
/// compared bit for bit against an unprofiled run.
fn without_breakdown(report: &SmoothReport) -> SmoothReport {
    let mut stripped = report.clone();
    stripped.phase_breakdown = None;
    stripped
}

/// The recorder's stream must be balanced, span-name complete, and
/// export to chrome-trace JSON our own validator accepts.
fn assert_exportable(recorder: &Recorder) {
    assert!(recorder.is_balanced(), "span stream must balance");
    assert_eq!(recorder.open_spans(), 0);
    let json = chrome_trace_json(recorder.events());
    let events = validate_chrome_trace(&json).expect("exported trace must validate");
    assert_eq!(events, recorder.events().len());
}

#[test]
fn profiled_in_process_2d_is_bit_identical_to_untraced() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let mut plain = mesh.clone();
    let plain_report = engine.inner().smooth(&mut plain, 2);
    assert!(plain_report.phase_breakdown.is_none(), "unprofiled runs carry no breakdown");

    let mut traced = mesh.clone();
    let (traced_report, recorder) = engine.inner().smooth_profiled(&mut traced, 2);
    assert_eq!(traced.coords(), plain.coords(), "tracing must not move a single bit");
    assert_eq!(without_breakdown(&traced_report), plain_report);

    let breakdown = traced_report.phase_breakdown.expect("profiled run attaches a breakdown");
    assert!(breakdown.interior_ns > 0, "interior spans must have been timed");
    assert_eq!(breakdown.transport.rank_phases.len(), 4);
    assert!(
        breakdown.transport.rank_phases.iter().any(|p| p.sweep_ns() > 0),
        "rank-side sweep timing must be live"
    );
    assert!(!breakdown.summary_table().is_empty());
    assert_exportable(&recorder);
}

#[test]
fn profiled_in_process_3d_is_bit_identical_to_untraced() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(7, 6, 7, 0.35, 9);
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
    let engine = DistResidentEngine3::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    let mut plain = mesh.clone();
    let plain_report = engine.inner().smooth(&mut plain, 2);

    let mut traced = mesh.clone();
    let (traced_report, recorder) = engine.inner().smooth_profiled(&mut traced, 2);
    assert_eq!(traced.coords(), plain.coords());
    assert_eq!(without_breakdown(&traced_report), plain_report);
    assert!(traced_report.phase_breakdown.is_some());
    assert_exportable(&recorder);
}

#[test]
fn profiled_multi_process_2d_is_bit_identical_to_untraced() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let opts = FtOptions { read_timeout_ms: 5_000, ..FtOptions::default() };

    let mut plain = mesh.clone();
    let (plain_report, _) = engine.smooth_ft(&mut plain, &opts).expect("untraced run");
    assert!(plain_report.phase_breakdown.is_none());

    let mut traced = mesh.clone();
    let (traced_report, stats, recorder) =
        engine.smooth_profiled(&mut traced, &opts).expect("profiled run");
    assert_eq!(traced.coords(), plain.coords(), "profiling must not move a single bit");
    assert_eq!(without_breakdown(&traced_report), plain_report);
    assert!(stats.recoveries.is_empty());

    let breakdown = traced_report.phase_breakdown.expect("breakdown attached");
    // the wire v3 Report phases must have flowed back from the rank
    // processes to the coordinator
    assert_eq!(breakdown.transport.rank_phases.len(), 4);
    assert!(
        breakdown.transport.rank_phases.iter().all(|p| p.sweep_ns() > 0),
        "every rank must report sweep time over the wire: {:?}",
        breakdown.transport.rank_phases
    );
    assert!(breakdown.per_part_sweep_ns().iter().all(|&ns| ns > 0));
    assert_exportable(&recorder);
}

#[test]
fn profiled_multi_process_3d_is_bit_identical_to_untraced() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(7, 6, 7, 0.35, 9);
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
    let engine = DistResidentEngine3::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    let opts = FtOptions { read_timeout_ms: 5_000, ..FtOptions::default() };

    let mut plain = mesh.clone();
    let (plain_report, _) = engine.smooth_ft(&mut plain, &opts).expect("untraced run");

    let mut traced = mesh.clone();
    let (traced_report, _, recorder) =
        engine.smooth_profiled(&mut traced, &opts).expect("profiled run");
    assert_eq!(traced.coords(), plain.coords());
    assert_eq!(without_breakdown(&traced_report), plain_report);
    assert!(traced_report.phase_breakdown.is_some());
    assert_exportable(&recorder);
}

/// The chaos variant: a rank killed mid-run while profiling is on. The
/// recovery must stay bit-identical to the failure-free oracle AND the
/// span stream must come back balanced — the driver closes every span
/// after capturing the fallible result, so a kill/respawn cycle can
/// never leave a dangling begin — with `recover` spans present.
#[test]
fn profiled_run_survives_kill_and_recovery_with_balanced_spans() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let mut oracle = mesh.clone();
    let oracle_report = engine.inner().smooth(&mut oracle, 2);

    let opts = FtOptions {
        read_timeout_ms: 5_000,
        faults: FaultPlan::kill_at(1, FaultPoint::Color { iter: 2, color: 0 }),
        ..FtOptions::default()
    };
    let mut work = mesh.clone();
    let (report, stats, recorder) =
        engine.smooth_profiled(&mut work, &opts).expect("profiled chaos run");
    assert_eq!(work.coords(), oracle.coords(), "recovery must stay bit-identical under tracing");
    assert_eq!(without_breakdown(&report), oracle_report);
    assert_eq!(stats.recoveries.len(), 1, "{:?}", stats.recoveries);

    assert_exportable(&recorder);
    let totals = recorder.span_totals();
    let names: Vec<&str> = totals.iter().map(|&(n, _, _)| n).collect();
    assert!(names.contains(&"recover"), "recovery must be spanned: {names:?}");
    let breakdown = report.phase_breakdown.expect("breakdown attached");
    assert!(breakdown.recover_ns > 0, "recover time must land in the breakdown");
}
