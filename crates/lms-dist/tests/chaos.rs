//! The chaos suite: deterministic fault injection against the
//! fault-tolerant distributed backend.
//!
//! Every scenario scripts a failure — a rank killed right before a
//! chosen protocol step, a stalled rank, a corrupted wire byte, a vetoed
//! spawn — and asserts the strongest property the design claims:
//! the failure is **detected** (typed diagnosis, never a hang), the run
//! **recovers** from the last checkpoint (or degrades to the in-process
//! engine), and the final coordinates *and* report are **bit-identical**
//! to a failure-free run. The kill matrix walks every (iteration ×
//! interior/color-step/finish) boundary in turn.

use lms_dist::{
    DistError, DistResidentEngine, DistResidentEngine3, FaultPlan, FaultPoint, FtOptions,
    ProcessTransport, Supervisor, TransportMode, INJECTED_KILL_EXIT,
};
use lms_mesh::TriMesh;
use lms_mesh3d::SmoothParams3;
use lms_part::PartitionMethod;
use lms_smooth::domain::{DomainConfig, SmoothDomain};
use lms_smooth::{FtPolicy, FtResidentTransport, SmoothParams, SmoothReport};

fn mesh_2d() -> TriMesh {
    lms_mesh::generators::perturbed_grid(18, 16, 0.35, 11)
}

fn params_2d(max_iters: usize) -> SmoothParams {
    SmoothParams::paper().with_smart(true).with_max_iters(max_iters).with_tol(-1.0)
}

fn options(faults: FaultPlan) -> FtOptions {
    FtOptions { read_timeout_ms: 5_000, faults, ..FtOptions::default() }
}

/// The failure-free reference: the wrapped in-process engine (already
/// pinned bit-identical to a failure-free distributed run by
/// `tests/oracle.rs`).
fn oracle_2d(engine: &DistResidentEngine, mesh: &TriMesh) -> (TriMesh, SmoothReport) {
    let mut local = mesh.clone();
    let report = engine.inner().smooth(&mut local, 2);
    (local, report)
}

#[test]
fn kill_matrix_2d_every_boundary_recovers_bit_identical() {
    let mesh = mesh_2d();
    let max_iters = 3u32;
    let engine = DistResidentEngine::by_method(
        &mesh,
        params_2d(max_iters as usize),
        4,
        PartitionMethod::Rcb,
    );
    let num_colors = engine.inner().interface_classes().len() as u32;
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);

    let mut points = Vec::new();
    for iter in 1..=max_iters {
        points.push(FaultPoint::Interior { iter });
        for color in 0..num_colors {
            points.push(FaultPoint::Color { iter, color });
        }
        points.push(FaultPoint::Finish { iter });
    }
    for (i, &point) in points.iter().enumerate() {
        let victim = (i % 4) as u32;
        let opts = options(FaultPlan::kill_at(victim, point));
        let mut work = mesh.clone();
        let (report, stats) = engine
            .smooth_ft(&mut work, &opts)
            .unwrap_or_else(|e| panic!("kill rank {victim} before {point:?}: {e}"));
        assert_eq!(
            work.coords(),
            oracle.coords(),
            "coords diverged after recovering a kill of rank {victim} before {point:?}"
        );
        assert_eq!(report, oracle_report, "report diverged: rank {victim}, {point:?}");
        assert_eq!(stats.recoveries.len(), 1, "exactly one recovery: rank {victim}, {point:?}");
        assert!(
            stats.recoveries[0].contains(&format!("rank {victim}"))
                && stats.recoveries[0].contains(&format!("exit code {INJECTED_KILL_EXIT}")),
            "diagnosis should name the victim and its exit: {:?}",
            stats.recoveries[0]
        );
    }
}

#[test]
fn kills_recover_across_part_counts_2d() {
    let mesh = mesh_2d();
    for parts in [2usize, 8] {
        let engine =
            DistResidentEngine::by_method(&mesh, params_2d(3), parts, PartitionMethod::Rcb);
        let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
        for point in [
            FaultPoint::Interior { iter: 2 },
            FaultPoint::Color { iter: 2, color: 0 },
            FaultPoint::Finish { iter: 2 },
        ] {
            let victim = (parts - 1) as u32;
            let mut work = mesh.clone();
            let (report, stats) = engine
                .smooth_ft(&mut work, &options(FaultPlan::kill_at(victim, point)))
                .unwrap_or_else(|e| panic!("{parts} parts, {point:?}: {e}"));
            assert_eq!(work.coords(), oracle.coords(), "{parts} parts, {point:?}");
            assert_eq!(report, oracle_report, "{parts} parts, {point:?}");
            assert_eq!(stats.recoveries.len(), 1);
        }
    }
}

#[test]
fn kill_matrix_3d_recovers_bit_identical() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(7, 6, 7, 0.35, 9);
    let max_iters = 2u32;
    let params =
        SmoothParams3::paper().with_smart(true).with_max_iters(max_iters as usize).with_tol(-1.0);
    let engine = DistResidentEngine3::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    let num_colors = engine.inner().interface_classes().len() as u32;
    let mut oracle = mesh.clone();
    let oracle_report = engine.inner().smooth(&mut oracle, 2);

    let mut points = Vec::new();
    for iter in 1..=max_iters {
        points.push(FaultPoint::Interior { iter });
        points.push(FaultPoint::Color { iter, color: 0 });
        points.push(FaultPoint::Color { iter, color: num_colors - 1 });
        points.push(FaultPoint::Finish { iter });
    }
    for (i, &point) in points.iter().enumerate() {
        let victim = (i % 4) as u32;
        let mut work = mesh.clone();
        let (report, stats) = engine
            .smooth_ft(&mut work, &options(FaultPlan::kill_at(victim, point)))
            .unwrap_or_else(|e| panic!("3D kill rank {victim} before {point:?}: {e}"));
        assert_eq!(work.coords(), oracle.coords(), "3D coords: rank {victim}, {point:?}");
        assert_eq!(report, oracle_report, "3D report: rank {victim}, {point:?}");
        assert_eq!(stats.recoveries.len(), 1);
    }
}

#[test]
fn corrupted_wire_bytes_are_detected_and_recovered() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    // first outgoing frame of rank 1, and a later frame of rank 2, each
    // with a different damaged byte offset
    for plan in [FaultPlan::corrupt(1, 0, 5), FaultPlan::corrupt(2, 3, 200)] {
        let mut work = mesh.clone();
        let (report, stats) = engine
            .smooth_ft(&mut work, &options(plan.clone()))
            .unwrap_or_else(|e| panic!("{plan:?}: {e}"));
        assert_eq!(work.coords(), oracle.coords(), "{plan:?}");
        assert_eq!(report, oracle_report, "{plan:?}");
        assert_eq!(stats.recoveries.len(), 1, "{plan:?}");
        assert!(
            stats.recoveries[0].contains("corrupt stream"),
            "diagnosis should blame the wire: {:?}",
            stats.recoveries[0]
        );
    }
}

#[test]
fn stall_past_the_read_timeout_is_detected_and_recovered() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    // the stall (30s) dwarfs the read timeout (400ms): the coordinator
    // must diagnose the wedged rank and SIGKILL it rather than wait
    let opts = FtOptions {
        read_timeout_ms: 400,
        faults: FaultPlan::stall_at(1, FaultPoint::Color { iter: 2, color: 0 }, 30_000),
        ..FtOptions::default()
    };
    let mut work = mesh.clone();
    let (report, stats) = engine.smooth_ft(&mut work, &opts).expect("stall must be recoverable");
    assert_eq!(work.coords(), oracle.coords());
    assert_eq!(report, oracle_report);
    assert!(!stats.recoveries.is_empty());
    assert!(
        stats.recoveries.iter().any(|r| r.contains("stalled")),
        "diagnosis should call the rank stalled: {:?}",
        stats.recoveries
    );
}

#[test]
fn spawn_failure_degrades_to_the_in_process_engine() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);

    // the typed error is surfaced...
    let mut work = mesh.clone();
    let err = engine.smooth_ft(&mut work, &options(FaultPlan::no_spawn())).unwrap_err();
    assert!(matches!(err, DistError::Spawn(_)), "got {err}");

    // ...and the graceful path computes the same answer in-process
    let mut degraded = mesh.clone();
    let report = engine.smooth_with(&mut degraded, &options(FaultPlan::no_spawn()));
    assert_eq!(degraded.coords(), oracle.coords());
    assert_eq!(report, oracle_report);
}

#[test]
fn two_temporally_separate_faults_consume_two_recoveries() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    // rank 0 dies in global iteration 1; after that recovery, rank 1's
    // worker-local counter reaches 2 while *replaying* iteration 1 and
    // dies too — two distinct failures, two recoveries
    let plan = FaultPlan::kill_at(0, FaultPoint::Interior { iter: 1 })
        .with(1, lms_dist::WorkerFault::KillBefore { point: FaultPoint::Interior { iter: 2 } });
    let mut work = mesh.clone();
    let (report, stats) = engine.smooth_ft(&mut work, &options(plan)).expect("double fault");
    assert_eq!(work.coords(), oracle.coords());
    assert_eq!(report, oracle_report);
    assert_eq!(stats.recoveries.len(), 2, "{:?}", stats.recoveries);
}

#[test]
fn exhausted_recovery_budget_surfaces_the_typed_error_without_hanging() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let opts = FtOptions {
        policy: FtPolicy { max_recoveries: 0, ..FtPolicy::default() },
        ..options(FaultPlan::kill_at(2, FaultPoint::Interior { iter: 1 }))
    };
    let mut work = mesh.clone();
    let err = engine.smooth_ft(&mut work, &opts).unwrap_err();
    match err {
        DistError::RankExited { rank, status } => {
            assert_eq!(rank, 2);
            assert_eq!(status.exit_code(), INJECTED_KILL_EXIT);
        }
        other => panic!("expected the rank-death diagnosis, got {other}"),
    }
}

#[test]
fn checkpoint_cadence_follows_the_policy() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(4), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);

    // failure-free: boundaries at iterations 2 and 4 (the final boundary
    // is always checkpointed)
    let opts = FtOptions {
        policy: FtPolicy { checkpoint_every: 2, ..FtPolicy::default() },
        ..FtOptions::default()
    };
    let mut work = mesh.clone();
    let (report, stats) = engine.smooth_ft(&mut work, &opts).unwrap();
    assert_eq!(report, oracle_report);
    assert_eq!(stats.checkpoints, 2);
    assert!(stats.recoveries.is_empty());

    // a failure in iteration 4: the overlap transport defers checkpoint
    // commits by one boundary, so the iteration-2 round (issued but not
    // yet committed when the kill lands) is abandoned and the replay
    // restarts from the initial gather, re-checkpointing boundary 2 on
    // the way — one extra checkpoint, still bit-identical
    let opts = FtOptions {
        policy: FtPolicy { checkpoint_every: 2, ..FtPolicy::default() },
        ..options(FaultPlan::kill_at(3, FaultPoint::Interior { iter: 4 }))
    };
    let mut work = mesh.clone();
    let (report, stats) = engine.smooth_ft(&mut work, &opts).unwrap();
    assert_eq!(work.coords(), oracle.coords());
    assert_eq!(report, oracle_report);
    assert_eq!(stats.recoveries.len(), 1);
    assert_eq!(stats.checkpoints, 3);

    // the serialized loop commits at the boundary itself: the same
    // fault replays from the iteration-2 checkpoint and re-checkpoints
    // only the final boundary
    let opts = FtOptions {
        overlap: false,
        policy: FtPolicy { checkpoint_every: 2, ..FtPolicy::default() },
        ..options(FaultPlan::kill_at(3, FaultPoint::Interior { iter: 4 }))
    };
    let mut work = mesh.clone();
    let (report, stats) = engine.smooth_ft(&mut work, &opts).unwrap();
    assert_eq!(work.coords(), oracle.coords());
    assert_eq!(report, oracle_report);
    assert_eq!(stats.recoveries.len(), 1);
    assert_eq!(stats.checkpoints, 2);
}

/// The CI seed matrix: every seeded plan (kill or corruption, rank,
/// iteration and byte all derived from the seed) must leave the run
/// bit-identical to the failure-free oracle — whether or not the scripted
/// fault actually fires before the run completes.
#[test]
fn seeded_fault_matrix_is_bit_identical_to_the_oracle() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let num_colors = engine.inner().interface_classes().len() as u32;
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    for seed in 1..=10u64 {
        let plan = FaultPlan::from_seed(seed, 4, 3, num_colors);
        let mut work = mesh.clone();
        let (report, stats) = engine
            .smooth_ft(&mut work, &options(plan.clone()))
            .unwrap_or_else(|e| panic!("seed {seed} ({plan:?}): {e}"));
        assert_eq!(work.coords(), oracle.coords(), "seed {seed} ({plan:?})");
        assert_eq!(report, oracle_report, "seed {seed} ({plan:?})");
        assert!(stats.recoveries.len() <= 1, "seed {seed}: {:?}", stats.recoveries);
    }
}

// ---------------------------------------------------------------------
// PR 8: the network-fault chaos matrix. Every cell below runs a scripted
// network failure over a chosen substrate and gates the result
// bit-identical (coords AND report) to the failure-free oracle.
// ---------------------------------------------------------------------

const ALL_MODES: [TransportMode; 3] =
    [TransportMode::Pipes, TransportMode::UnixSocket, TransportMode::TcpLoopback];

fn options_over(mode: TransportMode, faults: FaultPlan) -> FtOptions {
    FtOptions { mode, ..options(faults) }
}

/// The cross-transport fault matrix: {pipes, unix socket, tcp loopback}
/// × {kill, dropped connection, stall, corrupted wire byte}, every cell
/// detected, recovered, and bit-identical to the oracle. The dropped
/// connection is the network-native failure only PR 8 can script: the
/// worker closes its streams but **stays alive**, so the diagnosis must
/// be `ConnLost`, not a reaped exit.
#[test]
fn network_fault_matrix_2d_recovers_bit_identical() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    let cells: [(FaultPlan, &str); 4] = [
        (FaultPlan::kill_at(1, FaultPoint::Color { iter: 2, color: 0 }), "exit code"),
        (FaultPlan::drop_conn_at(2, FaultPoint::Interior { iter: 2 }), "lost connection"),
        (FaultPlan::stall_at(1, FaultPoint::Color { iter: 2, color: 0 }, 30_000), "stalled"),
        (FaultPlan::corrupt(1, 3, 200), "corrupt stream"),
    ];
    for mode in ALL_MODES {
        for (plan, diagnosis) in &cells {
            let opts = FtOptions { read_timeout_ms: 1_000, ..options_over(mode, plan.clone()) };
            let mut work = mesh.clone();
            let (report, stats) = engine
                .smooth_ft(&mut work, &opts)
                .unwrap_or_else(|e| panic!("{mode:?} × {plan:?}: {e}"));
            assert_eq!(work.coords(), oracle.coords(), "coords: {mode:?} × {plan:?}");
            assert_eq!(report, oracle_report, "report: {mode:?} × {plan:?}");
            assert!(!stats.recoveries.is_empty(), "{mode:?} × {plan:?} must recover");
            assert!(
                stats.recoveries.iter().any(|r| r.contains(diagnosis)),
                "{mode:?} × {plan:?}: diagnosis should mention {diagnosis:?}, \
                 got {:?}",
                stats.recoveries
            );
        }
    }
}

/// The 3D slice of the matrix: one kill and one dropped connection per
/// socket family — the handshake, recovery reload, and coalesced halo
/// routing are all dimension-generic, so a thin slice pins the rest.
#[test]
fn network_fault_matrix_3d_recovers_bit_identical() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(7, 6, 7, 0.35, 9);
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
    let engine = DistResidentEngine3::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    let mut oracle = mesh.clone();
    let oracle_report = engine.inner().smooth(&mut oracle, 2);
    for mode in [TransportMode::UnixSocket, TransportMode::TcpLoopback] {
        for plan in [
            FaultPlan::kill_at(0, FaultPoint::Color { iter: 1, color: 0 }),
            FaultPlan::drop_conn_at(3, FaultPoint::Finish { iter: 1 }),
        ] {
            let mut work = mesh.clone();
            let (report, stats) = engine
                .smooth_ft(&mut work, &options_over(mode, plan.clone()))
                .unwrap_or_else(|e| panic!("3D {mode:?} × {plan:?}: {e}"));
            assert_eq!(work.coords(), oracle.coords(), "3D coords: {mode:?} × {plan:?}");
            assert_eq!(report, oracle_report, "3D report: {mode:?} × {plan:?}");
            assert_eq!(stats.recoveries.len(), 1, "3D {mode:?} × {plan:?}");
        }
    }
}

/// Maximal stream fragmentation — every worker frame delivered one byte
/// per syscall — must be **invisible**: the framing layer reassembles,
/// nothing is diagnosed, and the run is bit-identical with zero
/// recoveries. This is the network face of the satellite-2 short-write
/// hardening.
#[test]
fn short_writes_are_reassembled_invisibly_on_every_transport() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    for mode in ALL_MODES {
        let mut work = mesh.clone();
        let (report, stats) = engine
            .smooth_ft(&mut work, &options_over(mode, FaultPlan::short_write(1)))
            .unwrap_or_else(|e| panic!("short-write over {mode:?}: {e}"));
        assert_eq!(work.coords(), oracle.coords(), "short-write coords over {mode:?}");
        assert_eq!(report, oracle_report, "short-write report over {mode:?}");
        assert!(stats.recoveries.is_empty(), "short writes must not trip recovery: {mode:?}");
    }
}

/// A peer that is merely *slow* — pausing before each frame but staying
/// under the read timeout — must not be mistaken for a stalled rank.
#[test]
fn slow_peer_below_the_timeout_is_not_diagnosed() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(2), 2, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    for mode in [TransportMode::UnixSocket, TransportMode::TcpLoopback] {
        let mut work = mesh.clone();
        let (report, stats) = engine
            .smooth_ft(&mut work, &options_over(mode, FaultPlan::slow_peer(1, 5)))
            .unwrap_or_else(|e| panic!("slow peer over {mode:?}: {e}"));
        assert_eq!(work.coords(), oracle.coords(), "slow-peer coords over {mode:?}");
        assert_eq!(report, oracle_report, "slow-peer report over {mode:?}");
        assert!(stats.recoveries.is_empty(), "a slow peer is not a fault: {mode:?}");
    }
}

/// A worker that never dials back surfaces as the typed
/// [`DistError::ConnRefused`] once the accept bound expires — and the
/// graceful path still computes the oracle answer in-process.
#[test]
fn refused_connection_surfaces_typed_error_and_degrades() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    let opts = FtOptions {
        supervisor: Supervisor { accept_timeout_ms: 400, ..Supervisor::default() },
        ..options_over(TransportMode::TcpLoopback, FaultPlan::refuse(1))
    };
    let mut work = mesh.clone();
    let err = engine.smooth_ft(&mut work, &opts).unwrap_err();
    match &err {
        DistError::ConnRefused { attempts, .. } => assert!(*attempts >= 1),
        other => panic!("expected ConnRefused, got {other}"),
    }
    let mut degraded = mesh.clone();
    let report = engine.smooth_with(&mut degraded, &opts);
    assert_eq!(degraded.coords(), oracle.coords());
    assert_eq!(report, oracle_report);
}

/// The graceful-degradation ladder, rung by rung: vetoing TCP lands on
/// the Unix socket, vetoing both socket families lands on pipes, a
/// refused dial walks the socket rungs down to pipes (which has no
/// connection to refuse), and vetoing everything degrades to the
/// in-process engine — bit-identical at every rung.
#[test]
fn auto_mode_walks_the_degradation_ladder() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    assert_eq!(
        TransportMode::Auto.ladder(),
        vec![
            TransportMode::TcpLoopback,
            TransportMode::UnixSocket,
            TransportMode::Pipes,
            TransportMode::InProcess
        ]
    );

    let fast_accept = Supervisor { accept_timeout_ms: 300, ..Supervisor::default() };
    let rungs: [FaultPlan; 3] = [
        FaultPlan::no_tcp(),
        FaultPlan { fail_unix: true, ..FaultPlan::no_tcp() },
        // refuse_connect fires on both socket rungs (the worker exits
        // before dialling); pipes has no dial to refuse, so the ladder
        // lands there
        FaultPlan::refuse(2),
    ];
    for plan in rungs {
        let opts = FtOptions {
            supervisor: fast_accept.clone(),
            ..options_over(TransportMode::Auto, plan.clone())
        };
        let mut work = mesh.clone();
        let (report, stats) = engine
            .smooth_ft(&mut work, &opts)
            .unwrap_or_else(|e| panic!("ladder with {plan:?}: {e}"));
        assert_eq!(work.coords(), oracle.coords(), "ladder coords with {plan:?}");
        assert_eq!(report, oracle_report, "ladder report with {plan:?}");
        assert!(stats.recoveries.is_empty(), "descent is not a recovery: {plan:?}");
    }

    // every rank-group rung vetoed: the typed error is surfaced, and the
    // graceful path computes in-process
    let all_vetoed = FaultPlan { fail_unix: true, fail_spawn: true, ..FaultPlan::no_tcp() };
    let opts = options_over(TransportMode::Auto, all_vetoed);
    let mut work = mesh.clone();
    let err = engine.smooth_ft(&mut work, &opts).unwrap_err();
    assert!(matches!(err, DistError::Spawn(_)), "got {err}");
    let mut degraded = mesh.clone();
    let report = engine.smooth_with(&mut degraded, &opts);
    assert_eq!(degraded.coords(), oracle.coords());
    assert_eq!(report, oracle_report);
}

/// Satellite 6: the diagnosis channel distinguishes a connection lost to
/// a **still-alive** peer (`ConnLost`, from a scripted drop) from wire
/// corruption (`corrupt stream`) — same socket, same EOF-adjacent
/// symptoms, different typed causes.
#[test]
fn diagnosis_distinguishes_conn_lost_from_wire_corruption() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let (oracle, _) = oracle_2d(&engine, &mesh);

    let mut dropped = mesh.clone();
    let (_, drop_stats) = engine
        .smooth_ft(
            &mut dropped,
            &options_over(
                TransportMode::UnixSocket,
                FaultPlan::drop_conn_at(1, FaultPoint::Color { iter: 2, color: 0 }),
            ),
        )
        .expect("dropped connection must be recoverable");
    assert_eq!(dropped.coords(), oracle.coords());
    assert_eq!(drop_stats.recoveries.len(), 1);
    assert!(
        drop_stats.recoveries[0].contains("lost connection to rank 1"),
        "drop diagnosis: {:?}",
        drop_stats.recoveries[0]
    );
    assert!(
        !drop_stats.recoveries[0].contains("corrupt"),
        "a dropped connection is not corruption: {:?}",
        drop_stats.recoveries[0]
    );

    let mut corrupted = mesh.clone();
    let (_, corrupt_stats) = engine
        .smooth_ft(
            &mut corrupted,
            &options_over(TransportMode::UnixSocket, FaultPlan::corrupt(1, 2, 77)),
        )
        .expect("corruption must be recoverable");
    assert_eq!(corrupted.coords(), oracle.coords());
    assert_eq!(corrupt_stats.recoveries.len(), 1);
    assert!(
        corrupt_stats.recoveries[0].contains("corrupt stream"),
        "corruption diagnosis: {:?}",
        corrupt_stats.recoveries[0]
    );
    assert!(
        !corrupt_stats.recoveries[0].contains("lost connection"),
        "corruption is not a lost connection: {:?}",
        corrupt_stats.recoveries[0]
    );
}

/// The seeded CI matrix over sockets: the same property the pipe-backend
/// seeds pin, with the seed space now including dropped connections.
#[test]
fn seeded_fault_matrix_over_sockets_is_bit_identical() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let num_colors = engine.inner().interface_classes().len() as u32;
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    for (seed, mode) in
        (1..=6u64).zip([TransportMode::UnixSocket, TransportMode::TcpLoopback].into_iter().cycle())
    {
        let plan = FaultPlan::from_seed(seed, 4, 3, num_colors);
        let mut work = mesh.clone();
        let (report, stats) = engine
            .smooth_ft(&mut work, &options_over(mode, plan.clone()))
            .unwrap_or_else(|e| panic!("seed {seed} over {mode:?} ({plan:?}): {e}"));
        assert_eq!(work.coords(), oracle.coords(), "seed {seed} over {mode:?}");
        assert_eq!(report, oracle_report, "seed {seed} over {mode:?}");
        assert!(stats.recoveries.len() <= 1, "seed {seed}: {:?}", stats.recoveries);
    }
}

// ---------------------------------------------------------------------
// PR 10: mid-overlap chaos. `FtOptions::default()` already runs the
// overlap multiplexer, so every cell above exercises it implicitly; the
// cells below pin the hard case explicitly — the fault fires while a
// color round's frames are still in flight (the victim was released
// into color c while the coordinator is still draining round c-1, so
// the kill/drop/stall/corruption lands mid-drain, with partial frames
// in the reassembly buffers and queued forwards unflushed) — and the
// serialized `overlap=off` loop recovers the same bytes from the same
// script.
// ---------------------------------------------------------------------

fn options_overlap(mode: TransportMode, overlap: bool, faults: FaultPlan) -> FtOptions {
    FtOptions { overlap, read_timeout_ms: 1_000, ..options_over(mode, faults) }
}

/// {pipes, unix, tcp} × {kill, drop-conn, stall, corrupt} injected at a
/// mid-round color boundary of iteration 2, each cell run under both
/// the overlap multiplexer and the serialized oracle loop: detected,
/// recovered, bit-identical (coords AND report) to the in-process
/// oracle either way.
#[test]
fn overlap_mid_round_fault_matrix_2d_recovers_bit_identical() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(3), 4, PartitionMethod::Rcb);
    let num_colors = engine.inner().interface_classes().len() as u32;
    let (oracle, oracle_report) = oracle_2d(&engine, &mesh);
    // color ≥ 1 of a mid iteration: the ColorStep for this color is what
    // drains the previous round, so the fault fires with that round's
    // frames in flight
    let mid = FaultPoint::Color { iter: 2, color: (num_colors / 2).max(1) };
    let cells: [(FaultPlan, &str); 4] = [
        (FaultPlan::kill_at(2, mid), "exit code"),
        (FaultPlan::drop_conn_at(1, mid), "lost connection"),
        (FaultPlan::stall_at(3, mid, 30_000), "stalled"),
        (FaultPlan::corrupt(2, 2, 140), "corrupt stream"),
    ];
    for mode in ALL_MODES {
        for (plan, diagnosis) in &cells {
            for overlap in [true, false] {
                let opts = options_overlap(mode, overlap, plan.clone());
                let mut work = mesh.clone();
                let (report, stats) = engine
                    .smooth_ft(&mut work, &opts)
                    .unwrap_or_else(|e| panic!("{mode:?} × {plan:?}, overlap={overlap}: {e}"));
                assert_eq!(
                    work.coords(),
                    oracle.coords(),
                    "coords: {mode:?} × {plan:?}, overlap={overlap}"
                );
                assert_eq!(report, oracle_report, "report: {mode:?} × {plan:?}, overlap={overlap}");
                assert!(
                    !stats.recoveries.is_empty(),
                    "{mode:?} × {plan:?}, overlap={overlap} must recover"
                );
                assert!(
                    stats.recoveries.iter().any(|r| r.contains(diagnosis)),
                    "{mode:?} × {plan:?}, overlap={overlap}: diagnosis should mention \
                     {diagnosis:?}, got {:?}",
                    stats.recoveries
                );
            }
        }
    }
}

/// The 3D slice of the mid-overlap matrix: a kill and a dropped
/// connection per substrate, injected at a mid-round color boundary
/// with the multiplexer explicitly on. Stall and corruption handling
/// are dimension-generic and pinned by the 2D matrix above.
#[test]
fn overlap_mid_round_faults_3d_recover_bit_identical() {
    let mesh = lms_mesh3d::generators::perturbed_tet_grid(7, 6, 7, 0.35, 9);
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(2).with_tol(-1.0);
    let engine = DistResidentEngine3::by_method(&mesh, params, 4, PartitionMethod::Rcb);
    let num_colors = engine.inner().interface_classes().len() as u32;
    let mut oracle = mesh.clone();
    let oracle_report = engine.inner().smooth(&mut oracle, 2);
    let mid = FaultPoint::Color { iter: 2, color: (num_colors / 2).max(1) };
    for mode in ALL_MODES {
        for plan in [FaultPlan::kill_at(0, mid), FaultPlan::drop_conn_at(3, mid)] {
            let opts = options_overlap(mode, true, plan.clone());
            let mut work = mesh.clone();
            let (report, stats) = engine
                .smooth_ft(&mut work, &opts)
                .unwrap_or_else(|e| panic!("3D {mode:?} × {plan:?}: {e}"));
            assert_eq!(work.coords(), oracle.coords(), "3D coords: {mode:?} × {plan:?}");
            assert_eq!(report, oracle_report, "3D report: {mode:?} × {plan:?}");
            assert_eq!(stats.recoveries.len(), 1, "3D {mode:?} × {plan:?}");
        }
    }
}

/// The shutdown satellite: teardown reaps every child and surfaces an
/// abnormal death (here an injected `_exit(113)`) as a typed, diagnosable
/// error instead of swallowing it.
#[test]
fn shutdown_surfaces_abnormal_rank_death() {
    let mesh = mesh_2d();
    let engine = DistResidentEngine::by_method(&mesh, params_2d(2), 3, PartitionMethod::Rcb);
    let inner = engine.inner();
    let dom = inner.engine().domain();
    let cfg = DomainConfig::from(inner.engine().params());
    let coords = mesh.coords();
    let scores: Vec<(f64, bool)> = dom.elements().iter().map(|&e| dom.score(coords, e)).collect();
    let mut transport = ProcessTransport::spawn(
        &dom,
        &cfg,
        inner.blocks(),
        inner.exchange_schedule(),
        5_000,
        FaultPlan::kill_at(1, FaultPoint::Interior { iter: 1 }),
        false,
        true,
    )
    .expect("spawn");
    transport.try_gather(coords, &scores).expect("gather");
    // rank 1 dies on receipt of this frame; the coordinator doesn't look
    // at the streams again before tearing down
    transport.try_interior_phase().expect("interior broadcast");
    match transport.shutdown() {
        Err(DistError::Shutdown { failures }) => {
            assert_eq!(failures.len(), 1);
            let (rank, status) = failures[0];
            assert_eq!(rank, 1);
            assert_eq!(status.exit_code(), INJECTED_KILL_EXIT);
        }
        other => panic!("teardown must report the dead rank, got {other:?}"),
    }
}
