//! Deterministic fault injection — the adversary of the chaos suite.
//!
//! A [`FaultPlan`] scripts failures against a distributed run: kill rank
//! *p* right before a chosen protocol step, stall it past the
//! coordinator's read timeout, or corrupt one byte of one of its outgoing
//! frames (exercising the wire v2 checksum). Plans are plain data,
//! threaded into each forked worker at spawn time, so a scripted run is
//! exactly reproducible — which is what lets `tests/chaos.rs` assert
//! that a recovered run is **bit-identical** to a failure-free one.
//!
//! Replacement ranks forked by recovery always get an empty (disarmed)
//! plan: an injected fault fires at most once per scripted rank, never in
//! an infinite kill-respawn-kill loop.
//!
//! Fault points count **worker-local** protocol steps: `iter` is the
//! 1-based count of `Interior` frames the worker process has served (on
//! the failure-free path this equals the global iteration number; during
//! replay a surviving worker's count keeps increasing), and `color` is
//! the color id carried by the `ColorStep` frame.

/// A protocol step of a rank worker's life, addressable by a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Before serving the `iter`-th `Interior` frame (1-based).
    Interior { iter: u32 },
    /// Before sweeping interface color `color` of local iteration `iter`.
    Color { iter: u32, color: u32 },
    /// Before the end-of-iteration re-score of local iteration `iter`.
    Finish { iter: u32 },
}

/// One scripted failure of a rank worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// `_exit` with [`INJECTED_KILL_EXIT`] right before `point` — the
    /// fail-stop regime.
    KillBefore { point: FaultPoint },
    /// Sleep `ms` milliseconds right before `point` — with `ms` beyond
    /// the coordinator's read timeout, the livelock regime.
    StallBefore { point: FaultPoint, ms: u64 },
    /// XOR one byte of the worker's `frame`-th outgoing frame (0-based,
    /// counting every frame it writes), at offset `byte` modulo the
    /// frame's checksummed region — the silent-corruption regime the
    /// wire v2 CRC32c detects.
    CorruptOutFrame { frame: u64, byte: usize },
    /// Close both stream ends right before `point` and stay alive — the
    /// network-partition regime: the coordinator sees EOF on a rank that
    /// `waitpid` still reports running, and must diagnose
    /// `DistError::ConnLost` (never block reaping a process that has not
    /// exited).
    DropConnBefore { point: FaultPoint },
    /// Write every outgoing frame one byte per `write(2)`, flushing
    /// between bytes — the maximally fragmented stream a slow or
    /// misbehaving network can deliver. A correct coordinator reassembles
    /// it invisibly: no recovery, bit-identical run.
    ShortWrite,
    /// Sleep `per_frame_ms` before each outgoing frame — the slow-peer
    /// regime. Below the coordinator's read timeout this must be
    /// invisible (no recovery, bit-identical); beyond it, it is the
    /// stall regime by another name.
    SlowPeer { per_frame_ms: u64 },
}

/// Exit code of a worker leaving via an injected [`WorkerFault::KillBefore`]
/// (distinguishable from a clean exit, a panic (101) and a stream error
/// (102) in the reaped wait status).
pub const INJECTED_KILL_EXIT: i32 = 113;

/// Exit code of a socket worker scripted to refuse connecting
/// ([`FaultPlan::refuse_connect`]): it leaves before ever dialling the
/// coordinator, whose `accept` then times out into
/// `DistError::ConnRefused`.
pub const REFUSED_CONNECT_EXIT: i32 = 115;

/// A scripted set of failures for one distributed run: `(rank, fault)`
/// pairs plus an optional spawn veto. Empty plans (the default) make the
/// fault machinery vanish from the hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults by target rank; one rank may carry several.
    pub rank_faults: Vec<(u32, WorkerFault)>,
    /// Veto spawning entirely — exercises the graceful degradation to
    /// the in-process transport.
    pub fail_spawn: bool,
    /// Veto the TCP transport rung (probe and spawn) — exercises the
    /// degradation ladder's TCP → Unix-socket step.
    pub fail_tcp: bool,
    /// Veto the Unix-socket transport rung — with [`fail_tcp`] set too,
    /// the ladder lands on fork/pipes.
    ///
    /// [`fail_tcp`]: Self::fail_tcp
    pub fail_unix: bool,
    /// Socket ranks that exit instead of dialling the coordinator
    /// (`_exit(REFUSED_CONNECT_EXIT)` before the first connect attempt):
    /// the refused-connect regime, surfacing as `DistError::ConnRefused`
    /// when the coordinator's accept times out.
    pub refuse_connect: Vec<u32>,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Kill `rank` right before `point`.
    pub fn kill_at(rank: u32, point: FaultPoint) -> Self {
        FaultPlan::none().with(rank, WorkerFault::KillBefore { point })
    }

    /// Stall `rank` for `ms` milliseconds right before `point`.
    pub fn stall_at(rank: u32, point: FaultPoint, ms: u64) -> Self {
        FaultPlan::none().with(rank, WorkerFault::StallBefore { point, ms })
    }

    /// Corrupt byte `byte` of `rank`'s `frame`-th outgoing frame.
    pub fn corrupt(rank: u32, frame: u64, byte: usize) -> Self {
        FaultPlan::none().with(rank, WorkerFault::CorruptOutFrame { frame, byte })
    }

    /// Veto spawning (graceful-degradation path).
    pub fn no_spawn() -> Self {
        FaultPlan { fail_spawn: true, ..FaultPlan::default() }
    }

    /// Veto the TCP rung (degradation-ladder path).
    pub fn no_tcp() -> Self {
        FaultPlan { fail_tcp: true, ..FaultPlan::default() }
    }

    /// Veto the Unix-socket rung (degradation-ladder path).
    pub fn no_unix() -> Self {
        FaultPlan { fail_unix: true, ..FaultPlan::default() }
    }

    /// Drop `rank`'s connection (close the stream, stay alive) right
    /// before `point`.
    pub fn drop_conn_at(rank: u32, point: FaultPoint) -> Self {
        FaultPlan::none().with(rank, WorkerFault::DropConnBefore { point })
    }

    /// Make `rank` write every frame one byte per syscall.
    pub fn short_write(rank: u32) -> Self {
        FaultPlan::none().with(rank, WorkerFault::ShortWrite)
    }

    /// Delay each of `rank`'s outgoing frames by `per_frame_ms`.
    pub fn slow_peer(rank: u32, per_frame_ms: u64) -> Self {
        FaultPlan::none().with(rank, WorkerFault::SlowPeer { per_frame_ms })
    }

    /// Make `rank` refuse to connect at all (socket transports only).
    pub fn refuse(rank: u32) -> Self {
        FaultPlan { refuse_connect: vec![rank], ..FaultPlan::default() }
    }

    /// Add one more scripted fault.
    pub fn with(mut self, rank: u32, fault: WorkerFault) -> Self {
        self.rank_faults.push((rank, fault));
        self
    }

    /// No faults scripted at all?
    pub fn is_empty(&self) -> bool {
        self.rank_faults.is_empty()
            && !self.fail_spawn
            && !self.fail_tcp
            && !self.fail_unix
            && self.refuse_connect.is_empty()
    }

    /// Derive one scripted fault deterministically from `seed` — the
    /// chaos suite's seed matrix. The same `(seed, num_ranks, max_iters,
    /// num_colors)` always yields the same plan: an xorshift64* walk
    /// picks a target rank, an iteration, and one of the five fault
    /// shapes (kill before interior / color / finish, drop the
    /// connection before a color step, or corrupt a frame byte).
    pub fn from_seed(seed: u64, num_ranks: u32, max_iters: u32, num_colors: u32) -> Self {
        assert!(num_ranks > 0 && max_iters > 0 && num_colors > 0);
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let rank = (next() % num_ranks as u64) as u32;
        let iter = 1 + (next() % max_iters as u64) as u32;
        match next() % 5 {
            0 => FaultPlan::kill_at(rank, FaultPoint::Interior { iter }),
            1 => {
                let color = (next() % num_colors as u64) as u32;
                FaultPlan::kill_at(rank, FaultPoint::Color { iter, color })
            }
            2 => FaultPlan::kill_at(rank, FaultPoint::Finish { iter }),
            3 => {
                let color = (next() % num_colors as u64) as u32;
                FaultPlan::drop_conn_at(rank, FaultPoint::Color { iter, color })
            }
            _ => FaultPlan::corrupt(rank, next() % 16, (next() % 256) as usize),
        }
    }

    /// Slice the plan down to what one worker process needs.
    pub(crate) fn worker_faults(&self, rank: u32) -> WorkerFaults {
        let mut wf = WorkerFaults::default();
        for &(r, fault) in &self.rank_faults {
            if r != rank {
                continue;
            }
            match fault {
                WorkerFault::KillBefore { point } => wf.kill.push(point),
                WorkerFault::StallBefore { point, ms } => wf.stall.push((point, ms)),
                WorkerFault::CorruptOutFrame { frame, byte } => wf.corrupt.push((frame, byte)),
                WorkerFault::DropConnBefore { point } => wf.drop_conn.push(point),
                WorkerFault::ShortWrite => wf.short_write = true,
                WorkerFault::SlowPeer { per_frame_ms } => wf.slow_frame_ms = per_frame_ms,
            }
        }
        wf.refuse_connect = self.refuse_connect.contains(&rank);
        wf
    }
}

/// One worker's slice of a [`FaultPlan`], evaluated inside the forked
/// rank process.
#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerFaults {
    kill: Vec<FaultPoint>,
    stall: Vec<(FaultPoint, u64)>,
    corrupt: Vec<(u64, usize)>,
    drop_conn: Vec<FaultPoint>,
    pub(crate) short_write: bool,
    pub(crate) slow_frame_ms: u64,
    pub(crate) refuse_connect: bool,
}

impl WorkerFaults {
    /// Fire any fault scripted for `point`: an injected kill leaves the
    /// process via `_exit(INJECTED_KILL_EXIT)`; a stall sleeps through
    /// the coordinator's read timeout, then lets the worker continue.
    pub(crate) fn hit(&self, point: FaultPoint) {
        if self.kill.contains(&point) {
            crate::sys::exit_now(INJECTED_KILL_EXIT);
        }
        for &(p, ms) in &self.stall {
            if p == point {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }

    /// A connection drop is scripted for `point` (the serve loop closes
    /// its streams and idles instead of exiting).
    pub(crate) fn hit_drop(&self, point: FaultPoint) -> bool {
        self.drop_conn.contains(&point)
    }

    /// The byte offset to corrupt in outgoing frame number `frame`, if
    /// one is scripted.
    pub(crate) fn corrupt_byte(&self, frame: u64) -> Option<usize> {
        self.corrupt.iter().find(|&&(f, _)| f == frame).map(|&(_, b)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed, 4, 3, 5);
            let b = FaultPlan::from_seed(seed, 4, 3, 5);
            assert_eq!(a, b, "seed {seed} must be deterministic");
            assert_eq!(a.rank_faults.len(), 1);
            let (rank, fault) = a.rank_faults[0];
            assert!(rank < 4);
            match fault {
                WorkerFault::KillBefore { point }
                | WorkerFault::StallBefore { point, .. }
                | WorkerFault::DropConnBefore { point } => {
                    let (FaultPoint::Interior { iter }
                    | FaultPoint::Color { iter, .. }
                    | FaultPoint::Finish { iter }) = point;
                    assert!((1..=3).contains(&iter));
                    if let FaultPoint::Color { color, .. } = point {
                        assert!(color < 5);
                    }
                }
                WorkerFault::CorruptOutFrame { .. }
                | WorkerFault::ShortWrite
                | WorkerFault::SlowPeer { .. } => {}
            }
        }
        // different seeds explore different faults
        let distinct: std::collections::HashSet<String> =
            (0..64u64).map(|s| format!("{:?}", FaultPlan::from_seed(s, 4, 3, 5))).collect();
        assert!(distinct.len() > 16, "seed walk should spread over the fault space");
    }

    #[test]
    fn worker_slicing_keeps_only_own_faults() {
        let plan = FaultPlan::kill_at(1, FaultPoint::Interior { iter: 2 })
            .with(2, WorkerFault::CorruptOutFrame { frame: 5, byte: 9 });
        assert!(plan.worker_faults(0).kill.is_empty());
        assert_eq!(plan.worker_faults(1).kill, vec![FaultPoint::Interior { iter: 2 }]);
        assert_eq!(plan.worker_faults(2).corrupt_byte(5), Some(9));
        assert_eq!(plan.worker_faults(2).corrupt_byte(4), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::no_spawn().is_empty());
        assert!(!FaultPlan::no_tcp().is_empty());
        assert!(!FaultPlan::no_unix().is_empty());
        assert!(!FaultPlan::refuse(1).is_empty());
    }

    #[test]
    fn network_fault_slices_reach_the_right_worker() {
        let plan = FaultPlan::drop_conn_at(0, FaultPoint::Color { iter: 1, color: 2 })
            .with(1, WorkerFault::ShortWrite)
            .with(2, WorkerFault::SlowPeer { per_frame_ms: 7 });
        assert!(plan.worker_faults(0).hit_drop(FaultPoint::Color { iter: 1, color: 2 }));
        assert!(!plan.worker_faults(0).hit_drop(FaultPoint::Color { iter: 1, color: 3 }));
        assert!(!plan.worker_faults(1).hit_drop(FaultPoint::Color { iter: 1, color: 2 }));
        assert!(plan.worker_faults(1).short_write);
        assert!(!plan.worker_faults(0).short_write);
        assert_eq!(plan.worker_faults(2).slow_frame_ms, 7);
        assert_eq!(plan.worker_faults(1).slow_frame_ms, 0);
        let refusing = FaultPlan::refuse(3);
        assert!(refusing.worker_faults(3).refuse_connect);
        assert!(!refusing.worker_faults(2).refuse_connect);
    }
}
