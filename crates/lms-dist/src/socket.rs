//! The socket transport layer: rank workers served over Unix-domain and
//! TCP stream sockets — the multi-node rung of the transport ladder.
//!
//! Everything above the byte stream is shared with the pipe backend: the
//! same `lms_part::wire` v3 frames (length-prefixed + CRC32c, exact
//! f64-bit payloads), the same coordinator drain/forward phasing, the
//! same `TimeoutReader` poll bounds and checkpoint/restart recovery. This
//! module owns only what a socket adds on top:
//!
//! * **Addressing** — [`SocketSpec`] parses/prints the two address forms
//!   (`tcp:host:port`, `unix:/path`), with helpers for an ephemeral TCP
//!   loopback port and a per-process temp Unix path.
//! * **Supervised connection establishment** — [`connect_with_retry`]
//!   dials with bounded retry and exponential backoff plus deterministic
//!   jitter ([`RetryPolicy`]); [`Listener`] accepts under a `poll(2)`
//!   deadline without ever blocking on an aborted connection. Both ends
//!   of the handshake surface as typed failures
//!   ([`DistError::ConnRefused`]) instead of hangs.
//! * **Rank identification** — a connecting worker's first frame is an
//!   identifying `Hello` carrying its rank id, so accept order never
//!   matters: the coordinator parks out-of-order connections and binds
//!   each stream to its rank.
//! * **Standalone workers** — [`serve_standalone_tri`] /
//!   [`serve_standalone_tet`] rebuild the rank engine deterministically
//!   from the shared problem parameters (MPI input-deck style: every
//!   process derives the same partition from the same mesh), connect,
//!   and serve — the `lms-tool dist-worker` entry point, so ranks can
//!   live on other hosts.
//!
//! Streams are converted to [`crate::sys::Fd`] descriptors once
//! established, so the entire coordinator stack (buffered framing,
//! timeout reads, EINTR/EAGAIN retry loops) is byte-for-byte the pipe
//! code path — which is what lets the cross-transport oracle demand
//! bit-identical coordinates *and* reports across {pipes, unix,
//! tcp-loopback}.

use crate::error::DistError;
use crate::fault::FaultPlan;
use crate::sys::{self, Fd};
use crate::transport::{Link, ProcessTransport};
use lms_part::wire::{Frame, WireError, WIRE_VERSION};
use lms_part::{ExchangeSchedule, MessagePlan};
use lms_smooth::domain::{DomainConfig, DomainPoint, SmoothDomain};
use lms_smooth::resident::{ResidentBlock, ResidentRank};
use lms_smooth::{ExchangeVolume, FtResidentTransport};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, IntoRawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A socket address a rank group listens on or dials: `tcp:host:port` or
/// `unix:/path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketSpec {
    /// A TCP endpoint, `host:port` (port 0 binds ephemeral; the bound
    /// [`Listener::target`] reports the resolved port).
    Tcp(String),
    /// A Unix-domain socket path (unlinked when the listener drops).
    Unix(PathBuf),
}

impl SocketSpec {
    /// Parse an address string: `tcp:host:port`, `unix:/path`, or a bare
    /// `host:port` (treated as TCP).
    pub fn parse(s: &str) -> Result<SocketSpec, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("tcp address needs host:port, got {addr:?}"));
            }
            Ok(SocketSpec::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix address needs a path".to_string());
            }
            Ok(SocketSpec::Unix(PathBuf::from(path)))
        } else if s.rsplit_once(':').is_some() && !s.contains('/') {
            Ok(SocketSpec::Tcp(s.to_string()))
        } else {
            Err(format!("unrecognised address {s:?} (want tcp:host:port or unix:/path)"))
        }
    }

    /// An ephemeral TCP loopback endpoint (`127.0.0.1:0`): bind resolves
    /// the port.
    pub fn tcp_loopback() -> SocketSpec {
        SocketSpec::Tcp("127.0.0.1:0".to_string())
    }

    /// A fresh Unix socket path under the temp dir, unique per process
    /// and call (coordinator pid + counter).
    pub fn temp_unix() -> SocketSpec {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let mut path = std::env::temp_dir();
        path.push(format!("lms-dist-{}-{}.sock", sys::getpid(), n));
        SocketSpec::Unix(path)
    }
}

impl std::fmt::Display for SocketSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketSpec::Tcp(addr) => write!(f, "tcp:{addr}"),
            SocketSpec::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Supervision knobs of the socket transport's connection layer.
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Bounded connect retries a dialling worker makes before giving up.
    pub connect_attempts: u32,
    /// Backoff base delay: retry `n` waits about `base << n` ms…
    pub connect_base_ms: u64,
    /// …capped here (with deterministic jitter in `[cap/2, cap]`).
    pub connect_max_ms: u64,
    /// Coordinator-side bound on waiting for a rank to connect and
    /// identify itself; expiry surfaces as [`DistError::ConnRefused`].
    pub accept_timeout_ms: u64,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            connect_attempts: 12,
            connect_base_ms: 2,
            connect_max_ms: 250,
            accept_timeout_ms: 5_000,
        }
    }
}

impl Supervisor {
    /// The dial-side retry policy for `rank` (jitter seeded by the rank
    /// id so a simultaneous connect storm from k spawned workers
    /// de-synchronises deterministically).
    pub fn retry_policy(&self, rank: u32) -> RetryPolicy {
        RetryPolicy {
            attempts: self.connect_attempts,
            base_ms: self.connect_base_ms,
            max_ms: self.connect_max_ms,
            seed: 0x6c6d_735f_6469_7374 ^ u64::from(rank),
        }
    }
}

/// Bounded exponential backoff with deterministic jitter, used by
/// [`connect_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total connect attempts (≥ 1).
    pub attempts: u32,
    /// Delay cap doubling base, in ms.
    pub base_ms: u64,
    /// Delay cap ceiling, in ms.
    pub max_ms: u64,
    /// Jitter seed — same seed, same delays (reproducible chaos runs).
    pub seed: u64,
}

impl RetryPolicy {
    /// The backoff delay after failed attempt number `attempt` (0-based):
    /// jittered into `[cap/2, cap]` where `cap = min(base << attempt,
    /// max)`. Deterministic in `(seed, attempt)`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let cap = self.base_ms.saturating_mul(1u64 << attempt.min(16)).clamp(1, self.max_ms.max(1));
        let mut s = (self.seed ^ u64::from(attempt + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let lo = cap / 2;
        lo + s % (cap - lo + 1)
    }
}

fn split_tcp(stream: TcpStream) -> io::Result<(Fd, Fd)> {
    // small control frames dominate the protocol: never Nagle-delay them
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok((Fd::from_raw(stream.into_raw_fd()), Fd::from_raw(writer.into_raw_fd())))
}

fn split_unix(stream: UnixStream) -> io::Result<(Fd, Fd)> {
    let writer = stream.try_clone()?;
    Ok((Fd::from_raw(stream.into_raw_fd()), Fd::from_raw(writer.into_raw_fd())))
}

fn connect_once(spec: &SocketSpec) -> io::Result<(Fd, Fd)> {
    match spec {
        SocketSpec::Tcp(addr) => split_tcp(TcpStream::connect(addr.as_str())?),
        SocketSpec::Unix(path) => split_unix(UnixStream::connect(path)?),
    }
}

/// Dial `spec` under `policy`: bounded attempts with exponential-backoff
/// jittered sleeps between them, returning the stream as `(read end,
/// write end)` descriptors. The final error is the last connect failure.
pub fn connect_with_retry(spec: &SocketSpec, policy: &RetryPolicy) -> io::Result<(Fd, Fd)> {
    let mut last: Option<io::Error> = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(policy.delay_ms(attempt - 1)));
        }
        match connect_once(spec) {
            Ok(fds) => return Ok(fds),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("connect attempted zero times")))
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A bound, non-blocking rank listener. Accepts are `poll(2)`-bounded —
/// a connection aborted between poll and accept, or a worker that never
/// dials, can only cost the deadline, never a hang. Dropping a Unix
/// listener unlinks its socket path.
pub struct Listener {
    kind: ListenerKind,
    target: SocketSpec,
}

impl Listener {
    /// Bind `spec`. TCP port 0 resolves to an ephemeral port (see
    /// [`target`](Self::target)); a stale Unix socket file is replaced.
    pub fn bind(spec: &SocketSpec) -> io::Result<Listener> {
        match spec {
            SocketSpec::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                let target = SocketSpec::Tcp(listener.local_addr()?.to_string());
                Ok(Listener { kind: ListenerKind::Tcp(listener), target })
            }
            SocketSpec::Unix(path) => {
                // a stale socket file from a crashed coordinator would
                // make bind fail with AddrInUse; replace it
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener {
                    kind: ListenerKind::Unix(listener, path.clone()),
                    target: SocketSpec::Unix(path.clone()),
                })
            }
        }
    }

    /// The resolved address workers should dial (ephemeral TCP ports
    /// filled in).
    pub fn target(&self) -> &SocketSpec {
        &self.target
    }

    /// The raw listening descriptor (a forked worker sheds its inherited
    /// copy).
    pub(crate) fn raw_fd(&self) -> i32 {
        match &self.kind {
            ListenerKind::Tcp(l) => l.as_raw_fd(),
            ListenerKind::Unix(l, _) => l.as_raw_fd(),
        }
    }

    /// Accept one connection within `timeout_ms`, returning `(read end,
    /// write end)`. Never blocks past the deadline: the listener stays
    /// non-blocking and the wait happens in `poll(2)`.
    pub(crate) fn accept_stream(&self, timeout_ms: u64) -> io::Result<(Fd, Fd)> {
        let deadline = lms_trace::now_ns().saturating_add(timeout_ms.saturating_mul(1_000_000));
        loop {
            let accepted = match &self.kind {
                ListenerKind::Tcp(l) => l.accept().map(|(s, _)| split_tcp(s)),
                ListenerKind::Unix(l, _) => l.accept().map(|(s, _)| split_unix(s)),
            };
            match accepted {
                Ok(fds) => return fds,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::Interrupted
                            | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    let now = lms_trace::now_ns();
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("no worker connected within {timeout_ms}ms"),
                        ));
                    }
                    let wait_ms = (((deadline - now) / 1_000_000) + 1).min(50) as i32;
                    sys::wait_readable(self.raw_fd(), wait_ms)?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let ListenerKind::Unix(_, path) = &self.kind {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The socket implementation of [`lms_smooth::FtResidentTransport`]: the
/// [`ProcessTransport`] coordinator core with the byte stream moved from
/// pipes to supervised sockets. Workers are either forked locally and
/// dial back over the socket ([`spawn_forked`](Self::spawn_forked)) or
/// external standalone processes — possibly on other hosts — accepted by
/// rank id ([`listen`](Self::listen) + [`serve_standalone_tri`] /
/// [`serve_standalone_tet`] on the worker side).
pub struct SocketTransport<'a, const C: usize, D: SmoothDomain<C>> {
    inner: ProcessTransport<'a, C, D>,
}

impl<'a, const C: usize, D: SmoothDomain<C>> SocketTransport<'a, C, D> {
    /// Bind `spec`, fork one worker per part, and have each dial back
    /// with supervised retry/backoff and identify itself by rank. The
    /// coordinator core (detection, checkpoints, recovery) is exactly
    /// [`ProcessTransport`]'s.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_forked(
        spec: &SocketSpec,
        dom: &'a D,
        cfg: &DomainConfig,
        blocks: &'a [ResidentBlock<C>],
        schedule: &'a ExchangeSchedule,
        read_timeout_ms: i32,
        faults: FaultPlan,
        profile: bool,
        overlap: bool,
        supervisor: &Supervisor,
    ) -> Result<Self, DistError> {
        check_rung_veto(spec, &faults)?;
        let listener = Listener::bind(spec).map_err(DistError::Spawn)?;
        let link = Link::Socket {
            listener,
            supervisor: supervisor.clone(),
            external: false,
            parked: Vec::new(),
        };
        ProcessTransport::spawn_linked(
            dom,
            cfg,
            blocks,
            schedule,
            read_timeout_ms,
            faults,
            profile,
            overlap,
            link,
        )
        .map(|inner| SocketTransport { inner })
    }

    /// Serve a rank group of **external** standalone workers: accept one
    /// connection per part on the pre-bound `listener` (in any order —
    /// each worker identifies itself by rank). The caller launches the
    /// workers, e.g. `lms-tool dist-worker --connect <addr> --rank <p>`
    /// per part, on any reachable host.
    #[allow(clippy::too_many_arguments)]
    pub fn listen(
        listener: Listener,
        dom: &'a D,
        cfg: &DomainConfig,
        blocks: &'a [ResidentBlock<C>],
        schedule: &'a ExchangeSchedule,
        read_timeout_ms: i32,
        profile: bool,
        overlap: bool,
        supervisor: &Supervisor,
    ) -> Result<Self, DistError> {
        let link = Link::Socket {
            listener,
            supervisor: supervisor.clone(),
            external: true,
            parked: Vec::new(),
        };
        ProcessTransport::spawn_linked(
            dom,
            cfg,
            blocks,
            schedule,
            read_timeout_ms,
            FaultPlan::none(),
            profile,
            overlap,
            link,
        )
        .map(|inner| SocketTransport { inner })
    }

    /// The address the rank group is served on.
    pub fn local_addr(&self) -> &SocketSpec {
        self.inner.socket_addr().expect("socket transport always has a listener")
    }

    /// Number of rank connections.
    pub fn num_ranks(&self) -> usize {
        self.inner.num_ranks()
    }

    /// Drain the coordinator-side transport profile (see
    /// [`ProcessTransport::take_profile`]).
    pub fn take_profile(&mut self) -> lms_trace::TransportProfile {
        self.inner.take_profile()
    }

    /// Orderly teardown (see [`ProcessTransport::shutdown`]).
    pub fn shutdown(&mut self) -> Result<(), DistError> {
        self.inner.shutdown()
    }

    /// Unwrap the shared coordinator core — the engines drive one
    /// concrete transport type whatever the byte stream underneath.
    pub fn into_inner(self) -> ProcessTransport<'a, C, D> {
        self.inner
    }
}

/// The degradation-ladder veto hooks: a scripted `fail_tcp`/`fail_unix`
/// makes the corresponding rung unavailable at bind time, exactly like a
/// host without that socket family.
fn check_rung_veto(spec: &SocketSpec, faults: &FaultPlan) -> Result<(), DistError> {
    let vetoed = match spec {
        SocketSpec::Tcp(_) => faults.fail_tcp,
        SocketSpec::Unix(_) => faults.fail_unix,
    };
    if vetoed {
        return Err(DistError::Spawn(io::Error::other(format!(
            "injected transport veto: {} rung unavailable",
            match spec {
                SocketSpec::Tcp(_) => "TCP",
                SocketSpec::Unix(_) => "Unix-socket",
            }
        ))));
    }
    Ok(())
}

impl<const C: usize, D: SmoothDomain<C>> FtResidentTransport<D::Point>
    for SocketTransport<'_, C, D>
{
    type Error = DistError;

    fn try_gather(&mut self, coords: &[D::Point], scores: &[(f64, bool)]) -> Result<(), DistError> {
        self.inner.try_gather(coords, scores)
    }

    fn try_interior_phase(&mut self) -> Result<(), DistError> {
        self.inner.try_interior_phase()
    }

    fn try_color_step(
        &mut self,
        color: usize,
        volume: &mut ExchangeVolume,
    ) -> Result<(), DistError> {
        self.inner.try_color_step(color, volume)
    }

    fn try_finish_iteration(
        &mut self,
        deltas: &mut Vec<f64>,
        volume: &mut ExchangeVolume,
    ) -> Result<(), DistError> {
        self.inner.try_finish_iteration(deltas, volume)
    }

    fn try_scatter(&mut self, coords: &mut [D::Point]) -> Result<(), DistError> {
        self.inner.try_scatter(coords)
    }

    fn take_checkpoint(&mut self) -> Result<(), DistError> {
        self.inner.take_checkpoint()
    }

    fn deferred_checkpoints(&self) -> bool {
        self.inner.deferred_checkpoints()
    }

    fn recover(&mut self, failure: &DistError) -> Result<(), DistError> {
        self.inner.recover(failure)
    }
}

/// Connect to a coordinator at `spec` and serve rank `rank` until it
/// sends `Shutdown`. The rank state is built from the same topology the
/// coordinator holds — a standalone worker derives it from the shared
/// problem parameters (same mesh generation, same partition method ⇒
/// same blocks), MPI input-deck style, so nothing but run state ever
/// crosses the wire.
#[allow(clippy::too_many_arguments)]
pub fn serve_standalone<const C: usize, D: SmoothDomain<C>>(
    dom: &D,
    cfg: &DomainConfig,
    rank: u32,
    block: &ResidentBlock<C>,
    schedule: &ExchangeSchedule,
    plan: &MessagePlan,
    spec: &SocketSpec,
    supervisor: &Supervisor,
) -> io::Result<()> {
    let (input, mut output) = connect_with_retry(spec, &supervisor.retry_policy(rank))?;
    // identifying Hello first: binds this stream to its rank id on the
    // coordinator side, whatever order the workers dialled in
    Frame::Hello {
        version: WIRE_VERSION,
        dim: <D::Point as DomainPoint>::DIM as u8,
        rank,
        profile: false,
    }
    .write_to(&mut output)?;
    let mut resident = ResidentRank::new(dom, cfg, rank, block, schedule, plan);
    match crate::worker::serve(&mut resident, input, output, &Default::default()) {
        Ok(_) => Ok(()),
        Err(WireError::Io(e)) => Err(e),
        Err(e) => Err(io::Error::other(e.to_string())),
    }
}

/// [`serve_standalone`] for a triangle-mesh rank rebuilt from a
/// [`lms_smooth::ResidentEngine`] (the worker constructs the engine from
/// the same inputs as the coordinator).
pub fn serve_standalone_tri(
    engine: &lms_smooth::ResidentEngine,
    rank: u32,
    spec: &SocketSpec,
    supervisor: &Supervisor,
) -> io::Result<()> {
    let dom = engine.engine().domain();
    let cfg = DomainConfig::from(engine.engine().params());
    let plan = MessagePlan::build(engine.exchange_schedule());
    serve_standalone(
        &dom,
        &cfg,
        rank,
        &engine.blocks()[rank as usize],
        engine.exchange_schedule(),
        &plan,
        spec,
        supervisor,
    )
}

/// [`serve_standalone`] for a tetrahedral-mesh rank rebuilt from a
/// [`lms_mesh3d::ResidentEngine3`].
pub fn serve_standalone_tet(
    engine: &lms_mesh3d::ResidentEngine3,
    rank: u32,
    spec: &SocketSpec,
    supervisor: &Supervisor,
) -> io::Result<()> {
    let dom = engine.engine().domain();
    let cfg = engine.engine().params().domain_config();
    let plan = MessagePlan::build(engine.exchange_schedule());
    serve_standalone(
        &dom,
        &cfg,
        rank,
        &engine.blocks()[rank as usize],
        engine.exchange_schedule(),
        &plan,
        spec,
        supervisor,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn spec_parsing_roundtrips_and_rejects_garbage() {
        let tcp = SocketSpec::parse("tcp:127.0.0.1:7000").unwrap();
        assert_eq!(tcp, SocketSpec::Tcp("127.0.0.1:7000".into()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:7000");
        let bare = SocketSpec::parse("10.0.0.2:9001").unwrap();
        assert_eq!(bare, SocketSpec::Tcp("10.0.0.2:9001".into()));
        let unix = SocketSpec::parse("unix:/tmp/lms.sock").unwrap();
        assert_eq!(unix, SocketSpec::Unix(PathBuf::from("/tmp/lms.sock")));
        assert_eq!(unix.to_string(), "unix:/tmp/lms.sock");
        assert_eq!(SocketSpec::parse(unix.to_string().as_str()).unwrap(), unix);
        assert!(SocketSpec::parse("tcp:noport").is_err());
        assert!(SocketSpec::parse("unix:").is_err());
        assert!(SocketSpec::parse("/just/a/path").is_err());
        assert!(SocketSpec::parse("gibberish").is_err());
    }

    #[test]
    fn temp_unix_paths_are_unique() {
        let a = SocketSpec::temp_unix();
        let b = SocketSpec::temp_unix();
        assert_ne!(a, b);
    }

    #[test]
    fn backoff_delays_are_deterministic_jittered_and_capped() {
        let policy = RetryPolicy { attempts: 12, base_ms: 2, max_ms: 200, seed: 99 };
        for attempt in 0..12 {
            let d = policy.delay_ms(attempt);
            assert_eq!(d, policy.delay_ms(attempt), "deterministic per (seed, attempt)");
            let cap = (2u64 << attempt.min(16)).min(200);
            assert!(
                d >= cap / 2 && d <= cap,
                "attempt {attempt}: {d} outside [{}, {cap}]",
                cap / 2
            );
        }
        // the cap actually grows then saturates
        assert!(policy.delay_ms(0) <= 2);
        assert!(policy.delay_ms(11) >= 100);
        // different seeds jitter differently somewhere in the window
        let other = RetryPolicy { seed: 7, ..policy };
        assert!(
            (0..12).any(|a| policy.delay_ms(a) != other.delay_ms(a)),
            "jitter should depend on the seed"
        );
    }

    #[test]
    fn connect_with_retry_reaches_a_late_listener() {
        // bind ephemeral, extract the target, then drop the listener and
        // rebind it only after a delay: the first attempts get refused
        // and the backoff retries must land once it exists
        let first = Listener::bind(&SocketSpec::tcp_loopback()).unwrap();
        let spec = first.target().clone();
        drop(first);
        let spec_for_server = spec.clone();
        let server = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            let listener = Listener::bind(&spec_for_server).unwrap();
            let (mut r, _w) = listener.accept_stream(2_000).unwrap();
            let mut buf = [0u8; 2];
            std::io::Read::read_exact(&mut r, &mut buf).unwrap();
            buf
        });
        let policy = RetryPolicy { attempts: 40, base_ms: 5, max_ms: 40, seed: 3 };
        let (_r, mut w) = connect_with_retry(&spec, &policy).unwrap();
        w.write_all(b"ok").unwrap();
        assert_eq!(&server.join().unwrap(), b"ok");
    }

    #[test]
    fn connect_with_retry_gives_up_after_bounded_attempts() {
        // an ephemeral port bound then released: nothing listens there
        let gone = Listener::bind(&SocketSpec::tcp_loopback()).unwrap();
        let spec = gone.target().clone();
        drop(gone);
        let policy = RetryPolicy { attempts: 3, base_ms: 1, max_ms: 2, seed: 1 };
        let err = connect_with_retry(&spec, &policy).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn accept_times_out_instead_of_blocking() {
        let listener = Listener::bind(&SocketSpec::temp_unix()).unwrap();
        let t0 = std::time::Instant::now();
        let err = listener.accept_stream(60).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(t0.elapsed().as_millis() >= 55, "must actually wait the deadline");
    }

    #[test]
    fn unix_listener_unlinks_its_path_on_drop() {
        let spec = SocketSpec::temp_unix();
        let SocketSpec::Unix(path) = spec.clone() else { unreachable!() };
        let listener = Listener::bind(&spec).unwrap();
        assert!(path.exists());
        drop(listener);
        assert!(!path.exists());
    }

    #[test]
    fn socket_streams_carry_wire_frames_exactly() {
        for spec in [SocketSpec::tcp_loopback(), SocketSpec::temp_unix()] {
            let listener = Listener::bind(&spec).unwrap();
            let target = listener.target().clone();
            let client = std::thread::spawn(move || {
                let policy = RetryPolicy { attempts: 10, base_ms: 2, max_ms: 20, seed: 5 };
                let (mut r, mut w) = connect_with_retry(&target, &policy).unwrap();
                Frame::RoundDone.write_to(&mut w).unwrap();
                Frame::read_from(&mut r).unwrap()
            });
            let (mut r, mut w) = listener.accept_stream(2_000).unwrap();
            assert!(matches!(Frame::read_from(&mut r).unwrap(), Frame::RoundDone));
            let coords = vec![0.25f64, -1.5, f64::MIN_POSITIVE];
            Frame::HaloDelta { part: 3, slots: vec![7, 9], coords: coords.clone() }
                .write_to(&mut w)
                .unwrap();
            match client.join().unwrap() {
                Frame::HaloDelta { part, slots, coords: got } => {
                    assert_eq!(part, 3);
                    assert_eq!(slots, vec![7, 9]);
                    assert_eq!(got, coords, "f64 payloads must cross the socket exactly");
                }
                f => panic!("unexpected frame {f:?}"),
            }
        }
    }
}
