//! The rank worker: the frame-driven loop a forked rank process runs for
//! its whole life.
//!
//! A worker owns exactly one [`ResidentRank`] — its part's resident block
//! state, inherited copy-on-write from the coordinator image at fork
//! time — and serves the coordinator's frames in pipe order: the FIFO
//! pipe is the synchronisation, so a `ColorStep` can never overtake the
//! previous round's forwarded `HaloDelta` frames. Every frame handler is
//! one [`ResidentRank`] call; the sweep arithmetic is therefore the
//! in-process engine's, expression for expression, which is what makes
//! the cross-transport oracle hold bit for bit.

use crate::codec::{flat_to_points, points_to_flat};
use crate::sys::{exit_now, Fd};
use lms_part::wire::{Frame, WireError, WIRE_VERSION};
use lms_smooth::domain::{DomainPoint, SmoothDomain};
use lms_smooth::resident::ResidentRank;
use std::io::{BufReader, BufWriter, Write};

/// Serve the coordinator until `Shutdown` (or a dead pipe), then leave
/// the process via `_exit` — never by returning into the forked parent
/// image. Exit codes: 0 clean shutdown, 101 panic, 102 stream error.
pub(crate) fn run_worker<const C: usize, D: SmoothDomain<C>>(
    mut rank: ResidentRank<'_, C, D>,
    input: Fd,
    output: Fd,
) -> ! {
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serve(&mut rank, input, output)));
    match outcome {
        Ok(Ok(())) => exit_now(0),
        Ok(Err(e)) => {
            eprintln!("lms-dist rank worker: stream error: {e}");
            exit_now(102);
        }
        Err(_) => {
            eprintln!("lms-dist rank worker: panicked");
            exit_now(101);
        }
    }
}

fn serve<const C: usize, D: SmoothDomain<C>>(
    rank: &mut ResidentRank<'_, C, D>,
    input: Fd,
    output: Fd,
) -> Result<(), WireError> {
    let mut rd = BufReader::new(input);
    let mut wr = BufWriter::new(output);

    match Frame::read_from(&mut rd)? {
        Frame::Hello { version, dim, rank: id } => {
            assert_eq!(version, WIRE_VERSION, "wire version mismatch");
            assert_eq!(dim as usize, <D::Point as DomainPoint>::DIM, "dimension mismatch");
            assert_eq!(id, rank.part(), "rank id mismatch");
        }
        f => panic!("expected Hello handshake, got {f:?}"),
    }

    loop {
        match Frame::read_from(&mut rd)? {
            Frame::Gather { coords, scores } => {
                let points = flat_to_points::<D::Point>(&coords);
                rank.load_block(&points, &scores);
            }
            Frame::Interior => rank.sweep_interior(),
            Frame::ColorStep { color } => {
                rank.apply_pending();
                rank.sweep_color(color as usize);
                rank.route_moved();
                for i in 0..rank.outbox().len() {
                    let batch = &rank.outbox()[i];
                    if batch.slots.is_empty() {
                        continue;
                    }
                    Frame::HaloDelta {
                        part: batch.dst,
                        slots: batch.slots.clone(),
                        coords: points_to_flat(&batch.coords),
                    }
                    .write_to(&mut wr)?;
                }
                Frame::RoundDone.write_to(&mut wr)?;
                wr.flush()?;
            }
            Frame::HaloDelta { slots, coords, .. } => {
                let points = flat_to_points::<D::Point>(&coords);
                rank.stash_deltas(&slots, &points);
            }
            Frame::FinishIteration => {
                rank.finalize_iteration();
                Frame::Report { delta: rank.take_delta() }.write_to(&mut wr)?;
                wr.flush()?;
            }
            Frame::ScatterRequest => {
                Frame::Scatter { coords: points_to_flat(rank.owned_coords()) }.write_to(&mut wr)?;
                wr.flush()?;
            }
            Frame::Shutdown => return Ok(()),
            f => panic!("coordinator sent unexpected frame {f:?}"),
        }
    }
}
