//! The rank worker: the frame-driven loop a rank process runs for its
//! whole life.
//!
//! A worker owns exactly one [`ResidentRank`] — its part's resident block
//! state, inherited copy-on-write from the coordinator image at fork
//! time, or rebuilt deterministically from the shared problem parameters
//! when running standalone over a socket. It serves the coordinator's
//! frames in stream order: the FIFO byte stream (pipe or socket) is the
//! synchronisation, so a `ColorStep` can never overtake the previous
//! round's forwarded `HaloDelta` frames. Every frame handler is one
//! [`ResidentRank`] call; the sweep arithmetic is therefore the
//! in-process engine's, expression for expression, which is what makes
//! the cross-transport oracle hold bit for bit.
//!
//! The worker also hosts the test side of the fault-injection harness: a
//! [`WorkerFaults`] script (usually empty) can kill or stall the process
//! right before a chosen protocol step, corrupt a byte of an outgoing
//! frame, drop the connection while staying alive, fragment every write
//! down to single bytes, or delay each outgoing frame — simulating
//! fail-stop deaths, livelocks, silent wire corruption, and the network
//! partitions only a socket transport can see.

use crate::codec::{flat_to_points, points_to_flat};
use crate::fault::{FaultPoint, WorkerFaults};
use lms_part::wire::{Frame, WireError, WIRE_VERSION};
use lms_smooth::domain::{DomainPoint, SmoothDomain};
use lms_smooth::resident::ResidentRank;
use std::io::{Read, Write};

/// How a serve loop ended short of a stream error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ServeOutcome {
    /// The coordinator sent `Shutdown`: exit cleanly.
    Shutdown,
    /// A scripted [`WorkerFault::DropConnBefore`] fired: the caller must
    /// close both stream ends and **stay alive**, so the coordinator
    /// diagnoses `ConnLost` rather than `RankExited`.
    ///
    /// [`WorkerFault::DropConnBefore`]: crate::fault::WorkerFault::DropConnBefore
    DropConn,
}

/// Serve the coordinator until `Shutdown` (or a dead stream), then leave
/// the process via `_exit` — never by returning into the forked parent
/// image. Exit codes: 0 clean shutdown, 101 panic, 102 stream error,
/// [`crate::fault::INJECTED_KILL_EXIT`] injected kill. A scripted
/// connection drop closes the streams and idles the process instead of
/// exiting — the coordinator's recovery kills it.
pub(crate) fn run_worker<const C: usize, D, R, W>(
    mut rank: ResidentRank<'_, C, D>,
    input: R,
    output: W,
    faults: WorkerFaults,
) -> !
where
    D: SmoothDomain<C>,
    R: Read,
    W: Write,
{
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        serve(&mut rank, input, output, &faults)
    }));
    match outcome {
        Ok(Ok(ServeOutcome::Shutdown)) => crate::sys::exit_now(0),
        Ok(Ok(ServeOutcome::DropConn)) => {
            // streams dropped when serve returned; park until recovery
            // reaps us, so waitpid keeps reporting this process alive
            std::thread::sleep(std::time::Duration::from_secs(120));
            crate::sys::exit_now(0);
        }
        Ok(Err(e)) => {
            eprintln!("lms-dist rank worker: stream error: {e}");
            crate::sys::exit_now(102);
        }
        Err(_) => {
            eprintln!("lms-dist rank worker: panicked");
            crate::sys::exit_now(101);
        }
    }
}

/// The worker's frame writer: counts outgoing frames and applies the
/// scripted wire-level faults. Single-byte corruption serialises the
/// victim frame to a scratch buffer, flips the byte, and writes the
/// damaged image raw — the stream carries exactly what a torn wire
/// would. Short-write mode pushes every frame one byte per flush — the
/// maximally fragmented stream — and slow-peer mode sleeps before each
/// frame.
struct FrameWriter<'f, W: Write> {
    inner: W,
    faults: &'f WorkerFaults,
    sent: u64,
}

impl<W: Write> FrameWriter<'_, W> {
    fn put(&mut self, frame: &Frame) -> std::io::Result<()> {
        if self.faults.slow_frame_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.faults.slow_frame_ms));
        }
        let idx = self.sent;
        self.sent += 1;
        if let Some(byte) = self.faults.corrupt_byte(idx) {
            let mut bytes = Vec::new();
            frame.write_to(&mut bytes)?;
            // target the checksum+payload region (offset ≥ 4): keeping
            // the length prefix intact keeps the stream re-framable, so
            // the coordinator diagnoses BadChecksum deterministically
            // instead of a timeout
            let i = 4 + byte % (bytes.len() - 4);
            bytes[i] ^= 0x5a;
            self.write_bytes(&bytes)
        } else if self.faults.short_write {
            let mut bytes = Vec::new();
            frame.write_to(&mut bytes)?;
            self.write_bytes(&bytes)
        } else {
            frame.write_to(&mut self.inner)
        }
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if self.faults.short_write {
            // one byte per syscall: flush between bytes so any buffering
            // below cannot coalesce them back together
            for b in bytes {
                self.inner.write_all(std::slice::from_ref(b))?;
                self.inner.flush()?;
            }
            Ok(())
        } else {
            self.inner.write_all(bytes)
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

pub(crate) fn serve<const C: usize, D, R, W>(
    rank: &mut ResidentRank<'_, C, D>,
    input: R,
    output: W,
    faults: &WorkerFaults,
) -> Result<ServeOutcome, WireError>
where
    D: SmoothDomain<C>,
    R: Read,
    W: Write,
{
    let mut rd = std::io::BufReader::new(input);
    let mut wr = FrameWriter { inner: std::io::BufWriter::new(output), faults, sent: 0 };

    match Frame::read_from(&mut rd)? {
        Frame::Hello { version, dim, rank: id, profile } => {
            assert_eq!(version, WIRE_VERSION, "wire version mismatch");
            assert_eq!(dim as usize, <D::Point as DomainPoint>::DIM, "dimension mismatch");
            assert_eq!(id, rank.part(), "rank id mismatch");
            // profiled runs time every sweep phase rank-side and ship the
            // totals back as deltas in each Report frame
            rank.set_timing(profile);
        }
        f => panic!("expected Hello handshake, got {f:?}"),
    }

    // worker-local iteration counter: the number of Interior frames
    // served so far — the `iter` coordinate of fault points
    let mut iter: u32 = 0;
    // sparse-checkpoint baseline: the owned coordinates as the
    // coordinator last saw them — reset by every Gather load, advanced
    // by every ScatterDelta reply. Kept as flat bits so the diff is the
    // same bitwise comparison the cross-transport oracle demands.
    let mut ckpt_base: Vec<f64> = Vec::new();
    let mut owned: Vec<D::Point> = Vec::new();
    let outcome = loop {
        match Frame::read_from(&mut rd)? {
            Frame::Gather { coords, scores } => {
                let points = flat_to_points::<D::Point>(&coords);
                rank.load_block(&points, &scores);
                owned.clear();
                rank.owned_coords_into(&mut owned);
                ckpt_base = points_to_flat(&owned);
            }
            Frame::Interior => {
                iter += 1;
                if faults.hit_drop(FaultPoint::Interior { iter }) {
                    break ServeOutcome::DropConn;
                }
                faults.hit(FaultPoint::Interior { iter });
                rank.sweep_interior();
            }
            Frame::ColorStep { color } => {
                if faults.hit_drop(FaultPoint::Color { iter, color }) {
                    break ServeOutcome::DropConn;
                }
                faults.hit(FaultPoint::Color { iter, color });
                rank.apply_pending();
                rank.sweep_color(color as usize);
                rank.route_moved();
                for i in 0..rank.outbox().len() {
                    let batch = &rank.outbox()[i];
                    if batch.slots.is_empty() {
                        continue;
                    }
                    wr.put(&Frame::HaloDelta {
                        part: batch.dst,
                        slots: batch.slots.clone(),
                        coords: points_to_flat(&batch.coords),
                    })?;
                }
                wr.put(&Frame::RoundDone)?;
                wr.flush()?;
            }
            Frame::HaloDelta { slots, coords, .. } => {
                let points = flat_to_points::<D::Point>(&coords);
                rank.stash_deltas(&slots, &points);
            }
            Frame::FinishIteration => {
                if faults.hit_drop(FaultPoint::Finish { iter }) {
                    break ServeOutcome::DropConn;
                }
                faults.hit(FaultPoint::Finish { iter });
                rank.finalize_iteration();
                // phase timings ride as *deltas* (take_phases drains), so
                // a respawned rank's report never double-counts and the
                // coordinator can simply accumulate; all-zero when the
                // handshake did not request profiling
                wr.put(&Frame::Report { delta: rank.take_delta(), phases: rank.take_phases() })?;
                wr.flush()?;
            }
            Frame::ScatterRequest => {
                owned.clear();
                rank.owned_coords_into(&mut owned);
                wr.put(&Frame::Scatter { coords: points_to_flat(&owned) })?;
                wr.flush()?;
            }
            Frame::ScatterDeltaRequest => {
                owned.clear();
                rank.owned_coords_into(&mut owned);
                let flat = points_to_flat(&owned);
                let dim = <D::Point as DomainPoint>::DIM;
                assert_eq!(flat.len(), ckpt_base.len(), "sparse scatter before any gather");
                let mut slots: Vec<u32> = Vec::new();
                let mut coords: Vec<f64> = Vec::new();
                for s in 0..owned.len() {
                    let cur = &flat[s * dim..(s + 1) * dim];
                    let base = &mut ckpt_base[s * dim..(s + 1) * dim];
                    if cur.iter().zip(base.iter()).any(|(a, b)| a.to_bits() != b.to_bits()) {
                        slots.push(s as u32);
                        coords.extend_from_slice(cur);
                        base.copy_from_slice(cur);
                    }
                }
                wr.put(&Frame::ScatterDelta { slots, coords })?;
                wr.flush()?;
            }
            Frame::Shutdown => break ServeOutcome::Shutdown,
            f => panic!("coordinator sent unexpected frame {f:?}"),
        }
    };
    // rd/wr drop here, closing both stream ends before the caller parks
    Ok(outcome)
}
