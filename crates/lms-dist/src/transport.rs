//! The multi-process transport: MPI-style ranks as forked worker
//! processes over Unix pipes, driven by the coordinator through the
//! `lms_part::wire` frame protocol.
//!
//! [`ProcessTransport::spawn`] forks one process per part. Each child
//! inherits the engine's immutable topology — its
//! [`ResidentBlock`], the [`ExchangeSchedule`] and the domain view —
//! copy-on-write at fork time, builds its [`ResidentRank`] and serves
//! frames ([`crate::worker`]); only *run state* ever crosses the wire:
//! one gather and one scatter of block coordinates, per-color-step
//! coalesced halo-delta batches, and per-iteration stat reports.
//!
//! Delta routing is coordinator-mediated and deadlock-free by phasing:
//! after broadcasting a `ColorStep` the coordinator first **drains**
//! every rank's output up to its `RoundDone` marker (ranks block writing
//! at worst until the coordinator reaches them — no cycle, the
//! coordinator only reads), then **forwards** the buffered per-pair
//! frames to their destinations (every rank is back in its read loop,
//! stashing deltas as they arrive — again no cycle). Frames are
//! forwarded in ascending source-part order, matching the in-process
//! pull order, and the traffic counters are charged with the same
//! `halo_frame_wire_len` formula — which is why the cross-transport
//! oracle can demand *report* equality, not just coordinate equality.

use crate::sys::{self, Fd};
use crate::worker;
use lms_part::wire::{halo_frame_wire_len, Frame, WIRE_VERSION};
use lms_part::{ExchangeSchedule, MessagePlan};
use lms_smooth::domain::{DomainConfig, DomainPoint, SmoothDomain};
use lms_smooth::resident::{ResidentBlock, ResidentRank};
use lms_smooth::{ExchangeVolume, ResidentTransport};
use std::io::{BufReader, BufWriter, Write};

/// One rank's coordinator-side endpoints.
struct RankChannel {
    pid: i32,
    to_rank: BufWriter<Fd>,
    from_rank: BufReader<Fd>,
}

/// The forked-process implementation of
/// [`lms_smooth::ResidentTransport`]: one OS process per part, wire
/// frames over two pipes per rank, coordinator-mediated delta
/// forwarding. See the module docs for the phasing argument.
pub struct ProcessTransport<'a, const C: usize, P: DomainPoint> {
    blocks: &'a [ResidentBlock<C>],
    ranks: Vec<RankChannel>,
    /// Per-destination forward queue, drained every color step.
    forward: Vec<Vec<Frame>>,
    shut_down: bool,
    _point: std::marker::PhantomData<fn() -> P>,
}

impl<'a, const C: usize, P: DomainPoint> ProcessTransport<'a, C, P> {
    /// Fork one rank worker per part and complete the wire handshake.
    ///
    /// The domain, config, blocks and schedule are captured by the
    /// children as copy-on-write images; the coordinator keeps only the
    /// blocks (its gather/scatter maps) and the pipe endpoints.
    pub fn spawn<D: SmoothDomain<C, Point = P>>(
        dom: &D,
        cfg: &DomainConfig,
        blocks: &'a [ResidentBlock<C>],
        schedule: &ExchangeSchedule,
    ) -> std::io::Result<Self> {
        let plan = MessagePlan::build(schedule);
        let k = blocks.len();
        // create every pipe pair up front so each child can shed all
        // descriptors that are not its own two
        let mut pipes = Vec::with_capacity(k);
        for _ in 0..k {
            let to_rank = sys::pipe()?; // (rank reads, coordinator writes)
            let from_rank = sys::pipe()?; // (coordinator reads, rank writes)
            pipes.push((to_rank.0, to_rank.1, from_rank.0, from_rank.1));
        }
        let mut pids = Vec::with_capacity(k);
        for p in 0..k {
            // SAFETY: the child touches no parent lock or thread — it
            // builds its rank from the inherited image and enters the
            // single-threaded worker loop, leaving only via `_exit`.
            let pid = unsafe { sys::fork() }?;
            if pid == 0 {
                let own_input = pipes[p].0.raw();
                let own_output = pipes[p].3.raw();
                for (i, (r1, w1, r2, w2)) in pipes.iter().enumerate() {
                    sys::close_raw(w1.raw());
                    sys::close_raw(r2.raw());
                    if i != p {
                        sys::close_raw(r1.raw());
                        sys::close_raw(w2.raw());
                    }
                }
                let rank = ResidentRank::new(dom, cfg, p as u32, &blocks[p], schedule, &plan);
                // never returns; the child's copies of `pipes` etc. are
                // reclaimed by the kernel at `_exit`, so no double-close
                worker::run_worker(rank, Fd::from_raw(own_input), Fd::from_raw(own_output));
            }
            pids.push(pid);
        }
        let mut ranks = Vec::with_capacity(k);
        for (p, (child_input, to_rank, from_rank, child_output)) in pipes.into_iter().enumerate() {
            drop(child_input);
            drop(child_output);
            let mut to_rank = BufWriter::new(to_rank);
            Frame::Hello { version: WIRE_VERSION, dim: P::DIM as u8, rank: p as u32 }
                .write_to(&mut to_rank)?;
            to_rank.flush()?;
            ranks.push(RankChannel { pid: pids[p], to_rank, from_rank: BufReader::new(from_rank) });
        }
        Ok(ProcessTransport {
            blocks,
            ranks,
            forward: (0..k).map(|_| Vec::new()).collect(),
            shut_down: false,
            _point: std::marker::PhantomData,
        })
    }

    /// Number of rank processes.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    fn send(&mut self, p: usize, frame: &Frame) {
        frame
            .write_to(&mut self.ranks[p].to_rank)
            .unwrap_or_else(|e| panic!("rank {p} (pid {}) pipe closed: {e}", self.ranks[p].pid));
    }

    fn flush(&mut self, p: usize) {
        self.ranks[p]
            .to_rank
            .flush()
            .unwrap_or_else(|e| panic!("rank {p} (pid {}) pipe closed: {e}", self.ranks[p].pid));
    }

    fn recv(&mut self, p: usize) -> Frame {
        Frame::read_from(&mut self.ranks[p].from_rank)
            .unwrap_or_else(|e| panic!("rank {p} (pid {}) stream broke: {e}", self.ranks[p].pid))
    }

    fn broadcast(&mut self, frame: &Frame) {
        for p in 0..self.ranks.len() {
            self.send(p, frame);
            self.flush(p);
        }
    }

    /// Orderly teardown: ask every rank to exit, close every pipe end,
    /// then reap. Called by `Drop` too, so a coordinator panic still
    /// reaps its children — and closing the pipes before `waitpid`
    /// guarantees the reap cannot hang: a rank blocked writing into an
    /// undrained pipe (a coordinator unwind mid-round leaves one) gets
    /// `EPIPE` once its read end is gone, a rank blocked reading gets
    /// EOF, and both exit.
    pub fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        for p in 0..self.ranks.len() {
            // best effort: a rank that already died must not abort the
            // teardown of its siblings
            let _ = Frame::Shutdown.write_to(&mut self.ranks[p].to_rank);
            let _ = self.ranks[p].to_rank.flush();
        }
        let pids: Vec<i32> = self.ranks.iter().map(|c| c.pid).collect();
        self.ranks.clear(); // drops both pipe ends of every rank
        for pid in pids {
            let _ = sys::wait_pid(pid);
        }
    }
}

impl<const C: usize, P: DomainPoint> Drop for ProcessTransport<'_, C, P> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<const C: usize, P: DomainPoint> ResidentTransport<P> for ProcessTransport<'_, C, P> {
    fn gather(&mut self, coords: &[P], scores: &[(f64, bool)]) {
        for p in 0..self.ranks.len() {
            let block = &self.blocks[p];
            let mut flat = Vec::with_capacity((block.owned().len() + block.halo().len()) * P::DIM);
            for &v in block.owned().iter().chain(block.halo()) {
                coords[v as usize].push_components(&mut flat);
            }
            let block_scores: Vec<(f64, bool)> =
                block.elem_globals().iter().map(|&t| scores[t as usize]).collect();
            self.send(p, &Frame::Gather { coords: flat, scores: block_scores });
            self.flush(p);
        }
    }

    fn interior_phase(&mut self) {
        self.broadcast(&Frame::Interior);
    }

    fn color_step(&mut self, color: usize, volume: &mut ExchangeVolume) {
        self.broadcast(&Frame::ColorStep { color: color as u32 });
        // drain phase: collect every rank's coalesced per-pair batches,
        // in ascending source-part order
        for p in 0..self.ranks.len() {
            loop {
                match self.recv(p) {
                    Frame::HaloDelta { part: dst, slots, coords } => {
                        volume.halo_messages_sent += 1;
                        volume.halo_entries_sent += slots.len();
                        volume.halo_bytes_sent += halo_frame_wire_len(P::DIM, slots.len());
                        self.forward[dst as usize].push(Frame::HaloDelta {
                            part: p as u32,
                            slots,
                            coords,
                        });
                    }
                    Frame::RoundDone => break,
                    f => panic!("rank {p} sent unexpected frame {f:?} during a color step"),
                }
            }
        }
        // forward phase: every rank is back in its read loop, so these
        // writes drain promptly; FIFO order per pipe keeps them ahead of
        // the next control frame
        for q in 0..self.ranks.len() {
            let mut frames = std::mem::take(&mut self.forward[q]);
            if frames.is_empty() {
                continue;
            }
            for frame in &frames {
                self.send(q, frame);
            }
            self.flush(q);
            frames.clear();
            self.forward[q] = frames;
        }
    }

    fn finish_iteration(&mut self, deltas: &mut Vec<f64>) {
        self.broadcast(&Frame::FinishIteration);
        for p in 0..self.ranks.len() {
            match self.recv(p) {
                Frame::Report { delta } => deltas.push(delta),
                f => panic!("rank {p} sent unexpected frame {f:?} instead of a report"),
            }
        }
    }

    fn scatter(&mut self, coords: &mut [P]) {
        self.broadcast(&Frame::ScatterRequest);
        for p in 0..self.ranks.len() {
            match self.recv(p) {
                Frame::Scatter { coords: flat } => {
                    let owned = self.blocks[p].owned();
                    assert_eq!(flat.len(), owned.len() * P::DIM, "scatter payload length");
                    for (j, &v) in owned.iter().enumerate() {
                        coords[v as usize] =
                            P::from_components(&flat[j * P::DIM..(j + 1) * P::DIM]);
                    }
                }
                f => panic!("rank {p} sent unexpected frame {f:?} instead of a scatter"),
            }
        }
    }
}
