//! The multi-process transport: MPI-style ranks as forked worker
//! processes over Unix pipes, driven by the coordinator through the
//! `lms_part::wire` frame protocol — with failure detection and
//! checkpoint/restart recovery built in.
//!
//! [`ProcessTransport::spawn`] forks one process per part. Each child
//! inherits the engine's immutable topology — its
//! [`ResidentBlock`], the [`ExchangeSchedule`] and the domain view —
//! copy-on-write at fork time, builds its [`ResidentRank`] and serves
//! frames ([`crate::worker`]); only *run state* ever crosses the wire:
//! one gather and one scatter of block coordinates, per-color-step
//! coalesced halo-delta batches, and per-iteration stat reports.
//!
//! Delta routing is coordinator-mediated and deadlock-free by phasing:
//! after broadcasting a `ColorStep` the coordinator first **drains**
//! every rank's output up to its `RoundDone` marker (ranks block writing
//! at worst until the coordinator reaches them — no cycle, the
//! coordinator only reads), then **forwards** the buffered per-pair
//! frames to their destinations (every rank is back in its read loop,
//! stashing deltas as they arrive — again no cycle). Frames are
//! forwarded in ascending source-part order, matching the in-process
//! pull order, and the traffic counters are charged with the same
//! `halo_frame_wire_len` formula — which is why the cross-transport
//! oracle can demand *report* equality, not just coordinate equality.
//!
//! # Fault tolerance
//!
//! The transport implements [`FtResidentTransport`], the fallible,
//! recoverable transport contract `drive_resident_ft` drives:
//!
//! * **Detection** — every coordinator read is bounded by a `poll(2)`
//!   timeout ([`crate::sys::TimeoutReader`]); a failed read or write is
//!   diagnosed against the rank's `waitpid` state into a typed
//!   [`DistError`] (rank exited / rank stalled / corrupt stream — the
//!   latter caught by the wire v2 per-frame CRC32c). The coordinator can
//!   therefore never hang on a dead or wedged rank.
//! * **Checkpoint** — at iteration boundaries the coordinator pulls every
//!   rank's owned coordinates through an out-of-band scatter round into a
//!   global snapshot. That snapshot is a *complete* rank state: at a
//!   boundary a rank is exactly its coordinates plus element scores, and
//!   the scores are bit-reproducible as `dom.score` of those coordinates
//!   (the invariant `resident::ResidentRank` maintains), so checkpoints
//!   carry no score traffic. Checkpoint traffic is deliberately not
//!   charged to any [`ExchangeVolume`] — recovered and failure-free runs
//!   must report identical exchange accounting.
//! * **Recovery** — [`recover`](Self::recover) puts the group back at the
//!   last checkpoint: kill + reap the failed rank, drain every survivor
//!   to protocol quiescence (discarding its in-flight round), fork a
//!   replacement (with a disarmed fault plan), and reload **all** ranks
//!   from the snapshot with fresh `Gather` frames. The driver then
//!   replays the lost iterations; replay is deterministic from the
//!   checkpoint, so recovered runs are bit-identical to failure-free
//!   ones (pinned by `tests/chaos.rs`).

use crate::error::DistError;
use crate::fault::{FaultPlan, WorkerFaults};
use crate::socket::{Listener, SocketSpec, Supervisor};
use crate::sys::{self, Fd, TimeoutReader, WaitStatus};
use crate::worker;
use lms_part::wire::{halo_frame_wire_len, Frame, WireError, WIRE_VERSION};
use lms_part::{ExchangeSchedule, MessagePlan};
use lms_smooth::domain::{DomainConfig, DomainPoint, SmoothDomain};
use lms_smooth::resident::{ResidentBlock, ResidentRank};
use lms_smooth::{ExchangeVolume, FtResidentTransport};
use lms_trace::{now_ns, RankPhaseNanos, TransportProfile};
use std::io::{self, BufReader, BufWriter, Write};

/// The byte-stream substrate a rank group runs over. The coordinator
/// core above it (framing, detection, checkpoints, recovery) is
/// identical either way — only connection establishment differs.
pub(crate) enum Link {
    /// Forked children over two anonymous pipes each (the PR 5/6
    /// backend).
    Pipes,
    /// Stream sockets: workers dial the listener and identify themselves
    /// by rank with their first `Hello` frame.
    Socket {
        listener: Listener,
        supervisor: Supervisor,
        /// Workers are external standalone processes (possibly on other
        /// hosts) launched by the caller — never forked, never reaped.
        external: bool,
        /// Connections accepted while waiting for a different rank,
        /// keyed by the rank id their identifying `Hello` carried.
        parked: Vec<(u32, (Fd, Fd))>,
    },
}

/// The reply the coordinator is owed on a rank's stream, if any —
/// tracked per rank so recovery can drain a survivor to protocol
/// quiescence before reloading it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    None,
    /// Halo-delta frames terminated by a `RoundDone`.
    RoundDone,
    /// One `Report`.
    Report,
    /// One `Scatter`.
    Scatter,
}

/// One rank's coordinator-side endpoints.
struct RankChannel {
    /// The worker's process id — `None` for an external standalone
    /// worker the coordinator never forked (nothing to signal or reap;
    /// its only failure evidence is the stream itself).
    pid: Option<i32>,
    to_rank: BufWriter<Fd>,
    from_rank: BufReader<TimeoutReader>,
    /// Raw descriptor numbers of the two parent-side stream ends, so a
    /// child forked *later* (a recovery respawn) can shed its inherited
    /// copies of them.
    to_fd: i32,
    from_fd: i32,
    pending: Pending,
    /// The child was already `waitpid`-reaped (its wait status consumed
    /// during failure diagnosis) — don't reap twice, and never signal a
    /// pid that may have been recycled.
    reaped: bool,
    /// Last protocol phase this rank completed, `(name, iteration)` —
    /// the coordinator's answer to "where did it wedge?" when the rank
    /// stalls. Reset by a recovery respawn along with the channel.
    last_phase: (&'static str, u32),
}

/// The forked-process implementation of
/// [`lms_smooth::FtResidentTransport`]: one OS process per part, wire
/// frames over two pipes per rank, coordinator-mediated delta
/// forwarding, timeout-bounded reads and checkpoint/respawn recovery.
/// See the module docs for the phasing and recovery arguments.
pub struct ProcessTransport<'a, const C: usize, D: SmoothDomain<C>> {
    dom: &'a D,
    cfg: DomainConfig,
    blocks: &'a [ResidentBlock<C>],
    schedule: &'a ExchangeSchedule,
    plan: MessagePlan,
    link: Link,
    ranks: Vec<RankChannel>,
    /// Per-destination forward queue, drained every color step.
    forward: Vec<Vec<Frame>>,
    /// The recovery checkpoint: the full global coordinate array as of
    /// the last successful iteration boundary (primed by `try_gather`).
    ckpt: Vec<D::Point>,
    faults: FaultPlan,
    read_timeout_ms: i32,
    shut_down: bool,
    /// Profiling enabled: the handshake tells ranks to time their sweep
    /// phases, and the coordinator times its own encode/decode/forward
    /// work. Off by default — the unprofiled wire traffic is
    /// byte-identical either way except for the Hello flag, and the
    /// sweep arithmetic is untouched in both modes.
    profile: bool,
    /// Per-rank sweep-phase totals accumulated from `Report` frames
    /// (survive recovery respawns: workers ship deltas).
    phases: Vec<RankPhaseNanos>,
    /// Coordinator time forwarding halo frames, `[src * parts + dst]`.
    route_pair_ns: Vec<u64>,
    /// Coordinator time serialising frames into rank pipes (includes
    /// the forwarding charged to `route_pair_ns`).
    encode_ns: u64,
    /// Coordinator time reading + decoding frames, poll-wait excluded.
    decode_ns: u64,
    /// Coordinator time blocked in `poll(2)` waiting on rank streams.
    poll_wait_ns: u64,
    /// Coordinator-side iteration counter (interior phases driven), the
    /// iteration coordinate of `RankChannel::last_phase`.
    cur_iter: u32,
}

impl<'a, const C: usize, D: SmoothDomain<C>> ProcessTransport<'a, C, D> {
    /// Fork one rank worker per part and complete the wire handshake.
    ///
    /// The domain, config, blocks and schedule are captured by the
    /// children as copy-on-write images (and kept by the coordinator for
    /// recovery respawns). `read_timeout_ms` bounds every coordinator
    /// read (negative disables the bound); `faults` is the
    /// test-injection script (use [`FaultPlan::none`] for production).
    /// On failure every already-forked child is killed and reaped before
    /// the error returns. `profile` turns on phase timing on both sides
    /// of the wire (rank sweeps and coordinator routing) — observation
    /// only, the computed coordinates are bit-identical either way.
    pub fn spawn(
        dom: &'a D,
        cfg: &DomainConfig,
        blocks: &'a [ResidentBlock<C>],
        schedule: &'a ExchangeSchedule,
        read_timeout_ms: i32,
        faults: FaultPlan,
        profile: bool,
    ) -> Result<Self, DistError> {
        Self::spawn_linked(
            dom,
            cfg,
            blocks,
            schedule,
            read_timeout_ms,
            faults,
            profile,
            Link::Pipes,
        )
    }

    /// [`spawn`](Self::spawn) generalised over the byte-stream substrate
    /// — the shared constructor `SocketTransport` builds on.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn_linked(
        dom: &'a D,
        cfg: &DomainConfig,
        blocks: &'a [ResidentBlock<C>],
        schedule: &'a ExchangeSchedule,
        read_timeout_ms: i32,
        faults: FaultPlan,
        profile: bool,
        link: Link,
    ) -> Result<Self, DistError> {
        if faults.fail_spawn {
            return Err(DistError::Spawn(io::Error::other("injected spawn failure")));
        }
        let k = blocks.len();
        let mut transport = ProcessTransport {
            dom,
            cfg: *cfg,
            blocks,
            schedule,
            plan: MessagePlan::build(schedule),
            link,
            ranks: Vec::with_capacity(k),
            forward: (0..k).map(|_| Vec::new()).collect(),
            ckpt: Vec::new(),
            faults,
            read_timeout_ms,
            shut_down: false,
            profile,
            phases: vec![RankPhaseNanos::default(); k],
            route_pair_ns: vec![0; k * k],
            encode_ns: 0,
            decode_ns: 0,
            poll_wait_ns: 0,
            cur_iter: 0,
        };
        for p in 0..k {
            match transport.spawn_rank(p as u32, true) {
                Ok(channel) => transport.ranks.push(channel),
                Err(e) => {
                    // reap the siblings forked so far; the caller falls
                    // back down the transport ladder
                    for channel in &transport.ranks {
                        if let Some(pid) = channel.pid {
                            let _ = sys::kill_pid(pid);
                        }
                    }
                    let pids: Vec<i32> = transport.ranks.iter().filter_map(|c| c.pid).collect();
                    transport.ranks.clear();
                    for pid in pids {
                        let _ = sys::wait_pid(pid);
                    }
                    transport.shut_down = true;
                    return Err(e);
                }
            }
        }
        Ok(transport)
    }

    /// Number of rank processes.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The socket address the rank group is served on, when the link is
    /// a socket.
    pub(crate) fn socket_addr(&self) -> Option<&SocketSpec> {
        match &self.link {
            Link::Socket { listener, .. } => Some(listener.target()),
            Link::Pipes => None,
        }
    }

    /// Establish one rank worker's channel. `armed` selects whether the
    /// transport's fault script applies — initial spawns are armed,
    /// recovery respawns are not (an injected fault fires at most once).
    fn spawn_rank(&mut self, p: u32, armed: bool) -> Result<RankChannel, DistError> {
        let worker_faults =
            if armed { self.faults.worker_faults(p) } else { WorkerFaults::default() };
        match &self.link {
            Link::Pipes => self.spawn_rank_pipes(p, worker_faults),
            Link::Socket { external: false, .. } => self.spawn_rank_socket(p, worker_faults),
            Link::Socket { external: true, .. } => {
                let (from_rank, to_rank) = self.accept_rank(p)?;
                self.finish_channel(None, from_rank, to_rank, p)
            }
        }
    }

    /// Fork and handshake one rank worker over a fresh pipe pair.
    fn spawn_rank_pipes(
        &mut self,
        p: u32,
        worker_faults: WorkerFaults,
    ) -> Result<RankChannel, DistError> {
        let (child_in, to_rank) = sys::pipe().map_err(DistError::Spawn)?;
        let (from_rank, child_out) = sys::pipe().map_err(DistError::Spawn)?;
        // SAFETY: the child touches no parent lock or thread — it builds
        // its rank from the inherited image and enters the
        // single-threaded worker loop, leaving only via `_exit`.
        let pid = unsafe { sys::fork() }.map_err(DistError::Spawn)?;
        if pid == 0 {
            // shed every coordinator-side descriptor inherited from the
            // parent image: the live channels' ends plus the parent ends
            // of this rank's own fresh pipes
            for channel in &self.ranks {
                sys::close_raw(channel.to_fd);
                sys::close_raw(channel.from_fd);
            }
            sys::close_raw(to_rank.raw());
            sys::close_raw(from_rank.raw());
            let rank = ResidentRank::new(
                self.dom,
                &self.cfg,
                p,
                &self.blocks[p as usize],
                self.schedule,
                &self.plan,
            );
            // never returns; the child's copies of the parent's `Fd`
            // values are reclaimed by the kernel at `_exit`
            worker::run_worker(
                rank,
                Fd::from_raw(child_in.raw()),
                Fd::from_raw(child_out.raw()),
                worker_faults,
            );
        }
        drop(child_in);
        drop(child_out);
        self.finish_channel(Some(pid), from_rank, to_rank, p)
    }

    /// Fork one rank worker that dials the listener back (supervised
    /// retry/backoff), then accept and bind its stream by rank id.
    fn spawn_rank_socket(
        &mut self,
        p: u32,
        worker_faults: WorkerFaults,
    ) -> Result<RankChannel, DistError> {
        let (target, policy, listener_fd, parked_fds) = match &self.link {
            Link::Socket { listener, supervisor, parked, .. } => (
                listener.target().clone(),
                supervisor.retry_policy(p),
                listener.raw_fd(),
                parked.iter().flat_map(|(_, (r, w))| [r.raw(), w.raw()]).collect::<Vec<i32>>(),
            ),
            Link::Pipes => unreachable!("socket spawn on a pipe link"),
        };
        // SAFETY: as in `spawn_rank_pipes` — single-threaded child,
        // leaves only via `_exit`.
        let pid = unsafe { sys::fork() }.map_err(DistError::Spawn)?;
        if pid == 0 {
            // shed every coordinator-side descriptor: live channel
            // streams, the listener, and any parked connections
            for channel in &self.ranks {
                sys::close_raw(channel.to_fd);
                sys::close_raw(channel.from_fd);
            }
            sys::close_raw(listener_fd);
            for fd in parked_fds {
                sys::close_raw(fd);
            }
            if worker_faults.refuse_connect {
                // the refused-connect regime: leave before ever dialling,
                // so the coordinator's accept times out into ConnRefused
                sys::exit_now(crate::fault::REFUSED_CONNECT_EXIT);
            }
            let (input, mut output) = match crate::socket::connect_with_retry(&target, &policy) {
                Ok(fds) => fds,
                Err(e) => {
                    eprintln!("lms-dist rank worker: cannot dial coordinator at {target}: {e}");
                    sys::exit_now(102);
                }
            };
            // identifying Hello: binds this stream to rank `p` whatever
            // order the concurrently-forked workers get accepted in
            let hello = Frame::Hello {
                version: WIRE_VERSION,
                dim: <D::Point as DomainPoint>::DIM as u8,
                rank: p,
                profile: false,
            };
            if hello.write_to(&mut output).is_err() {
                sys::exit_now(102);
            }
            let rank = ResidentRank::new(
                self.dom,
                &self.cfg,
                p,
                &self.blocks[p as usize],
                self.schedule,
                &self.plan,
            );
            worker::run_worker(rank, input, output, worker_faults);
        }
        match self.accept_rank(p) {
            Ok((from_rank, to_rank)) => self.finish_channel(Some(pid), from_rank, to_rank, p),
            Err(e) => {
                // the forked worker may still be dialling or parked in
                // its backoff loop: put it into a definite state
                let _ = sys::kill_pid(pid);
                let _ = sys::wait_pid(pid);
                Err(e)
            }
        }
    }

    /// Accept connections until rank `want`'s stream turns up, parking
    /// any other rank's connection for its own `spawn_rank` call. Every
    /// wait is bounded by the supervisor's accept timeout; expiry means
    /// the rank never dialled — [`DistError::ConnRefused`].
    fn accept_rank(&mut self, want: u32) -> Result<(Fd, Fd), DistError> {
        let Link::Socket { listener, supervisor, parked, .. } = &mut self.link else {
            unreachable!("accept on a pipe link")
        };
        if let Some(i) = parked.iter().position(|&(r, _)| r == want) {
            return Ok(parked.swap_remove(i).1);
        }
        let accept_ms = supervisor.accept_timeout_ms;
        loop {
            let (rfd, wfd) = match listener.accept_stream(accept_ms) {
                Ok(fds) => fds,
                Err(e) => {
                    return Err(DistError::ConnRefused {
                        addr: listener.target().to_string(),
                        attempts: supervisor.connect_attempts,
                        detail: e.to_string(),
                    })
                }
            };
            // the identifying Hello is read under the accept timeout on
            // the *raw* stream: buffered reading could overshoot the
            // frame and lose bytes when the reader is unwrapped below
            let mut reader = TimeoutReader::new(rfd, accept_ms.min(i32::MAX as u64) as i32);
            match Frame::read_from(&mut reader) {
                Ok(Frame::Hello { version, dim, rank: id, .. }) => {
                    if version != WIRE_VERSION || dim as usize != <D::Point as DomainPoint>::DIM {
                        return Err(DistError::Spawn(io::Error::other(format!(
                            "worker handshake mismatch: wire v{version}, dim {dim}"
                        ))));
                    }
                    if id == want {
                        return Ok((reader.into_inner(), wfd));
                    }
                    parked.push((id, (reader.into_inner(), wfd)));
                }
                Ok(f) => {
                    return Err(DistError::Spawn(io::Error::other(format!(
                        "expected identifying Hello, got {f:?}"
                    ))))
                }
                Err(e) => {
                    return Err(DistError::ConnRefused {
                        addr: listener.target().to_string(),
                        attempts: supervisor.connect_attempts,
                        detail: format!("worker connected but did not identify: {e}"),
                    })
                }
            }
        }
    }

    /// Wrap an established stream pair into a [`RankChannel`] and send
    /// the coordinator's handshake `Hello` — the tail shared by all
    /// three link flavours.
    fn finish_channel(
        &mut self,
        pid: Option<i32>,
        from_rank: Fd,
        to_rank: Fd,
        p: u32,
    ) -> Result<RankChannel, DistError> {
        let to_fd = to_rank.raw();
        let from_fd = from_rank.raw();
        let mut to_rank = BufWriter::new(to_rank);
        Frame::Hello {
            version: WIRE_VERSION,
            dim: <D::Point as DomainPoint>::DIM as u8,
            rank: p,
            profile: self.profile,
        }
        .write_to(&mut to_rank)
        .map_err(DistError::Spawn)?;
        to_rank.flush().map_err(DistError::Spawn)?;
        Ok(RankChannel {
            pid,
            to_rank,
            from_rank: BufReader::new(TimeoutReader::new(from_rank, self.read_timeout_ms)),
            to_fd,
            from_fd,
            pending: Pending::None,
            reaped: false,
            last_phase: ("spawn", 0),
        })
    }

    /// Bounded reap of rank `p` after its stream reported EOF/EPIPE: a
    /// worker that died is reapable within the grace loop (it is
    /// mid-`_exit`, merely not yet zombie when the stream event raced
    /// ahead of the reapable state). `None` means the process is *not*
    /// exiting — it closed its stream while alive (a dropped connection),
    /// or it is an external worker with no pid at all — which is exactly
    /// the [`DistError::ConnLost`] regime; never block `waitpid` on it.
    fn reap_dying(&mut self, p: usize) -> Option<WaitStatus> {
        let pid = self.ranks[p].pid?;
        for _ in 0..250 {
            match sys::try_wait_pid(pid) {
                Ok(Some(status)) => {
                    self.ranks[p].reaped = true;
                    return Some(WaitStatus(status));
                }
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(2)),
                Err(_) => return None,
            }
        }
        None
    }

    /// One non-blocking reap attempt (`None` when the process is still
    /// running, already reaped, or external).
    fn try_reap(&mut self, p: usize) -> Option<WaitStatus> {
        let pid = self.ranks[p].pid?;
        match sys::try_wait_pid(pid) {
            Ok(Some(status)) => {
                self.ranks[p].reaped = true;
                Some(WaitStatus(status))
            }
            _ => None,
        }
    }

    /// The [`DistError::ConnLost`] detail string: says whether the
    /// stream's peer is a forked child `waitpid` still reports alive (a
    /// dropped connection / network partition) or an external worker the
    /// coordinator has no pid for.
    fn conn_lost_detail(&self, p: usize, io_err: &io::Error) -> String {
        match self.ranks[p].pid {
            Some(_) => format!("peer closed the stream ({io_err}; process still alive)"),
            None => format!("external worker stream closed ({io_err}; no pid to reap)"),
        }
    }

    /// Classify a failed read on rank `p`'s stream: a checksum or decode
    /// failure is silent corruption; an i/o failure is disambiguated by
    /// the child's `waitpid` state into "rank died" vs "connection lost"
    /// vs "rank stalled".
    fn diagnose_read(&mut self, p: usize, e: WireError) -> DistError {
        let rank = p as u32;
        match e {
            WireError::Io(io_err) => {
                let disconnected = matches!(
                    io_err.kind(),
                    io::ErrorKind::UnexpectedEof
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::BrokenPipe
                );
                if disconnected {
                    if let Some(status) = self.reap_dying(p) {
                        return DistError::RankExited { rank, status };
                    }
                    // the stream is gone but the process is not: a socket
                    // closed mid-protocol (or an external worker hung up)
                    return DistError::ConnLost { rank, detail: self.conn_lost_detail(p, &io_err) };
                }
                match self.try_reap(p) {
                    Some(status) => DistError::RankExited { rank, status },
                    None if io_err.kind() == io::ErrorKind::TimedOut => {
                        let (phase, iter) = self.ranks[p].last_phase;
                        DistError::RankStalled {
                            rank,
                            timeout_ms: self.read_timeout_ms,
                            waited_ms: self.ranks[p].from_rank.get_ref().waited_ns() / 1_000_000,
                            last_phase: format!("{phase}#{iter}"),
                        }
                    }
                    None => DistError::Wire { rank, error: WireError::Io(io_err) },
                }
            }
            error => DistError::Wire { rank, error },
        }
    }

    /// Classify a failed write to rank `p` (EPIPE / ECONNRESET — a dead
    /// child or a dropped connection).
    fn diagnose_write(&mut self, p: usize, e: io::Error) -> DistError {
        let rank = p as u32;
        if matches!(e.kind(), io::ErrorKind::BrokenPipe | io::ErrorKind::ConnectionReset) {
            if let Some(status) = self.reap_dying(p) {
                return DistError::RankExited { rank, status };
            }
            return DistError::ConnLost { rank, detail: self.conn_lost_detail(p, &e) };
        }
        match self.try_reap(p) {
            Some(status) => DistError::RankExited { rank, status },
            None => DistError::Wire { rank, error: WireError::Io(e) },
        }
    }

    fn protocol_error(&self, p: usize, f: &Frame) -> DistError {
        let mut frame = format!("{f:?}");
        frame.truncate(96);
        DistError::Protocol { rank: p as u32, frame }
    }

    /// Record that rank `p` completed protocol phase `name` at the
    /// current iteration — plain field writes, no clock, kept current
    /// even unprofiled so a stall diagnosis can always say where.
    fn mark(&mut self, p: usize, name: &'static str) {
        self.ranks[p].last_phase = (name, self.cur_iter);
    }

    fn send(&mut self, p: usize, frame: &Frame) -> Result<(), DistError> {
        let t0 = if self.profile { now_ns() } else { 0 };
        let result = frame.write_to(&mut self.ranks[p].to_rank);
        if self.profile {
            self.encode_ns += now_ns().saturating_sub(t0);
        }
        match result {
            Ok(()) => Ok(()),
            Err(e) => Err(self.diagnose_write(p, e)),
        }
    }

    fn flush(&mut self, p: usize) -> Result<(), DistError> {
        match self.ranks[p].to_rank.flush() {
            Ok(()) => Ok(()),
            Err(e) => Err(self.diagnose_write(p, e)),
        }
    }

    fn recv(&mut self, p: usize) -> Result<Frame, DistError> {
        if !self.profile {
            return Frame::read_from(&mut self.ranks[p].from_rank)
                .map_err(|e| self.diagnose_read(p, e));
        }
        // split the receive wall time into poll-wait (rank not ready)
        // and decode (bytes moved + frames parsed), using the
        // TimeoutReader's poll accounting as the wait component
        let waited_before = self.ranks[p].from_rank.get_ref().waited_ns();
        let t0 = now_ns();
        let result = Frame::read_from(&mut self.ranks[p].from_rank);
        let wall = now_ns().saturating_sub(t0);
        let waited = self.ranks[p].from_rank.get_ref().waited_ns().saturating_sub(waited_before);
        self.poll_wait_ns += waited;
        self.decode_ns += wall.saturating_sub(waited);
        result.map_err(|e| self.diagnose_read(p, e))
    }

    /// Drain the coordinator-side transport profile: per-rank sweep
    /// phases (as reported over the wire), the forwarding time matrix
    /// and the encode/decode/poll-wait totals. All fields reset to zero;
    /// meaningful only after a run spawned with `profile = true`.
    pub fn take_profile(&mut self) -> TransportProfile {
        TransportProfile {
            rank_phases: std::mem::replace(
                &mut self.phases,
                vec![RankPhaseNanos::default(); self.ranks.len()],
            ),
            route_pair_ns: std::mem::replace(
                &mut self.route_pair_ns,
                vec![0; self.ranks.len() * self.ranks.len()],
            ),
            encode_ns: std::mem::take(&mut self.encode_ns),
            decode_ns: std::mem::take(&mut self.decode_ns),
            poll_wait_ns: std::mem::take(&mut self.poll_wait_ns),
            // remote ranks do not ship the scored-elements counter over
            // the wire (RankPhaseNanos is frozen at wire v3)
            scored_elements: 0,
        }
    }

    /// Send the per-block slices of a global `(coords, scores)` state to
    /// every rank — the gather and the recovery reload are the same wire
    /// traffic.
    fn load_ranks(&mut self, coords: &[D::Point], scores: &[(f64, bool)]) -> Result<(), DistError> {
        for p in 0..self.ranks.len() {
            let block = &self.blocks[p];
            let mut flat =
                Vec::with_capacity((block.owned().len() + block.halo().len()) * D::Point::DIM);
            for &v in block.owned().iter().chain(block.halo()) {
                coords[v as usize].push_components(&mut flat);
            }
            let block_scores: Vec<(f64, bool)> =
                block.elem_globals().iter().map(|&t| scores[t as usize]).collect();
            self.send(p, &Frame::Gather { coords: flat, scores: block_scores })?;
            self.flush(p)?;
            self.mark(p, "gather");
        }
        Ok(())
    }

    /// Drain rank `p` to protocol quiescence: consume whatever reply it
    /// still owes (discarding the abandoned round's data) so its stream
    /// is frame-aligned again.
    fn resync(&mut self, p: usize) -> Result<(), DistError> {
        loop {
            let expected = self.ranks[p].pending;
            if expected == Pending::None {
                return Ok(());
            }
            let frame = self.recv(p)?;
            match (expected, frame) {
                (Pending::RoundDone, Frame::HaloDelta { .. }) => continue,
                (Pending::RoundDone, Frame::RoundDone)
                | (Pending::Report, Frame::Report { .. })
                | (Pending::Scatter, Frame::Scatter { .. }) => {
                    self.ranks[p].pending = Pending::None;
                }
                (_, f) => return Err(self.protocol_error(p, &f)),
            }
        }
    }

    /// Kill and reap rank `p`'s process (no-ops if diagnosis already
    /// consumed its wait status, or for an external worker with no pid —
    /// its only teardown is the channel drop closing the stream).
    fn reap(&mut self, p: usize) {
        if self.ranks[p].reaped {
            return;
        }
        if let Some(pid) = self.ranks[p].pid {
            let _ = sys::kill_pid(pid);
            let _ = sys::wait_pid(pid);
        }
        self.ranks[p].reaped = true;
    }

    /// Reload every rank from the checkpoint: scores are recomputed from
    /// the snapshot coordinates (bit-identical to what the ranks held at
    /// the boundary — see the module docs), then shipped as fresh
    /// `Gather` frames.
    fn reload_all(&mut self) -> Result<(), DistError> {
        let scores: Vec<(f64, bool)> =
            self.dom.elements().iter().map(|&e| self.dom.score(&self.ckpt, e)).collect();
        let coords = std::mem::take(&mut self.ckpt);
        let result = self.load_ranks(&coords, &scores);
        self.ckpt = coords;
        result
    }

    /// Orderly teardown: ask every rank to exit, close every pipe end,
    /// then reap each child — surfacing any nonzero exit status or
    /// signal death as a [`DistError::Shutdown`]. Called (result
    /// discarded) by `Drop` too, so a coordinator panic still reaps its
    /// children. The reap cannot hang: closing the pipes gives blocked
    /// ranks `EPIPE`/EOF, and a rank that still refuses to exit within
    /// the grace window is `SIGKILL`ed.
    pub fn shutdown(&mut self) -> Result<(), DistError> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        for p in 0..self.ranks.len() {
            // best effort: a rank that already died must not abort the
            // teardown of its siblings
            let _ = Frame::Shutdown.write_to(&mut self.ranks[p].to_rank);
            let _ = self.ranks[p].to_rank.flush();
        }
        let channels: Vec<RankChannel> = self.ranks.drain(..).collect();
        let mut failures: Vec<(u32, WaitStatus)> = Vec::new();
        for (p, channel) in channels.into_iter().enumerate() {
            let pid = channel.pid;
            let reaped = channel.reaped;
            drop(channel); // closes both stream ends: EOF/EPIPE unblocks the child
                           // external workers have no pid: the stream close (after the
                           // Shutdown frame above) is their whole teardown
            let Some(pid) = pid else { continue };
            if reaped {
                continue;
            }
            let mut status = None;
            for _ in 0..500 {
                match sys::try_wait_pid(pid) {
                    Ok(Some(s)) => {
                        status = Some(s);
                        break;
                    }
                    Ok(None) => std::thread::sleep(std::time::Duration::from_millis(2)),
                    Err(_) => break,
                }
            }
            let status = match status {
                Some(s) => s,
                None => {
                    let _ = sys::kill_pid(pid);
                    match sys::wait_pid(pid) {
                        Ok(s) => s,
                        Err(_) => continue,
                    }
                }
            };
            let status = WaitStatus(status);
            if !status.clean() {
                failures.push((p as u32, status));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(DistError::Shutdown { failures })
        }
    }
}

impl<const C: usize, D: SmoothDomain<C>> Drop for ProcessTransport<'_, C, D> {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl<const C: usize, D: SmoothDomain<C>> FtResidentTransport<D::Point>
    for ProcessTransport<'_, C, D>
{
    type Error = DistError;

    fn try_gather(&mut self, coords: &[D::Point], scores: &[(f64, bool)]) -> Result<(), DistError> {
        // prime the checkpoint before any wire traffic, so a failure in
        // iteration 1 (or in this very gather) recovers to the initial
        // state
        self.ckpt = coords.to_vec();
        self.load_ranks(coords, scores)
    }

    fn try_interior_phase(&mut self) -> Result<(), DistError> {
        self.cur_iter += 1;
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::Interior)?;
            self.flush(p)?;
            self.mark(p, "interior");
        }
        Ok(())
    }

    fn try_color_step(
        &mut self,
        color: usize,
        volume: &mut ExchangeVolume,
    ) -> Result<(), DistError> {
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::ColorStep { color: color as u32 })?;
            self.flush(p)?;
            self.ranks[p].pending = Pending::RoundDone;
        }
        // drain phase: collect every rank's coalesced per-pair batches,
        // in ascending source-part order
        for p in 0..self.ranks.len() {
            loop {
                match self.recv(p)? {
                    Frame::HaloDelta { part: dst, slots, coords } => {
                        if dst as usize >= self.ranks.len() {
                            let f = Frame::HaloDelta { part: dst, slots, coords };
                            return Err(self.protocol_error(p, &f));
                        }
                        volume.halo_messages_sent += 1;
                        volume.halo_entries_sent += slots.len();
                        volume.halo_bytes_sent += halo_frame_wire_len(D::Point::DIM, slots.len());
                        self.forward[dst as usize].push(Frame::HaloDelta {
                            part: p as u32,
                            slots,
                            coords,
                        });
                    }
                    Frame::RoundDone => {
                        self.ranks[p].pending = Pending::None;
                        self.mark(p, "color_step");
                        break;
                    }
                    f => return Err(self.protocol_error(p, &f)),
                }
            }
        }
        // forward phase: every rank is back in its read loop, so these
        // writes drain promptly; FIFO order per pipe keeps them ahead of
        // the next control frame
        let parts = self.ranks.len();
        for q in 0..parts {
            let mut frames = std::mem::take(&mut self.forward[q]);
            if frames.is_empty() {
                continue;
            }
            for frame in &frames {
                if self.profile {
                    // forwarded frames carry their source part; charge
                    // the write to the (src, dst) routing cell (also
                    // counted in the encode total by `send`)
                    let src = match frame {
                        Frame::HaloDelta { part, .. } => *part as usize,
                        _ => q,
                    };
                    let t0 = now_ns();
                    self.send(q, frame)?;
                    self.route_pair_ns[src * parts + q] += now_ns().saturating_sub(t0);
                } else {
                    self.send(q, frame)?;
                }
            }
            self.flush(q)?;
            frames.clear();
            self.forward[q] = frames;
        }
        Ok(())
    }

    fn try_finish_iteration(&mut self, deltas: &mut Vec<f64>) -> Result<(), DistError> {
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::FinishIteration)?;
            self.flush(p)?;
            self.ranks[p].pending = Pending::Report;
        }
        for p in 0..self.ranks.len() {
            match self.recv(p)? {
                Frame::Report { delta, phases } => {
                    self.ranks[p].pending = Pending::None;
                    if self.profile {
                        self.phases[p].accumulate(phases);
                    }
                    deltas.push(delta);
                    self.mark(p, "finish");
                }
                f => return Err(self.protocol_error(p, &f)),
            }
        }
        Ok(())
    }

    fn try_scatter(&mut self, coords: &mut [D::Point]) -> Result<(), DistError> {
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::ScatterRequest)?;
            self.flush(p)?;
            self.ranks[p].pending = Pending::Scatter;
        }
        for p in 0..self.ranks.len() {
            match self.recv(p)? {
                Frame::Scatter { coords: flat } => {
                    self.ranks[p].pending = Pending::None;
                    let owned = self.blocks[p].owned();
                    if flat.len() != owned.len() * D::Point::DIM {
                        let f = Frame::Scatter { coords: flat };
                        return Err(self.protocol_error(p, &f));
                    }
                    let points = crate::codec::flat_to_points::<D::Point>(&flat);
                    for (&v, &point) in owned.iter().zip(&points) {
                        coords[v as usize] = point;
                    }
                    self.mark(p, "scatter");
                }
                f => return Err(self.protocol_error(p, &f)),
            }
        }
        Ok(())
    }

    /// Pull every rank's owned coordinates through an out-of-band
    /// scatter round into a scratch snapshot, atomically replacing the
    /// checkpoint only once every rank has answered — a failure mid
    /// checkpoint leaves the previous checkpoint valid.
    fn take_checkpoint(&mut self) -> Result<(), DistError> {
        let mut scratch = self.ckpt.clone();
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::ScatterRequest)?;
            self.flush(p)?;
            self.ranks[p].pending = Pending::Scatter;
        }
        for p in 0..self.ranks.len() {
            match self.recv(p)? {
                Frame::Scatter { coords: flat } => {
                    self.ranks[p].pending = Pending::None;
                    let owned = self.blocks[p].owned();
                    if flat.len() != owned.len() * D::Point::DIM {
                        let f = Frame::Scatter { coords: flat };
                        return Err(self.protocol_error(p, &f));
                    }
                    let points = crate::codec::flat_to_points::<D::Point>(&flat);
                    for (&v, &point) in owned.iter().zip(&points) {
                        scratch[v as usize] = point;
                    }
                    self.mark(p, "checkpoint");
                }
                f => return Err(self.protocol_error(p, &f)),
            }
        }
        self.ckpt = scratch;
        Ok(())
    }

    /// Put the group back at the last checkpoint after `failure`: kill +
    /// reap the implicated rank, drain every survivor to quiescence
    /// (survivors failing here join the failed set), respawn the failed
    /// ranks with disarmed fault plans, drop stale forward queues, and
    /// reload everyone from the snapshot. May itself fail (another rank
    /// dying mid-recovery, or fork refusing) — the driver retries
    /// against its recovery budget, and repeated reload failures
    /// re-enter here with the newly implicated rank.
    fn recover(&mut self, failure: &DistError) -> Result<(), DistError> {
        assert!(!self.ckpt.is_empty(), "recover called before the initial gather");
        let mut failed: Vec<u32> = match failure {
            DistError::RankExited { rank, .. }
            | DistError::RankStalled { rank, .. }
            | DistError::Wire { rank, .. }
            | DistError::ConnLost { rank, .. }
            | DistError::Protocol { rank, .. } => vec![*rank],
            // a respawn that never (re)connected names no rank — but its
            // stale dead channel fails resync below and re-implicates
            // itself, so repeated recovery attempts converge
            DistError::Spawn(_) | DistError::ConnRefused { .. } | DistError::Shutdown { .. } => {
                Vec::new()
            }
        };
        for p in 0..self.ranks.len() {
            if failed.contains(&(p as u32)) {
                continue;
            }
            if self.resync(p).is_err() {
                failed.push(p as u32);
            }
        }
        for &p in &failed {
            self.reap(p as usize);
            let replacement = self.spawn_rank(p, false)?;
            self.ranks[p as usize] = replacement;
        }
        for queue in &mut self.forward {
            queue.clear();
        }
        for channel in &mut self.ranks {
            channel.pending = Pending::None;
        }
        self.reload_all()
    }
}
