//! The multi-process transport: MPI-style ranks as forked worker
//! processes over Unix pipes, driven by the coordinator through the
//! `lms_part::wire` frame protocol — with failure detection and
//! checkpoint/restart recovery built in.
//!
//! [`ProcessTransport::spawn`] forks one process per part. Each child
//! inherits the engine's immutable topology — its
//! [`ResidentBlock`], the [`ExchangeSchedule`] and the domain view —
//! copy-on-write at fork time, builds its [`ResidentRank`] and serves
//! frames ([`crate::worker`]); only *run state* ever crosses the wire:
//! one gather and one scatter of block coordinates, per-color-step
//! coalesced halo-delta batches, and per-iteration stat reports.
//!
//! Delta routing is coordinator-mediated and deadlock-free by phasing:
//! after broadcasting a `ColorStep` the coordinator first **drains**
//! every rank's output up to its `RoundDone` marker (ranks block writing
//! at worst until the coordinator reaches them — no cycle, the
//! coordinator only reads), then **forwards** the buffered per-pair
//! frames to their destinations (every rank is back in its read loop,
//! stashing deltas as they arrive — again no cycle). Frames are
//! forwarded in ascending source-part order, matching the in-process
//! pull order, and the traffic counters are charged with the same
//! `halo_frame_wire_len` formula — which is why the cross-transport
//! oracle can demand *report* equality, not just coordinate equality.
//!
//! # Overlap mode
//!
//! With `overlap` on (the default through `FtOptions`), the serialized
//! drain/forward barrier above is replaced by an event-driven
//! multiplexer: one `poll(2)` over every rank fd at once (read *and*
//! write interest), per-rank [`Reassembly`] buffers decoding frames out
//! of whatever byte prefixes arrived, and **eager** routing — a halo
//! batch goes onto its destination's non-blocking out-queue the moment
//! it decodes, and a rank receives its next `ColorStep` the moment its
//! last in-neighbour finishes the current round, so it sweeps color
//! `k+1` while slower ranks are still being drained for color `k`.
//! Three invariants keep this bit-identical to the serialized loop:
//!
//! * **Slot disjointness** — each halo slot is written by exactly one
//!   source part, so per-destination arrival-order forwarding equals
//!   ascending-source forwarding.
//! * **FIFO round framing** — a round-`k` delta enters a destination's
//!   pipe after its `ColorStep{k}` and before its `ColorStep{k+1}`
//!   (frames for a not-yet-released destination are stashed), so the
//!   worker's stash-then-apply-at-control-frame discipline sees exactly
//!   the serialized delivery.
//! * **Flush-deferred bookkeeping** — a control frame makes its rank
//!   owe a reply only when its bytes fully leave the out-queue, so
//!   recovery resync drains precisely what workers could have received,
//!   even with frames in flight at failure time.
//!
//! Writes during a drain never block (out-queues + `POLLOUT`), which
//! breaks the coordinator-blocked-on-full-pipe / worker-blocked-on-
//! outbox deadlock cycle eager forwarding would otherwise risk.
//!
//! # Fault tolerance
//!
//! The transport implements [`FtResidentTransport`], the fallible,
//! recoverable transport contract `drive_resident_ft` drives:
//!
//! * **Detection** — every coordinator read is bounded by a `poll(2)`
//!   timeout ([`crate::sys::TimeoutReader`]); a failed read or write is
//!   diagnosed against the rank's `waitpid` state into a typed
//!   [`DistError`] (rank exited / rank stalled / corrupt stream — the
//!   latter caught by the wire v2 per-frame CRC32c). The coordinator can
//!   therefore never hang on a dead or wedged rank.
//! * **Checkpoint** — at iteration boundaries the coordinator pulls every
//!   rank's owned coordinates through an out-of-band scatter round into a
//!   global snapshot. That snapshot is a *complete* rank state: at a
//!   boundary a rank is exactly its coordinates plus element scores, and
//!   the scores are bit-reproducible as `dom.score` of those coordinates
//!   (the invariant `resident::ResidentRank` maintains), so checkpoints
//!   carry no score traffic. Checkpoint traffic is deliberately not
//!   charged to any [`ExchangeVolume`] — recovered and failure-free runs
//!   must report identical exchange accounting.
//! * **Recovery** — [`recover`](Self::recover) puts the group back at the
//!   last checkpoint: kill + reap the failed rank, drain every survivor
//!   to protocol quiescence (discarding its in-flight round), fork a
//!   replacement (with a disarmed fault plan), and reload **all** ranks
//!   from the snapshot with fresh `Gather` frames. The driver then
//!   replays the lost iterations; replay is deterministic from the
//!   checkpoint, so recovered runs are bit-identical to failure-free
//!   ones (pinned by `tests/chaos.rs`).

use crate::error::DistError;
use crate::fault::{FaultPlan, WorkerFaults};
use crate::socket::{Listener, SocketSpec, Supervisor};
use crate::sys::{self, Fd, TimeoutReader, WaitStatus};
use crate::worker;
use lms_part::wire::{halo_frame_wire_len, Frame, Reassembly, WireError, WIRE_VERSION};
use lms_part::{ExchangeSchedule, MessagePlan};
use lms_smooth::domain::{DomainConfig, DomainPoint, SmoothDomain};
use lms_smooth::resident::{ResidentBlock, ResidentRank};
use lms_smooth::{ExchangeVolume, FtResidentTransport};
use lms_trace::{now_ns, RankPhaseNanos, TransportProfile};
use std::io::{self, BufReader, BufWriter, Write};

/// The byte-stream substrate a rank group runs over. The coordinator
/// core above it (framing, detection, checkpoints, recovery) is
/// identical either way — only connection establishment differs.
pub(crate) enum Link {
    /// Forked children over two anonymous pipes each (the PR 5/6
    /// backend).
    Pipes,
    /// Stream sockets: workers dial the listener and identify themselves
    /// by rank with their first `Hello` frame.
    Socket {
        listener: Listener,
        supervisor: Supervisor,
        /// Workers are external standalone processes (possibly on other
        /// hosts) launched by the caller — never forked, never reaped.
        external: bool,
        /// Connections accepted while waiting for a different rank,
        /// keyed by the rank id their identifying `Hello` carried.
        parked: Vec<(u32, (Fd, Fd))>,
    },
}

/// The reply the coordinator is owed on a rank's stream, if any —
/// tracked per rank so recovery can drain a survivor to protocol
/// quiescence before reloading it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    None,
    /// One `Report`.
    Report,
    /// One `Scatter` or `ScatterDelta`.
    Scatter,
}

/// An outstanding deferred checkpoint round (overlap mode): the
/// boundary state being assembled from sparse `ScatterDelta` replies
/// that arrive interleaved with the next iteration's frames. The
/// assembled `scratch` is **not** the live checkpoint until a commit
/// point (the next `take_checkpoint` or the final scatter) swaps it in
/// — an `Ok` return is the commit, so the transport's recovery state
/// and the driver's fold snapshot always advance together.
struct CkptPending<P> {
    /// The previous committed checkpoint plus every stashed reply so
    /// far; complete when `missing == 0`.
    scratch: Vec<P>,
    /// Ranks whose reply has not arrived yet (indexed by rank).
    awaiting: Vec<bool>,
    /// Count of `true` entries in `awaiting`.
    missing: usize,
    /// A sweep ran after the round was requested: the assembled state
    /// is a *past* boundary, not the ranks' live coordinates.
    swept: bool,
}

/// A finished deferred checkpoint round, ready for the caller to
/// commit: the assembled boundary coordinates plus the `swept` flag
/// (see [`CkptPending`]); `None` when no round was outstanding.
type FinishedCkpt<P> = Option<(Vec<P>, bool)>;

/// Control frames whose protocol effect is deferred until their bytes
/// fully leave an [`OutQueue`]: a `ColorStep` makes the rank owe a
/// `RoundDone`, a `FinishIteration` makes it owe a `Report` — but only
/// once the rank could actually have received the frame, so recovery
/// resync never waits for a reply to a control frame that was still
/// sitting (whole or torn) in the coordinator's out-queue at failure
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctrl {
    Round,
    Finish,
}

/// What a drain call releases ranks into once their inbound dependence
/// is satisfied: the next color round, or the iteration finish.
#[derive(Debug, Clone, Copy)]
enum Release {
    Color(u32),
    Finish,
}

/// A per-rank non-blocking byte out-queue: encoded frames append to
/// `buf`, `poll(2)` `POLLOUT` readiness drains `buf[sent..]` via
/// `write_ready`, and the one control frame a drain call may queue is
/// tracked by its end offset so its bookkeeping fires exactly when the
/// last of its bytes is accepted by the kernel. Queueing instead of
/// blocking is what makes eager forwarding deadlock-free: the
/// coordinator never blocks writing to a mid-sweep rank whose pipe is
/// full while that rank blocks writing its own outbox.
#[derive(Debug, Default)]
struct OutQueue {
    buf: Vec<u8>,
    sent: usize,
    /// `(end_offset, kind)` of the queued control frame, if any.
    ctrl: Option<(usize, Ctrl)>,
}

impl OutQueue {
    fn is_empty(&self) -> bool {
        self.sent == self.buf.len()
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.sent = 0;
        self.ctrl = None;
    }
}

/// The overlap multiplexer's coordinator-side state (built
/// unconditionally, driven only when `overlap` is on). In overlap mode
/// every read goes through `reasm` — never through the channel's
/// `BufReader`, which would strand bytes invisible to the reassembly
/// buffers — and every drain-phase write goes through `outq`.
struct Overlap {
    /// Per-rank incremental frame decoder over the non-blocking stream.
    reasm: Vec<Reassembly>,
    /// `RoundDone`s decoded per rank this iteration: rank `p` has
    /// completed color rounds `0..done_rounds[p]`.
    done_rounds: Vec<u32>,
    /// `ColorStep`s issued this iteration (reset by the interior phase).
    rounds_issued: u32,
    /// Per-destination byte out-queues.
    outq: Vec<OutQueue>,
    /// Frames for a destination not yet released into the round that
    /// must precede them in its pipe — flushed into the out-queue right
    /// behind the destination's control frame when it is released.
    stash: Vec<Vec<Frame>>,
    /// Inverted [`MessagePlan`]: `in_srcs[q]` = ranks that send to `q`,
    /// the set whose round completion gates `q`'s release.
    in_srcs: Vec<Vec<u32>>,
    /// Read scratch for `read_ready`.
    scratch: Vec<u8>,
    // poll_duplex argument/result scratch
    read_fds: Vec<i32>,
    write_fds: Vec<i32>,
    ready_r: Vec<bool>,
    ready_w: Vec<bool>,
}

impl Overlap {
    fn new(plan: &MessagePlan, k: usize) -> Self {
        let mut in_srcs: Vec<Vec<u32>> = vec![Vec::new(); k];
        for s in 0..k {
            for &d in plan.neighbors(s as u32) {
                in_srcs[d as usize].push(s as u32);
            }
        }
        Overlap {
            reasm: (0..k).map(|_| Reassembly::new()).collect(),
            done_rounds: vec![0; k],
            rounds_issued: 0,
            outq: (0..k).map(|_| OutQueue::default()).collect(),
            stash: vec![Vec::new(); k],
            in_srcs,
            scratch: vec![0u8; 64 * 1024],
            read_fds: Vec::new(),
            write_fds: Vec::new(),
            ready_r: Vec::new(),
            ready_w: Vec::new(),
        }
    }
}

/// One rank's coordinator-side endpoints.
struct RankChannel {
    /// The worker's process id — `None` for an external standalone
    /// worker the coordinator never forked (nothing to signal or reap;
    /// its only failure evidence is the stream itself).
    pid: Option<i32>,
    to_rank: BufWriter<Fd>,
    from_rank: BufReader<TimeoutReader>,
    /// Raw descriptor numbers of the two parent-side stream ends, so a
    /// child forked *later* (a recovery respawn) can shed its inherited
    /// copies of them.
    to_fd: i32,
    from_fd: i32,
    pending: Pending,
    /// `RoundDone`s this rank still owes the coordinator — incremented
    /// when a `ColorStep` reaches it (at flush, see [`Ctrl`]),
    /// decremented per decoded `RoundDone`. Both the serialized loop and
    /// the overlap multiplexer keep it current, so recovery resync is
    /// one shared drain whatever mode the failure struck in.
    owed_rounds: u32,
    /// The child was already `waitpid`-reaped (its wait status consumed
    /// during failure diagnosis) — don't reap twice, and never signal a
    /// pid that may have been recycled.
    reaped: bool,
    /// Last protocol phase this rank completed, `(name, iteration)` —
    /// the coordinator's answer to "where did it wedge?" when the rank
    /// stalls. Reset by a recovery respawn along with the channel.
    last_phase: (&'static str, u32),
}

/// The forked-process implementation of
/// [`lms_smooth::FtResidentTransport`]: one OS process per part, wire
/// frames over two pipes per rank, coordinator-mediated delta
/// forwarding, timeout-bounded reads and checkpoint/respawn recovery.
/// See the module docs for the phasing and recovery arguments.
pub struct ProcessTransport<'a, const C: usize, D: SmoothDomain<C>> {
    dom: &'a D,
    cfg: DomainConfig,
    blocks: &'a [ResidentBlock<C>],
    schedule: &'a ExchangeSchedule,
    plan: MessagePlan,
    link: Link,
    ranks: Vec<RankChannel>,
    /// Per-destination forward queue, drained every color step.
    forward: Vec<Vec<Frame>>,
    /// The recovery checkpoint: the full global coordinate array as of
    /// the last *committed* iteration boundary (primed by `try_gather`).
    ckpt: Vec<D::Point>,
    /// The deferred sparse checkpoint round still collecting, if any
    /// (overlap mode only; see [`CkptPending`]).
    ckpt_pending: Option<CkptPending<D::Point>>,
    faults: FaultPlan,
    read_timeout_ms: i32,
    shut_down: bool,
    /// Profiling enabled: the handshake tells ranks to time their sweep
    /// phases, and the coordinator times its own encode/decode/forward
    /// work. Off by default — the unprofiled wire traffic is
    /// byte-identical either way except for the Hello flag, and the
    /// sweep arithmetic is untouched in both modes.
    profile: bool,
    /// Per-rank sweep-phase totals accumulated from `Report` frames
    /// (survive recovery respawns: workers ship deltas).
    phases: Vec<RankPhaseNanos>,
    /// Coordinator time forwarding halo frames, `[src * parts + dst]`.
    route_pair_ns: Vec<u64>,
    /// Coordinator time serialising frames into rank pipes (includes
    /// the forwarding charged to `route_pair_ns`).
    encode_ns: u64,
    /// Coordinator time reading + decoding frames, poll-wait excluded.
    decode_ns: u64,
    /// Coordinator time blocked in `poll(2)` waiting on rank streams
    /// with no released compute to hide behind (genuinely idle).
    poll_wait_ns: u64,
    /// Coordinator poll-wait that overlapped released rank compute —
    /// time the serialized loop would also have burned, here hidden
    /// behind sweeps already running ahead of the drain.
    hidden_wait_ns: u64,
    /// Coordinator-side iteration counter (interior phases driven), the
    /// iteration coordinate of `RankChannel::last_phase`.
    cur_iter: u32,
    /// Event-driven overlap mode: multiplexed drains, eager forwarding,
    /// eager release. Off = the PR 5/6 serialized loop, kept verbatim as
    /// the oracle.
    overlap: bool,
    /// Overlap multiplexer state (idle when `overlap` is off).
    ov: Overlap,
    /// The checkpoint still equals every rank's live resident state (no
    /// sweep ran since it was taken), so an overlap-mode scatter can be
    /// served straight from `ckpt` with zero wire traffic instead of
    /// double-walking the mesh with a second scatter round.
    ckpt_fresh: bool,
}

impl<'a, const C: usize, D: SmoothDomain<C>> ProcessTransport<'a, C, D> {
    /// Fork one rank worker per part and complete the wire handshake.
    ///
    /// The domain, config, blocks and schedule are captured by the
    /// children as copy-on-write images (and kept by the coordinator for
    /// recovery respawns). `read_timeout_ms` bounds every coordinator
    /// read (negative disables the bound); `faults` is the
    /// test-injection script (use [`FaultPlan::none`] for production).
    /// On failure every already-forked child is killed and reaped before
    /// the error returns. `profile` turns on phase timing on both sides
    /// of the wire (rank sweeps and coordinator routing) — observation
    /// only, the computed coordinates are bit-identical either way.
    /// `overlap` selects the event-driven multiplexed coordinator (see
    /// the module docs); off keeps the serialized drain/forward loop as
    /// the oracle — coordinates and reports are bit-identical in both.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        dom: &'a D,
        cfg: &DomainConfig,
        blocks: &'a [ResidentBlock<C>],
        schedule: &'a ExchangeSchedule,
        read_timeout_ms: i32,
        faults: FaultPlan,
        profile: bool,
        overlap: bool,
    ) -> Result<Self, DistError> {
        Self::spawn_linked(
            dom,
            cfg,
            blocks,
            schedule,
            read_timeout_ms,
            faults,
            profile,
            overlap,
            Link::Pipes,
        )
    }

    /// [`spawn`](Self::spawn) generalised over the byte-stream substrate
    /// — the shared constructor `SocketTransport` builds on.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn_linked(
        dom: &'a D,
        cfg: &DomainConfig,
        blocks: &'a [ResidentBlock<C>],
        schedule: &'a ExchangeSchedule,
        read_timeout_ms: i32,
        faults: FaultPlan,
        profile: bool,
        overlap: bool,
        link: Link,
    ) -> Result<Self, DistError> {
        if faults.fail_spawn {
            return Err(DistError::Spawn(io::Error::other("injected spawn failure")));
        }
        let k = blocks.len();
        let plan = MessagePlan::build(schedule);
        let ov = Overlap::new(&plan, k);
        let mut transport = ProcessTransport {
            dom,
            cfg: *cfg,
            blocks,
            schedule,
            plan,
            link,
            ranks: Vec::with_capacity(k),
            forward: (0..k).map(|_| Vec::new()).collect(),
            ckpt: Vec::new(),
            ckpt_pending: None,
            faults,
            read_timeout_ms,
            shut_down: false,
            profile,
            phases: vec![RankPhaseNanos::default(); k],
            route_pair_ns: vec![0; k * k],
            encode_ns: 0,
            decode_ns: 0,
            poll_wait_ns: 0,
            hidden_wait_ns: 0,
            cur_iter: 0,
            overlap,
            ov,
            ckpt_fresh: false,
        };
        for p in 0..k {
            match transport.spawn_rank(p as u32, true) {
                Ok(channel) => transport.ranks.push(channel),
                Err(e) => {
                    // reap the siblings forked so far; the caller falls
                    // back down the transport ladder
                    for channel in &transport.ranks {
                        if let Some(pid) = channel.pid {
                            let _ = sys::kill_pid(pid);
                        }
                    }
                    let pids: Vec<i32> = transport.ranks.iter().filter_map(|c| c.pid).collect();
                    transport.ranks.clear();
                    for pid in pids {
                        let _ = sys::wait_pid(pid);
                    }
                    transport.shut_down = true;
                    return Err(e);
                }
            }
        }
        Ok(transport)
    }

    /// Number of rank processes.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The socket address the rank group is served on, when the link is
    /// a socket.
    pub(crate) fn socket_addr(&self) -> Option<&SocketSpec> {
        match &self.link {
            Link::Socket { listener, .. } => Some(listener.target()),
            Link::Pipes => None,
        }
    }

    /// Establish one rank worker's channel. `armed` selects whether the
    /// transport's fault script applies — initial spawns are armed,
    /// recovery respawns are not (an injected fault fires at most once).
    fn spawn_rank(&mut self, p: u32, armed: bool) -> Result<RankChannel, DistError> {
        let worker_faults =
            if armed { self.faults.worker_faults(p) } else { WorkerFaults::default() };
        match &self.link {
            Link::Pipes => self.spawn_rank_pipes(p, worker_faults),
            Link::Socket { external: false, .. } => self.spawn_rank_socket(p, worker_faults),
            Link::Socket { external: true, .. } => {
                let (from_rank, to_rank) = self.accept_rank(p)?;
                self.finish_channel(None, from_rank, to_rank, p)
            }
        }
    }

    /// Fork and handshake one rank worker over a fresh pipe pair.
    fn spawn_rank_pipes(
        &mut self,
        p: u32,
        worker_faults: WorkerFaults,
    ) -> Result<RankChannel, DistError> {
        let (child_in, to_rank) = sys::pipe().map_err(DistError::Spawn)?;
        let (from_rank, child_out) = sys::pipe().map_err(DistError::Spawn)?;
        // SAFETY: the child touches no parent lock or thread — it builds
        // its rank from the inherited image and enters the
        // single-threaded worker loop, leaving only via `_exit`.
        let pid = unsafe { sys::fork() }.map_err(DistError::Spawn)?;
        if pid == 0 {
            // shed every coordinator-side descriptor inherited from the
            // parent image: the live channels' ends plus the parent ends
            // of this rank's own fresh pipes
            for channel in &self.ranks {
                sys::close_raw(channel.to_fd);
                sys::close_raw(channel.from_fd);
            }
            sys::close_raw(to_rank.raw());
            sys::close_raw(from_rank.raw());
            let rank = ResidentRank::new(
                self.dom,
                &self.cfg,
                p,
                &self.blocks[p as usize],
                self.schedule,
                &self.plan,
            );
            // never returns; the child's copies of the parent's `Fd`
            // values are reclaimed by the kernel at `_exit`
            worker::run_worker(
                rank,
                Fd::from_raw(child_in.raw()),
                Fd::from_raw(child_out.raw()),
                worker_faults,
            );
        }
        drop(child_in);
        drop(child_out);
        self.finish_channel(Some(pid), from_rank, to_rank, p)
    }

    /// Fork one rank worker that dials the listener back (supervised
    /// retry/backoff), then accept and bind its stream by rank id.
    fn spawn_rank_socket(
        &mut self,
        p: u32,
        worker_faults: WorkerFaults,
    ) -> Result<RankChannel, DistError> {
        let (target, policy, listener_fd, parked_fds) = match &self.link {
            Link::Socket { listener, supervisor, parked, .. } => (
                listener.target().clone(),
                supervisor.retry_policy(p),
                listener.raw_fd(),
                parked.iter().flat_map(|(_, (r, w))| [r.raw(), w.raw()]).collect::<Vec<i32>>(),
            ),
            Link::Pipes => unreachable!("socket spawn on a pipe link"),
        };
        // SAFETY: as in `spawn_rank_pipes` — single-threaded child,
        // leaves only via `_exit`.
        let pid = unsafe { sys::fork() }.map_err(DistError::Spawn)?;
        if pid == 0 {
            // shed every coordinator-side descriptor: live channel
            // streams, the listener, and any parked connections
            for channel in &self.ranks {
                sys::close_raw(channel.to_fd);
                sys::close_raw(channel.from_fd);
            }
            sys::close_raw(listener_fd);
            for fd in parked_fds {
                sys::close_raw(fd);
            }
            if worker_faults.refuse_connect {
                // the refused-connect regime: leave before ever dialling,
                // so the coordinator's accept times out into ConnRefused
                sys::exit_now(crate::fault::REFUSED_CONNECT_EXIT);
            }
            let (input, mut output) = match crate::socket::connect_with_retry(&target, &policy) {
                Ok(fds) => fds,
                Err(e) => {
                    eprintln!("lms-dist rank worker: cannot dial coordinator at {target}: {e}");
                    sys::exit_now(102);
                }
            };
            // identifying Hello: binds this stream to rank `p` whatever
            // order the concurrently-forked workers get accepted in
            let hello = Frame::Hello {
                version: WIRE_VERSION,
                dim: <D::Point as DomainPoint>::DIM as u8,
                rank: p,
                profile: false,
            };
            if hello.write_to(&mut output).is_err() {
                sys::exit_now(102);
            }
            let rank = ResidentRank::new(
                self.dom,
                &self.cfg,
                p,
                &self.blocks[p as usize],
                self.schedule,
                &self.plan,
            );
            worker::run_worker(rank, input, output, worker_faults);
        }
        match self.accept_rank(p) {
            Ok((from_rank, to_rank)) => self.finish_channel(Some(pid), from_rank, to_rank, p),
            Err(e) => {
                // the forked worker may still be dialling or parked in
                // its backoff loop: put it into a definite state
                let _ = sys::kill_pid(pid);
                let _ = sys::wait_pid(pid);
                Err(e)
            }
        }
    }

    /// Accept connections until rank `want`'s stream turns up, parking
    /// any other rank's connection for its own `spawn_rank` call. Every
    /// wait is bounded by the supervisor's accept timeout; expiry means
    /// the rank never dialled — [`DistError::ConnRefused`].
    fn accept_rank(&mut self, want: u32) -> Result<(Fd, Fd), DistError> {
        let Link::Socket { listener, supervisor, parked, .. } = &mut self.link else {
            unreachable!("accept on a pipe link")
        };
        if let Some(i) = parked.iter().position(|&(r, _)| r == want) {
            return Ok(parked.swap_remove(i).1);
        }
        let accept_ms = supervisor.accept_timeout_ms;
        loop {
            let (rfd, wfd) = match listener.accept_stream(accept_ms) {
                Ok(fds) => fds,
                Err(e) => {
                    return Err(DistError::ConnRefused {
                        addr: listener.target().to_string(),
                        attempts: supervisor.connect_attempts,
                        detail: e.to_string(),
                    })
                }
            };
            // the identifying Hello is read under the accept timeout on
            // the *raw* stream: buffered reading could overshoot the
            // frame and lose bytes when the reader is unwrapped below
            let mut reader = TimeoutReader::new(rfd, accept_ms.min(i32::MAX as u64) as i32);
            match Frame::read_from(&mut reader) {
                Ok(Frame::Hello { version, dim, rank: id, .. }) => {
                    if version != WIRE_VERSION || dim as usize != <D::Point as DomainPoint>::DIM {
                        return Err(DistError::Spawn(io::Error::other(format!(
                            "worker handshake mismatch: wire v{version}, dim {dim}"
                        ))));
                    }
                    if id == want {
                        return Ok((reader.into_inner(), wfd));
                    }
                    parked.push((id, (reader.into_inner(), wfd)));
                }
                Ok(f) => {
                    return Err(DistError::Spawn(io::Error::other(format!(
                        "expected identifying Hello, got {f:?}"
                    ))))
                }
                Err(e) => {
                    return Err(DistError::ConnRefused {
                        addr: listener.target().to_string(),
                        attempts: supervisor.connect_attempts,
                        detail: format!("worker connected but did not identify: {e}"),
                    })
                }
            }
        }
    }

    /// Wrap an established stream pair into a [`RankChannel`] and send
    /// the coordinator's handshake `Hello` — the tail shared by all
    /// three link flavours.
    fn finish_channel(
        &mut self,
        pid: Option<i32>,
        from_rank: Fd,
        to_rank: Fd,
        p: u32,
    ) -> Result<RankChannel, DistError> {
        let to_fd = to_rank.raw();
        let from_fd = from_rank.raw();
        let mut to_rank = BufWriter::new(to_rank);
        Frame::Hello {
            version: WIRE_VERSION,
            dim: <D::Point as DomainPoint>::DIM as u8,
            rank: p,
            profile: self.profile,
        }
        .write_to(&mut to_rank)
        .map_err(DistError::Spawn)?;
        to_rank.flush().map_err(DistError::Spawn)?;
        if self.overlap {
            // the multiplexer needs both directions non-blocking: reads
            // go through `read_ready` + reassembly, drain-phase writes
            // through the out-queues. The blocking broadcast phases keep
            // working unchanged — `Fd`'s stream impls park in `poll(2)`
            // on EAGAIN.
            sys::set_nonblocking(from_fd, true).map_err(DistError::Spawn)?;
            sys::set_nonblocking(to_fd, true).map_err(DistError::Spawn)?;
        }
        Ok(RankChannel {
            pid,
            to_rank,
            from_rank: BufReader::new(TimeoutReader::new(from_rank, self.read_timeout_ms)),
            to_fd,
            from_fd,
            pending: Pending::None,
            owed_rounds: 0,
            reaped: false,
            last_phase: ("spawn", 0),
        })
    }

    /// Bounded reap of rank `p` after its stream reported EOF/EPIPE: a
    /// worker that died is reapable within the grace loop (it is
    /// mid-`_exit`, merely not yet zombie when the stream event raced
    /// ahead of the reapable state). `None` means the process is *not*
    /// exiting — it closed its stream while alive (a dropped connection),
    /// or it is an external worker with no pid at all — which is exactly
    /// the [`DistError::ConnLost`] regime; never block `waitpid` on it.
    fn reap_dying(&mut self, p: usize) -> Option<WaitStatus> {
        let pid = self.ranks[p].pid?;
        for _ in 0..250 {
            match sys::try_wait_pid(pid) {
                Ok(Some(status)) => {
                    self.ranks[p].reaped = true;
                    return Some(WaitStatus(status));
                }
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(2)),
                Err(_) => return None,
            }
        }
        None
    }

    /// One non-blocking reap attempt (`None` when the process is still
    /// running, already reaped, or external).
    fn try_reap(&mut self, p: usize) -> Option<WaitStatus> {
        let pid = self.ranks[p].pid?;
        match sys::try_wait_pid(pid) {
            Ok(Some(status)) => {
                self.ranks[p].reaped = true;
                Some(WaitStatus(status))
            }
            _ => None,
        }
    }

    /// The [`DistError::ConnLost`] detail string: says whether the
    /// stream's peer is a forked child `waitpid` still reports alive (a
    /// dropped connection / network partition) or an external worker the
    /// coordinator has no pid for.
    fn conn_lost_detail(&self, p: usize, io_err: &io::Error) -> String {
        match self.ranks[p].pid {
            Some(_) => format!("peer closed the stream ({io_err}; process still alive)"),
            None => format!("external worker stream closed ({io_err}; no pid to reap)"),
        }
    }

    /// Classify a failed read on rank `p`'s stream: a checksum or decode
    /// failure is silent corruption; an i/o failure is disambiguated by
    /// the child's `waitpid` state into "rank died" vs "connection lost"
    /// vs "rank stalled".
    fn diagnose_read(&mut self, p: usize, e: WireError) -> DistError {
        let rank = p as u32;
        match e {
            WireError::Io(io_err) => {
                let disconnected = matches!(
                    io_err.kind(),
                    io::ErrorKind::UnexpectedEof
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::BrokenPipe
                );
                if disconnected {
                    if let Some(status) = self.reap_dying(p) {
                        return DistError::RankExited { rank, status };
                    }
                    // the stream is gone but the process is not: a socket
                    // closed mid-protocol (or an external worker hung up)
                    return DistError::ConnLost { rank, detail: self.conn_lost_detail(p, &io_err) };
                }
                match self.try_reap(p) {
                    Some(status) => DistError::RankExited { rank, status },
                    None if io_err.kind() == io::ErrorKind::TimedOut => {
                        let (phase, iter) = self.ranks[p].last_phase;
                        DistError::RankStalled {
                            rank,
                            timeout_ms: self.read_timeout_ms,
                            // idle + hidden: a stalled rank is stalled
                            // regardless of what the coordinator
                            // overlapped meanwhile
                            waited_ms: self.ranks[p].from_rank.get_ref().total_waited_ns()
                                / 1_000_000,
                            last_phase: format!("{phase}#{iter}"),
                        }
                    }
                    None => DistError::Wire { rank, error: WireError::Io(io_err) },
                }
            }
            error => DistError::Wire { rank, error },
        }
    }

    /// Classify a failed write to rank `p` (EPIPE / ECONNRESET — a dead
    /// child or a dropped connection).
    fn diagnose_write(&mut self, p: usize, e: io::Error) -> DistError {
        let rank = p as u32;
        if matches!(e.kind(), io::ErrorKind::BrokenPipe | io::ErrorKind::ConnectionReset) {
            if let Some(status) = self.reap_dying(p) {
                return DistError::RankExited { rank, status };
            }
            return DistError::ConnLost { rank, detail: self.conn_lost_detail(p, &e) };
        }
        match self.try_reap(p) {
            Some(status) => DistError::RankExited { rank, status },
            None => DistError::Wire { rank, error: WireError::Io(e) },
        }
    }

    fn protocol_error(&self, p: usize, f: &Frame) -> DistError {
        let mut frame = format!("{f:?}");
        frame.truncate(96);
        DistError::Protocol { rank: p as u32, frame }
    }

    /// Record that rank `p` completed protocol phase `name` at the
    /// current iteration — plain field writes, no clock, kept current
    /// even unprofiled so a stall diagnosis can always say where.
    fn mark(&mut self, p: usize, name: &'static str) {
        self.ranks[p].last_phase = (name, self.cur_iter);
    }

    fn send(&mut self, p: usize, frame: &Frame) -> Result<(), DistError> {
        let t0 = if self.profile { now_ns() } else { 0 };
        let result = frame.write_to(&mut self.ranks[p].to_rank);
        if self.profile {
            self.encode_ns += now_ns().saturating_sub(t0);
        }
        match result {
            Ok(()) => Ok(()),
            Err(e) => Err(self.diagnose_write(p, e)),
        }
    }

    fn flush(&mut self, p: usize) -> Result<(), DistError> {
        match self.ranks[p].to_rank.flush() {
            Ok(()) => Ok(()),
            Err(e) => Err(self.diagnose_write(p, e)),
        }
    }

    fn recv(&mut self, p: usize) -> Result<Frame, DistError> {
        if !self.profile {
            return Frame::read_from(&mut self.ranks[p].from_rank)
                .map_err(|e| self.diagnose_read(p, e));
        }
        // split the receive wall time into poll-wait (rank not ready)
        // and decode (bytes moved + frames parsed), using the
        // TimeoutReader's poll accounting as the wait component
        let waited_before = self.ranks[p].from_rank.get_ref().waited_ns();
        let t0 = now_ns();
        let result = Frame::read_from(&mut self.ranks[p].from_rank);
        let wall = now_ns().saturating_sub(t0);
        let waited = self.ranks[p].from_rank.get_ref().waited_ns().saturating_sub(waited_before);
        self.poll_wait_ns += waited;
        self.decode_ns += wall.saturating_sub(waited);
        result.map_err(|e| self.diagnose_read(p, e))
    }

    /// Drain the coordinator-side transport profile: per-rank sweep
    /// phases (as reported over the wire), the forwarding time matrix
    /// and the encode/decode/poll-wait totals. All fields reset to zero;
    /// meaningful only after a run spawned with `profile = true`.
    pub fn take_profile(&mut self) -> TransportProfile {
        TransportProfile {
            rank_phases: std::mem::replace(
                &mut self.phases,
                vec![RankPhaseNanos::default(); self.ranks.len()],
            ),
            route_pair_ns: std::mem::replace(
                &mut self.route_pair_ns,
                vec![0; self.ranks.len() * self.ranks.len()],
            ),
            encode_ns: std::mem::take(&mut self.encode_ns),
            decode_ns: std::mem::take(&mut self.decode_ns),
            poll_wait_ns: std::mem::take(&mut self.poll_wait_ns),
            hidden_wait_ns: std::mem::take(&mut self.hidden_wait_ns),
            // remote ranks do not ship the scored-elements counter over
            // the wire (RankPhaseNanos is frozen at wire v3)
            scored_elements: 0,
        }
    }

    /// Send the per-block slices of a global `(coords, scores)` state to
    /// every rank — the gather and the recovery reload are the same wire
    /// traffic.
    fn load_ranks(&mut self, coords: &[D::Point], scores: &[(f64, bool)]) -> Result<(), DistError> {
        for p in 0..self.ranks.len() {
            let block = &self.blocks[p];
            let mut flat =
                Vec::with_capacity((block.owned().len() + block.halo().len()) * D::Point::DIM);
            for &v in block.owned().iter().chain(block.halo()) {
                coords[v as usize].push_components(&mut flat);
            }
            let block_scores: Vec<(f64, bool)> =
                block.elem_globals().iter().map(|&t| scores[t as usize]).collect();
            self.send(p, &Frame::Gather { coords: flat, scores: block_scores })?;
            self.flush(p)?;
            self.mark(p, "gather");
        }
        Ok(())
    }

    /// Drain rank `p` to protocol quiescence: consume every `RoundDone`
    /// it still owes (discarding the abandoned rounds' halo data), then
    /// whatever reply is pending, so its stream is frame-aligned again.
    /// Shared by both modes — `owed_rounds` can be up to 2 when an
    /// overlap drain failed mid-call with a rank already released ahead.
    fn resync(&mut self, p: usize) -> Result<(), DistError> {
        // A survivor's stream may hold three kinds of in-flight frames:
        // the abandoned iteration's halo deltas and round markers, and —
        // ahead of them in the rank's FIFO stream — the sparse reply of
        // a deferred checkpoint round. All must leave the stream before
        // reload, or a stale reply would poison the next deferred round.
        while self.ranks[p].owed_rounds > 0 || self.ckpt_awaiting(p) {
            match self.resync_recv(p)? {
                Frame::HaloDelta { .. } => continue,
                Frame::ScatterDelta { .. } if self.ckpt_awaiting(p) => {
                    // drained and discarded: recovery abandons the
                    // whole outstanding round
                    let pc = self.ckpt_pending.as_mut().expect("awaiting implies pending");
                    pc.awaiting[p] = false;
                    pc.missing -= 1;
                }
                Frame::RoundDone if self.ranks[p].owed_rounds > 0 => self.ranks[p].owed_rounds -= 1,
                f => return Err(self.protocol_error(p, &f)),
            }
        }
        loop {
            let expected = self.ranks[p].pending;
            if expected == Pending::None {
                return Ok(());
            }
            let frame = self.resync_recv(p)?;
            match (expected, frame) {
                (Pending::Report, Frame::Report { .. })
                | (Pending::Scatter, Frame::Scatter { .. })
                | (Pending::Scatter, Frame::ScatterDelta { .. }) => {
                    self.ranks[p].pending = Pending::None;
                }
                (_, f) => return Err(self.protocol_error(p, &f)),
            }
        }
    }

    /// The resync read path: through the reassembly buffer in overlap
    /// mode (which may hold bytes already pulled off the stream when the
    /// failure struck), through the `BufReader` otherwise.
    fn resync_recv(&mut self, p: usize) -> Result<Frame, DistError> {
        if self.overlap {
            self.ov_recv(p)
        } else {
            self.recv(p)
        }
    }

    /// Blocking-bounded single-rank receive through the overlap
    /// reassembly path: decode from the buffer, pulling more bytes off
    /// the non-blocking fd under the read timeout as needed. The overlap
    /// mode's replacement for [`recv`](Self::recv) at quiescent protocol
    /// points (report/scatter/checkpoint collection, resync) — the
    /// channel `BufReader` is *never* used in overlap mode, so no bytes
    /// can be stranded outside the reassembly buffer.
    fn ov_recv(&mut self, p: usize) -> Result<Frame, DistError> {
        loop {
            let t0 = if self.profile { now_ns() } else { 0 };
            let decoded = self.ov.reasm[p].next_frame();
            if self.profile {
                self.decode_ns += now_ns().saturating_sub(t0);
            }
            match decoded {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(e) => return Err(self.diagnose_read(p, e)),
            }
            let fd = self.ranks[p].from_fd;
            let w0 = now_ns();
            let readable = sys::wait_readable(fd, self.read_timeout_ms);
            let waited = now_ns().saturating_sub(w0);
            self.ranks[p].from_rank.get_mut().charge_wait_ns(waited, false);
            if self.profile {
                self.poll_wait_ns += waited;
            }
            match readable {
                Ok(true) => {}
                Ok(false) => {
                    let e = io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("pipe not readable within {}ms", self.read_timeout_ms),
                    );
                    return Err(self.diagnose_read(p, WireError::Io(e)));
                }
                Err(e) => return Err(self.diagnose_read(p, WireError::Io(e))),
            }
            self.ov_fill(p)?;
        }
    }

    /// Pull whatever bytes rank `p`'s stream holds into its reassembly
    /// buffer (one non-blocking read). EOF surfaces through the stream
    /// diagnosis; a stale readiness (`WouldBlock`) is a no-op.
    fn ov_fill(&mut self, p: usize) -> Result<(), DistError> {
        let fd = self.ranks[p].from_fd;
        let mut scratch = std::mem::take(&mut self.ov.scratch);
        let result = sys::read_ready(fd, &mut scratch);
        let outcome = match result {
            Ok(Some(0)) => {
                let e = io::Error::new(io::ErrorKind::UnexpectedEof, "rank stream closed");
                Err(self.diagnose_read(p, WireError::Io(e)))
            }
            Ok(Some(n)) => {
                let t0 = if self.profile { now_ns() } else { 0 };
                self.ov.reasm[p].extend(&scratch[..n]);
                if self.profile {
                    self.decode_ns += now_ns().saturating_sub(t0);
                }
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(e) => Err(self.diagnose_read(p, WireError::Io(e))),
        };
        self.ov.scratch = scratch;
        outcome
    }

    /// Encode `frame` onto rank `q`'s out-queue (drain-phase writes never
    /// touch the blocking `BufWriter`). When `src` is given the encode
    /// time is also charged to the `(src, q)` routing cell.
    fn ov_queue(&mut self, q: usize, frame: &Frame, src: Option<usize>) {
        let parts = self.ranks.len();
        let t0 = if self.profile { now_ns() } else { 0 };
        frame.write_to(&mut self.ov.outq[q].buf).expect("Vec<u8> writes are infallible");
        if self.profile {
            let dt = now_ns().saturating_sub(t0);
            self.encode_ns += dt;
            if let Some(s) = src {
                self.route_pair_ns[s * parts + q] += dt;
            }
        }
    }

    /// Queue a control frame on rank `q`'s out-queue, recording its end
    /// offset so [`ov_flush`](Self::ov_flush) can fire its bookkeeping
    /// when the bytes fully leave, then move `q`'s stashed next-round
    /// frames in right behind it (FIFO order in the byte queue is what
    /// keeps the worker applying each round's deltas at the right
    /// control frame).
    fn ov_queue_ctrl(&mut self, q: usize, frame: &Frame, kind: Ctrl) {
        debug_assert!(self.ov.outq[q].ctrl.is_none(), "one control frame per drain call");
        self.ov_queue(q, frame, None);
        self.ov.outq[q].ctrl = Some((self.ov.outq[q].buf.len(), kind));
        let stashed = std::mem::take(&mut self.ov.stash[q]);
        for f in &stashed {
            let src = match f {
                Frame::HaloDelta { part, .. } => Some(*part as usize),
                _ => None,
            };
            self.ov_queue(q, f, src);
        }
    }

    /// Push rank `q`'s queued bytes (non-blocking) as far as the kernel
    /// accepts, firing the control frame's deferred bookkeeping when its
    /// offset is crossed. Returns whether the queue drained fully.
    fn ov_flush(&mut self, q: usize) -> Result<bool, DistError> {
        loop {
            let (sent, len) = (self.ov.outq[q].sent, self.ov.outq[q].buf.len());
            if sent == len {
                if len > 0 {
                    self.ov.outq[q].buf.clear();
                    self.ov.outq[q].sent = 0;
                }
                debug_assert!(self.ov.outq[q].ctrl.is_none());
                return Ok(true);
            }
            let fd = self.ranks[q].to_fd;
            let n = match sys::write_ready(fd, &self.ov.outq[q].buf[sent..]) {
                Ok(n) => n,
                Err(e) => return Err(self.diagnose_write(q, e)),
            };
            if n == 0 {
                return Ok(false); // kernel buffer full: re-arm POLLOUT
            }
            self.ov.outq[q].sent += n;
            if let Some((end, kind)) = self.ov.outq[q].ctrl {
                if self.ov.outq[q].sent >= end {
                    self.ov.outq[q].ctrl = None;
                    match kind {
                        Ctrl::Round => self.ranks[q].owed_rounds += 1,
                        Ctrl::Finish => self.ranks[q].pending = Pending::Report,
                    }
                }
            }
        }
    }

    /// Release rank `q` into the next protocol step — its inbound
    /// dependence (every in-neighbour done with the round being drained)
    /// is satisfied, so the control frame can be queued and an immediate
    /// flush attempted. From here `q`'s pipe delivers: remaining drained
    /// round deltas were queued before the control frame, next-round
    /// deltas (stash + eager appends) after it.
    fn ov_release(&mut self, q: usize, release: Release) -> Result<(), DistError> {
        match release {
            Release::Color(color) => {
                self.ov_queue_ctrl(q, &Frame::ColorStep { color }, Ctrl::Round)
            }
            Release::Finish => self.ov_queue_ctrl(q, &Frame::FinishIteration, Ctrl::Finish),
        }
        self.ov_flush(q)?;
        Ok(())
    }

    /// The event-driven drain at the heart of the overlap coordinator:
    /// wait (one `poll(2)` over every active rank fd, read *and* write
    /// interest at once) until every rank has completed the round being
    /// drained (`target = rounds_issued`: all `done_rounds` reach it),
    /// every rank has been released into `release`, every out-queue has
    /// drained, and — for a finish drain — every rank's `Report` is in.
    ///
    /// Eagerness lives here: a `HaloDelta` is routed to its destination
    /// out-queue the moment it decodes; a rank is released the moment
    /// its last in-neighbour finishes the drained round, so it sweeps
    /// the next round while slower ranks are still being drained. The
    /// per-destination disjointness of halo slots (each slot written by
    /// exactly one source part) is what makes arrival-order forwarding
    /// bit-identical to the serialized ascending-source order.
    fn ov_drain(
        &mut self,
        release: Release,
        volume: &mut ExchangeVolume,
        mut reports: Option<&mut Vec<Option<f64>>>,
    ) -> Result<(), DistError> {
        let k = self.ranks.len();
        let target = self.ov.rounds_issued;
        let dim = D::Point::DIM;
        // inbound dependence: how many of q's in-neighbours still owe
        // the drained round
        let mut need: Vec<u32> = (0..k)
            .map(|q| {
                self.ov.in_srcs[q]
                    .iter()
                    .filter(|&&s| self.ov.done_rounds[s as usize] < target)
                    .count() as u32
            })
            .collect();
        let mut released = vec![false; k];
        for q in 0..k {
            if need[q] == 0 {
                released[q] = true;
                self.ov_release(q, release)?;
            }
        }
        loop {
            // exit: drained round complete everywhere, everyone
            // released, all queued bytes on the wire, reports (finish
            // drain) all in
            let drained = (0..k).all(|p| self.ov.done_rounds[p] >= target);
            let flushed = (0..k).all(|q| self.ov.outq[q].is_empty());
            let reported = match &reports {
                Some(r) => r.iter().all(|d| d.is_some()),
                None => true,
            };
            if drained && flushed && reported && released.iter().all(|&r| r) {
                return Ok(());
            }
            // poll: read interest on every rank still owing frames,
            // write interest on every non-empty out-queue
            self.ov.read_fds.clear();
            self.ov.write_fds.clear();
            for p in 0..k {
                let owes_round = self.ov.done_rounds[p] < target || self.ranks[p].owed_rounds > 0;
                let owes_report = matches!(&reports, Some(r) if r[p].is_none());
                self.ov.read_fds.push(if owes_round || owes_report {
                    self.ranks[p].from_fd
                } else {
                    -1
                });
                self.ov.write_fds.push(if self.ov.outq[p].is_empty() {
                    -1
                } else {
                    self.ranks[p].to_fd
                });
            }
            let mut ready_r = std::mem::take(&mut self.ov.ready_r);
            let mut ready_w = std::mem::take(&mut self.ov.ready_w);
            let t0 = now_ns();
            let polled = sys::poll_duplex(
                &self.ov.read_fds,
                &self.ov.write_fds,
                self.read_timeout_ms,
                &mut ready_r,
                &mut ready_w,
            );
            let waited = now_ns().saturating_sub(t0);
            // hidden iff some released work is in flight while a rank
            // still owes the drain — that wait overlaps live rank work
            // the serialized loop would sit idle for. Released work is
            // either a color round issued ahead of the drain target or
            // a deferred checkpoint round whose sparse replies are
            // still outstanding (the serialized loop pays that
            // collection as a dedicated barrier; here the ranks
            // diff-scan and reply under the very waits being charged)
            let owing_any = (0..k).any(|p| self.ov.done_rounds[p] < target);
            let ckpt_outstanding = self.ckpt_pending.as_ref().is_some_and(|pc| pc.missing > 0);
            let hidden = (released.iter().any(|&r| r) || ckpt_outstanding) && owing_any;
            for p in 0..k {
                if self.ov.read_fds[p] >= 0 {
                    self.ranks[p].from_rank.get_mut().charge_wait_ns(waited, hidden);
                }
            }
            if self.profile {
                if hidden {
                    self.hidden_wait_ns += waited;
                } else {
                    self.poll_wait_ns += waited;
                }
            }
            self.ov.ready_r = ready_r;
            self.ov.ready_w = ready_w;
            let polled = match polled {
                Ok(n) => n,
                Err(e) => return Err(DistError::Spawn(e)),
            };
            if polled == 0 {
                // full timeout with zero readiness anywhere: implicate
                // the lowest-index rank still owing the drained round
                let stalled = (0..k)
                    .find(|&p| {
                        self.ov.done_rounds[p] < target
                            || matches!(&reports, Some(r) if r[p].is_none())
                    })
                    .unwrap_or(0);
                let e = io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no rank readable within {}ms", self.read_timeout_ms),
                );
                return Err(self.diagnose_read(stalled, WireError::Io(e)));
            }
            // reads first (their bytes predate our queued writes), then
            // decode every complete frame each stream yielded
            for p in 0..k {
                if !self.ov.ready_r[p] || self.ov.read_fds[p] < 0 {
                    continue;
                }
                self.ov_fill(p)?;
                loop {
                    let t0 = if self.profile { now_ns() } else { 0 };
                    let decoded = self.ov.reasm[p].next_frame();
                    if self.profile {
                        self.decode_ns += now_ns().saturating_sub(t0);
                    }
                    let frame = match decoded {
                        Ok(Some(f)) => f,
                        Ok(None) => break,
                        Err(e) => return Err(self.diagnose_read(p, e)),
                    };
                    match frame {
                        Frame::HaloDelta { part: dst, slots, coords } => {
                            if dst as usize >= k {
                                let f = Frame::HaloDelta { part: dst, slots, coords };
                                return Err(self.protocol_error(p, &f));
                            }
                            volume.halo_messages_sent += 1;
                            volume.halo_entries_sent += slots.len();
                            volume.halo_bytes_sent += halo_frame_wire_len(dim, slots.len());
                            let fwd = Frame::HaloDelta { part: p as u32, slots, coords };
                            let dst = dst as usize;
                            if self.ov.done_rounds[p] >= target && !released[dst] {
                                // a next-round delta for a rank whose
                                // release control frame is not yet
                                // queued: hold it back so FIFO order
                                // stays control-frame-first
                                self.ov.stash[dst].push(fwd);
                            } else {
                                self.ov_queue(dst, &fwd, Some(p));
                            }
                        }
                        Frame::RoundDone => {
                            if self.ranks[p].owed_rounds == 0 {
                                return Err(self.protocol_error(p, &Frame::RoundDone));
                            }
                            self.ranks[p].owed_rounds -= 1;
                            self.ov.done_rounds[p] += 1;
                            self.mark(p, "color_step");
                            if self.ov.done_rounds[p] == target {
                                // p's round completion may satisfy its
                                // out-neighbours' inbound dependence
                                for i in 0..self.plan.neighbors(p as u32).len() {
                                    let q = self.plan.neighbors(p as u32)[i] as usize;
                                    need[q] -= 1;
                                    if need[q] == 0 && !released[q] {
                                        released[q] = true;
                                        self.ov_release(q, release)?;
                                    }
                                }
                            }
                        }
                        Frame::Report { delta, phases } => {
                            let Some(r) = reports.as_deref_mut() else {
                                return Err(
                                    self.protocol_error(p, &Frame::Report { delta, phases })
                                );
                            };
                            if self.ranks[p].pending != Pending::Report || r[p].is_some() {
                                return Err(
                                    self.protocol_error(p, &Frame::Report { delta, phases })
                                );
                            }
                            self.ranks[p].pending = Pending::None;
                            if self.profile {
                                self.phases[p].accumulate(phases);
                            }
                            r[p] = Some(delta);
                            self.mark(p, "finish");
                        }
                        Frame::ScatterDelta { slots, coords } => {
                            // a deferred checkpoint reply riding ahead
                            // of the iteration's frames (rank FIFO puts
                            // it first): stash it now, commit later
                            self.ov_stash_ckpt_delta(p, slots, coords)?;
                        }
                        f => return Err(self.protocol_error(p, &f)),
                    }
                }
            }
            // writes: drain whichever out-queues the kernel will take
            for q in 0..k {
                if self.ov.ready_w[q] && self.ov.write_fds[q] >= 0 {
                    self.ov_flush(q)?;
                }
            }
        }
    }

    /// Multiplexed collection of one full `Scatter` reply per rank (the
    /// requests are already broadcast and flushed). Replies land in rank
    /// slots, so arrival order is invisible to the caller. The sparse
    /// checkpoint round never comes through here — its `ScatterDelta`
    /// replies are stashed by [`ov_stash_ckpt_delta`] wherever they
    /// surface.
    ///
    /// [`ov_stash_ckpt_delta`]: Self::ov_stash_ckpt_delta
    fn ov_collect_scatters(
        &mut self,
        phase: &'static str,
    ) -> Result<Vec<Vec<D::Point>>, DistError> {
        let k = self.ranks.len();
        let mut got: Vec<Option<Vec<D::Point>>> = (0..k).map(|_| None).collect();
        while got.iter().any(|g| g.is_none()) {
            self.ov.read_fds.clear();
            for (p, g) in got.iter().enumerate() {
                self.ov.read_fds.push(if g.is_none() { self.ranks[p].from_fd } else { -1 });
            }
            // decode whatever is already buffered before polling
            let mut progressed = false;
            #[allow(clippy::needless_range_loop)] // got[p] is written mid-body
            for p in 0..k {
                if got[p].is_some() {
                    continue;
                }
                match self.ov.reasm[p].next_frame() {
                    Ok(Some(Frame::Scatter { coords: flat })) => {
                        let owned = self.blocks[p].owned();
                        if flat.len() != owned.len() * D::Point::DIM {
                            let f = Frame::Scatter { coords: flat };
                            return Err(self.protocol_error(p, &f));
                        }
                        self.ranks[p].pending = Pending::None;
                        got[p] = Some(crate::codec::flat_to_points::<D::Point>(&flat));
                        self.mark(p, phase);
                        progressed = true;
                    }
                    Ok(Some(f)) => return Err(self.protocol_error(p, &f)),
                    Ok(None) => {}
                    Err(e) => return Err(self.diagnose_read(p, e)),
                }
            }
            if progressed {
                continue;
            }
            let mut ready_r = std::mem::take(&mut self.ov.ready_r);
            let mut ready_w = std::mem::take(&mut self.ov.ready_w);
            let t0 = now_ns();
            let polled = sys::poll_duplex(
                &self.ov.read_fds,
                &[],
                self.read_timeout_ms,
                &mut ready_r,
                &mut ready_w,
            );
            let waited = now_ns().saturating_sub(t0);
            for p in 0..k {
                if self.ov.read_fds[p] >= 0 {
                    self.ranks[p].from_rank.get_mut().charge_wait_ns(waited, false);
                }
            }
            if self.profile {
                self.poll_wait_ns += waited;
            }
            self.ov.ready_r = ready_r;
            self.ov.ready_w = ready_w;
            let polled = match polled {
                Ok(n) => n,
                Err(e) => return Err(DistError::Spawn(e)),
            };
            if polled == 0 {
                let stalled = (0..k).find(|&p| got[p].is_none()).unwrap_or(0);
                let e = io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no rank readable within {}ms", self.read_timeout_ms),
                );
                return Err(self.diagnose_read(stalled, WireError::Io(e)));
            }
            for p in 0..k {
                if self.ov.ready_r[p] && self.ov.read_fds[p] >= 0 {
                    self.ov_fill(p)?;
                }
            }
        }
        Ok(got.into_iter().map(|g| g.unwrap()).collect())
    }

    /// Whether rank `p` still owes the deferred checkpoint round its
    /// `ScatterDelta` reply.
    fn ckpt_awaiting(&self, p: usize) -> bool {
        self.ckpt_pending.as_ref().is_some_and(|pc| pc.awaiting[p])
    }

    /// Fold one `ScatterDelta` reply into the outstanding deferred
    /// checkpoint round. Rank owned sets are disjoint and each rank
    /// answers once per round, so arrival order is invisible in the
    /// assembled state.
    fn ov_stash_ckpt_delta(
        &mut self,
        p: usize,
        slots: Vec<u32>,
        coords: Vec<f64>,
    ) -> Result<(), DistError> {
        let blocks = self.blocks;
        let owned = blocks[p].owned();
        let shape_ok = coords.len() == slots.len() * D::Point::DIM
            && slots.iter().all(|&s| (s as usize) < owned.len());
        if !shape_ok || !self.ckpt_awaiting(p) {
            let f = Frame::ScatterDelta { slots, coords };
            return Err(self.protocol_error(p, &f));
        }
        let points = crate::codec::flat_to_points::<D::Point>(&coords);
        let pc = self.ckpt_pending.as_mut().expect("awaiting implies a pending round");
        for (&s, &point) in slots.iter().zip(&points) {
            pc.scratch[owned[s as usize] as usize] = point;
        }
        pc.awaiting[p] = false;
        pc.missing -= 1;
        self.mark(p, "checkpoint");
        Ok(())
    }

    /// Finish the outstanding deferred checkpoint round, if any: drain
    /// whatever `ScatterDelta` replies have not been stashed yet. Rank
    /// FIFO order puts each reply *before* the following iteration's
    /// frames, so by the next boundary the replies were normally
    /// consumed inside the iteration's drains and this returns without
    /// polling. Returns the assembled boundary state plus whether a
    /// sweep ran since the round was requested; the **caller** commits
    /// it into `ckpt` — at an `Ok`-return point only, keeping the
    /// committed checkpoint paired with the driver's fold snapshot.
    fn ov_complete_ckpt(&mut self) -> Result<FinishedCkpt<D::Point>, DistError> {
        if self.ckpt_pending.is_none() {
            return Ok(None);
        }
        let k = self.ranks.len();
        while self.ckpt_pending.as_ref().expect("checked above").missing > 0 {
            // decode whatever is already buffered before polling
            let mut progressed = false;
            for p in 0..k {
                if !self.ckpt_awaiting(p) {
                    continue;
                }
                let t0 = if self.profile { now_ns() } else { 0 };
                let decoded = self.ov.reasm[p].next_frame();
                if self.profile {
                    self.decode_ns += now_ns().saturating_sub(t0);
                }
                match decoded {
                    Ok(Some(Frame::ScatterDelta { slots, coords })) => {
                        self.ov_stash_ckpt_delta(p, slots, coords)?;
                        progressed = true;
                    }
                    Ok(Some(f)) => return Err(self.protocol_error(p, &f)),
                    Ok(None) => {}
                    Err(e) => return Err(self.diagnose_read(p, e)),
                }
            }
            if progressed {
                continue;
            }
            self.ov.read_fds.clear();
            for p in 0..k {
                self.ov.read_fds.push(if self.ckpt_awaiting(p) {
                    self.ranks[p].from_fd
                } else {
                    -1
                });
            }
            let mut ready_r = std::mem::take(&mut self.ov.ready_r);
            let mut ready_w = std::mem::take(&mut self.ov.ready_w);
            let t0 = now_ns();
            let polled = sys::poll_duplex(
                &self.ov.read_fds,
                &[],
                self.read_timeout_ms,
                &mut ready_r,
                &mut ready_w,
            );
            let waited = now_ns().saturating_sub(t0);
            for p in 0..k {
                if self.ov.read_fds[p] >= 0 {
                    self.ranks[p].from_rank.get_mut().charge_wait_ns(waited, false);
                }
            }
            if self.profile {
                self.poll_wait_ns += waited;
            }
            self.ov.ready_r = ready_r;
            self.ov.ready_w = ready_w;
            let polled = match polled {
                Ok(n) => n,
                Err(e) => return Err(DistError::Spawn(e)),
            };
            if polled == 0 {
                let stalled = (0..k).find(|&p| self.ckpt_awaiting(p)).unwrap_or(0);
                let e = io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no rank readable within {}ms", self.read_timeout_ms),
                );
                return Err(self.diagnose_read(stalled, WireError::Io(e)));
            }
            for p in 0..k {
                if self.ov.ready_r[p] && self.ov.read_fds[p] >= 0 {
                    self.ov_fill(p)?;
                }
            }
        }
        let pc = self.ckpt_pending.take().expect("checked above");
        Ok(Some((pc.scratch, pc.swept)))
    }

    /// Kill and reap rank `p`'s process (no-ops if diagnosis already
    /// consumed its wait status, or for an external worker with no pid —
    /// its only teardown is the channel drop closing the stream).
    fn reap(&mut self, p: usize) {
        if self.ranks[p].reaped {
            return;
        }
        if let Some(pid) = self.ranks[p].pid {
            let _ = sys::kill_pid(pid);
            let _ = sys::wait_pid(pid);
        }
        self.ranks[p].reaped = true;
    }

    /// Reload every rank from the checkpoint: scores are recomputed from
    /// the snapshot coordinates (bit-identical to what the ranks held at
    /// the boundary — see the module docs), then shipped as fresh
    /// `Gather` frames.
    fn reload_all(&mut self) -> Result<(), DistError> {
        let scores: Vec<(f64, bool)> =
            self.dom.elements().iter().map(|&e| self.dom.score(&self.ckpt, e)).collect();
        let coords = std::mem::take(&mut self.ckpt);
        let result = self.load_ranks(&coords, &scores);
        self.ckpt = coords;
        result
    }

    /// Orderly teardown: ask every rank to exit, close every pipe end,
    /// then reap each child — surfacing any nonzero exit status or
    /// signal death as a [`DistError::Shutdown`]. Called (result
    /// discarded) by `Drop` too, so a coordinator panic still reaps its
    /// children. The reap cannot hang: closing the pipes gives blocked
    /// ranks `EPIPE`/EOF, and a rank that still refuses to exit within
    /// the grace window is `SIGKILL`ed.
    pub fn shutdown(&mut self) -> Result<(), DistError> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        for p in 0..self.ranks.len() {
            // best effort: a rank that already died must not abort the
            // teardown of its siblings
            let _ = Frame::Shutdown.write_to(&mut self.ranks[p].to_rank);
            let _ = self.ranks[p].to_rank.flush();
        }
        let channels: Vec<RankChannel> = self.ranks.drain(..).collect();
        let mut failures: Vec<(u32, WaitStatus)> = Vec::new();
        for (p, channel) in channels.into_iter().enumerate() {
            let pid = channel.pid;
            let reaped = channel.reaped;
            drop(channel); // closes both stream ends: EOF/EPIPE unblocks the child
                           // external workers have no pid: the stream close (after the
                           // Shutdown frame above) is their whole teardown
            let Some(pid) = pid else { continue };
            if reaped {
                continue;
            }
            let mut status = None;
            for _ in 0..500 {
                match sys::try_wait_pid(pid) {
                    Ok(Some(s)) => {
                        status = Some(s);
                        break;
                    }
                    Ok(None) => std::thread::sleep(std::time::Duration::from_millis(2)),
                    Err(_) => break,
                }
            }
            let status = match status {
                Some(s) => s,
                None => {
                    let _ = sys::kill_pid(pid);
                    match sys::wait_pid(pid) {
                        Ok(s) => s,
                        Err(_) => continue,
                    }
                }
            };
            let status = WaitStatus(status);
            if !status.clean() {
                failures.push((p as u32, status));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(DistError::Shutdown { failures })
        }
    }
}

impl<const C: usize, D: SmoothDomain<C>> Drop for ProcessTransport<'_, C, D> {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl<const C: usize, D: SmoothDomain<C>> FtResidentTransport<D::Point>
    for ProcessTransport<'_, C, D>
{
    type Error = DistError;

    fn try_gather(&mut self, coords: &[D::Point], scores: &[(f64, bool)]) -> Result<(), DistError> {
        // prime the checkpoint before any wire traffic, so a failure in
        // iteration 1 (or in this very gather) recovers to the initial
        // state
        self.ckpt = coords.to_vec();
        self.ckpt_fresh = true;
        self.load_ranks(coords, scores)
    }

    fn try_interior_phase(&mut self) -> Result<(), DistError> {
        self.cur_iter += 1;
        self.ckpt_fresh = false;
        if let Some(pc) = self.ckpt_pending.as_mut() {
            // the outstanding round's data is now a *past* boundary
            pc.swept = true;
        }
        if self.overlap {
            // per-iteration round bookkeeping restarts here; the
            // previous iteration left everything quiesced (finish drain
            // exits with all queues empty and all reports in)
            self.ov.rounds_issued = 0;
            self.ov.done_rounds.iter_mut().for_each(|r| *r = 0);
        }
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::Interior)?;
            self.flush(p)?;
            self.mark(p, "interior");
        }
        Ok(())
    }

    fn try_color_step(
        &mut self,
        color: usize,
        volume: &mut ExchangeVolume,
    ) -> Result<(), DistError> {
        if self.overlap {
            if self.ov.rounds_issued == 0 {
                // the iteration's first round: everyone is quiesced in
                // its read loop, so a plain blocking broadcast releases
                // the whole group at once — the drain of this round
                // happens inside the *next* color step (or the finish),
                // overlapped with the sweeps it releases
                for p in 0..self.ranks.len() {
                    self.send(p, &Frame::ColorStep { color: color as u32 })?;
                    self.flush(p)?;
                    self.ranks[p].owed_rounds += 1;
                }
            } else {
                self.ov_drain(Release::Color(color as u32), volume, None)?;
            }
            self.ov.rounds_issued += 1;
            return Ok(());
        }
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::ColorStep { color: color as u32 })?;
            self.flush(p)?;
            self.ranks[p].owed_rounds += 1;
        }
        // drain phase: collect every rank's coalesced per-pair batches,
        // in ascending source-part order
        for p in 0..self.ranks.len() {
            loop {
                match self.recv(p)? {
                    Frame::HaloDelta { part: dst, slots, coords } => {
                        if dst as usize >= self.ranks.len() {
                            let f = Frame::HaloDelta { part: dst, slots, coords };
                            return Err(self.protocol_error(p, &f));
                        }
                        volume.halo_messages_sent += 1;
                        volume.halo_entries_sent += slots.len();
                        volume.halo_bytes_sent += halo_frame_wire_len(D::Point::DIM, slots.len());
                        self.forward[dst as usize].push(Frame::HaloDelta {
                            part: p as u32,
                            slots,
                            coords,
                        });
                    }
                    Frame::RoundDone => {
                        self.ranks[p].owed_rounds -= 1;
                        self.mark(p, "color_step");
                        break;
                    }
                    f => return Err(self.protocol_error(p, &f)),
                }
            }
        }
        // forward phase: every rank is back in its read loop, so these
        // writes drain promptly; FIFO order per pipe keeps them ahead of
        // the next control frame
        let parts = self.ranks.len();
        for q in 0..parts {
            let mut frames = std::mem::take(&mut self.forward[q]);
            if frames.is_empty() {
                continue;
            }
            for frame in &frames {
                if self.profile {
                    // forwarded frames carry their source part; charge
                    // the write to the (src, dst) routing cell (also
                    // counted in the encode total by `send`)
                    let src = match frame {
                        Frame::HaloDelta { part, .. } => *part as usize,
                        _ => q,
                    };
                    let t0 = now_ns();
                    self.send(q, frame)?;
                    self.route_pair_ns[src * parts + q] += now_ns().saturating_sub(t0);
                } else {
                    self.send(q, frame)?;
                }
            }
            self.flush(q)?;
            frames.clear();
            self.forward[q] = frames;
        }
        Ok(())
    }

    fn try_finish_iteration(
        &mut self,
        deltas: &mut Vec<f64>,
        volume: &mut ExchangeVolume,
    ) -> Result<(), DistError> {
        if self.overlap && self.ov.rounds_issued > 0 {
            // drain the last color round and release each rank into its
            // finish the moment its in-neighbours are done; the drain
            // also collects the reports as they arrive, but the deltas
            // are appended in rank order below — the driver folds them
            // in order, and float folds are order-sensitive
            let k = self.ranks.len();
            let mut got: Vec<Option<f64>> = vec![None; k];
            self.ov_drain(Release::Finish, volume, Some(&mut got))?;
            for d in got {
                deltas.push(d.expect("finish drain exits only with every report in"));
            }
            return Ok(());
        }
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::FinishIteration)?;
            self.flush(p)?;
            self.ranks[p].pending = Pending::Report;
        }
        for p in 0..self.ranks.len() {
            loop {
                let frame = if self.overlap { self.ov_recv(p)? } else { self.recv(p)? };
                match frame {
                    Frame::Report { delta, phases } => {
                        self.ranks[p].pending = Pending::None;
                        if self.profile {
                            self.phases[p].accumulate(phases);
                        }
                        deltas.push(delta);
                        self.mark(p, "finish");
                        break;
                    }
                    Frame::ScatterDelta { slots, coords } if self.overlap => {
                        // a deferred checkpoint reply rides ahead of
                        // the report in the rank's FIFO stream
                        self.ov_stash_ckpt_delta(p, slots, coords)?;
                    }
                    f => return Err(self.protocol_error(p, &f)),
                }
            }
        }
        Ok(())
    }

    fn try_scatter(&mut self, coords: &mut [D::Point]) -> Result<(), DistError> {
        if self.overlap {
            if let Some((scratch, swept)) = self.ov_complete_ckpt()? {
                // the round the driver requested at the `done` boundary
                // right before this scatter: no sweep has run since, so
                // the assembled state *is* every rank's live owned
                // state — commit it and serve the scatter from it
                self.ckpt = scratch;
                self.ckpt_fresh = !swept;
            }
            if self.ckpt_fresh {
                // owned sets partition the vertices and unsmoothed
                // slots never left their gathered values: the committed
                // checkpoint answers the scatter with zero wire traffic
                // instead of double-walking the mesh
                coords.copy_from_slice(&self.ckpt);
                return Ok(());
            }
            // safety net (recovery paths reload-and-mark-fresh, so
            // this full wire round is normally unreachable in overlap
            // mode)
            for p in 0..self.ranks.len() {
                self.send(p, &Frame::ScatterRequest)?;
                self.flush(p)?;
                self.ranks[p].pending = Pending::Scatter;
            }
            let replies = self.ov_collect_scatters("scatter")?;
            for (p, points) in replies.iter().enumerate() {
                for (&v, &point) in self.blocks[p].owned().iter().zip(points) {
                    coords[v as usize] = point;
                }
            }
            return Ok(());
        }
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::ScatterRequest)?;
            self.flush(p)?;
            self.ranks[p].pending = Pending::Scatter;
        }
        for p in 0..self.ranks.len() {
            match self.recv(p)? {
                Frame::Scatter { coords: flat } => {
                    self.ranks[p].pending = Pending::None;
                    let owned = self.blocks[p].owned();
                    if flat.len() != owned.len() * D::Point::DIM {
                        let f = Frame::Scatter { coords: flat };
                        return Err(self.protocol_error(p, &f));
                    }
                    let points = crate::codec::flat_to_points::<D::Point>(&flat);
                    for (&v, &point) in owned.iter().zip(&points) {
                        coords[v as usize] = point;
                    }
                    self.mark(p, "scatter");
                }
                f => return Err(self.protocol_error(p, &f)),
            }
        }
        Ok(())
    }

    /// Refresh the checkpoint through an out-of-band scatter round into
    /// a scratch snapshot, atomically replacing the checkpoint only once
    /// every rank has answered — a failure mid checkpoint leaves the
    /// previous checkpoint valid. The serialized path pulls every rank's
    /// full owned block; the overlap path runs the **sparse** round
    /// (`ScatterDeltaRequest` → changed slots only) collected through
    /// the multiplexer (arrival order — rank slots are disjoint) and
    /// marks the refreshed checkpoint fresh, which is what lets a
    /// `done`-boundary scatter skip its own wire round entirely.
    fn take_checkpoint(&mut self) -> Result<(), DistError> {
        if self.overlap {
            // Deferred sparse checkpoint round. Each rank diffs its
            // owned block against the state the coordinator last saw
            // (its Gather load or previous ScatterDelta reply) and
            // ships only the changed slots — between boundaries that is
            // the moved set, a few percent of the block — and the
            // replies are consumed inside the *next* iteration's drains
            // instead of at a synchronous barrier here. Three-step
            // dance: (1) finish the previous boundary's round (rank
            // FIFO means its replies normally arrived long ago — zero
            // wait), (2) broadcast this boundary's request, (3) commit
            // the finished round. The commit rides the `Ok` return, so
            // `ckpt` and the driver's fold snapshot advance in
            // lock-step; any failure leaves `ckpt` at the state the
            // driver's snapshot describes. The price — recovery can
            // replay up to one extra checkpoint interval — is the FT
            // policy trade that buys hiding the collection wait.
            let ready = self.ov_complete_ckpt()?;
            let base = match &ready {
                Some((scratch, _)) => scratch.clone(),
                None => self.ckpt.clone(),
            };
            let k = self.ranks.len();
            self.ckpt_pending = Some(CkptPending {
                scratch: base,
                awaiting: vec![false; k],
                missing: 0,
                swept: false,
            });
            for p in 0..k {
                self.send(p, &Frame::ScatterDeltaRequest)?;
                self.flush(p)?;
                // marked awaiting only once the request is actually
                // out: a broadcast that dies midway leaves resync
                // draining exactly the ranks that owe a reply
                let pc = self.ckpt_pending.as_mut().expect("set above");
                pc.awaiting[p] = true;
                pc.missing += 1;
            }
            if let Some((scratch, swept)) = ready {
                self.ckpt = scratch;
                self.ckpt_fresh = !swept;
            }
            return Ok(());
        }
        let mut scratch = self.ckpt.clone();
        for p in 0..self.ranks.len() {
            self.send(p, &Frame::ScatterRequest)?;
            self.flush(p)?;
            self.ranks[p].pending = Pending::Scatter;
        }
        for p in 0..self.ranks.len() {
            match self.recv(p)? {
                Frame::Scatter { coords: flat } => {
                    self.ranks[p].pending = Pending::None;
                    let owned = self.blocks[p].owned();
                    if flat.len() != owned.len() * D::Point::DIM {
                        let f = Frame::Scatter { coords: flat };
                        return Err(self.protocol_error(p, &f));
                    }
                    let points = crate::codec::flat_to_points::<D::Point>(&flat);
                    for (&v, &point) in owned.iter().zip(&points) {
                        scratch[v as usize] = point;
                    }
                    self.mark(p, "checkpoint");
                }
                f => return Err(self.protocol_error(p, &f)),
            }
        }
        self.ckpt = scratch;
        Ok(())
    }

    /// Put the group back at the last checkpoint after `failure`: kill +
    /// reap the implicated rank, drain every survivor to quiescence
    /// (survivors failing here join the failed set), respawn the failed
    /// ranks with disarmed fault plans, drop stale forward queues, and
    /// reload everyone from the snapshot. May itself fail (another rank
    /// dying mid-recovery, or fork refusing) — the driver retries
    /// against its recovery budget, and repeated reload failures
    /// re-enter here with the newly implicated rank.
    fn deferred_checkpoints(&self) -> bool {
        self.overlap
    }

    fn recover(&mut self, failure: &DistError) -> Result<(), DistError> {
        assert!(!self.ckpt.is_empty(), "recover called before the initial gather");
        let mut failed: Vec<u32> = match failure {
            DistError::RankExited { rank, .. }
            | DistError::RankStalled { rank, .. }
            | DistError::Wire { rank, .. }
            | DistError::ConnLost { rank, .. }
            | DistError::Protocol { rank, .. } => vec![*rank],
            // a respawn that never (re)connected names no rank — but its
            // stale dead channel fails resync below and re-implicates
            // itself, so repeated recovery attempts converge
            DistError::Spawn(_) | DistError::ConnRefused { .. } | DistError::Shutdown { .. } => {
                Vec::new()
            }
        };
        if self.overlap {
            // push each survivor's queued bytes out (bounded) before
            // draining it: an out-queue abandoned mid-frame would leave
            // a torn frame on the stream, and the survivor would die on
            // the CRC at its next read. A rank that will not take its
            // bytes within the grace window is left to fail resync and
            // join the failed set.
            for q in 0..self.ranks.len() {
                if failed.contains(&(q as u32)) || self.ov.outq[q].is_empty() {
                    continue;
                }
                for _ in 0..50 {
                    match self.ov_flush(q) {
                        Ok(true) => break,
                        Ok(false) => {
                            let _ = sys::wait_writable(self.ranks[q].to_fd, 10);
                        }
                        Err(_) => break,
                    }
                }
            }
        }
        for p in 0..self.ranks.len() {
            if failed.contains(&(p as u32)) {
                continue;
            }
            if self.resync(p).is_err() {
                failed.push(p as u32);
            }
        }
        // the outstanding deferred round dies with the iteration it was
        // hiding behind: survivors' replies were drained by resync,
        // failed ranks' replies died with their connections, and the
        // reload below resets every rank's sparse baseline via Gather
        self.ckpt_pending = None;
        for &p in &failed {
            self.reap(p as usize);
            let replacement = self.spawn_rank(p, false)?;
            self.ranks[p as usize] = replacement;
            self.ov.reasm[p as usize].clear();
        }
        for queue in &mut self.forward {
            queue.clear();
        }
        // drop every in-flight artefact of the abandoned iteration: the
        // driver replays from the checkpoint through a fresh interior
        // phase, which restarts the round bookkeeping
        for q in 0..self.ranks.len() {
            self.ov.outq[q].clear();
            self.ov.stash[q].clear();
        }
        self.ov.rounds_issued = 0;
        self.ov.done_rounds.iter_mut().for_each(|r| *r = 0);
        for channel in &mut self.ranks {
            channel.pending = Pending::None;
            channel.owed_rounds = 0;
        }
        self.reload_all()?;
        // the reload *is* the checkpoint state on every rank
        self.ckpt_fresh = true;
        Ok(())
    }
}
