//! Typed failure diagnosis of the multi-process backend.
//!
//! Every way a distributed run can go wrong maps to one [`DistError`]
//! variant, so callers can distinguish the recoverable regimes (a rank
//! died, stalled, or sent a corrupt frame — `ProcessTransport::recover`
//! handles these) from the unrecoverable ones (the host cannot fork at
//! all — degrade to the in-process transport).

use crate::sys::WaitStatus;
use lms_part::wire::WireError;

/// A diagnosed failure of the multi-process transport.
#[derive(Debug)]
pub enum DistError {
    /// Rank processes could not be created (fork/pipe/handshake failed).
    /// Not recoverable by respawn — the caller should degrade to the
    /// in-process transport.
    Spawn(std::io::Error),
    /// A rank process exited mid-protocol; `status` is its reaped wait
    /// status (exit code or terminating signal).
    RankExited { rank: u32, status: WaitStatus },
    /// A rank process is alive but produced no readable data within the
    /// coordinator's `poll(2)` read timeout. `waited_ms` is the total
    /// wall time the coordinator has spent polling this rank's stream
    /// over the whole run, and `last_phase` names the last protocol
    /// phase the rank completed (e.g. `color_step#3`) — together they
    /// say *where* the rank wedged, not just that it did.
    RankStalled { rank: u32, timeout_ms: i32, waited_ms: u64, last_phase: String },
    /// A rank's stream delivered a torn, corrupt, or undecodable frame
    /// (the silent-error half of the failure model — detected by the
    /// wire v2 checksum).
    Wire { rank: u32, error: WireError },
    /// The rank's connection is gone but its process is not known to be
    /// dead: the peer closed its stream (socket EOF / reset) while
    /// `waitpid` still reports it alive, or the rank is an external
    /// standalone worker with no pid to reap at all. Recoverable like
    /// [`RankExited`](Self::RankExited) — kill what can be killed,
    /// reconnect-and-reload from the checkpoint.
    ConnLost { rank: u32, detail: String },
    /// A rank never joined the group: connecting to (or accepting on)
    /// `addr` failed even after the supervisor's bounded
    /// exponential-backoff retries. At spawn time the caller degrades
    /// down the transport ladder; during recovery the driver retries
    /// against its budget.
    ConnRefused { addr: String, attempts: u32, detail: String },
    /// A rank sent a well-formed frame that violates the protocol state
    /// machine (e.g. a `Report` where a `RoundDone` was due).
    Protocol { rank: u32, frame: String },
    /// Teardown found ranks that did not exit cleanly: one `(rank, wait
    /// status)` entry per abnormal child.
    Shutdown { failures: Vec<(u32, WaitStatus)> },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Spawn(e) => write!(f, "cannot spawn rank processes: {e}"),
            DistError::RankExited { rank, status } => {
                write!(f, "rank {rank} died mid-protocol ({status})")
            }
            DistError::RankStalled { rank, timeout_ms, waited_ms, last_phase } => {
                write!(
                    f,
                    "rank {rank} stalled (no data within {timeout_ms}ms; \
                     waited {waited_ms}ms total, last completed {last_phase})"
                )
            }
            DistError::Wire { rank, error } => {
                write!(f, "corrupt stream from rank {rank}: {error}")
            }
            DistError::ConnLost { rank, detail } => {
                write!(f, "lost connection to rank {rank} ({detail})")
            }
            DistError::ConnRefused { addr, attempts, detail } => {
                write!(f, "rank connection at {addr} refused after {attempts} attempt(s): {detail}")
            }
            DistError::Protocol { rank, frame } => {
                write!(f, "rank {rank} broke protocol: unexpected {frame}")
            }
            DistError::Shutdown { failures } => {
                write!(f, "ranks exited abnormally at shutdown:")?;
                for (rank, status) in failures {
                    write!(f, " [rank {rank}: {status}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Spawn(e) => Some(e),
            DistError::Wire { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(DistError, &str)> = vec![
            (DistError::Spawn(std::io::Error::other("no forks left")), "no forks left"),
            (
                DistError::RankExited { rank: 3, status: WaitStatus(9) },
                "rank 3 died mid-protocol (killed by signal 9)",
            ),
            (
                DistError::RankStalled {
                    rank: 1,
                    timeout_ms: 250,
                    waited_ms: 731,
                    last_phase: "color_step#3".into(),
                },
                "250ms",
            ),
            (
                DistError::RankStalled {
                    rank: 1,
                    timeout_ms: 250,
                    waited_ms: 731,
                    last_phase: "color_step#3".into(),
                },
                "last completed color_step#3",
            ),
            (
                DistError::Wire {
                    rank: 2,
                    error: lms_part::wire::WireError::BadChecksum { expected: 1, got: 2 },
                },
                "corrupt stream from rank 2",
            ),
            (DistError::Protocol { rank: 0, frame: "Shutdown".into() }, "unexpected Shutdown"),
            (
                DistError::ConnLost {
                    rank: 2,
                    detail: "peer closed the stream (process still alive)".into(),
                },
                "lost connection to rank 2",
            ),
            (
                DistError::ConnLost { rank: 2, detail: "process still alive".into() },
                "process still alive",
            ),
            (
                DistError::ConnRefused {
                    addr: "tcp:127.0.0.1:9".into(),
                    attempts: 12,
                    detail: "Connection refused (os error 111)".into(),
                },
                "refused after 12 attempt(s)",
            ),
            (
                DistError::ConnRefused {
                    addr: "unix:/tmp/x.sock".into(),
                    attempts: 1,
                    detail: "no worker connected within 300ms".into(),
                },
                "unix:/tmp/x.sock",
            ),
            (
                DistError::Shutdown { failures: vec![(1, WaitStatus(0x0b00))] },
                "[rank 1: exit code 11]",
            ),
        ];
        for (err, needle) in cases {
            let shown = err.to_string();
            assert!(shown.contains(needle), "{shown:?} should mention {needle:?}");
            let _: &dyn std::error::Error = &err;
        }
    }
}
