//! # lms-dist — distributed-memory resident smoothing
//!
//! The multi-process backend of the resident halo-exchange protocol:
//! MPI-style **ranks as forked worker processes** over Unix pipes, each
//! rank holding one part's [`lms_smooth::resident::ResidentBlock`] as its
//! resident per-rank state, a coordinator driving the color-step schedule
//! through the versioned [`lms_part::wire`] frame format.
//!
//! The layering (PR 5's transport refactor) is what makes this crate
//! small:
//!
//! * `lms-part` owns the *communication pattern* — the
//!   [`lms_part::ExchangeSchedule`] delivery lists, their rank-addressed
//!   [`lms_part::MessagePlan`] coalescing, and the wire frames;
//! * `lms-smooth` owns the *computation* — the per-rank
//!   [`lms_smooth::ResidentRank`] kernel and the generic
//!   [`lms_smooth::drive_resident`] loop over a
//!   [`lms_smooth::ResidentTransport`];
//! * this crate only *moves bytes*: [`ProcessTransport`] implements the
//!   five transport operations as frames over pipes, and the
//!   [`DistResidentEngine`] / [`DistResidentEngine3`] wrappers reuse the
//!   in-process engines' construction wholesale.
//!
//! Because both transports run the same ranks, route the same coalesced
//! per-pair batches in the same order and charge the same wire-length
//! accounting, a multi-process run is **bit-identical** to the
//! in-process resident engine — coordinates *and* reports — and hence to
//! serial part-major Gauss–Seidel. The cross-transport oracle in
//! `tests/oracle.rs` pins this across {2, 4, 8} parts × smart/plain ×
//! 2D/3D.
//!
//! Runs are **fault tolerant** (PR 6): every coordinator read is bounded
//! by a `poll(2)` timeout, every frame carries a CRC32c (wire v2), dead
//! ranks are reaped via `waitpid` — and a detected failure is recovered
//! by respawning the rank from the last iteration-boundary checkpoint
//! and replaying, with final coordinates and reports still bit-identical
//! to a failure-free run. The deterministic fault-injection harness
//! ([`FaultPlan`]) and the chaos suite (`tests/chaos.rs`) pin the whole
//! failure model; when forking is impossible, [`DistResidentEngine`]
//! degrades gracefully to the in-process engine.
//!
//! ```
//! use lms_part::PartitionMethod;
//! use lms_smooth::SmoothParams;
//! let mut mesh = lms_mesh::generators::perturbed_grid(16, 16, 0.35, 1);
//! let report = lms_dist::smooth_distributed(
//!     &mut mesh,
//!     SmoothParams::paper().with_max_iters(4),
//!     2,
//!     PartitionMethod::Rcb,
//! );
//! assert!(report.final_quality > report.initial_quality);
//! let volume = report.exchange.unwrap();
//! assert_eq!((volume.full_gathers, volume.full_scatters), (1, 1));
//! ```

pub mod engines;
pub mod error;
pub mod fault;
pub mod socket;
pub mod sys;
pub mod transport;
pub(crate) mod worker;

pub use engines::{
    smooth_distributed, smooth_distributed3, DistResidentEngine, DistResidentEngine3, FtOptions,
    TransportMode,
};
pub use error::DistError;
pub use fault::{FaultPlan, FaultPoint, WorkerFault, INJECTED_KILL_EXIT, REFUSED_CONNECT_EXIT};
pub use socket::{
    serve_standalone_tet, serve_standalone_tri, Listener, SocketSpec, SocketTransport, Supervisor,
};
pub use transport::ProcessTransport;

pub(crate) mod codec {
    //! Flat `f64` ↔ point conversions of the wire coordinate payloads.
    use lms_smooth::domain::DomainPoint;

    pub(crate) fn points_to_flat<P: DomainPoint>(points: &[P]) -> Vec<f64> {
        let mut flat = Vec::with_capacity(points.len() * P::DIM);
        for &p in points {
            p.push_components(&mut flat);
        }
        flat
    }

    pub(crate) fn flat_to_points<P: DomainPoint>(flat: &[f64]) -> Vec<P> {
        assert_eq!(flat.len() % P::DIM, 0, "flat coordinate payload length");
        flat.chunks_exact(P::DIM).map(P::from_components).collect()
    }
}

#[cfg(test)]
mod tests {
    use lms_part::PartitionMethod;
    use lms_smooth::SmoothParams;

    /// The crate smoke test CI runs by name: a real multi-process run,
    /// gated on the in-process engine bit for bit.
    #[test]
    fn smoke_two_rank_run_matches_in_process() {
        let mesh = lms_mesh::generators::perturbed_grid(12, 12, 0.35, 5);
        let params = SmoothParams::paper().with_smart(true).with_max_iters(4).with_tol(-1.0);
        let engine = super::DistResidentEngine::by_method(&mesh, params, 2, PartitionMethod::Rcb);
        assert_eq!(engine.num_ranks(), 2);
        let mut dist = mesh.clone();
        let dist_report = engine.smooth(&mut dist);
        let mut local = mesh.clone();
        let local_report = engine.inner().smooth(&mut local, 2);
        assert_eq!(dist.coords(), local.coords());
        assert_eq!(dist_report, local_report);
        let volume = dist_report.exchange.unwrap();
        assert_eq!(volume.full_gathers, 1);
        assert_eq!(volume.full_scatters, 1);
        assert!(volume.halo_entries_sent > 0);
    }
}
