//! The distributed resident engines: drop-in twins of
//! [`lms_smooth::ResidentEngine`] / [`lms_mesh3d::ResidentEngine3`] that
//! run every part as a forked rank process instead of a pool worker.
//!
//! Construction is *shared with* the in-process engines — a
//! [`DistResidentEngine`] wraps a [`ResidentEngine`] and reuses its
//! blocks, schedule, color classes and stat weights verbatim — so the
//! only difference between `engine.inner().smooth(mesh, t)` and
//! `engine.smooth(mesh)` is the transport. That is exactly what the
//! cross-transport oracle (`tests/oracle.rs`) pins: bit-identical
//! coordinates *and* bit-identical reports, exchange accounting
//! included.
//!
//! Runs are **fault tolerant**: [`smooth_ft`] drives the process
//! transport through `lms_smooth::drive_resident_ft`, so a rank that
//! dies, stalls past the read timeout, or corrupts its stream is
//! detected, respawned from the last iteration-boundary checkpoint, and
//! the lost work replayed — with a final state bit-identical to a
//! failure-free run (`tests/chaos.rs` pins this). When rank processes
//! cannot be forked at all, [`smooth`] degrades gracefully to the
//! in-process resident engine, which computes the same answer.
//!
//! Rank processes are spawned per run and reaped before [`smooth`]
//! returns (`full_gathers == 1 && full_scatters == 1` still holds: the
//! block is gathered once, resident in its rank for the whole run, and
//! scattered once).
//!
//! [`smooth`]: DistResidentEngine::smooth
//! [`smooth_ft`]: DistResidentEngine::smooth_ft

use crate::error::DistError;
use crate::fault::FaultPlan;
use crate::socket::{Listener, SocketSpec, SocketTransport, Supervisor};
use crate::transport::ProcessTransport;
use lms_mesh::TriMesh;
use lms_mesh3d::{ResidentEngine3, SmoothParams3, TetMesh};
use lms_part::{ExchangeSchedule, Partition, PartitionMethod};
use lms_smooth::domain::{DomainConfig, SmoothDomain};
use lms_smooth::resident::ResidentBlock;
use lms_smooth::transport::drive_resident_ft_with;
use lms_smooth::{FtPolicy, FtStats, ResidentEngine, SmoothParams, SmoothReport};
use lms_trace::{NullTrace, PhaseBreakdown, Recorder, TraceSink, TransportProfile};
use std::io;

/// Which byte-stream substrate a distributed run uses — the rungs of the
/// graceful-degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Probe the ladder top-down at engine construction: TCP loopback →
    /// Unix socket → fork/pipes → in-process. Each rung that cannot be
    /// established (bind/connect/accept/fork failure) degrades to the
    /// next; the last rung degrades to the in-process engine via
    /// [`DistError::Spawn`].
    Auto,
    /// Forked workers dialling back over TCP loopback — the single-host
    /// stand-in for the multi-node deployment shape.
    TcpLoopback,
    /// Forked workers over a Unix-domain socket under the temp dir.
    UnixSocket,
    /// Forked workers over anonymous pipes (the PR 5/6 backend).
    Pipes,
    /// No rank processes at all: [`smooth_ft`] fails with
    /// [`DistError::Spawn`] and [`smooth`] computes in-process — the
    /// ladder's floor, always available.
    ///
    /// [`smooth_ft`]: DistResidentEngine::smooth_ft
    /// [`smooth`]: DistResidentEngine::smooth
    InProcess,
}

impl TransportMode {
    /// The rung sequence this mode tries, top first.
    pub fn ladder(self) -> Vec<TransportMode> {
        match self {
            TransportMode::Auto => vec![
                TransportMode::TcpLoopback,
                TransportMode::UnixSocket,
                TransportMode::Pipes,
                TransportMode::InProcess,
            ],
            mode => vec![mode],
        }
    }
}

/// Knobs of a fault-tolerant distributed run.
#[derive(Debug, Clone)]
pub struct FtOptions {
    /// Checkpoint cadence and recovery budget of the drive loop.
    pub policy: FtPolicy,
    /// `poll(2)` bound on every coordinator read, in milliseconds: a rank
    /// producing nothing for this long is diagnosed as stalled, killed
    /// and respawned from the checkpoint. Negative disables the bound.
    pub read_timeout_ms: i32,
    /// Scripted fault injection — [`FaultPlan::none`] outside the chaos
    /// suite.
    pub faults: FaultPlan,
    /// Phase profiling: ranks time their sweep phases and report them in
    /// every `Report` frame; the coordinator times its routing work.
    /// Observation only — coordinates and reports (minus the breakdown)
    /// are bit-identical either way. Off by default.
    pub profile: bool,
    /// Byte-stream substrate (and degradation ladder) of the run.
    /// Defaults to [`TransportMode::Pipes`] — the established single-host
    /// backend; pick [`TransportMode::Auto`] to probe sockets first.
    pub mode: TransportMode,
    /// Connection supervision knobs of the socket rungs (retry/backoff
    /// and accept bounds); ignored by the pipe rung.
    pub supervisor: Supervisor,
    /// Event-driven coordinator with compute/communication overlap: one
    /// `poll(2)` multiplexed over every rank stream, eager delta
    /// forwarding, and eager round release (see the `transport` module
    /// docs). On by default; turning it off restores the serialized
    /// drain/forward loop — the overlap oracle — with bit-identical
    /// coordinates and reports either way.
    pub overlap: bool,
}

impl Default for FtOptions {
    fn default() -> Self {
        FtOptions {
            policy: FtPolicy::default(),
            // generous: a false stall positive costs a full recovery
            read_timeout_ms: 30_000,
            faults: FaultPlan::none(),
            profile: false,
            mode: TransportMode::Pipes,
            supervisor: Supervisor::default(),
            overlap: true,
        }
    }
}

/// Establish the transport for one rung of the ladder.
fn spawn_mode_transport<'a, const C: usize, D: SmoothDomain<C>>(
    mode: TransportMode,
    dom: &'a D,
    cfg: &DomainConfig,
    blocks: &'a [ResidentBlock<C>],
    schedule: &'a ExchangeSchedule,
    options: &FtOptions,
) -> Result<ProcessTransport<'a, C, D>, DistError> {
    let socket_spec = match mode {
        TransportMode::Auto => unreachable!("Auto resolves to a concrete rung via ladder()"),
        TransportMode::InProcess => {
            // the ladder's floor: signal "no rank processes" so smooth()
            // degrades to the in-process engine
            return Err(DistError::Spawn(io::Error::other(
                "in-process rung of the degradation ladder",
            )));
        }
        TransportMode::Pipes => {
            return ProcessTransport::spawn(
                dom,
                cfg,
                blocks,
                schedule,
                options.read_timeout_ms,
                options.faults.clone(),
                options.profile,
                options.overlap,
            );
        }
        TransportMode::TcpLoopback => SocketSpec::tcp_loopback(),
        TransportMode::UnixSocket => SocketSpec::temp_unix(),
    };
    SocketTransport::spawn_forked(
        &socket_spec,
        dom,
        cfg,
        blocks,
        schedule,
        options.read_timeout_ms,
        options.faults.clone(),
        options.profile,
        options.overlap,
        &options.supervisor,
    )
    .map(SocketTransport::into_inner)
}

/// Walk the mode ladder until a rung comes up. A rung failing to
/// *establish* (spawn veto, bind/accept failure, refused connect)
/// degrades to the next; the last rung's failure — and any error that is
/// not an establishment failure — propagates.
fn spawn_laddered<'a, const C: usize, D: SmoothDomain<C>>(
    dom: &'a D,
    cfg: &DomainConfig,
    blocks: &'a [ResidentBlock<C>],
    schedule: &'a ExchangeSchedule,
    options: &FtOptions,
) -> Result<ProcessTransport<'a, C, D>, DistError> {
    let modes = options.mode.ladder();
    for (i, &mode) in modes.iter().enumerate() {
        match spawn_mode_transport(mode, dom, cfg, blocks, schedule, options) {
            Ok(transport) => return Ok(transport),
            Err(e) => {
                let establishment =
                    matches!(e, DistError::Spawn(_) | DistError::ConnRefused { .. });
                if establishment && i + 1 < modes.len() {
                    eprintln!(
                        "lms-dist: {mode:?} transport unavailable ({e}); \
                         degrading to {:?}",
                        modes[i + 1]
                    );
                    continue;
                }
                return Err(e);
            }
        }
    }
    unreachable!("ladder() never returns an empty rung list")
}

/// Multi-process resident smoothing of triangle meshes: one rank process
/// per part, wire frames over pipes, coordinates and reports
/// bit-identical to [`ResidentEngine`] (hence to serial part-major
/// Gauss–Seidel) — including runs that detect and recover rank failures.
#[derive(Debug, Clone)]
pub struct DistResidentEngine {
    inner: ResidentEngine,
}

impl DistResidentEngine {
    /// Build the engine for `mesh` under `params` and an existing
    /// decomposition (Gauss–Seidel parameters only).
    pub fn new(mesh: &TriMesh, params: SmoothParams, partition: Partition) -> Self {
        DistResidentEngine { inner: ResidentEngine::new(mesh, params, partition) }
    }

    /// Convenience: decompose `mesh` into `num_parts` with `method`, then
    /// build the engine.
    pub fn by_method(
        mesh: &TriMesh,
        params: SmoothParams,
        num_parts: usize,
        method: PartitionMethod,
    ) -> Self {
        DistResidentEngine { inner: ResidentEngine::by_method(mesh, params, num_parts, method) }
    }

    /// The wrapped in-process engine (shared blocks, schedule, classes) —
    /// the bit-identity oracle to compare runs against.
    pub fn inner(&self) -> &ResidentEngine {
        &self.inner
    }

    /// Number of rank processes a run forks (= number of parts).
    pub fn num_ranks(&self) -> usize {
        self.inner.blocks().len()
    }

    /// Fault-tolerant distributed run with explicit options: fork one
    /// rank per part, drive the checkpoint/recovery loop over the process
    /// transport, reap the ranks. On success the result is bit-identical
    /// to [`ResidentEngine::smooth`] — whether or not ranks failed along
    /// the way — and [`FtStats`] says what fault tolerance did. Errors
    /// are typed: [`DistError::Spawn`] means no rank group could be
    /// created (degrade to the in-process engine); anything else means
    /// the recovery budget ran out.
    pub fn smooth_ft(
        &self,
        mesh: &mut TriMesh,
        options: &FtOptions,
    ) -> Result<(SmoothReport, FtStats), DistError> {
        let (report, stats, _) = self.smooth_ft_with(mesh, options, &mut NullTrace)?;
        Ok((report, stats))
    }

    /// [`smooth_ft`](Self::smooth_ft) with an explicit driver-side
    /// [`TraceSink`], additionally returning the coordinator's
    /// [`TransportProfile`] (all-zero unless `options.profile` is set).
    /// The building block of [`smooth_profiled`](Self::smooth_profiled);
    /// exposed so callers can plug custom sinks.
    pub fn smooth_ft_with<S: TraceSink>(
        &self,
        mesh: &mut TriMesh,
        options: &FtOptions,
        sink: &mut S,
    ) -> Result<(SmoothReport, FtStats, TransportProfile), DistError> {
        assert_eq!(
            mesh.num_vertices(),
            self.inner.partition().len(),
            "engine was built for a different mesh"
        );
        let dom = self.inner.engine().domain();
        let cfg = DomainConfig::from(self.inner.engine().params());
        let mut transport = spawn_laddered(
            &dom,
            &cfg,
            self.inner.blocks(),
            self.inner.exchange_schedule(),
            options,
        )?;
        let result = drive_resident_ft_with(
            &dom,
            &cfg,
            self.inner.elem_weights(),
            self.inner.interface_classes().len(),
            &mut transport,
            mesh.coords_mut(),
            &options.policy,
            sink,
        );
        match result {
            Ok((report, stats)) => {
                let profile = transport.take_profile();
                transport.shutdown()?;
                Ok((report, stats, profile))
            }
            Err(e) => {
                // teardown diagnostics must not shadow the run's failure
                let _ = transport.shutdown();
                Err(e)
            }
        }
    }

    /// Profiled fault-tolerant run: forces `options.profile`, records
    /// every driver span into a [`Recorder`] and attaches the composed
    /// [`PhaseBreakdown`] (driver spans + rank sweep phases + routing
    /// matrix) to the report. The coordinates and every other report
    /// field stay bit-identical to an unprofiled [`smooth_ft`] run; the
    /// recorder is returned for chrome-trace export.
    pub fn smooth_profiled(
        &self,
        mesh: &mut TriMesh,
        options: &FtOptions,
    ) -> Result<(SmoothReport, FtStats, Recorder), DistError> {
        let mut opts = options.clone();
        opts.profile = true;
        let mut recorder = Recorder::new(0);
        let (mut report, stats, profile) = self.smooth_ft_with(mesh, &opts, &mut recorder)?;
        record_overlap_span(&mut recorder, &profile);
        let mut breakdown = PhaseBreakdown::default();
        breakdown.apply_span_totals(&recorder.span_totals());
        breakdown.transport = profile;
        report.phase_breakdown = Some(breakdown);
        Ok((report, stats, recorder))
    }

    /// Distributed resident Gauss–Seidel smoothing with the default
    /// fault-tolerance options. When rank processes cannot be spawned at
    /// all (fork/pipe refused), degrades gracefully to the in-process
    /// resident engine — same answer, shared address space. Any other
    /// failure (recovery budget exhausted, abnormal teardown) panics with
    /// the typed diagnosis.
    pub fn smooth(&self, mesh: &mut TriMesh) -> SmoothReport {
        self.smooth_with(mesh, &FtOptions::default())
    }

    /// [`smooth`](Self::smooth) with explicit options (used by the chaos
    /// suite to script faults through the degradation path).
    pub fn smooth_with(&self, mesh: &mut TriMesh, options: &FtOptions) -> SmoothReport {
        match self.smooth_ft(mesh, options) {
            Ok((report, _)) => report,
            Err(e @ (DistError::Spawn(_) | DistError::ConnRefused { .. })) => {
                eprintln!(
                    "lms-dist: cannot establish a rank group ({e}); \
                     degrading to the in-process resident engine"
                );
                self.inner.smooth(mesh, self.num_ranks().max(1))
            }
            Err(e) => panic!("distributed smoothing failed beyond recovery: {e}"),
        }
    }

    /// Serve a run over **external standalone workers**: accept one
    /// connection per part on `listener` (each worker identifies itself
    /// by rank — launch them with `lms-tool dist-worker --connect <addr>
    /// --rank <p>` anywhere the address is reachable), then drive the
    /// same fault-tolerant loop as [`smooth_ft`](Self::smooth_ft).
    /// Workers rebuild the engine from the shared problem parameters, so
    /// only run state crosses the wire.
    pub fn smooth_ft_external(
        &self,
        mesh: &mut TriMesh,
        listener: Listener,
        options: &FtOptions,
    ) -> Result<(SmoothReport, FtStats), DistError> {
        assert_eq!(
            mesh.num_vertices(),
            self.inner.partition().len(),
            "engine was built for a different mesh"
        );
        let dom = self.inner.engine().domain();
        let cfg = DomainConfig::from(self.inner.engine().params());
        let mut transport = SocketTransport::listen(
            listener,
            &dom,
            &cfg,
            self.inner.blocks(),
            self.inner.exchange_schedule(),
            options.read_timeout_ms,
            options.profile,
            options.overlap,
            &options.supervisor,
        )?
        .into_inner();
        let result = drive_resident_ft_with(
            &dom,
            &cfg,
            self.inner.elem_weights(),
            self.inner.interface_classes().len(),
            &mut transport,
            mesh.coords_mut(),
            &options.policy,
            &mut NullTrace,
        );
        match result {
            Ok((report, stats)) => {
                transport.shutdown()?;
                Ok((report, stats))
            }
            Err(e) => {
                let _ = transport.shutdown();
                Err(e)
            }
        }
    }
}

/// Multi-process resident smoothing of tetrahedral meshes — the 3D twin
/// of [`DistResidentEngine`], wrapping [`ResidentEngine3`]. One wire
/// serialisation covers both dimensions: only the handshake's coordinate
/// dimension differs.
#[derive(Debug, Clone)]
pub struct DistResidentEngine3 {
    inner: ResidentEngine3,
}

impl DistResidentEngine3 {
    /// Build the engine for `mesh` under `params` and an existing
    /// decomposition (Gauss–Seidel parameters only).
    pub fn new(mesh: &TetMesh, params: SmoothParams3, partition: Partition) -> Self {
        DistResidentEngine3 { inner: ResidentEngine3::new(mesh, params, partition) }
    }

    /// Convenience: decompose `mesh` into `num_parts` with `method`, then
    /// build the engine.
    pub fn by_method(
        mesh: &TetMesh,
        params: SmoothParams3,
        num_parts: usize,
        method: PartitionMethod,
    ) -> Self {
        DistResidentEngine3 { inner: ResidentEngine3::by_method(mesh, params, num_parts, method) }
    }

    /// The wrapped in-process engine (shared blocks, schedule, classes).
    pub fn inner(&self) -> &ResidentEngine3 {
        &self.inner
    }

    /// Number of rank processes a run forks (= number of parts).
    pub fn num_ranks(&self) -> usize {
        self.inner.blocks().len()
    }

    /// Fault-tolerant distributed 3D run — the twin of
    /// [`DistResidentEngine::smooth_ft`].
    pub fn smooth_ft(
        &self,
        mesh: &mut TetMesh,
        options: &FtOptions,
    ) -> Result<(SmoothReport, FtStats), DistError> {
        let (report, stats, _) = self.smooth_ft_with(mesh, options, &mut NullTrace)?;
        Ok((report, stats))
    }

    /// [`smooth_ft`](Self::smooth_ft) with an explicit driver-side
    /// [`TraceSink`] — the twin of [`DistResidentEngine::smooth_ft_with`].
    pub fn smooth_ft_with<S: TraceSink>(
        &self,
        mesh: &mut TetMesh,
        options: &FtOptions,
        sink: &mut S,
    ) -> Result<(SmoothReport, FtStats, TransportProfile), DistError> {
        assert_eq!(
            mesh.num_vertices(),
            self.inner.partition().len(),
            "engine was built for a different mesh"
        );
        let dom = self.inner.engine().domain();
        let cfg = self.inner.engine().params().domain_config();
        let mut transport = spawn_laddered(
            &dom,
            &cfg,
            self.inner.blocks(),
            self.inner.exchange_schedule(),
            options,
        )?;
        let result = drive_resident_ft_with(
            &dom,
            &cfg,
            self.inner.elem_weights(),
            self.inner.interface_classes().len(),
            &mut transport,
            mesh.coords_mut(),
            &options.policy,
            sink,
        );
        match result {
            Ok((report, stats)) => {
                let profile = transport.take_profile();
                transport.shutdown()?;
                Ok((report, stats, profile))
            }
            Err(e) => {
                let _ = transport.shutdown();
                Err(e)
            }
        }
    }

    /// Profiled fault-tolerant 3D run — the twin of
    /// [`DistResidentEngine::smooth_profiled`].
    pub fn smooth_profiled(
        &self,
        mesh: &mut TetMesh,
        options: &FtOptions,
    ) -> Result<(SmoothReport, FtStats, Recorder), DistError> {
        let mut opts = options.clone();
        opts.profile = true;
        let mut recorder = Recorder::new(0);
        let (mut report, stats, profile) = self.smooth_ft_with(mesh, &opts, &mut recorder)?;
        record_overlap_span(&mut recorder, &profile);
        let mut breakdown = PhaseBreakdown::default();
        breakdown.apply_span_totals(&recorder.span_totals());
        breakdown.transport = profile;
        report.phase_breakdown = Some(breakdown);
        Ok((report, stats, recorder))
    }

    /// Distributed resident 3D Gauss–Seidel smoothing; bit-identical to
    /// [`ResidentEngine3::smooth`], degrading to it when rank processes
    /// cannot be spawned.
    pub fn smooth(&self, mesh: &mut TetMesh) -> SmoothReport {
        self.smooth_with(mesh, &FtOptions::default())
    }

    /// [`smooth`](Self::smooth) with explicit options.
    pub fn smooth_with(&self, mesh: &mut TetMesh, options: &FtOptions) -> SmoothReport {
        match self.smooth_ft(mesh, options) {
            Ok((report, _)) => report,
            Err(e @ (DistError::Spawn(_) | DistError::ConnRefused { .. })) => {
                eprintln!(
                    "lms-dist: cannot establish a rank group ({e}); \
                     degrading to the in-process resident engine"
                );
                self.inner.smooth(mesh, self.num_ranks().max(1))
            }
            Err(e) => panic!("distributed smoothing failed beyond recovery: {e}"),
        }
    }
}

/// Materialise the coordinator's accumulated hidden-wait total as one
/// `"overlap"` chrome-trace span, anchored so it *ends* at export time.
/// The overlap multiplexer can only account hidden wait as a counter
/// (the hidden windows interleave with forwarding work inside one
/// drain call), so the timeline gets a single span whose duration is
/// the honest total rather than per-window marks.
fn record_overlap_span(recorder: &mut Recorder, profile: &TransportProfile) {
    if profile.hidden_wait_ns > 0 {
        let t1 = lms_trace::now_ns();
        recorder.record_span("overlap", 0, 0, t1.saturating_sub(profile.hidden_wait_ns), t1);
    }
}

/// Convenience: decompose, build the distributed engine and run it in
/// one call. Parameters are moved, never cloned.
pub fn smooth_distributed(
    mesh: &mut TriMesh,
    params: SmoothParams,
    num_parts: usize,
    method: PartitionMethod,
) -> SmoothReport {
    DistResidentEngine::by_method(mesh, params, num_parts, method).smooth(mesh)
}

/// Convenience: the 3D twin of [`smooth_distributed`].
pub fn smooth_distributed3(
    mesh: &mut TetMesh,
    params: SmoothParams3,
    num_parts: usize,
    method: PartitionMethod,
) -> SmoothReport {
    DistResidentEngine3::by_method(mesh, params, num_parts, method).smooth(mesh)
}
