//! The distributed resident engines: drop-in twins of
//! [`lms_smooth::ResidentEngine`] / [`lms_mesh3d::ResidentEngine3`] that
//! run every part as a forked rank process instead of a pool worker.
//!
//! Construction is *shared with* the in-process engines — a
//! [`DistResidentEngine`] wraps a [`ResidentEngine`] and reuses its
//! blocks, schedule, color classes and stat weights verbatim — so the
//! only difference between `engine.inner().smooth(mesh, t)` and
//! `engine.smooth(mesh)` is the transport. That is exactly what the
//! cross-transport oracle (`tests/oracle.rs`) pins: bit-identical
//! coordinates *and* bit-identical reports, exchange accounting
//! included.
//!
//! Rank processes are spawned per run and reaped before [`smooth`]
//! returns (`full_gathers == 1 && full_scatters == 1` still holds: the
//! block is gathered once, resident in its rank for the whole run, and
//! scattered once).
//!
//! [`smooth`]: DistResidentEngine::smooth

use crate::transport::ProcessTransport;
use lms_mesh::{Point2, TriMesh};
use lms_mesh3d::{Point3, ResidentEngine3, SmoothParams3, TetMesh};
use lms_part::{Partition, PartitionMethod};
use lms_smooth::domain::DomainConfig;
use lms_smooth::transport::drive_resident;
use lms_smooth::{ResidentEngine, SmoothParams, SmoothReport};

/// Multi-process resident smoothing of triangle meshes: one rank process
/// per part, wire frames over pipes, coordinates and reports
/// bit-identical to [`ResidentEngine`] (hence to serial part-major
/// Gauss–Seidel).
#[derive(Debug, Clone)]
pub struct DistResidentEngine {
    inner: ResidentEngine,
}

impl DistResidentEngine {
    /// Build the engine for `mesh` under `params` and an existing
    /// decomposition (Gauss–Seidel parameters only).
    pub fn new(mesh: &TriMesh, params: SmoothParams, partition: Partition) -> Self {
        DistResidentEngine { inner: ResidentEngine::new(mesh, params, partition) }
    }

    /// Convenience: decompose `mesh` into `num_parts` with `method`, then
    /// build the engine.
    pub fn by_method(
        mesh: &TriMesh,
        params: SmoothParams,
        num_parts: usize,
        method: PartitionMethod,
    ) -> Self {
        DistResidentEngine { inner: ResidentEngine::by_method(mesh, params, num_parts, method) }
    }

    /// The wrapped in-process engine (shared blocks, schedule, classes) —
    /// the bit-identity oracle to compare runs against.
    pub fn inner(&self) -> &ResidentEngine {
        &self.inner
    }

    /// Number of rank processes a run forks (= number of parts).
    pub fn num_ranks(&self) -> usize {
        self.inner.blocks().len()
    }

    /// Distributed resident Gauss–Seidel smoothing: fork one rank per
    /// part, run the generic resident drive loop over the process
    /// transport, reap the ranks. Bit-identical to
    /// [`ResidentEngine::smooth`] for any thread count there.
    pub fn smooth(&self, mesh: &mut TriMesh) -> SmoothReport {
        assert_eq!(
            mesh.num_vertices(),
            self.inner.partition().len(),
            "engine was built for a different mesh"
        );
        let dom = self.inner.engine().domain();
        let cfg = DomainConfig::from(self.inner.engine().params());
        let mut transport: ProcessTransport<'_, 3, Point2> = ProcessTransport::spawn(
            &dom,
            &cfg,
            self.inner.blocks(),
            self.inner.exchange_schedule(),
        )
        .expect("failed to fork rank worker processes");
        let report = drive_resident(
            &dom,
            &cfg,
            self.inner.elem_weights(),
            self.inner.interface_classes().len(),
            &mut transport,
            mesh.coords_mut(),
        );
        transport.shutdown();
        report
    }
}

/// Multi-process resident smoothing of tetrahedral meshes — the 3D twin
/// of [`DistResidentEngine`], wrapping [`ResidentEngine3`]. One wire
/// serialisation covers both dimensions: only the handshake's coordinate
/// dimension differs.
#[derive(Debug, Clone)]
pub struct DistResidentEngine3 {
    inner: ResidentEngine3,
}

impl DistResidentEngine3 {
    /// Build the engine for `mesh` under `params` and an existing
    /// decomposition (Gauss–Seidel parameters only).
    pub fn new(mesh: &TetMesh, params: SmoothParams3, partition: Partition) -> Self {
        DistResidentEngine3 { inner: ResidentEngine3::new(mesh, params, partition) }
    }

    /// Convenience: decompose `mesh` into `num_parts` with `method`, then
    /// build the engine.
    pub fn by_method(
        mesh: &TetMesh,
        params: SmoothParams3,
        num_parts: usize,
        method: PartitionMethod,
    ) -> Self {
        DistResidentEngine3 { inner: ResidentEngine3::by_method(mesh, params, num_parts, method) }
    }

    /// The wrapped in-process engine (shared blocks, schedule, classes).
    pub fn inner(&self) -> &ResidentEngine3 {
        &self.inner
    }

    /// Number of rank processes a run forks (= number of parts).
    pub fn num_ranks(&self) -> usize {
        self.inner.blocks().len()
    }

    /// Distributed resident 3D Gauss–Seidel smoothing; bit-identical to
    /// [`ResidentEngine3::smooth`].
    pub fn smooth(&self, mesh: &mut TetMesh) -> SmoothReport {
        assert_eq!(
            mesh.num_vertices(),
            self.inner.partition().len(),
            "engine was built for a different mesh"
        );
        let dom = self.inner.engine().domain();
        let cfg = self.inner.engine().params().domain_config();
        let mut transport: ProcessTransport<'_, 4, Point3> = ProcessTransport::spawn(
            &dom,
            &cfg,
            self.inner.blocks(),
            self.inner.exchange_schedule(),
        )
        .expect("failed to fork rank worker processes");
        let report = drive_resident(
            &dom,
            &cfg,
            self.inner.elem_weights(),
            self.inner.interface_classes().len(),
            &mut transport,
            mesh.coords_mut(),
        );
        transport.shutdown();
        report
    }
}

/// Convenience: decompose, build the distributed engine and run it in
/// one call. Parameters are moved, never cloned.
pub fn smooth_distributed(
    mesh: &mut TriMesh,
    params: SmoothParams,
    num_parts: usize,
    method: PartitionMethod,
) -> SmoothReport {
    DistResidentEngine::by_method(mesh, params, num_parts, method).smooth(mesh)
}

/// Convenience: the 3D twin of [`smooth_distributed`].
pub fn smooth_distributed3(
    mesh: &mut TetMesh,
    params: SmoothParams3,
    num_parts: usize,
    method: PartitionMethod,
) -> SmoothReport {
    DistResidentEngine3::by_method(mesh, params, num_parts, method).smooth(mesh)
}
