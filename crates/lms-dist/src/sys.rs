//! Minimal POSIX process/pipe/stream layer — just enough libc surface to
//! fork rank worker processes, stream wire frames between them (over
//! pipes or sockets), and detect failed ranks (`poll(2)` read timeouts,
//! `kill(2)`, non-blocking `waitpid`), declared directly against the C
//! library `std` already links (the build container has no crates
//! registry, so the `libc` crate is out of reach; these eleven symbols
//! are stable POSIX).
//!
//! Everything here is Linux-safe under a multithreaded parent: glibc
//! registers `pthread_atfork` handlers that make `malloc` usable in the
//! child, the child only ever runs the single-threaded rank worker loop
//! (no locks shared with parent threads are touched), and it leaves via
//! [`exit_now`] (`_exit(2)`), never by unwinding into the parent's
//! runtime.

use std::io::{self, Read, Write};

mod ffi {
    use core::ffi::c_void;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn fork() -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
        pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        pub fn kill(pid: i32, sig: i32) -> i32;
        // nfds_t is c_ulong on every Linux ABI this builds for
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        pub fn _exit(code: i32) -> !;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn getpid() -> i32;
    }
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const WNOHANG: i32 = 1;
const SIGKILL: i32 = 9;
const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

/// An owned file descriptor: closed on drop, readable and writable
/// through `std::io` traits (with EINTR retries), so `BufReader` /
/// `BufWriter` stack straight on top.
#[derive(Debug)]
pub struct Fd(i32);

impl Fd {
    /// The raw descriptor number.
    pub fn raw(&self) -> i32 {
        self.0
    }

    /// Adopt a raw descriptor (the caller transfers ownership — used by
    /// a forked child re-owning its pipe ends, whose original [`Fd`]
    /// values in the inherited image are never dropped because the child
    /// leaves via [`exit_now`]).
    pub fn from_raw(fd: i32) -> Self {
        Fd(fd)
    }
}

impl Drop for Fd {
    fn drop(&mut self) {
        unsafe { ffi::close(self.0) };
    }
}

impl Read for Fd {
    /// `read(2)` with the stream retry loop: `EINTR` retries
    /// immediately, `EAGAIN`/`EWOULDBLOCK` (a descriptor someone left in
    /// non-blocking mode — sockets from a polled `accept`) parks in
    /// `poll(2)` until readable and retries. Short reads are surfaced as
    /// usual (`read_exact`/`BufReader` above this layer reassemble
    /// fragmented frames).
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            let n = unsafe { ffi::read(self.0, buf.as_mut_ptr().cast(), buf.len()) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            match err.kind() {
                io::ErrorKind::Interrupted => {}
                io::ErrorKind::WouldBlock => {
                    wait_readable(self.0, 100)?;
                }
                _ => return Err(err),
            }
        }
    }
}

impl Write for Fd {
    /// `write(2)` with the same retry loop as [`Read`]: `EINTR` retries,
    /// `EAGAIN` parks in `poll(2)` until writable. Partial writes are
    /// returned as-is — `write_all` (used by every frame serialiser)
    /// loops over them, which is what makes the framing layer
    /// short-write-safe on sockets.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        loop {
            let n = unsafe { ffi::write(self.0, buf.as_ptr().cast(), buf.len()) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            match err.kind() {
                io::ErrorKind::Interrupted => {}
                io::ErrorKind::WouldBlock => {
                    wait_writable(self.0, 100)?;
                }
                _ => return Err(err),
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A unidirectional pipe: `(read end, write end)`.
pub fn pipe() -> io::Result<(Fd, Fd)> {
    let mut fds = [0i32; 2];
    if unsafe { ffi::pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((Fd(fds[0]), Fd(fds[1])))
}

/// Close a raw descriptor number directly — for a forked child shedding
/// copies of descriptors still *owned* (as [`Fd`] values) by the parent's
/// address-space image.
pub fn close_raw(fd: i32) {
    unsafe { ffi::close(fd) };
}

/// `fork(2)`: `Ok(0)` in the child, `Ok(pid)` in the parent.
///
/// # Safety
/// The child must not touch locks or threads of the parent image and must
/// terminate via [`exit_now`]; see the module docs.
pub unsafe fn fork() -> io::Result<i32> {
    let pid = ffi::fork();
    if pid < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(pid)
    }
}

/// Block until `pid` exits; returns the raw wait status (0 on a clean
/// `_exit(0)`).
pub fn wait_pid(pid: i32) -> io::Result<i32> {
    let mut status = 0i32;
    loop {
        let r = unsafe { ffi::waitpid(pid, &mut status, 0) };
        if r == pid {
            return Ok(status);
        }
        if r < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Non-blocking reap (`waitpid` + `WNOHANG`): `Some(status)` if `pid`
/// has exited, `None` if it is still running.
pub fn try_wait_pid(pid: i32) -> io::Result<Option<i32>> {
    let mut status = 0i32;
    loop {
        let r = unsafe { ffi::waitpid(pid, &mut status, WNOHANG) };
        if r == pid {
            return Ok(Some(status));
        }
        if r == 0 {
            return Ok(None);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// `SIGKILL` a process — the coordinator's way of putting a stalled or
/// half-dead rank into a definite fail-stop state before respawning it.
pub fn kill_pid(pid: i32) -> io::Result<()> {
    if unsafe { ffi::kill(pid, SIGKILL) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Wait up to `timeout_ms` for `fd` to become readable (`poll(2)`).
/// Returns `true` when a read will not block (data, EOF, or error — the
/// follow-up `read` disambiguates), `false` on timeout. A negative
/// timeout blocks indefinitely (and then always returns `true`).
pub fn wait_readable(fd: i32, timeout_ms: i32) -> io::Result<bool> {
    let mut pfd = ffi::PollFd { fd, events: POLLIN, revents: 0 };
    loop {
        let r = unsafe { ffi::poll(&mut pfd, 1, timeout_ms) };
        if r > 0 {
            return Ok(true);
        }
        if r == 0 {
            return Ok(false);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Wait up to `timeout_ms` for `fd` to accept a write (`poll(2)` with
/// `POLLOUT`). Returns `true` when a write will not block, `false` on
/// timeout; negative timeout blocks indefinitely.
pub fn wait_writable(fd: i32, timeout_ms: i32) -> io::Result<bool> {
    let mut pfd = ffi::PollFd { fd, events: POLLOUT, revents: 0 };
    loop {
        let r = unsafe { ffi::poll(&mut pfd, 1, timeout_ms) };
        if r > 0 {
            return Ok(true);
        }
        if r == 0 {
            return Ok(false);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// One `poll(2)` over many descriptors at once — the multiplexer under
/// the overlap coordinator: instead of draining ranks one at a time
/// through per-rank bounded reads, the coordinator parks in a single
/// poll over *every* undrained rank fd and services whichever became
/// readable. Fills `ready[i] = true` when `fds[i]` will not block on
/// read (data, EOF, or error — the follow-up read disambiguates) and
/// returns how many are ready (`0` = timed out). Entries with a negative
/// fd are skipped (`poll(2)` ignores them natively), which is how
/// already-drained ranks drop out of the wait without reshuffling the
/// array. `EINTR` retries; a negative timeout blocks indefinitely.
pub fn poll_readables(fds: &[i32], timeout_ms: i32, ready: &mut Vec<bool>) -> io::Result<usize> {
    ready.clear();
    ready.resize(fds.len(), false);
    let mut pfds: Vec<ffi::PollFd> =
        fds.iter().map(|&fd| ffi::PollFd { fd, events: POLLIN, revents: 0 }).collect();
    loop {
        let r = unsafe { ffi::poll(pfds.as_mut_ptr(), pfds.len() as u64, timeout_ms) };
        if r >= 0 {
            let mut n = 0;
            for (slot, pfd) in ready.iter_mut().zip(&pfds) {
                if pfd.revents != 0 {
                    *slot = true;
                    n += 1;
                }
            }
            return Ok(n);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// One `poll(2)` over read *and* write interest at once — the overlap
/// coordinator's full event loop: it parks over every rank fd it still
/// expects frames from (`reads`) and every rank out-queue with bytes
/// left to push (`writes`) in a single syscall, so an eager forward to a
/// slow destination never blocks draining a fast source. Fills
/// `ready_read[i]` / `ready_write[j]` and returns the total number of
/// ready entries (`0` = timed out). Negative fds are skipped natively by
/// `poll(2)`; `EINTR` retries; a negative timeout blocks indefinitely.
pub fn poll_duplex(
    reads: &[i32],
    writes: &[i32],
    timeout_ms: i32,
    ready_read: &mut Vec<bool>,
    ready_write: &mut Vec<bool>,
) -> io::Result<usize> {
    ready_read.clear();
    ready_read.resize(reads.len(), false);
    ready_write.clear();
    ready_write.resize(writes.len(), false);
    let mut pfds: Vec<ffi::PollFd> = reads
        .iter()
        .map(|&fd| ffi::PollFd { fd, events: POLLIN, revents: 0 })
        .chain(writes.iter().map(|&fd| ffi::PollFd { fd, events: POLLOUT, revents: 0 }))
        .collect();
    loop {
        let r = unsafe { ffi::poll(pfds.as_mut_ptr(), pfds.len() as u64, timeout_ms) };
        if r >= 0 {
            let mut n = 0;
            for (i, pfd) in pfds.iter().enumerate() {
                if pfd.revents != 0 {
                    if i < reads.len() {
                        ready_read[i] = true;
                    } else {
                        ready_write[i - reads.len()] = true;
                    }
                    n += 1;
                }
            }
            return Ok(n);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// One non-blocking `read(2)` attempt on a readiness-polled descriptor:
/// `Ok(None)` when the read would block (readiness was stale — another
/// poll round will retry), `Ok(Some(0))` at EOF, `Ok(Some(n))` for
/// bytes. `EINTR` retries; every other error surfaces for the stream
/// diagnosis. The descriptor must be in `O_NONBLOCK` mode for the
/// `None` arm to ever fire — on a blocking fd this is just `read(2)`.
pub fn read_ready(fd: i32, buf: &mut [u8]) -> io::Result<Option<usize>> {
    loop {
        let n = unsafe { ffi::read(fd, buf.as_mut_ptr().cast(), buf.len()) };
        if n >= 0 {
            return Ok(Some(n as usize));
        }
        let err = io::Error::last_os_error();
        match err.kind() {
            io::ErrorKind::Interrupted => {}
            io::ErrorKind::WouldBlock => return Ok(None),
            _ => return Err(err),
        }
    }
}

/// One non-blocking `write(2)` attempt: `Ok(0)` when the descriptor's
/// buffer is full (`EAGAIN` — the caller re-arms `POLLOUT` and retries
/// next poll round), otherwise the bytes accepted. `EINTR` retries.
pub fn write_ready(fd: i32, buf: &[u8]) -> io::Result<usize> {
    loop {
        let n = unsafe { ffi::write(fd, buf.as_ptr().cast(), buf.len()) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        match err.kind() {
            io::ErrorKind::Interrupted => {}
            io::ErrorKind::WouldBlock => return Ok(0),
            _ => return Err(err),
        }
    }
}

/// Switch `O_NONBLOCK` on a raw descriptor. The supervisor keeps
/// listeners non-blocking (a connection aborted between `poll` and
/// `accept` must not wedge the coordinator), and the stream retry loops
/// in [`Fd`] make accepted descriptors safe either way.
pub fn set_nonblocking(fd: i32, on: bool) -> io::Result<()> {
    let flags = unsafe { ffi::fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let flags = if on { flags | O_NONBLOCK } else { flags & !O_NONBLOCK };
    if unsafe { ffi::fcntl(fd, F_SETFL, flags) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// The calling process id (names Unix socket paths uniquely per
/// coordinator).
pub fn getpid() -> i32 {
    unsafe { ffi::getpid() }
}

/// Decoded `waitpid` status — `WIFEXITED`/`WEXITSTATUS`/`WTERMSIG`
/// without libc macros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitStatus(pub i32);

impl WaitStatus {
    /// The process left via `_exit`/`exit` (as opposed to a signal).
    pub fn exited(&self) -> bool {
        self.0 & 0x7f == 0
    }

    /// The exit code, when [`exited`](Self::exited).
    pub fn exit_code(&self) -> i32 {
        (self.0 >> 8) & 0xff
    }

    /// The terminating signal, when the process was killed by one.
    pub fn signal(&self) -> Option<i32> {
        if self.exited() {
            None
        } else {
            Some(self.0 & 0x7f)
        }
    }

    /// A clean `_exit(0)`.
    pub fn clean(&self) -> bool {
        self.exited() && self.exit_code() == 0
    }
}

impl std::fmt::Display for WaitStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.signal() {
            Some(sig) => write!(f, "killed by signal {sig}"),
            None => write!(f, "exit code {}", self.exit_code()),
        }
    }
}

/// A pipe read end whose every `read` is bounded by a `poll(2)` timeout:
/// the descriptor not becoming readable within `timeout_ms` surfaces as
/// [`io::ErrorKind::TimedOut`] instead of blocking the coordinator
/// forever on a stalled rank. A negative timeout disables the bound.
///
/// The reader also keeps a running total of the wall time spent inside
/// `poll(2)` — the coordinator's *poll-wait* on this rank — which the
/// profiling layer drains via [`take_waited_ns`](Self::take_waited_ns)
/// and the stall diagnosis reads via [`waited_ns`](Self::waited_ns).
/// The accounting is a plain field bump around a syscall that already
/// dominates it; it stays on even when profiling is off.
///
/// Waits are split into two classes: **idle** — the run is blocked at a
/// dependence with no useful work anywhere — and **hidden** — at least
/// one rank has already been released into work ahead of the round being
/// drained, so the wait overlaps live compute. The serialized loop only
/// ever charges the idle class; the overlap multiplexer classifies each
/// poll and charges via [`charge_wait_ns`](Self::charge_wait_ns). The
/// stall diagnosis reads the combined total — a stalled rank is stalled
/// regardless of what the coordinator overlapped meanwhile.
#[derive(Debug)]
pub struct TimeoutReader {
    fd: Fd,
    timeout_ms: i32,
    waited_ns: u64,
    hidden_waited_ns: u64,
}

impl TimeoutReader {
    pub fn new(fd: Fd, timeout_ms: i32) -> Self {
        TimeoutReader { fd, timeout_ms, waited_ns: 0, hidden_waited_ns: 0 }
    }

    /// The raw descriptor number (for a forked child shedding inherited
    /// copies via [`close_raw`]).
    pub fn raw(&self) -> i32 {
        self.fd.raw()
    }

    /// Cumulative nanoseconds spent **idle** in `poll(2)` on this rank —
    /// timed-out waits included, overlap-hidden waits excluded.
    pub fn waited_ns(&self) -> u64 {
        self.waited_ns
    }

    /// Cumulative nanoseconds of poll-wait on this rank that overlapped
    /// released compute (the multiplexer's hidden class).
    pub fn hidden_waited_ns(&self) -> u64 {
        self.hidden_waited_ns
    }

    /// Idle + hidden wait — what a stall diagnosis reports: the full
    /// wall time the coordinator spent waiting on this rank.
    pub fn total_waited_ns(&self) -> u64 {
        self.waited_ns + self.hidden_waited_ns
    }

    /// Drain the idle poll-wait total (returns it and resets to zero), so
    /// the profiler can attribute waits per protocol phase as deltas.
    pub fn take_waited_ns(&mut self) -> u64 {
        std::mem::take(&mut self.waited_ns)
    }

    /// Drain the hidden poll-wait total.
    pub fn take_hidden_waited_ns(&mut self) -> u64 {
        std::mem::take(&mut self.hidden_waited_ns)
    }

    /// Charge an externally-timed wait (the overlap multiplexer polls
    /// many fds in one syscall and attributes the elapsed time to every
    /// rank it was still waiting on, classified idle or hidden).
    pub fn charge_wait_ns(&mut self, ns: u64, hidden: bool) {
        if hidden {
            self.hidden_waited_ns += ns;
        } else {
            self.waited_ns += ns;
        }
    }

    /// Unwrap the descriptor (the supervisor reads a handshake frame
    /// under an accept timeout, then re-wraps the stream under the run's
    /// read timeout).
    pub fn into_inner(self) -> Fd {
        self.fd
    }
}

impl Read for TimeoutReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.timeout_ms >= 0 {
            let t0 = lms_trace::now_ns();
            let readable = wait_readable(self.fd.raw(), self.timeout_ms);
            self.waited_ns += lms_trace::now_ns().saturating_sub(t0);
            if !readable? {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("pipe not readable within {}ms", self.timeout_ms),
                ));
            }
        }
        self.fd.read(buf)
    }
}

/// `_exit(2)`: terminate immediately — no unwinding, no `atexit`
/// handlers, no flushing of inherited parent state. The only way a rank
/// worker leaves.
pub fn exit_now(code: i32) -> ! {
    unsafe { ffi::_exit(code) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_roundtrips_bytes() {
        let (mut r, mut w) = pipe().unwrap();
        w.write_all(b"lms").unwrap();
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"lms");
    }

    #[test]
    fn fork_wait_roundtrip() {
        let (mut r, mut w) = pipe().unwrap();
        let pid = unsafe { fork() }.unwrap();
        if pid == 0 {
            // child: prove we run post-fork code, then leave without
            // touching the test harness
            let _ = w.write_all(&[42]);
            exit_now(7);
        }
        drop(w);
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf[0], 42);
        let status = wait_pid(pid).unwrap();
        // WIFEXITED + WEXITSTATUS without libc macros
        assert_eq!(status & 0x7f, 0, "child must exit, not be signalled");
        assert_eq!((status >> 8) & 0xff, 7);
        let decoded = WaitStatus(status);
        assert!(decoded.exited() && !decoded.clean());
        assert_eq!(decoded.exit_code(), 7);
        assert_eq!(decoded.to_string(), "exit code 7");
    }

    #[test]
    fn timeout_reader_bounds_reads_and_passes_data() {
        let (r, mut w) = pipe().unwrap();
        let mut r = TimeoutReader::new(r, 30);
        // nothing written: the read must time out, not block
        let mut buf = [0u8; 1];
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // the timed-out poll is charged to the poll-wait total
        assert!(r.waited_ns() >= 30_000_000, "waited {}ns", r.waited_ns());
        assert!(r.take_waited_ns() > 0);
        assert_eq!(r.waited_ns(), 0);
        // written data still flows through
        w.write_all(&[9]).unwrap();
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf[0], 9);
        // EOF (writer dropped) counts as readable, not a timeout
        drop(w);
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn nonblocking_read_parks_and_retries_instead_of_failing() {
        let (r, mut w) = pipe().unwrap();
        set_nonblocking(r.raw(), true).unwrap();
        let mut r = r;
        let writer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            w.write_all(b"eagain").unwrap();
        });
        // an empty non-blocking pipe raises EAGAIN; the Fd retry loop
        // must park in poll(2) and deliver the late bytes
        let mut buf = [0u8; 6];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"eagain");
        writer.join().unwrap();
    }

    #[test]
    fn nonblocking_write_parks_and_retries_until_drained() {
        let (mut r, w) = pipe().unwrap();
        set_nonblocking(w.raw(), true).unwrap();
        let mut w = w;
        let payload = vec![0x5au8; 1 << 20]; // far beyond the pipe buffer
        let reader = std::thread::spawn(move || {
            let mut got = Vec::new();
            r.read_to_end(&mut got).unwrap();
            got
        });
        // write_all over the non-blocking end hits EAGAIN once the pipe
        // buffer fills; the retry loop must wait for the reader and push
        // every byte through
        w.write_all(&payload).unwrap();
        drop(w);
        let got = reader.join().unwrap();
        assert_eq!(got.len(), payload.len());
        assert!(got.iter().all(|&b| b == 0x5a));
    }

    #[test]
    fn poll_readables_reports_only_ready_fds_and_skips_negative() {
        let (r1, mut w1) = pipe().unwrap();
        let (r2, _w2) = pipe().unwrap();
        w1.write_all(&[1]).unwrap();
        let mut ready = Vec::new();
        // r1 has data, r2 is empty, -1 is a skipped slot
        let n = poll_readables(&[r1.raw(), r2.raw(), -1], 50, &mut ready).unwrap();
        assert_eq!(n, 1);
        assert_eq!(ready, vec![true, false, false]);
        // nothing readable anywhere: timeout, zero ready
        let mut drain = [0u8; 1];
        let mut r1 = r1;
        r1.read_exact(&mut drain).unwrap();
        let n = poll_readables(&[r1.raw(), r2.raw()], 20, &mut ready).unwrap();
        assert_eq!(n, 0);
        assert!(ready.iter().all(|&b| !b));
        // EOF counts as readable (the follow-up read disambiguates)
        drop(w1);
        let n = poll_readables(&[r1.raw()], 50, &mut ready).unwrap();
        assert_eq!((n, ready[0]), (1, true));
    }

    #[test]
    fn poll_duplex_reports_read_and_write_interest() {
        let (r1, mut w1) = pipe().unwrap();
        let (r2, w2) = pipe().unwrap();
        w1.write_all(&[7]).unwrap();
        let (mut rr, mut rw) = (Vec::new(), Vec::new());
        // r1 has data; w2's pipe buffer is empty so it accepts writes;
        // r2 is empty; a negative read slot is skipped
        let n = poll_duplex(&[r1.raw(), r2.raw(), -1], &[w2.raw()], 50, &mut rr, &mut rw).unwrap();
        assert_eq!(n, 2);
        assert_eq!(rr, vec![true, false, false]);
        assert_eq!(rw, vec![true]);
        // fill w2's pipe buffer: POLLOUT must drop away and the poll
        // falls through to a pure timeout once r1 is drained
        set_nonblocking(w2.raw(), true).unwrap();
        let chunk = [0u8; 4096];
        while write_ready(w2.raw(), &chunk).unwrap() > 0 {}
        let mut drain = [0u8; 1];
        let mut r1 = r1;
        r1.read_exact(&mut drain).unwrap();
        let n = poll_duplex(&[r1.raw()], &[w2.raw()], 20, &mut rr, &mut rw).unwrap();
        assert_eq!(n, 0);
        assert!(!rr[0] && !rw[0]);
        drop(r2); // unread full pipe: w2 now raises POLLERR = ready
        let n = poll_duplex(&[], &[w2.raw()], 50, &mut rr, &mut rw).unwrap();
        assert_eq!((n, rw[0]), (1, true));
    }

    #[test]
    fn read_ready_and_write_ready_surface_wouldblock_as_values() {
        let (r, w) = pipe().unwrap();
        set_nonblocking(r.raw(), true).unwrap();
        set_nonblocking(w.raw(), true).unwrap();
        let mut buf = [0u8; 8];
        // empty pipe: a non-blocking read yields None, not an error
        assert_eq!(read_ready(r.raw(), &mut buf).unwrap(), None);
        assert_eq!(write_ready(w.raw(), b"abc").unwrap(), 3);
        assert_eq!(read_ready(r.raw(), &mut buf).unwrap(), Some(3));
        assert_eq!(&buf[..3], b"abc");
        // full pipe: write_ready returns 0 instead of blocking
        let chunk = [0u8; 4096];
        while write_ready(w.raw(), &chunk).unwrap() > 0 {}
        assert_eq!(write_ready(w.raw(), &chunk).unwrap(), 0);
        // EOF after the writer drops reads as Some(0)
        drop(w);
        while read_ready(r.raw(), &mut buf).unwrap().unwrap_or(1) > 0 {}
    }

    #[test]
    fn timeout_reader_splits_idle_from_hidden_wait() {
        let (r, _w) = pipe().unwrap();
        let mut r = TimeoutReader::new(r, 10);
        let mut buf = [0u8; 1];
        // a plain bounded read charges the idle class
        assert_eq!(r.read(&mut buf).unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert!(r.waited_ns() > 0);
        assert_eq!(r.hidden_waited_ns(), 0);
        // externally-charged waits land in the chosen class
        r.charge_wait_ns(500, true);
        r.charge_wait_ns(300, false);
        assert_eq!(r.hidden_waited_ns(), 500);
        assert_eq!(r.total_waited_ns(), r.waited_ns() + 500);
        assert_eq!(r.take_hidden_waited_ns(), 500);
        assert_eq!(r.hidden_waited_ns(), 0);
        assert!(r.take_waited_ns() >= 300);
        assert_eq!(r.total_waited_ns(), 0);
    }

    #[test]
    fn kill_and_try_wait_reap_a_looping_child() {
        let pid = unsafe { fork() }.unwrap();
        if pid == 0 {
            loop {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
        assert_eq!(try_wait_pid(pid).unwrap(), None, "child still running");
        kill_pid(pid).unwrap();
        let status = WaitStatus(wait_pid(pid).unwrap());
        assert_eq!(status.signal(), Some(9));
        assert!(status.to_string().contains("signal 9"));
    }
}
