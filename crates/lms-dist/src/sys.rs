//! Minimal POSIX process/pipe layer — just enough libc surface to fork
//! rank worker processes and stream wire frames between them, declared
//! directly against the C library `std` already links (the build
//! container has no crates registry, so the `libc` crate is out of
//! reach; these seven symbols are stable POSIX).
//!
//! Everything here is Linux-safe under a multithreaded parent: glibc
//! registers `pthread_atfork` handlers that make `malloc` usable in the
//! child, the child only ever runs the single-threaded rank worker loop
//! (no locks shared with parent threads are touched), and it leaves via
//! [`exit_now`] (`_exit(2)`), never by unwinding into the parent's
//! runtime.

use std::io::{self, Read, Write};

mod ffi {
    use core::ffi::c_void;

    extern "C" {
        pub fn fork() -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
        pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        pub fn _exit(code: i32) -> !;
    }
}

/// An owned file descriptor: closed on drop, readable and writable
/// through `std::io` traits (with EINTR retries), so `BufReader` /
/// `BufWriter` stack straight on top.
#[derive(Debug)]
pub struct Fd(i32);

impl Fd {
    /// The raw descriptor number.
    pub fn raw(&self) -> i32 {
        self.0
    }

    /// Adopt a raw descriptor (the caller transfers ownership — used by
    /// a forked child re-owning its pipe ends, whose original [`Fd`]
    /// values in the inherited image are never dropped because the child
    /// leaves via [`exit_now`]).
    pub fn from_raw(fd: i32) -> Self {
        Fd(fd)
    }
}

impl Drop for Fd {
    fn drop(&mut self) {
        unsafe { ffi::close(self.0) };
    }
}

impl Read for Fd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            let n = unsafe { ffi::read(self.0, buf.as_mut_ptr().cast(), buf.len()) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Write for Fd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        loop {
            let n = unsafe { ffi::write(self.0, buf.as_ptr().cast(), buf.len()) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A unidirectional pipe: `(read end, write end)`.
pub fn pipe() -> io::Result<(Fd, Fd)> {
    let mut fds = [0i32; 2];
    if unsafe { ffi::pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((Fd(fds[0]), Fd(fds[1])))
}

/// Close a raw descriptor number directly — for a forked child shedding
/// copies of descriptors still *owned* (as [`Fd`] values) by the parent's
/// address-space image.
pub fn close_raw(fd: i32) {
    unsafe { ffi::close(fd) };
}

/// `fork(2)`: `Ok(0)` in the child, `Ok(pid)` in the parent.
///
/// # Safety
/// The child must not touch locks or threads of the parent image and must
/// terminate via [`exit_now`]; see the module docs.
pub unsafe fn fork() -> io::Result<i32> {
    let pid = ffi::fork();
    if pid < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(pid)
    }
}

/// Block until `pid` exits; returns the raw wait status (0 on a clean
/// `_exit(0)`).
pub fn wait_pid(pid: i32) -> io::Result<i32> {
    let mut status = 0i32;
    loop {
        let r = unsafe { ffi::waitpid(pid, &mut status, 0) };
        if r == pid {
            return Ok(status);
        }
        if r < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// `_exit(2)`: terminate immediately — no unwinding, no `atexit`
/// handlers, no flushing of inherited parent state. The only way a rank
/// worker leaves.
pub fn exit_now(code: i32) -> ! {
    unsafe { ffi::_exit(code) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_roundtrips_bytes() {
        let (mut r, mut w) = pipe().unwrap();
        w.write_all(b"lms").unwrap();
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"lms");
    }

    #[test]
    fn fork_wait_roundtrip() {
        let (mut r, mut w) = pipe().unwrap();
        let pid = unsafe { fork() }.unwrap();
        if pid == 0 {
            // child: prove we run post-fork code, then leave without
            // touching the test harness
            let _ = w.write_all(&[42]);
            exit_now(7);
        }
        drop(w);
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf[0], 42);
        let status = wait_pid(pid).unwrap();
        // WIFEXITED + WEXITSTATUS without libc macros
        assert_eq!(status & 0x7f, 0, "child must exit, not be signalled");
        assert_eq!((status >> 8) & 0xff, 7);
    }
}
