//! # Locality-Aware Laplacian Mesh Smoothing
//!
//! Facade crate for the reproduction of *Locality-Aware Laplacian Mesh
//! Smoothing* (Aupy, Park, Raghavan — ICPP 2016, arXiv:1606.00803).
//!
//! The workspace is organised as nine library crates, all re-exported here:
//!
//! * [`mesh`] — 2D triangle-mesh substrate: containers, CSR adjacency,
//!   boundary detection, quality metrics (plus the incremental
//!   [`mesh::QualityCache`]), generators and I/O.
//! * [`order`] — vertex reorderings: the paper's **RDR** contribution plus
//!   the ORI/RANDOM/BFS/DFS/RCM/Hilbert baselines, greedy graph coloring,
//!   and permutation machinery.
//! * [`part`] — geometric domain decomposition: balanced k-way RCB and
//!   SFC-chunk partitions with interface/halo/ghost-vertex structures and
//!   decomposition-quality metrics.
//! * [`smooth`] — the Laplacian Mesh Smoothing engines (serial Gauss–Seidel
//!   on the incremental-quality hot path, Jacobi, greedy quality-driven,
//!   the rayon-parallel static-chunk engine, colored deterministic
//!   parallel Gauss–Seidel, and the domain-decomposed
//!   [`smooth::PartitionedEngine`], resident halo-exchange
//!   [`smooth::ResidentEngine`]), with optional memory-access tracing.
//! * [`cache`] — the memory-behaviour substrate: exact reuse-distance
//!   analysis, an inclusive multi-level LRU cache simulator (Westmere-EX
//!   preset), the stack-distance miss model, the Eq. (2) cycle-cost model,
//!   Belady's offline-optimal replacement, a next-line prefetcher and
//!   FIFO/random replacement-policy variants.
//! * [`apps`] — mesh-improvement applications beyond smoothing (the §6
//!   future-work conjecture): untangling, constrained smoothing, edge
//!   swapping, optimization-based smoothing, and composable pipelines.
//! * [`dist`] — the distributed-memory backend: MPI-style rank processes
//!   (forked workers over Unix pipes) running the resident halo-exchange
//!   protocol through `part`'s versioned wire format — bit-identical to
//!   the in-process [`smooth::ResidentEngine`] in 2D and 3D.
//! * [`mesh3d`] — the tetrahedral extension (§6): volumetric Laplacian
//!   smoothing with the full ordering pipeline re-run in 3D — since PR 4
//!   a thin wrapper over the **dimension-generic smoothing domain**
//!   (`smooth::domain`), including the 3D partitioned and resident
//!   halo-exchange engines (`mesh3d::PartitionedEngine3`,
//!   `mesh3d::ResidentEngine3`) over `partition_tet_mesh`
//!   decompositions.
//!
//! ## Quickstart
//!
//! ```
//! use lms::prelude::*;
//!
//! // Generate a small unstructured mesh, reorder it with RDR, smooth it.
//! let mesh = lms::mesh::generators::perturbed_grid(40, 40, 0.35, 7);
//! let perm = lms::order::rdr_ordering(&mesh);
//! let mesh = perm.apply_to_mesh(&mesh);
//! let report = SmoothParams::paper().smooth(&mut mesh.clone());
//! assert!(report.final_quality >= report.initial_quality);
//! ```

pub use lms_apps as apps;
pub use lms_cache as cache;
pub use lms_dist as dist;
pub use lms_mesh as mesh;
pub use lms_mesh3d as mesh3d;
pub use lms_order as order;
pub use lms_part as part;
pub use lms_smooth as smooth;
pub use lms_viz as viz;

/// Commonly used items, re-exported for `use lms::prelude::*`.
pub mod prelude {
    pub use lms_apps::{Pipeline, Pipeline3, Stage, Stage3};
    pub use lms_cache::{
        hierarchy::CacheHierarchy, model::StackDistanceModel, reuse::ReuseDistanceAnalyzer,
    };
    pub use lms_mesh::{quality::QualityMetric, Point2, TriMesh};
    pub use lms_mesh3d::{
        OrderingKind3, PartitionedEngine3, ResidentEngine3, SmoothParams3, TetMesh,
    };
    pub use lms_order::{OrderingKind, Permutation};
    pub use lms_part::{ExchangeSchedule, Partition, PartitionMethod, PartitionStats};
    pub use lms_smooth::{
        IterationPolicy, PartitionedEngine, ResidentEngine, SmoothEngine, SmoothParams,
        SmoothReport, Weighting,
    };
}
