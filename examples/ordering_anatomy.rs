//! The paper's Figure 5 worked example, live: how DFS, BFS and RDR number
//! the same 13-vertex mesh, and what that does to the span of memory
//! accesses of a smoothing step.
//!
//! ```text
//! cargo run --release --example ordering_anatomy
//! ```

use lms::mesh::figure5_mesh;
use lms::order::{compute_ordering, OrderingKind};
use lms::smooth::{SmoothEngine, SmoothParams, VecSink};

fn main() {
    let base = figure5_mesh();
    println!(
        "the Figure-5 mesh: {} vertices, {} triangles\n",
        base.num_vertices(),
        base.num_triangles()
    );

    for kind in [OrderingKind::Original, OrderingKind::Dfs, OrderingKind::Bfs, OrderingKind::Rdr] {
        let perm = compute_ordering(&base, kind);
        let mesh = perm.apply_to_mesh(&base);

        // Trace one smoothing sweep and look at the "Read Data array"
        // sequence, exactly like the paper's figure.
        let engine = SmoothEngine::new(&mesh, SmoothParams::paper().with_max_iters(1));
        let mut sink = VecSink::new();
        engine.smooth_traced(&mut mesh.clone(), &mut sink);

        // Span of positions touched while processing the first vertex.
        let first = engine.visit_order()[0];
        let take = 1 + engine.adjacency().degree(first);
        let head = &sink.accesses[..take];
        let span = head.iter().max().unwrap() - head.iter().min().unwrap();

        println!("{:<8} new numbering (new <- old): {:?}", kind.name(), perm.new_to_old());
        println!("         first smoothing step reads positions {head:?} (span {span})");
        println!("         full sweep trace: {:?}\n", sink.accesses);
    }
    println!(
        "the paper's point: orderings that keep a vertex's neighbours nearby in storage\n\
         shrink the access span — BFS beats DFS, and RDR follows the smoother itself."
    );
}
