//! A guided tour of the memory-behaviour substrate: reuse distances, the
//! stack-distance miss model, the line-granular cache simulator, and the
//! Equation (2) cost model — the paper's whole measurement stack.
//!
//! ```text
//! cargo run --release --example cache_study [scale]
//! ```

use lms::cache::{CostModel, NodeLayout, ReuseDistanceAnalyzer, ReuseStats, StackDistanceModel};
use lms::mesh::suite;
use lms::order::{compute_ordering, OrderingKind};
use lms::smooth::{SmoothEngine, SmoothParams, VecSink};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let base = suite::generate(suite::find_spec("stress").unwrap(), scale);
    println!("stress mesh @ scale {scale}: {} vertices\n", base.num_vertices());

    // Capacities of the Westmere caches in 66-byte elements (paper §5.2.3:
    // "below a reuse distance of 496 (resp. 3970; 372,000) there should not
    // be any L1 (resp. L2; L3) cache miss").
    let hierarchy = lms::cache::CacheHierarchy::westmere_ex(NodeLayout::paper_66());
    let caps = hierarchy.capacities_in_elements();
    println!(
        "Westmere-EX capacities in 66-byte elements: L1={} L2={} L3={}",
        caps[0], caps[1], caps[2]
    );

    let model = StackDistanceModel::new(caps);
    let costs = CostModel::westmere_ex();

    for kind in OrderingKind::PAPER_TRIO {
        let mesh = compute_ordering(&base, kind).apply_to_mesh(&base);
        let engine = SmoothEngine::new(&mesh, SmoothParams::paper().with_max_iters(1));
        let mut sink = VecSink::new();
        engine.smooth_traced(&mut mesh.clone(), &mut sink);

        let distances = ReuseDistanceAnalyzer::analyze(&sink.accesses, mesh.num_vertices());
        let stats = ReuseStats::from_distances(&distances);
        let outcome = model.apply(&distances, false);
        let cycles =
            costs.extra_cycles_from_misses(outcome.misses[0], outcome.misses[1], outcome.misses[2]);

        println!(
            "\n{:<4}: {} accesses, mean reuse distance {:.1}, max {}",
            kind.name(),
            stats.accesses,
            stats.mean,
            stats.max
        );
        println!(
            "      stack-distance model misses: L1={} L2={} L3={}  -> Eq.(2) extra cycles: {}",
            outcome.misses[0], outcome.misses[1], outcome.misses[2], cycles
        );
    }
    println!(
        "\npaper shape: RDR's max reuse distance sits far below the L3 capacity, so its\n\
         L3 (and nearly all L2) misses vanish — the quasi-optimality claim of §5.2.3."
    );
}
