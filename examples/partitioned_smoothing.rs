//! Domain-decomposed deterministic smoothing end to end: partition a
//! perturbed grid with each geometric method, report the decomposition
//! metrics, render the partition overlay, and run the partitioned engine
//! against serial Gauss–Seidel (bit-identical under the part-major
//! order) and the colored parallel engine (wall clock).
//!
//! ```text
//! cargo run --release --example partitioned_smoothing [side] [parts]
//! ```
//!
//! Writes `target/partition_<method>.svg` overlays.

use lms::part::{partition_mesh, PartitionMethod};
use lms::smooth::{PartitionedEngine, SmoothEngine, SmoothParams};
use lms::viz::partition::{render_partition, PartitionStyle};
use std::time::Instant;

fn main() {
    let side: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(96);
    let parts: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let mesh = lms::mesh::generators::perturbed_grid(side, side, 0.35, 42);
    let adj = lms::mesh::Adjacency::build(&mesh);
    println!(
        "perturbed grid {side}x{side}: {} vertices, {} triangles, {parts} parts\n",
        mesh.num_vertices(),
        mesh.num_triangles()
    );

    // --- decomposition quality per method + SVG overlays ------------------
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "method", "cut", "interface", "halo", "imbalance", "interior"
    );
    for method in PartitionMethod::ALL {
        let p = partition_mesh(&mesh, &adj, parts, method);
        let s = p.stats();
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>10.3} {:>8.1}%",
            method.name(),
            s.edge_cut,
            s.interface_vertices,
            s.halo_vertices,
            s.imbalance,
            100.0 * s.interior_fraction,
        );
        let svg =
            render_partition(&mesh, p.assignment(), p.num_parts(), &PartitionStyle::default());
        let path = format!("target/partition_{}.svg", method.name());
        svg.write_to(std::path::Path::new(&path)).expect("write svg");
    }
    println!("\noverlays written to target/partition_<method>.svg");

    // --- partitioned engine: determinism + serial equivalence -------------
    let params = SmoothParams::paper().with_smart(true).with_max_iters(10).with_tol(-1.0);
    let engine = PartitionedEngine::by_method(&mesh, params.clone(), parts, PartitionMethod::Rcb);

    let mut par = mesh.clone();
    let start = Instant::now();
    let report = engine.smooth(&mut par, 2);
    let t_part = start.elapsed();

    let serial =
        SmoothEngine::new(&mesh, params.clone()).with_visit_order(engine.part_major_visit_order());
    let mut ser = mesh.clone();
    serial.smooth(&mut ser);
    println!(
        "\npartitioned (rcb, {} parts, 2 threads): quality {:.6} -> {:.6} in {} sweeps",
        parts,
        report.initial_quality,
        report.final_quality,
        report.num_iterations()
    );
    println!(
        "bit-identical to serial Gauss-Seidel under the part-major order: {}",
        par.coords() == ser.coords()
    );

    // --- wall clock vs the colored engine ---------------------------------
    let colored_engine = SmoothEngine::new(&mesh, params);
    let start = Instant::now();
    colored_engine.smooth_parallel_colored(&mut mesh.clone(), 2);
    let t_col = start.elapsed();
    println!(
        "wall clock (2 threads): partitioned {:.1} ms vs colored {:.1} ms ({:.2}x)",
        t_part.as_secs_f64() * 1e3,
        t_col.as_secs_f64() * 1e3,
        t_col.as_secs_f64() / t_part.as_secs_f64()
    );
}
