//! Quickstart: generate a mesh, reorder it with RDR, smooth it, and see the
//! quality and locality improvements.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lms::mesh::{generators, Adjacency};
use lms::order::{layout_stats, rdr_ordering};
use lms::prelude::*;

fn main() {
    // 1. A jittered 100×100 unstructured-ish triangulation of the unit
    //    square (≈10k vertices). The jitter leaves plenty of badly shaped
    //    triangles for the smoother to fix.
    let mesh = generators::perturbed_grid(100, 100, 0.38, 42);
    let adj = Adjacency::build(&mesh);
    println!(
        "mesh: {} vertices, {} triangles, mean degree {:.2}",
        mesh.num_vertices(),
        mesh.num_triangles(),
        adj.mean_degree()
    );

    // 2. The RDR reordering (Algorithm 2 of the paper): renumber the
    //    vertices along the smoother's own worst-quality-first traversal.
    let before = layout_stats(&mesh, &adj);
    let perm = rdr_ordering(&mesh);
    let mesh = perm.apply_to_mesh(&mesh);
    let adj = Adjacency::build(&mesh);
    let after = layout_stats(&mesh, &adj);
    println!(
        "layout locality (mean neighbour span): {:.1} -> {:.1}",
        before.mean_span, after.mean_span
    );

    // 3. Laplacian smoothing with the paper's parameters (edge-length-ratio
    //    quality, 5e-6 convergence tolerance).
    let mut work = mesh.clone();
    let report = SmoothParams::paper().smooth(&mut work);
    println!(
        "smoothing: quality {:.4} -> {:.4} in {} iterations (converged: {})",
        report.initial_quality,
        report.final_quality,
        report.num_iterations(),
        report.converged
    );

    assert!(report.final_quality > report.initial_quality);
    println!("done.");
}
