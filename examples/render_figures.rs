//! Regenerate the paper's *pictorial* figures as SVG files under
//! `results/figures/`:
//!
//! * Figure 3 — a mesh before and after Laplacian smoothing;
//! * Figure 7 — the nine-mesh suite gallery;
//! * Figure 1 — first-iteration reuse-distance profiles per ordering;
//! * Figure 6 — the reuse-distance profile across iterations;
//! * Figure 9 — per-mesh L1/L2/L3 miss-rate bars;
//! * Figure 12 — mean simulated speedup vs core count.
//!
//! ```text
//! cargo run --release --example render_figures
//! ```

use lms::cache::{binned_means, multicore, pow2_capacities, MissRatioCurve, ReuseDistanceAnalyzer};
use lms::mesh::suite;
use lms::prelude::*;
use lms::viz::{render_gallery, render_mesh, BarChart, Chart, MeshStyle, Series};
use lms_bench::common::{
    first_sweep_trace, full_trace, ordered_mesh, parallel_sweep_traces_full, ExpConfig,
};
use std::path::Path;

fn main() {
    let out = Path::new("results/figures");
    let cfg = ExpConfig { scale: 0.01, ..ExpConfig::default() };

    fig3(out);
    fig7(out, &cfg);
    fig1(out, &cfg);
    fig6(out, &cfg);
    fig9(out, &cfg);
    fig12(out, &cfg);
    mrc_figure(out, &cfg);
    println!("figures written to {}", out.display());
}

/// Figure 3: the smoothing effect, rendered.
fn fig3(out: &Path) {
    let before = lms::mesh::generators::perturbed_grid(40, 40, 0.42, 7);
    let mut after = before.clone();
    SmoothParams::paper().smooth(&mut after);
    let style = MeshStyle::default();
    render_mesh(&before, &style).write_to(&out.join("fig3_before.svg")).unwrap();
    render_mesh(&after, &style).write_to(&out.join("fig3_after.svg")).unwrap();
    println!("fig3: initial vs smoothed mesh");
}

/// Figure 7: the suite gallery (coarser than the experiment scale — the
/// paper itself shows "coarser but representative versions").
fn fig7(out: &Path, cfg: &ExpConfig) {
    let meshes = ExpConfig { scale: cfg.scale.min(0.004), ..cfg.clone() }.meshes();
    let named: Vec<(&str, &lms::mesh::TriMesh)> =
        meshes.iter().map(|n| (n.spec.name, &n.mesh)).collect();
    render_gallery(&named, 3, 220.0).write_to(&out.join("fig7_gallery.svg")).unwrap();
    println!("fig7: suite gallery ({} meshes)", named.len());
}

/// Figure 1: reuse-distance profile of the first LMS iteration on the
/// ocean mesh, per ordering (log-scale y).
fn fig1(out: &Path, cfg: &ExpConfig) {
    let spec = suite::find_spec("ocean").unwrap();
    let base = suite::generate(spec, cfg.scale);
    let mut chart = Chart::new("Figure 1 — reuse distance, first iteration (ocean)")
        .labels("access index (binned)", "mean reuse distance")
        .log_y();
    for kind in [
        OrderingKind::Random { seed: 0 },
        OrderingKind::Original,
        OrderingKind::Bfs,
        OrderingKind::Rdr,
    ] {
        let m = ordered_mesh(&base, kind);
        let trace = first_sweep_trace(&m);
        let distances = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
        let means = binned_means(&distances, 100);
        chart = chart.series(Series::new(
            kind.name(),
            means.iter().enumerate().map(|(i, &y)| (i as f64, y.max(0.5))),
        ));
    }
    chart.render(720.0, 360.0).write_to(&out.join("fig1_reuse_profiles.svg")).unwrap();
    println!("fig1: reuse-distance profiles (4 orderings)");
}

/// Figure 6: the reuse-distance profile across iterations — the paper's
/// observation that the pattern repeats every sweep.
fn fig6(out: &Path, cfg: &ExpConfig) {
    let spec = suite::find_spec("carabiner").unwrap();
    let base = suite::generate(spec, cfg.scale);
    let sink = full_trace(&base, 8);
    let distances = ReuseDistanceAnalyzer::analyze(&sink.accesses, base.num_vertices());
    let bins_per_iter = 100;
    let iters = sink.iteration_ends.len().max(1);
    let means = binned_means(&distances, bins_per_iter * iters);
    let chart = Chart::new("Figure 6 — reuse distance across iterations (carabiner, ORI)")
        .labels(format!("time step (100 bins per iteration, {iters} iterations)"), "reuse distance")
        .log_y()
        .series(Series::new("ori", means.iter().enumerate().map(|(i, &y)| (i as f64, y.max(0.5)))));
    chart.render(720.0, 320.0).write_to(&out.join("fig6_iteration_profile.svg")).unwrap();
    println!("fig6: cross-iteration profile ({iters} iterations)");
}

/// Figure 9: cache miss-rate bars per mesh and ordering, one chart per
/// level.
fn fig9(out: &Path, cfg: &ExpConfig) {
    let meshes = cfg.meshes();
    let labels: Vec<String> = meshes.iter().map(|n| n.spec.label.to_string()).collect();
    // miss rates [level][ordering][mesh]
    let mut rates = vec![vec![Vec::new(); 3]; 3];
    for named in &meshes {
        for (oi, kind) in OrderingKind::PAPER_TRIO.into_iter().enumerate() {
            let m = ordered_mesh(&named.mesh, kind);
            let mut hier = cfg.hierarchy();
            hier.run_trace(&first_sweep_trace(&m));
            for (li, stats) in hier.level_stats().iter().enumerate() {
                rates[li][oi].push(stats.miss_rate() * 100.0);
            }
        }
    }
    for (li, level) in ["L1", "L2", "L3"].iter().enumerate() {
        let mut chart = BarChart::new(
            format!("Figure 9{} — {level} miss rate, one core", ['a', 'b', 'c'][li]),
            "miss rate (%)",
        )
        .categories(labels.clone());
        for (oi, kind) in OrderingKind::PAPER_TRIO.into_iter().enumerate() {
            chart = chart.group(kind.name(), rates[li][oi].clone());
        }
        chart
            .render(760.0, 300.0)
            .write_to(&out.join(format!("fig9_{}.svg", level.to_lowercase())))
            .unwrap();
    }
    println!("fig9: miss-rate bars (3 levels × 9 meshes × 3 orderings)");
}

/// Extension: miss-ratio curves per ordering (carabiner) — the cache-size
/// axis of the paper's Table 2/3 analysis in one picture.
fn mrc_figure(out: &Path, cfg: &ExpConfig) {
    let spec = suite::find_spec("carabiner").unwrap();
    let base = suite::generate(spec, cfg.scale);
    let caps = pow2_capacities(base.num_vertices() as u64);
    let mut chart = Chart::new("Miss-ratio curves, first iteration (carabiner)")
        .labels("cache capacity (elements, log)", "miss ratio")
        .with_markers();
    chart.x_scale = lms::viz::Scale::Log10;
    for kind in [OrderingKind::Original, OrderingKind::Bfs, OrderingKind::Rdr] {
        let m = ordered_mesh(&base, kind);
        let trace = first_sweep_trace(&m);
        let d = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
        let curve = MissRatioCurve::from_distances(&d, &caps);
        chart = chart.series(Series::new(
            kind.name(),
            curve.points().into_iter().map(|(c, r)| (c.max(1) as f64, r)),
        ));
    }
    chart.render(680.0, 360.0).write_to(&out.join("mrc_curves.svg")).unwrap();
    println!("mrc: miss-ratio curves (3 orderings)");
}

/// Figure 12: mean simulated speedup vs cores, per ordering.
fn fig12(out: &Path, cfg: &ExpConfig) {
    let meshes = cfg.meshes();
    let cores = &cfg.threads;
    let mut chart = Chart::new("Figure 12 — mean speedup vs serial ORI (simulated)")
        .labels("cores", "mean speedup")
        .with_markers();
    for kind in OrderingKind::PAPER_TRIO {
        let mut points = Vec::new();
        for &p in cores {
            let mut sum = 0.0;
            for named in &meshes {
                let base = {
                    let m = ordered_mesh(&named.mesh, OrderingKind::Original);
                    let traces = parallel_sweep_traces_full(&m, 1);
                    multicore::simulate(&cfg.machine_for(&m), &traces).wall_cycles() as f64
                };
                let m = ordered_mesh(&named.mesh, kind);
                let traces = parallel_sweep_traces_full(&m, p);
                let w = multicore::simulate(&cfg.machine_for(&m), &traces).wall_cycles() as f64;
                sum += base / w;
            }
            points.push((p as f64, sum / meshes.len() as f64));
        }
        chart = chart.series(Series::new(kind.name(), points));
    }
    chart.render(640.0, 380.0).write_to(&out.join("fig12_mean_speedup.svg")).unwrap();
    println!("fig12: mean speedup curves");
}
