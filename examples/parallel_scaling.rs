//! The §5.3 scaling study: real rayon runs on this host's cores plus the
//! socket-aware cache simulation up to 32 cores.
//!
//! ```text
//! cargo run --release --example parallel_scaling [scale]
//! ```

use lms::cache::{multicore, Affinity, MachineConfig, NodeLayout};
use lms::mesh::suite;
use lms::order::{compute_ordering, OrderingKind};
use lms::smooth::{trace::chunked_sweep_traces, SmoothEngine, SmoothParams};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let base = suite::generate(suite::find_spec("carabiner").unwrap(), scale);
    println!("carabiner @ scale {scale}: {} vertices\n", base.num_vertices());

    // --- Real rayon runs (bounded by this host) ---------------------------
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("real rayon (Jacobi, deterministic), host has {host} threads:");
    for kind in [OrderingKind::Original, OrderingKind::Rdr] {
        let mesh = compute_ordering(&base, kind).apply_to_mesh(&base);
        let engine = SmoothEngine::new(&mesh, SmoothParams::paper().with_max_iters(8));
        print!("  {:<4}", kind.name());
        for p in [1usize, 2, 4, 8].into_iter().filter(|&p| p <= host.max(1)) {
            let start = Instant::now();
            engine.smooth_parallel(&mut mesh.clone(), p);
            print!("  p={p}: {:>7.1} ms", start.elapsed().as_secs_f64() * 1e3);
        }
        println!();
    }

    // --- Simulated 1–32 cores (the paper's machine) -----------------------
    let shrink = if scale >= 1.0 { 1 } else { (1.0 / scale).round() as usize };
    let machine = if shrink <= 1 {
        MachineConfig::westmere_ex(NodeLayout::paper_66())
    } else {
        MachineConfig::westmere_scaled(NodeLayout::paper_66(), shrink)
    };
    println!("\nsimulated Westmere-EX (4 sockets x 8 cores, compact affinity):");
    println!("{:>6} {:>10} {:>10} {:>10}", "cores", "ORI", "BFS", "RDR");

    let mut base_cycles = 0u64;
    for p in [1usize, 2, 4, 8, 16, 24, 32] {
        print!("{p:>6}");
        for kind in OrderingKind::PAPER_TRIO {
            let mesh = compute_ordering(&base, kind).apply_to_mesh(&base);
            let engine = SmoothEngine::new(&mesh, SmoothParams::paper());
            let traces = chunked_sweep_traces(engine.adjacency(), engine.boundary(), p);
            let result = multicore::simulate(&machine, &traces);
            let wall = result.wall_cycles();
            if p == 1 && kind == OrderingKind::Original {
                base_cycles = wall;
            }
            print!(" {:>9.2}x", base_cycles as f64 / wall as f64);
        }
        println!();
    }
    let _ = Affinity::Scatter; // see lms-cache::multicore for the scatter ablation
    println!("\npaper: mean RDR speedup exceeds 75x at 32 cores (Figure 12).");
}
