//! Static vs dynamic reordering (Shontz & Knupp, paper §2).
//!
//! The paper chose an *a-priori* (static) reordering because Shontz & Knupp
//! found that re-reordering during the run never pays for itself. This
//! example reruns that comparison with `lms_apps::dynamic`: smooth the same
//! mesh under never / static / dynamic strategies and account the work in
//! sweep equivalents (§5.4 prices one reordering ≈ one ORI sweep).
//!
//! ```text
//! cargo run --release --example reorder_strategies
//! ```

use lms::apps::dynamic::{smooth_with_strategy, ReorderStrategy};
use lms::mesh::suite;
use lms::prelude::*;
use std::time::Instant;

fn main() {
    let base = suite::generate(&suite::SUITE[0], 0.04); // carabiner, ~13k vertices
    println!("mesh: {} ({} vertices)\n", suite::SUITE[0].name, base.num_vertices());
    println!(
        "{:<22} {:>9} {:>9} {:>14} {:>10} {:>9}",
        "strategy", "sweeps", "reorders", "sweep-equiv", "final q", "wall ms"
    );

    let params = SmoothParams::paper().with_max_iters(100);
    for (label, strategy) in [
        ("never (plain ORI)", ReorderStrategy::Never),
        ("static (the paper)", ReorderStrategy::Static),
        ("dynamic every 2", ReorderStrategy::Dynamic { reorder_every: 2 }),
        ("dynamic every 8", ReorderStrategy::Dynamic { reorder_every: 8 }),
    ] {
        let mut mesh = base.clone();
        let t0 = Instant::now();
        let report = smooth_with_strategy(&mut mesh, &params, OrderingKind::Rdr, strategy);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<22} {:>9} {:>9} {:>14.1} {:>10.4} {:>9.1}",
            label,
            report.sweeps,
            report.reorders,
            report.sweep_equivalents(1.0),
            report.final_quality,
            wall
        );
        assert!(report.converged, "{label}: should converge within 100 sweeps");
    }

    println!();
    println!("All strategies land on the same quality; the extra reorderings of the");
    println!("dynamic variants are pure overhead — Shontz & Knupp's finding, and the");
    println!("reason the paper's RDR is computed once, a priori.");
}
