//! The Figure 1 experiment on the ocean mesh: how RANDOM / ORI / BFS / RDR
//! orderings change reuse distances, simulated cache misses, and measured
//! smoothing time.
//!
//! ```text
//! cargo run --release --example ocean_orderings [scale]
//! ```
//! `scale` defaults to 0.02 (≈8k vertices); 1.0 reproduces paper size.

use lms::cache::{binned_means, NodeLayout, ReuseDistanceAnalyzer, ReuseStats};
use lms::mesh::suite;
use lms::order::{compute_ordering, OrderingKind};
use lms::smooth::{SmoothEngine, SmoothParams, VecSink};
use std::time::Instant;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    values.iter().map(|&v| BARS[((v / max) * 7.0).round().clamp(0.0, 7.0) as usize]).collect()
}

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let spec = suite::find_spec("ocean").unwrap();
    let base = suite::generate(spec, scale);
    println!("ocean mesh @ scale {scale}: {} vertices\n", base.num_vertices());

    for kind in [
        OrderingKind::Random { seed: 0 },
        OrderingKind::Original,
        OrderingKind::Bfs,
        OrderingKind::Rdr,
    ] {
        let mesh = compute_ordering(&base, kind).apply_to_mesh(&base);

        // Reuse-distance profile of the first sweep.
        let engine = SmoothEngine::new(&mesh, SmoothParams::paper().with_max_iters(1));
        let mut sink = VecSink::new();
        engine.smooth_traced(&mut mesh.clone(), &mut sink);
        let distances = ReuseDistanceAnalyzer::analyze(&sink.accesses, mesh.num_vertices());
        let stats = ReuseStats::from_distances(&distances);
        let profile = binned_means(&distances, 60);

        // Simulated L1 behaviour (scaled Westmere hierarchy).
        let mut cache = lms_bench_hierarchy(scale);
        cache.run_trace(&sink.accesses);
        let l1 = cache.stats_of("L1").unwrap();

        // Wall-clock smoothing time.
        let start = Instant::now();
        let report = SmoothParams::paper().smooth(&mut mesh.clone());
        let wall = start.elapsed();

        println!(
            "{:<8} avg reuse distance {:>9.1}   L1 miss {:>6.2}%   time {:>7.1} ms   ({} iters)",
            kind.name(),
            stats.mean,
            100.0 * l1.miss_rate(),
            wall.as_secs_f64() * 1e3,
            report.num_iterations()
        );
        println!("         profile: {}", sparkline(&profile));
    }
    println!(
        "\npaper Figure 1 (full scale): random 90k / ori 4450 / bfs 2910 average reuse distance."
    );
}

/// A Westmere-EX hierarchy shrunk proportionally to the mesh scale, so the
/// working-set-to-cache ratio matches the paper's.
fn lms_bench_hierarchy(scale: f64) -> lms::cache::CacheHierarchy {
    use lms::cache::{CacheConfig, CacheHierarchy, MemoryConfig};
    let shrink = if scale >= 1.0 { 1 } else { (1.0 / scale).round() as usize };
    let sz = |b: usize, line: usize, assoc: usize| ((b / shrink) / line).max(assoc) * line;
    CacheHierarchy::new(
        vec![
            CacheConfig {
                name: "L1",
                size_bytes: sz(32 << 10, 64, 8),
                line_bytes: 64,
                associativity: 8,
                latency_cycles: 4,
            },
            CacheConfig {
                name: "L2",
                size_bytes: sz(256 << 10, 64, 8),
                line_bytes: 64,
                associativity: 8,
                latency_cycles: 10,
            },
            CacheConfig {
                name: "L3",
                size_bytes: sz(24 << 20, 64, 24),
                line_bytes: 64,
                associativity: 24,
                latency_cycles: 100,
            },
        ],
        MemoryConfig { latency_cycles: 230 },
        NodeLayout::paper_66(),
    )
}
