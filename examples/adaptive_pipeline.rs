//! An end-to-end "downstream user" pipeline: triangulate a point cloud with
//! the built-in Bowyer–Watson generator, decide from the §5.4 cost model
//! whether reordering pays off, smooth in parallel, and export the result
//! as Triangle `.node`/`.ele` files.
//!
//! ```text
//! cargo run --release --example adaptive_pipeline [n_points] [out_prefix]
//! ```

use lms::mesh::{generators, io, Adjacency};
use lms::order::rdr_ordering;
use lms::smooth::{SmoothEngine, SmoothParams};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5_000);
    let prefix = std::env::args().nth(2).unwrap_or_else(|| {
        std::env::temp_dir().join("lms_pipeline_out").to_string_lossy().into_owned()
    });

    // 1. Unstructured Delaunay mesh from random points (insertion-order
    //    numbering — poor locality, like a freshly digitised point cloud).
    let mesh = generators::random_delaunay(n, 2024);
    println!("delaunay mesh: {} vertices, {} triangles", mesh.num_vertices(), mesh.num_triangles());

    // 2. §5.4 decision: reorder only if the expected iteration count
    //    amortises the reordering cost (paper: worth it beyond ~4 sweeps).
    let probe = SmoothParams::paper().with_max_iters(3);
    let expected_iters = {
        let mut probe_mesh = mesh.clone();
        let r = probe.smooth(&mut probe_mesh);
        if r.converged {
            r.num_iterations()
        } else {
            // still improving after 3 sweeps: expect a long run
            16
        }
    };
    println!("probe says ~{expected_iters} iterations expected");

    let mesh = if expected_iters > 4 {
        let start = Instant::now();
        let perm = rdr_ordering(&mesh);
        println!(
            "reordering with RDR ({} ms) — expected to pay for itself",
            start.elapsed().as_millis()
        );
        perm.apply_to_mesh(&mesh)
    } else {
        println!("skipping reordering (too few iterations to amortise it)");
        mesh
    };

    // 3. Parallel smoothing on every core this host has.
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let engine = SmoothEngine::new(&mesh, SmoothParams::paper());
    let mut smoothed = mesh.clone();
    let start = Instant::now();
    let report = engine.smooth_parallel(&mut smoothed, threads);
    println!(
        "smoothed on {threads} threads in {} ms: quality {:.4} -> {:.4} ({} iters)",
        start.elapsed().as_millis(),
        report.initial_quality,
        report.final_quality,
        report.num_iterations()
    );

    // 4. Export for downstream tools (Triangle-compatible).
    io::save_triangle(&smoothed, &prefix).expect("write .node/.ele");
    println!("wrote {prefix}.node and {prefix}.ele");

    let adj = Adjacency::build(&smoothed);
    println!("final mean degree: {:.2}", adj.mean_degree());
}
