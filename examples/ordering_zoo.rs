//! The ordering zoo: every vertex ordering the reproduction implements,
//! compared on one mesh by layout locality, simulated cache behaviour and
//! actual smoothing wall time.
//!
//! This is the widescreen version of the paper's Figure 1/8 comparison:
//! beyond ORI / RANDOM / BFS / RDR it includes reversed BFS (Munson &
//! Hovland), DFS, (reverse) Cuthill–McKee, Sloan, two space-filling curves,
//! and the two value-sort ablations that isolate why RDR works.
//!
//! ```text
//! cargo run --release --example ordering_zoo
//! ```

use lms::cache::CacheHierarchy;
use lms::cache::NodeLayout;
use lms::mesh::{suite, Adjacency};
use lms::order::{compute_ordering_with, layout_stats_permuted};
use lms::prelude::*;
use lms::smooth::{SmoothEngine, VecSink};

fn main() {
    // the ocean mesh (M6) at 2% scale — the mesh of the paper's Figure 1
    let spec = suite::find_spec("ocean").expect("ocean is in the suite");
    let base = suite::generate(spec, 0.02);
    let adj = Adjacency::build(&base);
    println!(
        "mesh: {} ({} vertices, {} triangles)\n",
        spec.name,
        base.num_vertices(),
        base.num_triangles()
    );
    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "ordering", "mean span", "L1 miss", "L2 miss", "L3 miss", "smooth ms", "iters"
    );

    for kind in OrderingKind::ALL {
        // reorder, then run one traced first sweep through the simulated
        // Westmere-EX (scaled to the mesh scale)
        let perm = compute_ordering_with(&base, &adj, kind);
        let span = layout_stats_permuted(&base, &adj, &perm).mean_span;
        let mesh = perm.apply_to_mesh(&base);

        let engine = SmoothEngine::new(&mesh, SmoothParams::paper().with_max_iters(1));
        let mut sink = VecSink::default();
        engine.smooth_traced(&mut mesh.clone(), &mut sink);

        let mut hier = scaled_hierarchy(0.02);
        hier.run_trace(&sink.accesses);
        let stats = hier.level_stats();

        // wall time of a real (non-traced) smoothing run
        let mut work = mesh.clone();
        let t0 = std::time::Instant::now();
        let report = SmoothParams::paper().with_max_iters(50).smooth(&mut work);
        let wall = t0.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<8} {:>10.1} {:>8.1}% {:>8.1}% {:>8.1}% {:>10.2} {:>8}",
            kind.name(),
            span,
            stats[0].miss_rate() * 100.0,
            stats[1].miss_rate() * 100.0,
            stats[2].miss_rate() * 100.0,
            wall,
            report.num_iterations()
        );
    }

    println!(
        "\nreading: the value sorts (qsort, degsort) sit near random — sorting by\nquality alone scatters neighbours. RDR's chaining walk is what turns the\nquality signal into locality (compare qsort vs rdr)."
    );
}

/// Westmere-EX shrunk to keep working-set/cache ratios at reduced scale
/// (same rule as the experiment harness).
fn scaled_hierarchy(scale: f64) -> CacheHierarchy {
    use lms::cache::{CacheConfig, MemoryConfig};
    let shrink = (1.0 / scale).round().max(1.0) as usize;
    let sz = |b: usize, assoc: usize| ((b / shrink) / 64).max(assoc) * 64;
    CacheHierarchy::new(
        vec![
            CacheConfig {
                name: "L1",
                size_bytes: sz(32 * 1024, 8),
                line_bytes: 64,
                associativity: 8,
                latency_cycles: 4,
            },
            CacheConfig {
                name: "L2",
                size_bytes: sz(256 * 1024, 8),
                line_bytes: 64,
                associativity: 8,
                latency_cycles: 10,
            },
            CacheConfig {
                name: "L3",
                size_bytes: sz(24 * 1024 * 1024, 24),
                line_bytes: 64,
                associativity: 24,
                latency_cycles: 100,
            },
        ],
        MemoryConfig { latency_cycles: 230 },
        NodeLayout::paper_66(),
    )
}
