//! Production-grade locality monitoring: exact vs SHARDS-sampled reuse
//! distance, and what the TLB and write-back traffic see.
//!
//! The paper measured reuse distance with a verbose full trace (§5.2.3).
//! This example shows the monitoring stack a production system would use
//! instead: fixed-rate SHARDS sampling for the distance profile, plus the
//! two costs the basic cache-miss picture leaves out — page-table walks
//! (TLB) and dirty-line write-backs.
//!
//! ```text
//! cargo run --release --example sampled_monitoring
//! ```

use lms::cache::reuse::{ReuseDistanceAnalyzer, ReuseStats};
use lms::cache::sampled::sampled_distances;
use lms::cache::tlb::{Tlb, TlbConfig};
use lms::cache::traffic::{sweep_rw_trace, WritebackCache};
use lms::cache::{CacheConfig, NodeLayout};
use lms::mesh::suite;
use lms::order::{compute_ordering, OrderingKind};
use lms::smooth::{SmoothEngine, SmoothParams, VecSink};
use std::time::Instant;

fn main() {
    // The suite's carabiner mesh at ~4% of paper scale (≈13k vertices).
    // Suite meshes are block-scrambled like real generator output — the
    // baseline the paper's ORI numbers correspond to.
    let base = suite::generate(&suite::SUITE[0], 0.04);
    let mesh = compute_ordering(&base, OrderingKind::Rdr).apply_to_mesh(&base);
    let engine = SmoothEngine::new(&mesh, SmoothParams::paper().with_max_iters(3));
    let mut sink = VecSink::new();
    engine.smooth_traced(&mut mesh.clone(), &mut sink);
    let n = mesh.num_vertices();
    println!("trace: {} accesses over {} sweeps\n", sink.accesses.len(), sink.num_iterations());

    // 1. Exact reuse-distance analysis (the paper's verbose run).
    let t0 = Instant::now();
    let exact = ReuseDistanceAnalyzer::analyze(&sink.accesses, n);
    let t_exact = t0.elapsed();
    let exact_mean = ReuseStats::from_distances(&exact).mean;
    println!("exact:        mean RD {exact_mean:>8.1}   ({:.1} ms)", t_exact.as_secs_f64() * 1e3);

    // 2. SHARDS sampling at 1/4, 1/16, 1/64: same profile, fraction of the
    //    work.
    for rate_log2 in [2u32, 4, 6] {
        let t0 = Instant::now();
        let s = sampled_distances(&sink.accesses, n, rate_log2, 0xC0FFEE);
        let t = t0.elapsed();
        let mean = s.stats().mean;
        println!(
            "SHARDS 1/{:<3}: mean RD {mean:>8.1}   ({:.1} ms, {:.1}% of accesses monitored)",
            1u64 << rate_log2,
            t.as_secs_f64() * 1e3,
            100.0 * s.sample_fraction()
        );
    }

    // 3. The TLB view: page-table walks per ordering (4-entry/10-entry
    //    scaled DTLB so the laptop-sized mesh stresses it like the paper's
    //    400k-vertex meshes stressed the real 64/512-entry one).
    println!();
    let layout = NodeLayout::paper_66();
    let tlb_cfg = TlbConfig { l1_entries: 4, l2_entries: 10, ..TlbConfig::westmere_ex() };
    for kind in [OrderingKind::Original, OrderingKind::Bfs, OrderingKind::Rdr] {
        let m = compute_ordering(&base, kind).apply_to_mesh(&base);
        let eng = SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(1));
        let mut s = VecSink::new();
        eng.smooth_traced(&mut m.clone(), &mut s);
        let mut tlb = Tlb::new(tlb_cfg);
        let cycles = tlb.run_trace(&s.accesses, &layout);
        println!(
            "TLB {:<7} walks {:>6}  walk rate {:>5.2}%  translation cycles {:>8}",
            kind.name(),
            tlb.stats().walks,
            100.0 * tlb.stats().walk_rate(),
            cycles
        );
    }

    // 4. The write-back view: the smoother writes every interior vertex —
    //    dirty lines evicted early are traffic the read-only picture misses.
    println!();
    for kind in [OrderingKind::Original, OrderingKind::Rdr] {
        let m = compute_ordering(&base, kind).apply_to_mesh(&base);
        let eng = SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(1));
        let mut s = VecSink::new();
        eng.smooth_traced(&mut m.clone(), &mut s);
        let heads: Vec<bool> =
            (0..m.num_vertices() as u32).map(|v| eng.boundary().is_interior(v)).collect();
        let rw = sweep_rw_trace(&s.accesses, &heads);
        let mut cache = WritebackCache::new(CacheConfig {
            name: "L2wb",
            size_bytes: 8 * 1024,
            line_bytes: 64,
            associativity: 8,
            latency_cycles: 10,
        });
        cache.run_trace(&rw, &layout);
        cache.drain();
        let st = cache.stats();
        println!(
            "write-back {:<7} fills {:>7}  write-backs {:>7}  line traffic {:>8}",
            kind.name(),
            st.fills,
            st.writebacks + st.drained,
            st.line_traffic()
        );
    }
    println!("\nRDR shrinks every one of these costs with the same one-pass reordering.");
}
