//! The 3D resident halo-exchange pipeline end to end: decompose a
//! perturbed tet grid with each geometric method, report per-part stats,
//! run the resident engine (one gather, moved-only halo deltas per color
//! step, one scatter) and verify it bit-identical against serial
//! part-major 3D Gauss–Seidel — then compare wall clock with the colored
//! engine. Everything here runs the same dimension-generic `lms-smooth`
//! sweep bodies as the 2D `partitioned_smoothing` example.
//!
//! ```text
//! cargo run --release --example partitioned_smoothing3d [side] [parts]
//! ```

use lms::mesh3d::{partition_tet_mesh, Adjacency3, ResidentEngine3, SmoothEngine3, SmoothParams3};
use lms::part::PartitionMethod;
use std::time::Instant;

fn main() {
    let side: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let parts: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let mesh = lms::mesh3d::generators::perturbed_tet_grid(side, side, side, 0.35, 42);
    let adj = Adjacency3::build(&mesh);
    println!(
        "perturbed tet grid {side}^3: {} vertices, {} tets, {parts} parts\n",
        mesh.num_vertices(),
        mesh.num_tets()
    );

    // --- decomposition quality per method ---------------------------------
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "method", "cut", "interface", "halo", "imbalance", "interior"
    );
    for method in PartitionMethod::ALL {
        let p = partition_tet_mesh(&mesh, &adj, parts, method);
        let s = p.stats();
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>10.3} {:>8.1}%",
            method.name(),
            s.edge_cut,
            s.interface_vertices,
            s.halo_vertices,
            s.imbalance,
            100.0 * s.interior_fraction,
        );
    }

    // --- resident engine: per-part stats + serial equivalence -------------
    let params = SmoothParams3::paper().with_smart(true).with_max_iters(8).with_tol(-1.0);
    let engine = ResidentEngine3::by_method(&mesh, params.clone(), parts, PartitionMethod::Rcb);
    let partition = engine.partition();
    println!("\nresident blocks (rcb):");
    println!("{:<6} {:>8} {:>10} {:>10} {:>8}", "part", "owned", "interior", "interface", "halo");
    for p in 0..partition.num_parts() {
        println!(
            "{:<6} {:>8} {:>10} {:>10} {:>8}",
            p,
            partition.part(p).len(),
            partition.interior(p).len(),
            partition.interface(p).len(),
            partition.halo(p).len(),
        );
    }
    println!(
        "static exchange schedule: {} delivery slots across {} parts",
        engine.exchange_schedule().num_entries(),
        partition.num_parts()
    );

    let mut res = mesh.clone();
    let start = Instant::now();
    let report = engine.smooth(&mut res, 2);
    let t_res = start.elapsed();

    let oracle =
        SmoothEngine3::new(&mesh, params.clone()).with_visit_order(engine.part_major_visit_order());
    let mut ser = mesh.clone();
    oracle.smooth(&mut ser);

    println!(
        "\nresident (rcb, {parts} parts, 2 threads): quality {:.6} -> {:.6} in {} sweeps",
        report.initial_quality,
        report.final_quality,
        report.num_iterations()
    );
    println!(
        "bit-identical to serial part-major 3D Gauss-Seidel: {}",
        res.coords() == ser.coords()
    );
    let volume = report.exchange.expect("resident runs report exchange accounting");
    println!(
        "exchange volume: {} full gather(s), {} full scatter(s), {} rounds, {} halo deliveries",
        volume.full_gathers, volume.full_scatters, volume.exchange_rounds, volume.halo_entries_sent
    );

    // --- wall clock vs the colored engine ---------------------------------
    let colored = SmoothEngine3::new(&mesh, params);
    let start = Instant::now();
    colored.smooth_parallel_colored(&mut mesh.clone(), 2);
    let t_col = start.elapsed();
    println!(
        "\nwall clock (2 threads, {} sweeps): resident {:.1} ms, colored {:.1} ms",
        report.num_iterations(),
        t_res.as_secs_f64() * 1e3,
        t_col.as_secs_f64() * 1e3
    );
}
