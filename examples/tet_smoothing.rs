//! The §6 conjecture in action: RDR on a tetrahedral mesh.
//!
//! Generates a jittered tetrahedral box, reorders it with each of
//! ORI / RANDOM / BFS / RDR, and reports the reuse distance of the 3D
//! smoothing sweep plus the smoothing outcome — the paper's 2D pipeline
//! transplanted to its most direct "extension of Laplacian mesh smoothing".
//!
//! ```text
//! cargo run --release --example tet_smoothing
//! ```

use lms::cache::reuse::{ReuseDistanceAnalyzer, ReuseStats};
use lms::mesh3d::generators::{block_scramble, perturbed_tet_grid};
use lms::mesh3d::order::{
    apply_permutation3, compute_ordering3, mean_neighbor_span3, sweep_trace3, OrderingKind3,
};
use lms::mesh3d::{Adjacency3, Boundary3, SmoothParams3};

fn main() {
    // 1. A 20×20×20 jittered Kuhn-subdivision box (≈9.3k vertices, 48k
    //    tets), block-scrambled so the "original" numbering has realistic
    //    generator-grade locality.
    let base = block_scramble(perturbed_tet_grid(20, 20, 20, 0.35, 42), 256, 42);
    let adj = Adjacency3::build(&base);
    println!(
        "tet mesh: {} vertices, {} tets, mean degree {:.2}",
        base.num_vertices(),
        base.num_tets(),
        adj.mean_degree()
    );
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>8}",
        "ordering", "mean span", "mean RD", "final q", "iters"
    );

    for kind in [
        OrderingKind3::Original,
        OrderingKind3::Random { seed: 7 },
        OrderingKind3::Bfs,
        OrderingKind3::Rdr,
    ] {
        // 2. Renumber and measure the layout.
        let perm = compute_ordering3(&base, kind);
        let mesh = apply_permutation3(&perm, &base);
        let adj = Adjacency3::build(&mesh);
        let boundary = Boundary3::detect(&mesh);
        let span = mean_neighbor_span3(&adj);

        // 3. Reuse distance of one smoothing sweep — the §3.1 mechanism.
        let trace = sweep_trace3(&adj, &boundary);
        let distances = ReuseDistanceAnalyzer::analyze(&trace, mesh.num_vertices());
        let mean_rd = ReuseStats::from_distances(&distances).mean;

        // 4. Smooth to convergence (Equation (1) is dimension-agnostic).
        let mut work = mesh.clone();
        let report = SmoothParams3::paper().smooth(&mut work);

        println!(
            "{:<8} {:>12.1} {:>12.1} {:>10.4} {:>8}",
            kind.name(),
            span,
            mean_rd,
            report.final_quality,
            report.num_iterations()
        );
    }
    println!();
    println!("RDR's walk shrinks the reuse distance in 3D exactly as it does in 2D,");
    println!("while the smoothing outcome (final quality) is unaffected by the numbering.");

    // 5. Render the smoothed surface (quality-coloured) as an SVG.
    let mut smoothed = base.clone();
    lms::mesh3d::SmoothParams3::paper().smooth(&mut smoothed);
    let svg = lms::viz::render_tet_surface(&smoothed, &lms::viz::Mesh3Style::default());
    let path = std::path::Path::new("results/figures/tet_surface.svg");
    match svg.write_to(path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("(skipping SVG write: {e})"),
    }
}
