//! Mesh improvement end to end: tangle a mesh, then repair and polish it
//! with the full application stack — reorder (RDR), untangle, Delaunay
//! swap, smart Laplacian smoothing, and a final optimization-smoothing
//! pass — exactly the workflow the paper's §6 conjectures RDR should
//! accelerate.
//!
//! ```text
//! cargo run --release --example mesh_improvement
//! ```

use lms::apps::optsmooth::OptSmoothOptions;
use lms::apps::swap::SwapOptions;
use lms::apps::untangle::UntangleOptions;
use lms::apps::{count_inverted, is_delaunay, tangle_vertices, worst_vertex_quality};
use lms::mesh::generators;
use lms::mesh::quality::QualityMetric;
use lms::prelude::*;

fn main() {
    // 1. Start from a harshly jittered triangulation and deliberately
    //    tangle it: every 35th interior vertex is thrown across its ring,
    //    inverting triangles — the state meshes reach after aggressive
    //    boundary movement or morphing.
    let mut mesh = generators::perturbed_grid(80, 80, 0.4, 7);
    mesh.orient_ccw();
    let displaced = tangle_vertices(&mut mesh, 35);
    println!(
        "tangled mesh: {} vertices, {} displaced, {} inverted triangles",
        mesh.num_vertices(),
        displaced,
        count_inverted(&mesh)
    );

    // 2. The standard improvement pipeline (reorder → untangle → swap →
    //    smart smooth), then an optimization-smoothing pass to lift the
    //    worst remaining vertices and a final swap to restore Delaunayhood
    //    for the positions the smoothers settled on.
    let pipeline = Pipeline::standard(OrderingKind::Rdr)
        .then(Stage::OptSmooth(OptSmoothOptions::default()))
        .then(Stage::Swap(SwapOptions::default()));
    let report = pipeline.run(&mut mesh);

    println!("\nstage            quality before -> after   work");
    for s in &report.stages {
        println!(
            "{:<16} {:.4}        -> {:.4}   {}",
            s.stage, s.quality_before, s.quality_after, s.work
        );
    }
    println!(
        "\ntotal: {:.4} -> {:.4} (+{:.4})",
        report.initial_quality,
        report.final_quality,
        report.total_improvement()
    );

    // 3. Verify the repairs actually happened. (Global Delaunayhood is not
    //    asserted: a mesh recovered from a harsh tangle can retain folded —
    //    all-positive-area but locally non-planar — neighbourhoods where
    //    diagonal flips are legitimately inapplicable; `is_delaunay`
    //    reports whether any flippable edge remains wanted.)
    assert_eq!(count_inverted(&mesh), 0, "pipeline must untangle");
    assert!(report.final_quality > report.initial_quality);
    println!(
        "valid: 0 inverted, locally Delaunay: {}, worst vertex quality {:.4}",
        is_delaunay(&mesh),
        worst_vertex_quality(&mesh, QualityMetric::EdgeLengthRatio)
    );

    // 4. The same repair under the three paper orderings — the §6
    //    conjecture in one table (run `lms-exp apps` for the full suite).
    println!("\nordering  untangle+swap+smooth wall time");
    for kind in OrderingKind::PAPER_TRIO {
        let mut tangled = generators::perturbed_grid(80, 80, 0.4, 7);
        tangled.orient_ccw();
        tangle_vertices(&mut tangled, 35);
        let pipeline = Pipeline::standard(kind);
        let t0 = std::time::Instant::now();
        let r = pipeline.run(&mut tangled);
        println!(
            "{:<8}  {:>7.1} ms (quality {:.4} -> {:.4})",
            kind.name(),
            t0.elapsed().as_secs_f64() * 1e3,
            r.initial_quality,
            r.final_quality
        );
    }

    // Swapping and untangling are quality-driven like the smoother, so a
    // SwapOptions/UntangleOptions pair with different knobs slots straight
    // into a custom pipeline:
    let _custom = Pipeline::new()
        .then(Stage::Untangle(UntangleOptions { max_sweeps: 5, ascent_steps: 8 }))
        .then(Stage::Swap(SwapOptions { max_passes: 10, ..SwapOptions::default() }));
    println!("\ndone.");
}
