//! Cross-crate integration tests for the tetrahedral (§6) extension:
//! lms-mesh3d driving lms-order's generic cores and lms-cache's analysis.

use lms::cache::hierarchy::CacheHierarchy;
use lms::cache::reuse::{ReuseDistanceAnalyzer, ReuseStats};
use lms::cache::NodeLayout;
use lms::mesh3d::generators::{block_scramble, generate3, perturbed_tet_grid, SUITE3};
use lms::mesh3d::order::{apply_permutation3, compute_ordering3, sweep_trace3, OrderingKind3};
use lms::mesh3d::{Adjacency3, Boundary3, SmoothParams3, UpdateScheme3};

fn scrambled_box(n: usize, seed: u64) -> lms::mesh3d::TetMesh {
    block_scramble(perturbed_tet_grid(n, n, n, 0.35, seed), 128, seed)
}

#[test]
fn full_3d_pipeline_reorder_smooth_analyze() {
    let base = scrambled_box(10, 3);

    // reorder with RDR via the graph-generic Algorithm 2
    let perm = compute_ordering3(&base, OrderingKind3::Rdr);
    let mesh = apply_permutation3(&perm, &base);

    // smooth to convergence
    let mut work = mesh.clone();
    let report = SmoothParams3::paper().smooth(&mut work);
    assert!(report.converged);
    assert!(report.final_quality > report.initial_quality);

    // feed the sweep trace through the full cache hierarchy
    let adj = Adjacency3::build(&mesh);
    let boundary = Boundary3::detect(&mesh);
    let trace = sweep_trace3(&adj, &boundary);
    let mut h = CacheHierarchy::westmere_ex(NodeLayout::paper_66());
    h.run_trace(&trace);
    let stats = h.level_stats();
    assert!(stats[0].accesses > 0);
    assert!(stats[0].hits > stats[0].misses, "RDR-ordered sweep must be L1-friendly");
}

#[test]
fn paper_ranking_holds_on_the_3d_suite() {
    // mean reuse distance: RANDOM >> ORI and RDR < ORI on every suite mesh
    for spec in &SUITE3 {
        let base = generate3(spec, 0.3);
        let mean_rd = |kind| {
            let perm = compute_ordering3(&base, kind);
            let m = apply_permutation3(&perm, &base);
            let adj = Adjacency3::build(&m);
            let b = Boundary3::detect(&m);
            let trace = sweep_trace3(&adj, &b);
            let d = ReuseDistanceAnalyzer::analyze(&trace, m.num_vertices());
            ReuseStats::from_distances(&d).mean
        };
        let ori = mean_rd(OrderingKind3::Original);
        let rnd = mean_rd(OrderingKind3::Random { seed: 5 });
        let rdr = mean_rd(OrderingKind3::Rdr);
        assert!(rnd > 2.0 * ori, "{}: random {rnd} vs ori {ori}", spec.name);
        assert!(rdr < ori, "{}: rdr {rdr} vs ori {ori}", spec.name);
    }
}

#[test]
fn jacobi_smoothing_is_ordering_invariant_in_3d() {
    // The paper notes its orderings did not change the iteration count; for
    // Jacobi updates the guarantee is exact: identical quality trajectory
    // under any renumbering.
    let base = scrambled_box(8, 9);
    let params = SmoothParams3::paper().with_update(UpdateScheme3::Jacobi).with_max_iters(30);
    let reports: Vec<_> = [OrderingKind3::Original, OrderingKind3::Bfs, OrderingKind3::Rdr]
        .into_iter()
        .map(|kind| {
            let perm = compute_ordering3(&base, kind);
            let mut m = apply_permutation3(&perm, &base);
            params.clone().smooth(&mut m)
        })
        .collect();
    for r in &reports[1..] {
        assert_eq!(r.num_iterations(), reports[0].num_iterations());
        assert!((r.final_quality - reports[0].final_quality).abs() < 1e-12);
    }
}

#[test]
fn parallel_3d_smoothing_matches_serial() {
    use lms::mesh3d::SmoothEngine3;
    let base = scrambled_box(8, 4);
    let params = SmoothParams3::paper().with_update(UpdateScheme3::Jacobi).with_max_iters(6);
    let mut serial = base.clone();
    SmoothEngine3::new(&base, params.clone()).smooth(&mut serial);
    let mut par = base.clone();
    SmoothEngine3::new(&base, params).smooth_parallel(&mut par, 4);
    assert_eq!(serial.coords(), par.coords());
}

#[test]
fn sampled_analysis_tracks_exact_on_3d_traces() {
    use lms::cache::sampled::sampled_distances;
    let base = scrambled_box(10, 11);
    let adj = Adjacency3::build(&base);
    let b = Boundary3::detect(&base);
    let trace = sweep_trace3(&adj, &b);
    let exact =
        ReuseStats::from_distances(&ReuseDistanceAnalyzer::analyze(&trace, base.num_vertices()))
            .mean;
    let est = sampled_distances(&trace, base.num_vertices(), 3, 0xBEEF).stats().mean;
    let rel = (est - exact).abs() / exact.max(1.0);
    assert!(rel < 0.25, "sampled mean {est} vs exact {exact} (rel {rel})");
}
