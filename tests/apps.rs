//! Integration tests for the `lms-apps` applications across the whole
//! stack: orderings drive untangling / swapping / constrained and
//! optimization smoothing, the cache substrate measures their traces, and
//! the pipeline composes everything.

use lms::apps::constrained::{constrained_smooth, ConstrainedOptions};
use lms::apps::optsmooth::{opt_smooth, OptSmoothOptions};
use lms::apps::swap::{is_delaunay, swap_until_stable, SwapCriterion, SwapOptions};
use lms::apps::untangle::{count_inverted, tangle_vertices, untangle, UntangleOptions};
use lms::apps::{EdgeTopology, Pipeline};
use lms::cache::{element_line_trace, NodeLayout, OptComparison};
use lms::mesh::quality::{mesh_quality, QualityMetric};
use lms::mesh::{generators, suite, Adjacency, Boundary};
use lms::order::{compute_ordering, OrderingKind};
use lms::prelude::*;
use lms::smooth::VecSink;

/// The full repair workflow succeeds under every ordering in the zoo.
#[test]
fn repair_workflow_succeeds_under_every_ordering() {
    for kind in OrderingKind::ALL {
        let mut m = generators::perturbed_grid(24, 24, 0.3, 9);
        m.orient_ccw();
        tangle_vertices(&mut m, 30);
        assert!(count_inverted(&m) > 0);
        let report = Pipeline::standard(kind).run(&mut m);
        assert_eq!(count_inverted(&m), 0, "{}: untangle failed", kind.name());
        assert!(
            report.final_quality > report.initial_quality,
            "{}: quality regressed",
            kind.name()
        );
    }
}

/// Swapping to the Delaunay criterion on a clean suite mesh reaches the
/// Delaunay fixed point regardless of the edge visit order.
#[test]
fn suite_mesh_swaps_to_delaunay_under_any_visit_order() {
    let spec = suite::find_spec("valve").unwrap();
    let base = suite::generate(spec, 0.004);
    for kind in [OrderingKind::Original, OrderingKind::Rdr, OrderingKind::Random { seed: 3 }] {
        let mut m = base.clone();
        let perm = compute_ordering(&m, kind);
        let report = swap_until_stable(&mut m, SwapOptions::default(), Some(&perm));
        assert!(report.converged, "{}", kind.name());
        assert!(is_delaunay(&m), "{}: not Delaunay", kind.name());
    }
}

/// Quality-criterion swapping: guaranteed to raise the worst triangle
/// before smoothing, and composing it with smoothing stays in the same
/// quality league as smoothing alone (the two attack different defects —
/// connectivity vs positions — so neither strictly dominates per seed).
#[test]
fn quality_swap_composes_with_smoothing() {
    let base = generators::perturbed_grid(20, 20, 0.42, 13);
    let params = SmoothParams::paper().with_max_iters(60);
    let min_tri = |m: &lms::mesh::TriMesh| {
        lms::mesh::quality::triangle_qualities(m, QualityMetric::EdgeLengthRatio)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    };

    let mut smooth_only = base.clone();
    let r_smooth = params.smooth(&mut smooth_only);

    let mut both = base.clone();
    let floor_before = min_tri(&both);
    swap_until_stable(
        &mut both,
        SwapOptions { criterion: SwapCriterion::quality(), max_passes: 50 },
        None,
    );
    assert!(min_tri(&both) >= floor_before - 1e-12, "quality swap lowered the floor");
    let r_both = params.smooth(&mut both);

    assert!(
        r_both.final_quality > 0.9 * r_smooth.final_quality,
        "swap+smooth {} collapsed vs smooth {}",
        r_both.final_quality,
        r_smooth.final_quality
    );
    assert!(r_both.final_quality > r_both.initial_quality);
}

/// Constrained smoothing preserves the domain boundary polyline's bbox and
/// total area while improving quality on a boundary-uneven mesh.
#[test]
fn constrained_smoothing_preserves_domain_and_improves() {
    let mut m = generators::perturbed_grid(20, 20, 0.3, 5);
    // make the boundary spacing uneven so sliding has head-room
    let (lo, hi) = m.bbox();
    for v in 0..m.num_vertices() {
        let p = m.coords()[v];
        let on_x = (p.x - lo.x).abs() < 1e-12 || (p.x - hi.x).abs() < 1e-12;
        let on_y = (p.y - lo.y).abs() < 1e-12 || (p.y - hi.y).abs() < 1e-12;
        let shift = 0.012 * (3.0 * v as f64).sin();
        if on_y && !on_x {
            m.coords_mut()[v].x += shift;
        } else if on_x && !on_y {
            m.coords_mut()[v].y += shift;
        }
    }
    let area_before = m.total_area();
    let report = constrained_smooth(
        &mut m,
        &SmoothParams::paper().with_max_iters(50),
        &ConstrainedOptions::default(),
    );
    assert!(report.final_quality > report.initial_quality);
    let (lo1, hi1) = m.bbox();
    assert!(lo.dist(lo1) < 1e-9 && hi.dist(hi1) < 1e-9, "bbox moved");
    assert!(
        (m.total_area() - area_before).abs() < 1e-6 * area_before,
        "area changed: {} -> {}",
        area_before,
        m.total_area()
    );
}

/// Optimization smoothing lifts the worst vertex above what plain
/// Laplacian reaches, on a harshly graded mesh.
#[test]
fn optsmooth_lifts_the_quality_floor() {
    let base = generators::graded_grid_over(
        24,
        24,
        (lms::mesh::Point2::ZERO, lms::mesh::Point2::new(1.0, 1.0)),
        0.45,
        17,
    );
    let worst = |m: &lms::mesh::TriMesh| {
        let adj = Adjacency::build(m);
        lms::mesh::quality::vertex_qualities(m, &adj, QualityMetric::EdgeLengthRatio)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    };
    let mut m = base.clone();
    opt_smooth(&mut m, &OptSmoothOptions::default());
    assert!(worst(&m) > worst(&base), "floor must rise: {} vs {}", worst(&m), worst(&base));
}

/// The traced access stream of an RDR-ordered mesh is close to Belady-
/// optimal at L3 (the §5.2.3 quasi-optimality claim, end to end).
#[test]
fn rdr_trace_is_near_belady_optimal_at_l3() {
    let spec = suite::find_spec("carabiner").unwrap();
    let base = suite::generate(spec, 0.004);
    let layout = NodeLayout::paper_66();
    let measure = |kind| {
        let perm = compute_ordering(&base, kind);
        let m = perm.apply_to_mesh(&base);
        let engine = SmoothEngine::new(&m, SmoothParams::paper().with_max_iters(1));
        let mut sink = VecSink::new();
        engine.smooth_traced(&mut m.clone(), &mut sink);
        let lines = element_line_trace(&sink.accesses, &layout, 64);
        // L3 scaled to mesh scale: 24 MiB / 256 ≈ 96 KiB ⇒ 1536 lines
        OptComparison::measure(&lines, 1536)
    };
    let rdr = measure(OrderingKind::Rdr);
    let ori = measure(OrderingKind::Original);
    assert!(
        rdr.lru_over_opt() <= ori.lru_over_opt() + 1e-9,
        "rdr {} must be at least as close to OPT as ori {}",
        rdr.lru_over_opt(),
        ori.lru_over_opt()
    );
    assert!(rdr.lru_over_opt() < 1.05, "rdr should be quasi-optimal, got {}", rdr.lru_over_opt());
}

/// Edge topology stays Euler-consistent through a full pipeline run.
#[test]
fn topology_invariants_survive_the_pipeline() {
    let mut m = generators::perturbed_grid(16, 16, 0.35, 21);
    m.orient_ccw();
    tangle_vertices(&mut m, 25);
    let v_before = m.num_vertices() as i64;
    let f_before = m.num_triangles() as i64;
    Pipeline::standard(OrderingKind::Rdr).run(&mut m);
    let topo = EdgeTopology::build(&m).expect("pipeline output must stay manifold");
    assert_eq!(m.num_vertices() as i64, v_before);
    assert_eq!(m.num_triangles() as i64, f_before);
    assert_eq!(v_before - topo.num_edges() as i64 + f_before, 1, "Euler characteristic");
    let boundary = Boundary::detect(&m);
    assert_eq!(topo.boundary_edges().len(), boundary.num_boundary());
}

/// The weighted-Laplacian extensions compose with reordering: quality
/// improves and the permutation itself never changes the geometry.
#[test]
fn weighted_smoothing_composes_with_rdr() {
    use lms::smooth::Weighting;
    let base = generators::perturbed_grid(18, 18, 0.35, 2);
    for weighting in [Weighting::Uniform, Weighting::InverseEdgeLength, Weighting::EdgeLength] {
        let perm = compute_ordering(&base, OrderingKind::Rdr);
        let mut m = perm.apply_to_mesh(&base);
        let adj = Adjacency::build(&m);
        let q0 = mesh_quality(&m, &adj, QualityMetric::EdgeLengthRatio);
        let report =
            SmoothParams::paper().with_weighting(weighting).with_max_iters(60).smooth(&mut m);
        assert!((report.initial_quality - q0).abs() < 1e-12);
        assert!(report.final_quality > q0, "{}", weighting.name());
    }
}

/// Pinned-corner detection: untangle + constrained smoothing never move
/// the four bbox corners of a grid domain.
#[test]
fn domain_corners_are_sacred() {
    let mut m = generators::perturbed_grid(14, 14, 0.3, 8);
    m.orient_ccw();
    let (lo, hi) = m.bbox();
    let corners: Vec<usize> = (0..m.num_vertices())
        .filter(|&v| {
            let p = m.coords()[v];
            ((p.x - lo.x).abs() < 1e-12 || (p.x - hi.x).abs() < 1e-12)
                && ((p.y - lo.y).abs() < 1e-12 || (p.y - hi.y).abs() < 1e-12)
        })
        .collect();
    assert_eq!(corners.len(), 4);
    let before: Vec<_> = corners.iter().map(|&v| m.coords()[v]).collect();

    tangle_vertices(&mut m, 30);
    untangle(&mut m, None, UntangleOptions::default());
    constrained_smooth(
        &mut m,
        &SmoothParams::paper().with_max_iters(20),
        &ConstrainedOptions::default(),
    );
    let after: Vec<_> = corners.iter().map(|&v| m.coords()[v]).collect();
    assert_eq!(before, after);
}
