//! End-to-end integration tests spanning all four crates: generate →
//! analyse → reorder → smooth → measure → export.

use lms::cache::{NodeLayout, ReuseDistanceAnalyzer, ReuseStats};
use lms::mesh::quality::{mesh_quality, QualityMetric};
use lms::mesh::{generators, io, suite, Adjacency, Boundary};
use lms::order::{compute_ordering, OrderingKind};
use lms::prelude::*;
use lms::smooth::VecSink;

#[test]
fn full_pipeline_on_suite_mesh() {
    let spec = suite::find_spec("stress").unwrap();
    let base = suite::generate(spec, 0.004);
    let adj = Adjacency::build(&base);
    let q0 = mesh_quality(&base, &adj, QualityMetric::EdgeLengthRatio);

    // reorder
    let perm = compute_ordering(&base, OrderingKind::Rdr);
    let mesh = perm.apply_to_mesh(&base);
    // permutation preserves quality exactly (same geometry)
    let adj2 = Adjacency::build(&mesh);
    let q1 = mesh_quality(&mesh, &adj2, QualityMetric::EdgeLengthRatio);
    assert!((q0 - q1).abs() < 1e-12, "reordering must not change mesh quality");

    // smooth
    let mut work = mesh.clone();
    let report = SmoothParams::paper().smooth(&mut work);
    assert!(report.final_quality > q1, "smoothing must improve quality");
    assert!(report.converged);

    // trace + reuse analysis on the smoothed topology
    let engine = SmoothEngine::new(&mesh, SmoothParams::paper().with_max_iters(1));
    let mut sink = VecSink::new();
    engine.smooth_traced(&mut mesh.clone(), &mut sink);
    let d = ReuseDistanceAnalyzer::analyze(&sink.accesses, mesh.num_vertices());
    let stats = ReuseStats::from_distances(&d);
    assert!(stats.accesses > mesh.num_vertices());
    assert!(stats.cold as f64 >= 0.9 * mesh.num_vertices() as f64 * 0.9);

    // cache simulation
    let mut cache = CacheHierarchy::westmere_ex(NodeLayout::paper_66());
    cache.run_trace(&sink.accesses);
    assert!(cache.total_cycles() > 0);
    let l1 = cache.stats_of("L1").unwrap();
    assert_eq!(l1.hits + l1.misses, l1.accesses);

    // export + reload
    let dir = std::env::temp_dir().join("lms_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = dir.join("pipeline");
    io::save_triangle(&work, &prefix).unwrap();
    let back = io::load_triangle(&prefix).unwrap();
    assert_eq!(back, work);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_orderings_compose_with_smoothing() {
    let base = generators::perturbed_grid(18, 18, 0.35, 3);
    let kinds = [
        OrderingKind::Original,
        OrderingKind::Random { seed: 5 },
        OrderingKind::Bfs,
        OrderingKind::Dfs,
        OrderingKind::Rcm,
        OrderingKind::Hilbert,
        OrderingKind::Rdr,
    ];
    let mut finals = Vec::new();
    for kind in kinds {
        let mesh = compute_ordering(&base, kind).apply_to_mesh(&base);
        let mut work = mesh.clone();
        let report = SmoothParams::paper().smooth(&mut work);
        assert!(
            report.total_improvement() > 0.0,
            "{}: smoothing must improve quality",
            kind.name()
        );
        finals.push(report.final_quality);
    }
    // all orderings converge to (nearly) the same final quality — the
    // ordering is a performance knob, not an accuracy knob
    let max = finals.iter().cloned().fold(f64::MIN, f64::max);
    let min = finals.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.01, "final qualities spread too far: {finals:?}");
}

#[test]
fn delaunay_pipeline_smooths_cleanly() {
    let mesh = generators::random_delaunay(600, 77);
    let boundary = Boundary::detect(&mesh);
    assert!(boundary.num_interior() > 0);
    let perm = compute_ordering(&mesh, OrderingKind::Rdr);
    let mut work = perm.apply_to_mesh(&mesh);
    let before = work.clone();
    let report = SmoothParams::paper().smooth(&mut work);
    assert!(report.final_quality >= report.initial_quality);
    // boundary stays pinned through the whole pipeline
    let b2 = Boundary::detect(&before);
    for v in b2.boundary_vertices() {
        assert_eq!(work.coords()[v as usize], before.coords()[v as usize]);
    }
}

#[test]
fn parallel_and_serial_agree_through_the_full_stack() {
    let base = suite::generate(suite::find_spec("valve").unwrap(), 0.003);
    let mesh = compute_ordering(&base, OrderingKind::Rdr).apply_to_mesh(&base);
    let params =
        SmoothParams::paper().with_update(lms::smooth::UpdateScheme::Jacobi).with_max_iters(5);
    let engine = SmoothEngine::new(&mesh, params.clone());

    let mut serial = mesh.clone();
    let sr = engine.smooth(&mut serial);
    let mut parallel = mesh.clone();
    let pr = engine.smooth_parallel(&mut parallel, 3);

    assert_eq!(serial.coords(), parallel.coords());
    assert_eq!(sr.num_iterations(), pr.num_iterations());
}

#[test]
fn multicore_sim_consumes_real_traces() {
    use lms::cache::{multicore, MachineConfig};
    let base = suite::generate(suite::find_spec("crake").unwrap(), 0.003);
    let mesh = compute_ordering(&base, OrderingKind::Bfs).apply_to_mesh(&base);
    let engine = SmoothEngine::new(&mesh, SmoothParams::paper());
    let machine = MachineConfig::westmere_scaled(NodeLayout::paper_66(), 300);

    let mut walls = Vec::new();
    for p in [1usize, 4, 16] {
        let traces =
            lms::smooth::trace::chunked_sweep_traces(engine.adjacency(), engine.boundary(), p);
        let r = multicore::simulate(&machine, &traces);
        assert_eq!(r.num_threads, p);
        walls.push(r.wall_cycles());
    }
    assert!(walls[0] > walls[1], "4 cores must beat 1");
    assert!(walls[1] > walls[2], "16 cores must beat 4");
}

#[test]
fn quality_metrics_agree_on_ranking_after_smoothing() {
    let base = generators::perturbed_grid(15, 15, 0.38, 11);
    for metric in
        [QualityMetric::EdgeLengthRatio, QualityMetric::MinAngle, QualityMetric::RadiusRatio]
    {
        let mut work = base.clone();
        let report = SmoothParams::paper().with_metric(metric).smooth(&mut work);
        assert!(
            report.final_quality > report.initial_quality,
            "{metric:?} must register improvement"
        );
    }
}
