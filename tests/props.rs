//! Cross-crate property-based tests (proptest): structural invariants that
//! must hold for *any* mesh, ordering, or access trace.

use lms::cache::{ReuseDistanceAnalyzer, COLD};
use lms::mesh::quality::{mesh_quality, QualityMetric};
use lms::mesh::{generators, Adjacency, Boundary, TriMesh};
use lms::order::{compute_ordering, OrderingKind, Permutation};
use lms::prelude::*;
use proptest::prelude::*;

/// Strategy: a valid perturbed-grid mesh of arbitrary small shape.
fn arb_mesh() -> impl Strategy<Value = TriMesh> {
    (3usize..12, 3usize..12, 0u64..1000, 0..35u32).prop_map(|(nx, ny, seed, jit)| {
        generators::perturbed_grid(nx, ny, jit as f64 / 100.0, seed)
    })
}

/// Strategy: any ordering kind.
fn arb_kind() -> impl Strategy<Value = OrderingKind> {
    prop_oneof![
        Just(OrderingKind::Original),
        any::<u64>().prop_map(|seed| OrderingKind::Random { seed }),
        Just(OrderingKind::Bfs),
        Just(OrderingKind::Dfs),
        Just(OrderingKind::Rcm),
        Just(OrderingKind::Hilbert),
        Just(OrderingKind::Rdr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every ordering of every mesh is a bijection (Theorem 1 for RDR).
    #[test]
    fn orderings_are_bijections(mesh in arb_mesh(), kind in arb_kind()) {
        let p = compute_ordering(&mesh, kind);
        prop_assert_eq!(p.len(), mesh.num_vertices());
        let mut seen = p.new_to_old().to_vec();
        seen.sort_unstable();
        for (i, v) in seen.into_iter().enumerate() {
            prop_assert_eq!(v as usize, i);
        }
    }

    /// Applying a permutation then its inverse restores the mesh.
    #[test]
    fn permutation_inverse_roundtrip(mesh in arb_mesh(), kind in arb_kind()) {
        let p = compute_ordering(&mesh, kind);
        let there = p.apply_to_mesh(&mesh);
        let back = p.inverse().apply_to_mesh(&there);
        prop_assert_eq!(back, mesh);
    }

    /// Renumbering never changes geometric invariants: total area, edge
    /// count, Euler characteristic, global quality.
    #[test]
    fn renumbering_preserves_geometry(mesh in arb_mesh(), kind in arb_kind()) {
        let rm = compute_ordering(&mesh, kind).apply_to_mesh(&mesh);
        prop_assert!((rm.total_area() - mesh.total_area()).abs() < 1e-9);
        prop_assert_eq!(rm.edges().len(), mesh.edges().len());
        prop_assert_eq!(rm.euler_characteristic(), mesh.euler_characteristic());
        let qa = mesh_quality(&mesh, &Adjacency::build(&mesh), QualityMetric::EdgeLengthRatio);
        let qb = mesh_quality(&rm, &Adjacency::build(&rm), QualityMetric::EdgeLengthRatio);
        prop_assert!((qa - qb).abs() < 1e-9);
    }

    /// Control-loop invariants of the smoother: the reported final quality
    /// matches the output mesh; every iteration before the last improved by
    /// at least `tol` (that is what kept the loop running); and the
    /// boundary never moves. (Plain Laplacian smoothing does NOT guarantee
    /// monotone improvement on adversarial meshes — that is why "smart"
    /// variants exist — so monotonicity is deliberately not asserted.)
    #[test]
    fn smoothing_loop_invariants(mesh in arb_mesh()) {
        let boundary = Boundary::detect(&mesh);
        let params = SmoothParams::paper().with_max_iters(20);
        let mut work = mesh.clone();
        let report = params.smooth(&mut work);
        let adj = Adjacency::build(&work);
        let recomputed = mesh_quality(&work, &adj, QualityMetric::EdgeLengthRatio);
        prop_assert!((report.final_quality - recomputed).abs() < 1e-12);
        for w in report.iterations.windows(2) {
            prop_assert!(
                w[0].improvement >= params.tol,
                "loop continued after sub-tolerance improvement {}",
                w[0].improvement
            );
        }
        for v in boundary.boundary_vertices() {
            prop_assert_eq!(work.coords()[v as usize], mesh.coords()[v as usize]);
        }
    }

    /// Element-level reuse distances are invariant under renaming of the
    /// elements (the identity that separates iteration order from layout).
    #[test]
    fn reuse_distance_is_rename_invariant(
        trace in proptest::collection::vec(0u32..12, 1..200),
        perm_seed in 0u64..100,
    ) {
        let n = 12usize;
        let renames = lms::order::random_ordering(n, perm_seed);
        let pos = renames.old_to_new();
        let renamed: Vec<u32> = trace.iter().map(|&e| pos[e as usize]).collect();
        let a = ReuseDistanceAnalyzer::analyze(&trace, n);
        let b = ReuseDistanceAnalyzer::analyze(&renamed, n);
        prop_assert_eq!(a, b);
    }

    /// A fully-associative single-level LRU simulator agrees exactly with
    /// the stack-distance model: an access misses iff its reuse distance
    /// (in cache lines) is at least the capacity, or it is cold.
    #[test]
    fn lru_simulator_matches_stack_distance_model(
        trace in proptest::collection::vec(0u32..64, 1..300),
        capacity_lines in 1usize..32,
    ) {
        use lms::cache::{CacheConfig, CacheLevel};
        let mut cache = CacheLevel::new(CacheConfig {
            name: "FA",
            size_bytes: 64 * capacity_lines,
            line_bytes: 64,
            associativity: capacity_lines, // fully associative
            latency_cycles: 1,
        });
        // one line per element: line address = element id
        let distances = ReuseDistanceAnalyzer::analyze(&trace, 64);
        for (&e, &d) in trace.iter().zip(&distances) {
            let hit = cache.access_line(e as u64);
            let model_hit = d != COLD && (d as usize) < capacity_lines;
            prop_assert_eq!(
                hit, model_hit,
                "element {} with distance {} under capacity {}",
                e, d, capacity_lines
            );
        }
    }

    /// Jacobi smoothing is schedule-independent: any thread count yields
    /// bit-identical coordinates.
    #[test]
    fn jacobi_parallel_determinism(mesh in arb_mesh(), threads in 1usize..5) {
        let params = SmoothParams::paper()
            .with_update(lms::smooth::UpdateScheme::Jacobi)
            .with_max_iters(3);
        let engine = SmoothEngine::new(&mesh, params);
        let mut a = mesh.clone();
        engine.smooth_parallel(&mut a, 1);
        let mut b = mesh.clone();
        engine.smooth_parallel(&mut b, threads);
        prop_assert_eq!(a.coords(), b.coords());
    }

    /// Quality metrics stay within [0, 1] on arbitrary (even degenerate)
    /// triangles.
    #[test]
    fn quality_metrics_bounded(
        ax in -10.0..10.0f64, ay in -10.0..10.0f64,
        bx in -10.0..10.0f64, by in -10.0..10.0f64,
        cx in -10.0..10.0f64, cy in -10.0..10.0f64,
    ) {
        use lms::mesh::Point2;
        let (a, b, c) = (Point2::new(ax, ay), Point2::new(bx, by), Point2::new(cx, cy));
        for m in [QualityMetric::EdgeLengthRatio, QualityMetric::MinAngle, QualityMetric::RadiusRatio] {
            let q = m.triangle_quality(a, b, c);
            prop_assert!((0.0..=1.0).contains(&q), "{:?} gave {}", m, q);
        }
    }

    /// Permutation composition is associative and the identity is neutral.
    #[test]
    fn permutation_algebra(seed1 in 0u64..50, seed2 in 0u64..50, n in 1usize..40) {
        let p = lms::order::random_ordering(n, seed1);
        let q = lms::order::random_ordering(n, seed2);
        let id = Permutation::identity(n);
        prop_assert_eq!(p.compose(&id).unwrap(), p.clone());
        prop_assert_eq!(id.compose(&p).unwrap(), p.clone());
        let values: Vec<u32> = (0..n as u32).map(|x| x * 7 + 1).collect();
        let composed = q.compose(&p).unwrap().apply_to_values(&values).unwrap();
        let stepwise = q.apply_to_values(&p.apply_to_values(&values).unwrap()).unwrap();
        prop_assert_eq!(composed, stepwise);
    }
}
